//! `hfuse` — command-line front door to the library, in the spirit of the
//! paper's source-to-source compiler: fuse CUDA kernel files, inspect what
//! the compiler pipeline produces, and run the profiling search on the
//! built-in benchmarks.
//!
//! ```text
//! hfuse fuse a.cu b.cu [more.cu ...] --threads 256,256[,...] [-o fused.cu]
//! hfuse vfuse a.cu b.cu [-o fused.cu]
//! hfuse compile file.cu [--no-opt] [--dump-ir]
//! hfuse search PAIR [--gpu pascal|volta] [--d0 N] [--granularity N] [--no-prune]
//! hfuse bench KERNEL [--gpu pascal|volta]
//! hfuse list
//! ```
//!
//! Compile-pipeline subcommands (`fuse`, `compile`, `search`, `bench`,
//! `lint`) run through a [`Session`] — the incremental query layer in
//! `hfuse-core` — so repeated work within one invocation (and, for the
//! static analysis, across the fuse gate and the linter) is memoized.

use std::process::ExitCode;

use hfuse::frontend::printer::print_function;
use hfuse::fusion::{
    horizontal_fuse_many, vertical_fuse, FusionPart, HfuseError, SearchOptions, Session,
};
use hfuse::ir::{lower_kernel_unoptimized, KernelIr};
use hfuse::kernels::{all_pairs, AnyBenchmark};
use hfuse::sim::{Gpu, GpuConfig, Launch};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("fuse") => cmd_fuse(
            &Opts::parse("fuse", &args[1..], &["--threads", "--output"], &[])?,
            false,
        ),
        Some("vfuse") => cmd_fuse(&Opts::parse("vfuse", &args[1..], &["--output"], &[])?, true),
        Some("compile") => cmd_compile(&Opts::parse(
            "compile",
            &args[1..],
            &[],
            &["--no-opt", "--dump-ir"],
        )?),
        Some("run") => cmd_run(&Opts::parse(
            "run",
            &args[1..],
            &["--grid", "--block", "--show", "--shared", "--gpu", "--arg"],
            &[],
        )?),
        Some("search") => cmd_search(&Opts::parse(
            "search",
            &args[1..],
            &["--gpu", "--d0", "--granularity"],
            &["--no-prune", "--no-model-filter"],
        )?),
        Some("bench") => cmd_bench(&Opts::parse(
            "bench",
            &args[1..],
            &["--gpu"],
            &["--calibrate"],
        )?),
        Some("lint") => cmd_lint(&Opts::parse(
            "lint",
            &args[1..],
            &["--threads", "--extent"],
            &["--paper", "--all", "--json"],
        )?),
        Some("list") => {
            Opts::parse("list", &args[1..], &[], &[])?;
            cmd_list()
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
hfuse — automatic horizontal fusion for GPU kernels

USAGE:
  hfuse fuse <a.cu> <b.cu> [more.cu ...] [--threads N,N[,..]] [-o OUT]
      Horizontally fuse two or more kernels (one __global__ per file).
      --threads gives each kernel's block threads (default 256 each).
  hfuse vfuse <a.cu> <b.cu> [-o OUT]
      Vertically fuse two kernels (the baseline the paper compares against).
  hfuse compile <file.cu> [--no-opt] [--dump-ir]
      Lower a kernel to the SIMT IR and report size / register pressure.
  hfuse run <file.cu> --grid G --block B --arg SPEC [--arg SPEC ...]
      Execute a kernel on the simulator and report metrics. Argument specs
      match the kernel signature in order:
        i32:<v> | u32:<v> | f32:<v> | f64:<v> | i64:<v> | u64:<v>
        buf:<elems>[:<fill>]   (pointer arg: zeroed f32/u32 buffer, or
                                filled with `fill` as a float; printed back
                                after the run with --show N)
  hfuse search <PAIR> [--gpu pascal|volta] [--d0 N] [--granularity N]
               [--no-prune] [--no-model-filter]
      Run the Fig. 6 configuration search on a built-in benchmark pair,
      e.g. `hfuse search Batchnorm+Hist`. Candidates are ranked by the
      calibrated analytic model and profiled best-first with
      branch-and-bound pruning; --no-prune (or HFUSE_SEARCH_NO_PRUNE=1)
      forces exhaustive profiling, --no-model-filter (or
      HFUSE_SEARCH_NO_MODEL=1) falls back to the legacy cost-estimate
      ordering. The winner is identical in every mode.
  hfuse bench <KERNEL> [--gpu pascal|volta]
      Profile one built-in benchmark kernel (a Fig. 8 row).
  hfuse bench --calibrate [--gpu pascal|volta]
      Refit the analytic search model: exhaustively profile every paper
      pair's candidates and print the per-latency-class constants (the
      CALIBRATED_K array in gpu-sim's model.rs) plus fit quality.
  hfuse lint <file.cu> [more.cu ...] [--threads N] [--extent name=len ...]
             [--json] | hfuse lint --paper | --all
      Run the static fusion-safety analyzer: barrier-divergence, definite
      shared-memory races, partial-barrier structure, and value-range
      out-of-bounds lints. --threads fixes the block size (sharpens the
      barrier and range lints); --extent declares a global pointer
      parameter's length in elements, arming the global-out-of-bounds
      lint for it (repeatable); --json prints machine-readable output;
      --paper lints every built-in paper kernel instead, --all
      additionally covers the extension kernels and the BLAS / image /
      attention families. Exits nonzero on any diagnostic.
  hfuse list
      List built-in benchmark kernels and evaluation pairs.

Flags may be written `--flag value` or `--flag=value`; `-o` is short for
`--output`.
";

/// One subcommand's parsed command line: positional arguments plus
/// validated flags.
///
/// Every subcommand goes through this one parser, so `--flag value`,
/// `--flag=value`, repeated flags (`--arg`), and the `-o` alias for
/// `--output` behave identically everywhere — and a flag the subcommand
/// doesn't declare is an error naming the subcommand instead of being
/// silently ignored.
struct Opts {
    cmd: &'static str,
    positionals: Vec<String>,
    /// `(canonical flag, value)` occurrences, in command-line order.
    values: Vec<(&'static str, String)>,
    bools: Vec<&'static str>,
}

impl Opts {
    fn parse(
        cmd: &'static str,
        args: &[String],
        value_flags: &'static [&'static str],
        bool_flags: &'static [&'static str],
    ) -> Result<Opts, String> {
        let mut opts = Opts {
            cmd,
            positionals: Vec::new(),
            values: Vec::new(),
            bools: Vec::new(),
        };
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let arg = if arg == "-o" {
                "--output"
            } else {
                arg.as_str()
            };
            if !arg.starts_with("--") {
                opts.positionals.push(arg.to_owned());
                continue;
            }
            let (name, inline) = match arg.split_once('=') {
                Some((n, v)) => (n, Some(v.to_owned())),
                None => (arg, None),
            };
            if let Some(&canon) = bool_flags.iter().find(|&&f| f == name) {
                if inline.is_some() {
                    return Err(format!("`hfuse {cmd}`: flag `{canon}` takes no value"));
                }
                opts.bools.push(canon);
            } else if let Some(&canon) = value_flags.iter().find(|&&f| f == name) {
                let value = match inline {
                    Some(v) => v,
                    None => iter
                        .next()
                        .cloned()
                        .ok_or_else(|| format!("`hfuse {cmd}`: flag `{canon}` needs a value"))?,
                };
                opts.values.push((canon, value));
            } else {
                return Err(format!(
                    "unknown flag `{name}` for `hfuse {cmd}` (see `hfuse --help`)"
                ));
            }
        }
        Ok(opts)
    }

    /// The last value given for a flag.
    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for a repeatable flag, in order.
    fn values_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.values
            .iter()
            .filter(move |(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, name: &str) -> bool {
        self.bools.contains(&name)
    }

    /// Parses the last value of a flag, or `None` when absent. Parse errors
    /// name the flag.
    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.value(name)
            .map(|v| {
                v.parse::<T>()
                    .map_err(|e| format!("`hfuse {}`: {name} {v}: {e}", self.cmd))
            })
            .transpose()
    }
}

fn gpu_config(opts: &Opts) -> Result<GpuConfig, String> {
    match opts.value("--gpu") {
        None | Some("pascal") | Some("1080ti") => Ok(GpuConfig::pascal_like()),
        Some("volta") | Some("v100") => Ok(GpuConfig::volta_like()),
        Some(other) => Err(format!("unknown GPU `{other}` (use pascal or volta)")),
    }
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn read_kernel(path: &str) -> Result<hfuse::frontend::Function, String> {
    let src = read_source(path)?;
    hfuse::frontend::parse_kernel(&src).map_err(|e| format!("{path}:\n{}", e.render(&src)))
}

/// Renders a session-query error for a kernel loaded from `path`: parse
/// errors get the multi-line source-context rendering, everything else its
/// `Display` form.
fn render_err(e: &HfuseError, path: &str, src: &str) -> String {
    match e {
        HfuseError::Frontend(fe) => format!("{path}:\n{}", fe.render(src)),
        other => other.to_string(),
    }
}

fn write_or_print(out: Option<&str>, content: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn cmd_fuse(opts: &Opts, vertical: bool) -> Result<(), String> {
    let files: Vec<&str> = opts.positionals.iter().map(String::as_str).collect();
    if files.len() < 2 {
        return Err("fuse needs at least two kernel files".to_owned());
    }
    if vertical && files.len() != 2 {
        return Err("vertical fusion takes exactly two kernels".to_owned());
    }
    let out = opts.value("--output");

    if vertical {
        let kernels: Vec<_> = files
            .iter()
            .map(|f| read_kernel(f))
            .collect::<Result<_, _>>()?;
        let fused = vertical_fuse(&kernels[0], &kernels[1]).map_err(|e| e.to_string())?;
        return write_or_print(out, &print_function(&fused.function));
    }

    let threads: Vec<u32> = match opts.value("--threads") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .map_err(|e| format!("--threads: {e}"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![256; files.len()],
    };
    if threads.len() != files.len() {
        return Err(format!(
            "--threads lists {} counts for {} kernels",
            threads.len(),
            files.len()
        ));
    }

    if files.len() == 2 {
        // Pairwise fusion runs through the session's memoized `fused` query
        // (same pipeline the search uses).
        let mut s = Session::new(GpuConfig::pascal_like());
        let mut ids = Vec::new();
        let mut sources = Vec::new();
        for f in &files {
            let src = read_source(f)?;
            ids.push(s.add_kernel(src.clone()));
            sources.push(src);
        }
        for (i, &k) in ids.iter().enumerate() {
            s.ast(k)
                .map_err(|e| render_err(&e, files[i], &sources[i]))?;
        }
        let fused = s
            .fused(ids[0], ids[1], (threads[0], 1, 1), (threads[1], 1, 1))
            .map_err(|e| e.to_string())?;
        eprintln!(
            "fused 2 kernels into a {}-thread block (partitions {:?})",
            fused.block_threads(),
            [fused.d1, fused.d2]
        );
        return write_or_print(out, &fused.to_source());
    }

    let kernels: Vec<_> = files
        .iter()
        .map(|f| read_kernel(f))
        .collect::<Result<_, _>>()?;
    let parts: Vec<FusionPart> = kernels
        .into_iter()
        .zip(&threads)
        .map(|(k, &t)| FusionPart::new(k, (t, 1, 1)))
        .collect();
    let fused = horizontal_fuse_many(&parts).map_err(|e| e.to_string())?;
    eprintln!(
        "fused {} kernels into a {}-thread block (partitions {:?})",
        parts.len(),
        fused.block_threads(),
        fused.partitions
    );
    write_or_print(out, &fused.to_source())
}

fn cmd_compile(opts: &Opts) -> Result<(), String> {
    let [file] = opts.positionals.as_slice() else {
        return Err("compile takes exactly one kernel file".to_owned());
    };
    let src = read_source(file)?;
    let ir: KernelIr = if opts.flag("--no-opt") {
        let kernel = hfuse::frontend::parse_kernel(&src)
            .map_err(|e| format!("{file}:\n{}", e.render(&src)))?;
        lower_kernel_unoptimized(&kernel).map_err(|e| e.to_string())?
    } else {
        // The optimized pipeline goes through the session's `ir` query.
        let mut s = Session::new(GpuConfig::pascal_like());
        let k = s.add_kernel(src.clone());
        let ir = s.ir(k).map_err(|e| render_err(&e, file, &src))?;
        (*ir).clone()
    };
    println!("kernel `{}`", ir.name);
    println!("  instructions:      {}", ir.insts.len());
    println!("  register pressure: {}", ir.reg_pressure());
    println!("  static shared:     {} bytes", ir.shared_static_bytes);
    println!(
        "  dynamic shared:    {}",
        if ir.uses_dynamic_shared { "yes" } else { "no" }
    );
    println!("  local memory:      {} bytes/thread", ir.local_bytes);
    if opts.flag("--dump-ir") {
        print!("{}", thread_ir::printer::print_kernel_ir(&ir));
    }
    Ok(())
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let [file] = opts.positionals.as_slice() else {
        return Err("run takes exactly one kernel file".to_owned());
    };
    let src = read_source(file)?;
    let cfg = gpu_config(opts)?;
    let mut s = Session::with_gpu(Gpu::new(cfg.clone()));
    let kid = s.add_kernel(src.clone());
    let kernel_name = s
        .ast(kid)
        .map_err(|e| render_err(&e, file, &src))?
        .name
        .clone();
    let ir = s.ir(kid).map_err(|e| render_err(&e, file, &src))?;

    let grid: u32 = opts.parsed("--grid")?.unwrap_or(8);
    let block: u32 = opts.parsed("--block")?.unwrap_or(256);
    let show: usize = opts.parsed("--show")?.unwrap_or(8);

    let mut arg_values = Vec::new();
    let mut buffers = Vec::new();
    for spec in opts.values_of("--arg") {
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad --arg `{spec}`"))?;
        use hfuse::sim::ParamValue as P;
        let v = match kind {
            "i32" => P::I32(rest.parse().map_err(|e| format!("{spec}: {e}"))?),
            "u32" => P::U32(rest.parse().map_err(|e| format!("{spec}: {e}"))?),
            "i64" => P::I64(rest.parse().map_err(|e| format!("{spec}: {e}"))?),
            "u64" => P::U64(rest.parse().map_err(|e| format!("{spec}: {e}"))?),
            "f32" => P::F32(rest.parse().map_err(|e| format!("{spec}: {e}"))?),
            "f64" => P::F64(rest.parse().map_err(|e| format!("{spec}: {e}"))?),
            "buf" => {
                let (elems, fill) = match rest.split_once(':') {
                    Some((n, f)) => (
                        n.parse::<usize>().map_err(|e| format!("{spec}: {e}"))?,
                        Some(f.parse::<f32>().map_err(|e| format!("{spec}: {e}"))?),
                    ),
                    None => (rest.parse().map_err(|e| format!("{spec}: {e}"))?, None),
                };
                let id = match fill {
                    Some(f) => s.gpu_mut().memory_mut().alloc_from_f32(&vec![f; elems]),
                    None => s.gpu_mut().memory_mut().alloc_f32(elems),
                };
                buffers.push((id, elems));
                P::Ptr(id)
            }
            other => return Err(format!("unknown --arg kind `{other}`")),
        };
        arg_values.push(v);
    }

    let launch = Launch {
        kernel: (*ir).clone().into(),
        grid_dim: grid,
        block_dim: (block, 1, 1),
        dynamic_shared_bytes: opts.parsed("--shared")?.unwrap_or(0),
        args: arg_values,
    };
    let r = s.gpu_mut().run(&[launch]).map_err(|e| e.to_string())?;
    println!(
        "`{kernel_name}` on {} (grid {grid} × block {block}):",
        cfg.name
    );
    println!("  cycles:            {}", r.total_cycles);
    println!(
        "  issue slot util:   {:.2}%",
        r.metrics.issue_slot_utilization()
    );
    println!("  mem-inst stall:    {:.1}%", r.metrics.mem_stall_pct());
    println!("  occupancy:         {:.1}%", r.metrics.occupancy_pct());
    for (i, (id, elems)) in buffers.iter().enumerate() {
        let n = show.min(*elems);
        let vals = s.gpu().memory().read_f32s(*id);
        println!("  buffer {i} (first {n} as f32): {:?}", &vals[..n]);
    }
    Ok(())
}

fn parse_pair(name: &str) -> Result<(AnyBenchmark, AnyBenchmark), String> {
    let (a, b) = name
        .split_once('+')
        .ok_or_else(|| format!("pair `{name}` must be of the form A+B (see `hfuse list`)"))?;
    let a = AnyBenchmark::by_name(a).ok_or_else(|| format!("unknown kernel `{a}`"))?;
    let b = AnyBenchmark::by_name(b).ok_or_else(|| format!("unknown kernel `{b}`"))?;
    Ok((a, b))
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    let [pair_name] = opts.positionals.as_slice() else {
        return Err("search takes one PAIR argument, e.g. Batchnorm+Hist".to_owned());
    };
    let (a, b) = parse_pair(pair_name)?;
    let cfg = gpu_config(opts)?;
    let d0 = opts.parsed("--d0")?.unwrap_or(1024);
    let granularity = opts.parsed("--granularity")?.unwrap_or(128);

    let mut gpu = Gpu::new(cfg.clone());
    let in1 = a.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b.benchmark().fusion_input(gpu.memory_mut());

    // One session carries the whole subcommand: the native baseline and the
    // search share the memoized parses.
    let mut s = Session::with_gpu(gpu);
    s.set_search_options(SearchOptions {
        d0,
        granularity,
        prune: !opts.flag("--no-prune"),
        model_filter: !opts.flag("--no-model-filter"),
    });
    let ka = s.add_fusion_input(&in1);
    let kb = s.add_fusion_input(&in2);

    let native = s.native(ka, kb).map_err(|e| e.to_string())?;
    println!(
        "GPU {} — native co-execution: {} cycles",
        cfg.name, native.total_cycles
    );
    let report = s.search_winner(ka, kb).map_err(|e| e.to_string())?;
    println!(
        "{:>6} {:>6} {:>7} {:>9} {:>9} {:>7} {:>9} {:>7}",
        "d1", "d2", "bound", "cycles", "speedup%", "util%", "memstall%", "occ%"
    );
    for c in &report.candidates {
        if let Some(at) = c.pruned_at {
            println!(
                "{:>6} {:>6} {:>7} {:>9} {:>9}",
                c.d1,
                c.d2,
                c.reg_bound
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".into()),
                format!(">{at}"),
                "pruned",
            );
            continue;
        }
        println!(
            "{:>6} {:>6} {:>7} {:>9} {:>+9.1} {:>7.1} {:>9.1} {:>7.1}",
            c.d1,
            c.d2,
            c.reg_bound
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
            c.cycles,
            100.0 * (native.total_cycles as f64 / c.cycles as f64 - 1.0),
            c.issue_util,
            c.mem_stall,
            c.occupancy
        );
    }
    let best = report.best();
    println!(
        "best: d1 = {}, bound = {:?} → {:+.1}% over native",
        best.d1,
        best.reg_bound,
        100.0 * (native.total_cycles as f64 / best.cycles as f64 - 1.0)
    );
    println!(
        "search: {} candidates, {} pruned early; compile {:.1} ms, profile {:.1} ms",
        report.candidates.len(),
        report.pruned_count(),
        report.compile_ms,
        report.profile_ms
    );
    println!("{}", report.explain_best());
    Ok(())
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    if opts.flag("--calibrate") {
        return cmd_calibrate(opts);
    }
    let [name] = opts.positionals.as_slice() else {
        return Err("bench takes one KERNEL argument, e.g. Ethash".to_owned());
    };
    let b = AnyBenchmark::by_name(name).ok_or_else(|| format!("unknown kernel `{name}`"))?;
    let cfg = gpu_config(opts)?;
    let mut gpu = Gpu::new(cfg.clone());
    let input = b.benchmark().fusion_input(gpu.memory_mut());
    let mut s = Session::with_gpu(gpu);
    let k = s.add_fusion_input(&input);
    let r = s.single(k).map_err(|e| e.to_string())?;
    println!("{} on {}:", b.name(), cfg.name);
    println!("  cycles:            {}", r.total_cycles);
    println!(
        "  issue slot util:   {:.2}%",
        r.metrics.issue_slot_utilization()
    );
    println!("  mem-inst stall:    {:.1}%", r.metrics.mem_stall_pct());
    println!("  occupancy:         {:.1}%", r.metrics.occupancy_pct());
    println!("  instructions:      {}", r.metrics.thread_insts);
    println!("  mem transactions:  {}", r.metrics.mem_transactions);
    Ok(())
}

/// `hfuse bench --calibrate`: exhaustively profile every paper pair's
/// candidates, refit the analytic model's per-class constants, and print
/// them as the Rust array to check in, with a fit-quality comparison
/// against the currently compiled-in constants.
fn cmd_calibrate(opts: &Opts) -> Result<(), String> {
    use hfuse::fusion::calibration_rows;
    use hfuse::sim::model::{fit_constants, CalibrationRow, CALIBRATED_K, NUM_FEATURES};
    use hfuse::sim::IssueKind;

    let cfg = gpu_config(opts)?;
    let mut rows: Vec<CalibrationRow> = Vec::new();
    let mut groups: Vec<(String, std::ops::Range<usize>)> = Vec::new();
    for pair in all_pairs() {
        let mut gpu = Gpu::new(cfg.clone());
        let in1 = pair.first.benchmark().fusion_input(gpu.memory_mut());
        let in2 = pair.second.benchmark().fusion_input(gpu.memory_mut());
        let pair_rows = calibration_rows(&gpu, &in1, &in2, SearchOptions::default())
            .map_err(|e| format!("{}: {e}", pair.name()))?;
        eprintln!("{}: {} observations", pair.name(), pair_rows.len());
        let start = rows.len();
        rows.extend(pair_rows);
        groups.push((pair.name(), start..rows.len()));
    }
    if rows.is_empty() {
        return Err("no schedulable candidates to calibrate on".to_owned());
    }
    let k = fit_constants(&rows);

    // Per-pair top-1 agreement: does the fitted model's best-ranked
    // candidate coincide with the simulated winner?
    let argmin = |vals: &[f64]| -> usize {
        vals.iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map_or(0, |(i, _)| i)
    };
    let mut agree = 0;
    for (name, range) in &groups {
        let pair_rows = &rows[range.clone()];
        let preds: Vec<f64> = pair_rows
            .iter()
            .map(|r| r.features.iter().zip(&k).map(|(x, c)| x * c).sum())
            .collect();
        let sims: Vec<f64> = pair_rows.iter().map(|r| r.cycles as f64).collect();
        let (mi, si) = (argmin(&preds), argmin(&sims));
        if mi == si {
            agree += 1;
        } else {
            eprintln!(
                "{name}: model top-1 is candidate {mi}, simulated winner is {si} \
                 (model gap {:+.1}%)",
                100.0 * (sims[mi] / sims[si] - 1.0)
            );
        }
    }
    eprintln!(
        "model top-1 matches the simulated winner on {agree}/{} pairs",
        groups.len()
    );

    // Mean absolute relative error of predicted vs simulated cycles, for
    // both the fresh fit and the constants currently compiled in.
    let mare = |consts: &[f64; NUM_FEATURES]| -> f64 {
        rows.iter()
            .map(|r| {
                let pred: f64 = r.features.iter().zip(consts).map(|(x, c)| x * c).sum();
                (pred - r.cycles as f64).abs() / (r.cycles as f64).max(1.0)
            })
            .sum::<f64>()
            / rows.len() as f64
    };

    println!(
        "// Fitted on {} candidate observations from the {} paper pairs ({}).",
        rows.len(),
        all_pairs().len(),
        cfg.name
    );
    println!("pub const CALIBRATED_K: [f64; NUM_FEATURES] = [");
    for kind in IssueKind::ALL {
        println!("    {:?}, // {}", k[kind.index()], kind.name());
    }
    println!(
        "    {:?}, // spill operands",
        k[hfuse::sim::model::SPILL_FEATURE]
    );
    println!(
        "    {:?}, // load imbalance",
        k[hfuse::sim::model::IMBALANCE_FEATURE]
    );
    println!("];");
    println!(
        "fit quality: mean |pred-sim|/sim = {:.1}% (compiled-in constants: {:.1}%)",
        100.0 * mare(&k),
        100.0 * mare(&CALIBRATED_K)
    );
    Ok(())
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn cmd_lint(opts: &Opts) -> Result<(), String> {
    let threads: Option<u32> = opts.parsed("--threads")?;

    // `--extent out=256` declares a global pointer parameter's length in
    // elements, arming the global-out-of-bounds lint for that buffer.
    let mut extents = std::collections::BTreeMap::new();
    for spec in opts.values_of("--extent") {
        let (name, len) = spec
            .split_once('=')
            .ok_or_else(|| format!("`hfuse lint`: --extent {spec}: expected name=len"))?;
        let len: i64 = len
            .parse()
            .map_err(|e| format!("`hfuse lint`: --extent {spec}: {e}"))?;
        extents.insert(name.to_owned(), len);
    }

    // (label, source, block threads) for every kernel to analyze.
    let mut units: Vec<(String, String, Option<u32>)> = Vec::new();
    if opts.flag("--paper") || opts.flag("--all") {
        let mut benches = AnyBenchmark::all();
        if opts.flag("--all") {
            benches.extend(AnyBenchmark::extensions());
            benches.extend(AnyBenchmark::families());
        }
        for b in benches {
            let bench = b.benchmark();
            units.push((
                b.name().to_owned(),
                bench.source(),
                Some(threads.unwrap_or_else(|| bench.default_threads())),
            ));
        }
    } else {
        if opts.positionals.is_empty() {
            return Err("lint needs at least one kernel file, or --paper".to_owned());
        }
        for f in &opts.positionals {
            let src = read_source(f)?;
            units.push((f.clone(), src, threads));
        }
    }

    // One session for the whole lint run; its `lints` query shares the
    // process-wide analysis cache with the fuse-time safety gate, so a
    // kernel linted here is never re-analyzed by a later fuse in the same
    // process (and vice versa).
    let mut s = Session::new(GpuConfig::pascal_like());
    if !extents.is_empty() {
        s.set_global_extents(Some(extents));
    }
    let json = opts.flag("--json");
    let mut total = 0usize;
    let mut rows: Vec<String> = Vec::new();
    for (label, src, block_threads) in &units {
        let k = s.add_kernel(src.clone());
        let diags = s
            .lints(k, *block_threads)
            .map_err(|e| render_err(&e, label, src))?;
        if json {
            let ds: Vec<String> = diags
                .iter()
                .map(|d| {
                    let pos = match d.span {
                        Some(sp) => format!("\"line\": {}, \"col\": {}", sp.line, sp.col),
                        None => "\"line\": null, \"col\": null".to_owned(),
                    };
                    format!(
                        "      {{ \"severity\": \"{}\", \"code\": \"{}\", {pos}, \"message\": \"{}\" }}",
                        d.severity,
                        json_escape(&d.code),
                        json_escape(&d.message)
                    )
                })
                .collect();
            rows.push(format!(
                "  {{\n    \"kernel\": \"{}\",\n    \"diagnostics\": [{}]\n  }}",
                json_escape(label),
                if ds.is_empty() {
                    String::new()
                } else {
                    format!("\n{}\n    ", ds.join(",\n"))
                }
            ));
        } else {
            for d in diags.iter() {
                println!("{label}: {}", d.render(src));
            }
        }
        total += diags.len();
    }
    if json {
        println!(
            "{{\n\"checked\": {}, \"total\": {},\n\"kernels\": [\n{}\n]\n}}",
            units.len(),
            total,
            rows.join(",\n")
        );
    }
    if total == 0 {
        if !json {
            let n = units.len();
            eprintln!(
                "checked {n} kernel{}: no diagnostics",
                if n == 1 { "" } else { "s" }
            );
        }
        Ok(())
    } else {
        Err(format!(
            "{total} diagnostic{} reported",
            if total == 1 { "" } else { "s" }
        ))
    }
}

fn cmd_list() -> Result<(), String> {
    println!("benchmark kernels (paper set, extensions, then families):");
    for b in AnyBenchmark::all()
        .into_iter()
        .chain(AnyBenchmark::extensions())
        .chain(AnyBenchmark::families())
    {
        let bench = b.benchmark();
        println!(
            "  {:<10} block {}{}, grid {}",
            b.name(),
            bench.default_threads(),
            if bench.tunable() {
                " (tunable)"
            } else {
                " (fixed)"
            },
            bench.grid_dim()
        );
    }
    println!("\nevaluation pairs (starred member is the one the ratio sweep scales):");
    for p in all_pairs() {
        println!("  {}", p.name());
    }
    println!("\nfamily pairs (BLAS / image / attention crosses):");
    for p in hfuse::kernels::family_pairs() {
        println!("  {}", p.name());
    }
    Ok(())
}
