#![warn(missing_docs)]

//! HFuse: automatic horizontal fusion for GPU kernels.
//!
//! This is the facade crate of the workspace, re-exporting the member crates
//! so examples and integration tests can use one import root. See the
//! individual crates for the full documentation:
//!
//! * [`frontend`] (`cuda-frontend`) — CUDA-dialect lexer/parser/AST/printer
//!   and the preprocessing passes (inlining, renaming, declaration lifting).
//! * [`ir`] (`thread-ir`) — the flat SIMT register IR kernels are lowered to,
//!   with liveness-based register-pressure estimation and spilling.
//! * [`sim`] (`gpu-sim`) — the cycle-level SIMT GPU simulator used in place
//!   of the paper's 1080Ti/V100 hardware.
//! * [`analysis`] (`hfuse-analysis`) — static fusion-safety analysis: CFG
//!   construction, uniformity dataflow, and the barrier-divergence /
//!   shared-memory race / partial-barrier lints behind `hfuse lint`.
//! * [`fusion`] (`hfuse-core`) — the paper's contribution: horizontal fusion,
//!   the vertical-fusion baseline, and the profiling-driven search, behind
//!   both the one-shot free functions and the incremental
//!   [`fusion::Session`] query pipeline (content-hashed memoization with
//!   hit/miss/recompute telemetry).
//! * [`kernels`] (`hfuse-kernels`) — the nine benchmark kernels with
//!   workloads and CPU reference implementations.

pub use cuda_frontend as frontend;
pub use gpu_sim as sim;
pub use hfuse_analysis as analysis;
pub use hfuse_core as fusion;
pub use hfuse_kernels as kernels;
pub use thread_ir as ir;
