//! Fusing cryptocurrency proof-of-work kernels: the memory-latency-bound
//! Ethash DAG walk with the ALU-bound BLAKE-256 compression — the scenario
//! where the paper finds horizontal fusion most profitable (interleaving
//! hides the DAG-load latency behind hash arithmetic).
//!
//! Crypto kernels have fixed block dimensions, so HFuse partitions the
//! thread space at the kernels' native sizes (Section IV-A).
//!
//! Run with: `cargo run --release --example crypto_mining`

use hfuse::fusion::{measure_native, measure_single, search_fusion_config, SearchOptions};
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::pascal_like();
    let ethash = AnyBenchmark::by_name("Ethash").expect("benchmark exists");
    let blake = AnyBenchmark::by_name("Blake256").expect("benchmark exists");

    let mut gpu = Gpu::new(cfg.clone());
    let in_blake = blake.benchmark().fusion_input(gpu.memory_mut());
    let in_ethash = ethash.benchmark().fusion_input(gpu.memory_mut());

    // Individual characters: this is why the pair fuses well.
    let b = measure_single(&gpu, &in_blake)?;
    let e = measure_single(&gpu, &in_ethash)?;
    println!(
        "Blake256 alone: {:>7} cycles, {:>5.1}% issue util, {:>5.1}% memory stall",
        b.total_cycles,
        b.metrics.issue_slot_utilization(),
        b.metrics.mem_stall_pct()
    );
    println!(
        "Ethash alone:   {:>7} cycles, {:>5.1}% issue util, {:>5.1}% memory stall",
        e.total_cycles,
        e.metrics.issue_slot_utilization(),
        e.metrics.mem_stall_pct()
    );

    let native = measure_native(&gpu, &in_blake, &in_ethash)?;
    let report = search_fusion_config(&gpu, &in_blake, &in_ethash, SearchOptions::default())?;
    println!("\nnative co-execution: {} cycles", native.total_cycles);
    for c in &report.candidates {
        println!(
            "fused (d1 = {}, d2 = {}, bound = {:>4}): {} cycles, {:.1}% util, {:+.1}% vs native",
            c.d1,
            c.d2,
            c.reg_bound
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
            c.cycles,
            c.issue_util,
            100.0 * (native.total_cycles as f64 / c.cycles as f64 - 1.0),
        );
    }
    let best = report.best();
    println!(
        "\nHFuse picks d1 = {}, bound = {:?}: {:+.1}% — the warp scheduler fills Ethash's \
         DAG-load stalls with Blake rounds.",
        best.d1,
        best.reg_bound,
        100.0 * (native.total_cycles as f64 / best.cycles as f64 - 1.0),
    );
    Ok(())
}
