//! Visualize *why* horizontal fusion works: an ASCII issue-utilization
//! timeline of native co-execution (Blake256 then Ethash — a busy phase
//! followed by a mostly-idle memory-bound phase) against the fused kernel
//! (one uniform phase where Blake rounds fill Ethash's stall cycles).
//!
//! Run with: `cargo run --release --example timeline`

use hfuse::fusion::horizontal_fuse;
use hfuse::ir::lower_kernel;
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig, Launch};

const BAR_WIDTH: usize = 60;

fn bar(pct: f64) -> String {
    let filled = ((pct / 100.0) * BAR_WIDTH as f64).round() as usize;
    let mut s = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::pascal_like();
    let blake = AnyBenchmark::by_name("Blake256").expect("benchmark exists");
    let ethash = AnyBenchmark::by_name("Ethash").expect("benchmark exists");

    // --- native: two launches on parallel streams ---
    let mut gpu = Gpu::new(cfg.clone());
    let in_b = blake.benchmark().fusion_input(gpu.memory_mut());
    let in_e = ethash.benchmark().fusion_input(gpu.memory_mut());
    let mk = |inp: &hfuse::fusion::FusionInput| Launch {
        kernel: lower_kernel(&inp.kernel).expect("lower").into(),
        grid_dim: inp.grid_dim,
        block_dim: (inp.default_threads, 1, 1),
        dynamic_shared_bytes: inp.dynamic_shared,
        args: inp.args.clone(),
    };
    let (native, native_trace) = gpu.run_traced(&[mk(&in_b), mk(&in_e)], 4096)?;

    // --- fused: one launch, native 256/256 partition ---
    let fused = horizontal_fuse(&in_b.kernel, (256, 1, 1), &in_e.kernel, (256, 1, 1))?;
    let mut gpu2 = Gpu::new(cfg);
    let in_b2 = blake.benchmark().fusion_input(gpu2.memory_mut());
    let in_e2 = ethash.benchmark().fusion_input(gpu2.memory_mut());
    let mut args = in_b2.args.clone();
    args.extend(in_e2.args.iter().copied());
    let (fused_res, fused_trace) = gpu2.run_traced(
        &[Launch {
            kernel: lower_kernel(&fused.function)?.into(),
            grid_dim: in_b2.grid_dim,
            block_dim: (512, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        }],
        4096,
    )?;

    println!("issue-slot utilization per 4096-cycle window (█ = busy):\n");
    println!(
        "native (Blake256 launch, then Ethash backfills) — {} cycles",
        native.total_cycles
    );
    for s in &native_trace {
        println!(
            "{:>8} |{}| {:5.1}%",
            s.cycle,
            bar(s.issue_util),
            s.issue_util
        );
    }
    println!(
        "\nHFuse fused (Blake warps fill Ethash stalls) — {} cycles ({:+.1}%)",
        fused_res.total_cycles,
        100.0 * (native.total_cycles as f64 / fused_res.total_cycles as f64 - 1.0)
    );
    for s in &fused_trace {
        println!(
            "{:>8} |{}| {:5.1}%",
            s.cycle,
            bar(s.issue_util),
            s.issue_util
        );
    }
    Ok(())
}
