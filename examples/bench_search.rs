//! Wall-clock benchmark of the fusion-configuration search with and without
//! the simulator's event-driven fast-forward (`HFUSE_SIM_NO_SKIP=1` forces
//! the naive single-step loop). Writes `BENCH_search.json` next to the
//! working directory.
//!
//! Dependency-free (plain `std::time::Instant`); run with:
//! `cargo run --release --example bench_search`

use std::time::Instant;

use hfuse::fusion::{search_fusion_config, SearchOptions, SearchReport};
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig};

struct PairResult {
    pair: String,
    wall_ms: f64,
    wall_ms_naive: f64,
    speedup: f64,
    sim_cycles: u64,
    candidates: usize,
}

fn run_search(first: &str, second: &str, scale_second: f64) -> (SearchReport, f64) {
    let mut gpu = Gpu::new(GpuConfig::pascal_like());
    let b1 = AnyBenchmark::by_name(first).expect("benchmark exists");
    let b2 = AnyBenchmark::by_name(second)
        .expect("benchmark exists")
        .scaled(scale_second);
    let in1 = b1.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b2.benchmark().fusion_input(gpu.memory_mut());
    let start = Instant::now();
    let report = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    // One worker keeps the fast/naive comparison a pure single-thread
    // wall-clock measurement.
    std::env::set_var("HFUSE_SEARCH_THREADS", "1");

    // The third pair is the memory-bound one: two independent Ethash
    // instances (the dual-stream mining co-location from the paper's
    // workload table). Every candidate — fused or not — is dominated by
    // uncoalesced, dependent DAG lookups, so the device sits
    // latency-stalled for most of the simulated time; that is exactly the
    // case the fast-forward accelerates.
    let pairs = [
        ("Maxpool", "Batchnorm", 1.0),
        ("Upsample", "Hist", 1.0),
        ("Ethash", "Ethash", 1.0),
    ];

    let mut results = Vec::new();
    for (first, second, scale_second) in pairs {
        let mut name = format!("{}+{}", first.to_lowercase(), second.to_lowercase());
        if scale_second != 1.0 {
            name = format!("{name}x{scale_second:.0}");
        }

        std::env::remove_var("HFUSE_SIM_NO_SKIP");
        let (report, wall_ms) = run_search(first, second, scale_second);

        std::env::set_var("HFUSE_SIM_NO_SKIP", "1");
        let (naive_report, wall_ms_naive) = run_search(first, second, scale_second);
        std::env::remove_var("HFUSE_SIM_NO_SKIP");

        assert_eq!(
            report.best().cycles,
            naive_report.best().cycles,
            "fast-forward changed reported cycles for {name}"
        );

        let r = PairResult {
            pair: name,
            wall_ms,
            wall_ms_naive,
            speedup: wall_ms_naive / wall_ms,
            sim_cycles: report.best().cycles,
            candidates: report.candidates.len(),
        };
        println!(
            "{:<22} {:>9.1} ms fast | {:>9.1} ms naive | {:>5.2}x | best {} cycles ({} candidates)",
            r.pair, r.wall_ms, r.wall_ms_naive, r.speedup, r.sim_cycles, r.candidates
        );
        results.push(r);
    }

    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"pair\": \"{}\", \"wall_ms\": {:.2}, \"wall_ms_naive\": {:.2}, \
                 \"speedup\": {:.2}, \"sim_cycles\": {}, \"candidates\": {}}}",
                r.pair, r.wall_ms, r.wall_ms_naive, r.speedup, r.sim_cycles, r.candidates
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    println!("\nwrote BENCH_search.json");

    let best = results.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    println!("best wall-clock speedup: {best:.2}x");
}
