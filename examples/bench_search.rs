//! Wall-clock benchmark of the fusion-configuration search. Measures five
//! arms per pair:
//!
//! * `wall_ms` — the shipped default: branch-and-bound pruning, the
//!   calibrated analytic pre-filter, and the lane-vectorized interpreter.
//!   This is the arm the CI `bench-regression` job gates.
//! * `wall_ms_no_model` — pruning only (`HFUSE_SEARCH_NO_MODEL=1`): what
//!   the search cost before the model filter existed.
//! * `wall_ms_scalar` — the default search on the scalar one-lane-at-a-time
//!   interpreter (`HFUSE_SIM_NO_VECTOR=1`): what vectorization buys.
//! * `wall_ms_exhaustive` — no pruning, no filter (`prune: false`).
//! * `wall_ms_naive` — exhaustive on the naive single-step simulator loop
//!   (`HFUSE_SIM_NO_SKIP=1`): the original reference cost.
//!
//! Every arm must report a bit-identical winner. Writes `BENCH_search.json`
//! in the working directory.
//!
//! With `--enforce-baseline`, the committed `BENCH_search.json` is read
//! before being overwritten and the run exits nonzero if any pair's
//! `wall_ms` regressed by more than 20% — the CI perf gate.
//!
//! Dependency-free (plain `std::time::Instant`); run with:
//! `cargo run --release --example bench_search [-- --enforce-baseline]`

use std::time::Instant;

use hfuse::fusion::{search_fusion_config, SearchOptions, SearchReport};
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig};

struct PairResult {
    pair: String,
    wall_ms: f64,
    wall_ms_no_model: f64,
    wall_ms_scalar: f64,
    wall_ms_exhaustive: f64,
    wall_ms_naive: f64,
    speedup: f64,
    sim_cycles: u64,
    candidates: usize,
    candidates_pruned: usize,
    model_rank: usize,
    compile_ms: f64,
    profile_ms: f64,
}

fn run_search(first: &str, second: &str, scale_second: f64, prune: bool) -> (SearchReport, f64) {
    let mut gpu = Gpu::new(GpuConfig::pascal_like());
    let b1 = AnyBenchmark::by_name(first).expect("benchmark exists");
    let b2 = AnyBenchmark::by_name(second)
        .expect("benchmark exists")
        .scaled(scale_second);
    let in1 = b1.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b2.benchmark().fusion_input(gpu.memory_mut());
    let opts = SearchOptions {
        prune,
        ..SearchOptions::default()
    };
    let start = Instant::now();
    let report = search_fusion_config(&gpu, &in1, &in2, opts).expect("search");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Pulls `"key": <number>` out of one baseline JSON row (the file is
/// written by this program, so the hand-rolled extraction is safe).
fn json_number(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = row.find(&pat)? + pat.len();
    let rest = &row[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn baseline_wall_ms(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for row in json.lines() {
        let Some(pair_start) = row.find("\"pair\": \"") else {
            continue;
        };
        let rest = &row[pair_start + 9..];
        let Some(pair_end) = rest.find('"') else {
            continue;
        };
        if let Some(ms) = json_number(row, "wall_ms") {
            out.push((rest[..pair_end].to_owned(), ms));
        }
    }
    out
}

fn winner_key(r: &SearchReport) -> (u32, Option<u32>, u64) {
    (r.best().d1, r.best().reg_bound, r.best().cycles)
}

fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce-baseline");
    let baseline = std::fs::read_to_string("BENCH_search.json")
        .map(|s| baseline_wall_ms(&s))
        .unwrap_or_default();

    // One worker keeps the arm-to-arm comparison a pure single-thread
    // wall-clock measurement.
    std::env::set_var("HFUSE_SEARCH_THREADS", "1");

    // Five tunable DL pairs (14 candidates each — where pruning and the
    // model filter have the most to cut) plus the memory-bound dual-Ethash
    // mining co-location from the paper's workload table. Ethash is
    // non-tunable (two candidates), so its wall clock isolates the
    // simulator-side wins (fast-forward, vectorization) from the
    // search-side ones. The last three rows are new-family crosses
    // (BLAS × image × attention), exercising tree reductions, 2-D stencil
    // indexing, and loop-carried accumulators in the searched kernels.
    let pairs = [
        ("Maxpool", "Batchnorm", 1.0),
        ("Upsample", "Hist", 1.0),
        ("Batchnorm", "Upsample", 1.0),
        ("Batchnorm", "Im2Col", 1.0),
        ("Hist", "Im2Col", 1.0),
        ("Ethash", "Ethash", 1.0),
        ("Axpy", "Blur", 1.0),
        ("Dot", "Downsample", 1.0),
        ("Gemv", "Attention", 1.0),
    ];

    let mut results = Vec::new();
    for (first, second, scale_second) in pairs {
        let mut name = format!("{}+{}", first.to_lowercase(), second.to_lowercase());
        if scale_second != 1.0 {
            name = format!("{name}x{scale_second:.0}");
        }

        std::env::remove_var("HFUSE_SIM_NO_SKIP");
        std::env::remove_var("HFUSE_SIM_NO_VECTOR");
        std::env::remove_var("HFUSE_SEARCH_NO_MODEL");

        // The shipped default: prune + model filter + vectorized lanes.
        let (report, wall_ms) = run_search(first, second, scale_second, true);

        // Pruning without the analytic pre-filter.
        std::env::set_var("HFUSE_SEARCH_NO_MODEL", "1");
        let (no_model, wall_ms_no_model) = run_search(first, second, scale_second, true);
        std::env::remove_var("HFUSE_SEARCH_NO_MODEL");

        // The default search on the scalar interpreter.
        std::env::set_var("HFUSE_SIM_NO_VECTOR", "1");
        let (scalar, wall_ms_scalar) = run_search(first, second, scale_second, true);
        std::env::remove_var("HFUSE_SIM_NO_VECTOR");

        let (exhaustive, wall_ms_exhaustive) = run_search(first, second, scale_second, false);

        std::env::set_var("HFUSE_SIM_NO_SKIP", "1");
        let (naive_report, wall_ms_naive) = run_search(first, second, scale_second, false);
        std::env::remove_var("HFUSE_SIM_NO_SKIP");

        // No arm may change the winner: not the model filter, not the
        // budget aborts, not vectorization, not the event-driven loop.
        for (arm, r) in [
            ("no-model", &no_model),
            ("scalar", &scalar),
            ("exhaustive", &exhaustive),
            ("naive", &naive_report),
        ] {
            assert_eq!(
                winner_key(&report),
                winner_key(r),
                "{arm} arm changed the search result for {name}"
            );
        }

        let r = PairResult {
            pair: name,
            wall_ms,
            wall_ms_no_model,
            wall_ms_scalar,
            wall_ms_exhaustive,
            wall_ms_naive,
            speedup: wall_ms_naive / wall_ms,
            sim_cycles: report.best().cycles,
            candidates: report.candidates.len(),
            candidates_pruned: report.pruned_count(),
            model_rank: report.best_model_rank(),
            compile_ms: report.compile_ms,
            profile_ms: report.profile_ms,
        };
        println!(
            "{:<22} {:>8.1} ms default | {:>8.1} ms no-model | {:>8.1} ms scalar | \
             {:>8.1} ms exhaustive | {:>8.1} ms naive | {:>5.2}x | best {} cycles \
             ({} candidates, {} pruned, model rank {})",
            r.pair,
            r.wall_ms,
            r.wall_ms_no_model,
            r.wall_ms_scalar,
            r.wall_ms_exhaustive,
            r.wall_ms_naive,
            r.speedup,
            r.sim_cycles,
            r.candidates,
            r.candidates_pruned,
            r.model_rank
        );
        results.push(r);
    }

    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"pair\": \"{}\", \"wall_ms\": {:.2}, \"wall_ms_no_model\": {:.2}, \
                 \"wall_ms_scalar\": {:.2}, \"wall_ms_exhaustive\": {:.2}, \
                 \"wall_ms_naive\": {:.2}, \"speedup\": {:.2}, \"sim_cycles\": {}, \
                 \"candidates\": {}, \"candidates_pruned\": {}, \"model_rank\": {}, \
                 \"compile_ms\": {:.2}, \"profile_ms\": {:.2}}}",
                r.pair,
                r.wall_ms,
                r.wall_ms_no_model,
                r.wall_ms_scalar,
                r.wall_ms_exhaustive,
                r.wall_ms_naive,
                r.speedup,
                r.sim_cycles,
                r.candidates,
                r.candidates_pruned,
                r.model_rank,
                r.compile_ms,
                r.profile_ms
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    println!("\nwrote BENCH_search.json");

    let best = results.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    println!("best wall-clock speedup over naive exhaustive: {best:.2}x");

    if enforce {
        let mut failed = false;
        for r in &results {
            match baseline.iter().find(|(p, _)| *p == r.pair) {
                Some((_, base_ms)) => {
                    let limit = base_ms * 1.2;
                    if r.wall_ms > limit {
                        eprintln!(
                            "REGRESSION: {} took {:.1} ms (baseline {:.1} ms, limit {:.1} ms)",
                            r.pair, r.wall_ms, base_ms, limit
                        );
                        failed = true;
                    } else {
                        println!(
                            "baseline ok: {} {:.1} ms vs {:.1} ms (+20% limit {:.1} ms)",
                            r.pair, r.wall_ms, base_ms, limit
                        );
                    }
                }
                None => println!("baseline missing for {}; skipping gate", r.pair),
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
