//! The paper's motivating example (Section II-C): fuse PyTorch's
//! `batch_norm_collect_statistics` with `kernelHistogram1D`, searching the
//! thread-space partition and register bound automatically, exactly like
//! `HFuse` does in Fig. 6.
//!
//! Run with: `cargo run --release --example batchnorm_hist`

use hfuse::fusion::{measure_native, search_fusion_config, SearchOptions};
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for cfg in [GpuConfig::pascal_like(), GpuConfig::volta_like()] {
        println!("=== GPU: {} ===", cfg.name);
        let batchnorm = AnyBenchmark::by_name("Batchnorm").expect("benchmark exists");
        let hist = AnyBenchmark::by_name("Hist").expect("benchmark exists");

        let mut gpu = Gpu::new(cfg.clone());
        let in1 = batchnorm.benchmark().fusion_input(gpu.memory_mut());
        let in2 = hist.benchmark().fusion_input(gpu.memory_mut());

        let native = measure_native(&gpu, &in1, &in2)?;
        println!("native co-execution: {} cycles", native.total_cycles);

        // The Fig. 6 search: partitions at a granularity of 128, each
        // profiled with and without the computed register bound.
        let report = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default())?;
        println!(
            "{:>6} {:>6} {:>7} {:>9} {:>7} {:>9} {:>7}",
            "d1", "d2", "bound", "cycles", "util%", "memstall%", "occ%"
        );
        for c in &report.candidates {
            println!(
                "{:>6} {:>6} {:>7} {:>9} {:>7.1} {:>9.1} {:>7.1}",
                c.d1,
                c.d2,
                c.reg_bound
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".into()),
                c.cycles,
                c.issue_util,
                c.mem_stall,
                c.occupancy
            );
        }
        let best = report.best();
        println!(
            "best: d1 = {} (batchnorm), d2 = {} (hist), bound = {:?} → {} cycles \
             ({:+.1}% vs native)\n",
            best.d1,
            best.d2,
            best.reg_bound,
            best.cycles,
            100.0 * (native.total_cycles as f64 / best.cycles as f64 - 1.0),
        );
    }

    // Show the head of the fused source the search settled on (Pascal).
    let batchnorm = AnyBenchmark::by_name("Batchnorm").expect("benchmark exists");
    let hist = AnyBenchmark::by_name("Hist").expect("benchmark exists");
    let mut gpu = Gpu::new(GpuConfig::pascal_like());
    let in1 = batchnorm.benchmark().fusion_input(gpu.memory_mut());
    let in2 = hist.benchmark().fusion_input(gpu.memory_mut());
    let report = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default())?;
    let src = hfuse::frontend::printer::print_function(&report.best_function);
    let head: String = src.lines().take(30).collect::<Vec<_>>().join("\n");
    println!("=== fused kernel (first 30 lines) ===\n{head}\n...");
    Ok(())
}
