//! Using the fusion toolchain on kernels *outside* the paper's benchmark
//! set: the library's extension kernels (row-wise Softmax — special-
//! function-unit bound — and a tiled Transpose — pure data movement), first
//! as a pair through the full Fig. 6 search, then fused three-way with the
//! histogram kernel.
//!
//! Run with: `cargo run --release --example extension_kernels`

use hfuse::fusion::{
    horizontal_fuse_many, measure_native, search_fusion_config, FusionPart, SearchOptions,
};
use hfuse::ir::lower_kernel;
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig, Launch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::pascal_like();
    let softmax = AnyBenchmark::by_name("Softmax").expect("extension exists");
    let transpose = AnyBenchmark::by_name("Transpose").expect("extension exists");

    // ---- pair: Softmax + Transpose through the profiling search ----
    let mut gpu = Gpu::new(cfg.clone());
    let in1 = softmax.benchmark().fusion_input(gpu.memory_mut());
    let in2 = transpose.benchmark().fusion_input(gpu.memory_mut());
    let native = measure_native(&gpu, &in1, &in2)?;
    let report = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default())?;
    let best = report.best();
    println!(
        "Softmax+Transpose on {}: native {} cycles, best fused (d1 = {}, bound = {:?}) \
         {} cycles ({:+.1}%)",
        cfg.name,
        native.total_cycles,
        best.d1,
        best.reg_bound,
        best.cycles,
        100.0 * (native.total_cycles as f64 / best.cycles as f64 - 1.0),
    );

    // ---- three-way: Softmax + Transpose + Hist in one block ----
    let hist = AnyBenchmark::by_name("Hist").expect("benchmark exists");
    let mut gpu = Gpu::new(cfg);
    let mut fused_args = Vec::new();
    let mut check_args = Vec::new();
    let mut parts = Vec::new();
    for (b, dims) in [
        (&softmax, (256, 1, 1)),
        (&transpose, (32, 8, 1)),
        (&hist, (512, 1, 1)),
    ] {
        let bench = b.benchmark();
        let args = bench.setup(gpu.memory_mut());
        parts.push(FusionPart::new(bench.kernel(), dims));
        fused_args.extend(args.iter().copied());
        check_args.push((b, args));
    }
    let fused = horizontal_fuse_many(&parts)?;
    println!(
        "\nthree-way fused `{}`: partitions {:?} → {} threads/block",
        fused.function.name,
        fused.partitions,
        fused.block_threads()
    );
    let result = gpu.run(&[Launch {
        kernel: lower_kernel(&fused.function)?.into(),
        grid_dim: softmax.benchmark().grid_dim(),
        block_dim: (fused.block_threads(), 1, 1),
        dynamic_shared_bytes: hist.benchmark().dynamic_shared(),
        args: fused_args,
    }])?;
    for (b, args) in &check_args {
        b.benchmark()
            .check(gpu.memory(), args)
            .map_err(std::io::Error::other)?;
    }
    println!(
        "all three kernels' outputs verified ✔  ({} cycles, {:.1}% issue utilization)",
        result.total_cycles,
        result.metrics.issue_slot_utilization()
    );
    Ok(())
}
