//! A tour of the compiler pipeline under HFuse: parse CUDA source, run the
//! preprocessing passes the paper describes (inline, rename, lift), lower to
//! the SIMT IR, and watch the optimizer shrink it.
//!
//! Run with: `cargo run --release --example inspect_compiler`

use hfuse::frontend::printer::print_function;
use hfuse::frontend::transform::{preprocess_kernel, NameGen};
use hfuse::frontend::{parse_kernel, parse_translation_unit};
use hfuse::ir::{lower_kernel, lower_kernel_unoptimized};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A kernel with a device-function call, shadowed names, and nested
    // declarations — everything the preprocessing pipeline normalizes.
    let tu = parse_translation_unit(
        r#"
        __device__ float sq(float x) { return x * x; }

        __global__ void rms(float* out, float* in, int n) {
            float acc = 0.0f;
            for (int i = threadIdx.x; i < n; i += blockDim.x) {
                float v = sq(in[i]);
                acc += v;
            }
            __shared__ float partial[32];
            if (threadIdx.x % 32 == 0) { partial[threadIdx.x / 32] = acc; }
            __syncthreads();
            if (threadIdx.x == 0) {
                float total = 0.0f;
                for (int i = 0; i < blockDim.x / 32; i++) { total += partial[i]; }
                out[blockIdx.x] = sqrtf(total / n);
            }
        }
        "#,
    )?;
    let helpers: Vec<_> = tu
        .functions
        .iter()
        .filter(|f| !f.is_kernel)
        .cloned()
        .collect();
    let mut kernel = tu.function("rms").expect("kernel present").clone();

    println!("=== original ===\n{}", print_function(&kernel));

    // Section III-C preprocessing: inline calls, make names unique, lift
    // declarations to the top (so HFuse's goto guards are legal CUDA).
    preprocess_kernel(&mut kernel, &helpers, &mut NameGen::new())?;
    println!(
        "=== preprocessed (inlined + renamed + lifted) ===\n{}",
        print_function(&kernel)
    );

    // Lowering and optimization.
    let raw = lower_kernel_unoptimized(&kernel)?;
    let opt = lower_kernel(&kernel)?;
    println!(
        "lowered: {} instructions, register pressure {}",
        raw.insts.len(),
        raw.reg_pressure()
    );
    println!(
        "optimized (const-fold + CSE + LICM + DCE): {} instructions, register pressure {}",
        opt.insts.len(),
        opt.reg_pressure()
    );
    println!("\nfirst 25 optimized instructions:");
    for (pc, inst) in opt.insts.iter().take(25).enumerate() {
        println!("{pc:4}  {inst:?}");
    }

    // Round-trip guarantee: the printed form reparses to the same AST.
    let reparsed = parse_kernel(&print_function(&kernel))?;
    assert_eq!(reparsed, kernel);
    println!("\nprinted source reparses identically ✔");
    Ok(())
}
