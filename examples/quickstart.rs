//! Quickstart: horizontally fuse two small CUDA kernels, inspect the fused
//! source, and verify on the simulator that the fused kernel computes
//! exactly what the two originals compute.
//!
//! Run with: `cargo run --release --example quickstart`

use hfuse::frontend::parse_kernel;
use hfuse::fusion::horizontal_fuse;
use hfuse::ir::lower_kernel;
use hfuse::sim::{Gpu, GpuConfig, Launch, ParamValue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two independent kernels with opposite characters: a random-gather
    // (memory-latency-bound) and a polynomial evaluator (ALU-bound) — the
    // combination the paper finds most profitable to fuse.
    let scale = parse_kernel(
        r#"
        __global__ void gather_scale(float* dst, float* src, int n, float k) {
            for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;
                 i += gridDim.x * blockDim.x) {
                unsigned int j = (unsigned int)i * 2654435761u % (unsigned int)n;
                dst[i] = src[j] * k;
            }
        }
        "#,
    )?;
    let horner = parse_kernel(
        r#"
        __global__ void horner(float* out, int n) {
            for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;
                 i += gridDim.x * blockDim.x) {
                float x = i * 0.001f;
                float acc = 1.0f;
                for (int j = 0; j < 64; j++) { acc = acc * x + 0.5f; }
                out[i] = acc;
            }
        }
        "#,
    )?;

    // Fuse: 128 threads for the gather, 128 for `horner` (256-thread blocks).
    let fused = horizontal_fuse(&scale, (128, 1, 1), &horner, (128, 1, 1))?;
    println!(
        "=== fused kernel (as HFuse emits it) ===\n{}",
        fused.to_source()
    );

    // Run natively (two launches) and fused (one launch); compare memory.
    let n = 262144usize;
    let input: Vec<f32> = (0..n).map(|i| i as f32 / 100.0).collect();

    let mut native = Gpu::new(GpuConfig::pascal_like());
    let src_n = native.memory_mut().alloc_from_f32(&input);
    let data_n = native.memory_mut().alloc_f32(n);
    let out_n = native.memory_mut().alloc_f32(n);
    let scale_args = vec![
        ParamValue::Ptr(data_n),
        ParamValue::Ptr(src_n),
        ParamValue::I32(n as i32),
        ParamValue::F32(3.0),
    ];
    let horner_args = vec![ParamValue::Ptr(out_n), ParamValue::I32(n as i32)];
    let native_result = native.run(&[
        Launch {
            kernel: lower_kernel(&scale)?.into(),
            grid_dim: 128,
            block_dim: (128, 1, 1),
            dynamic_shared_bytes: 0,
            args: scale_args.clone(),
        },
        Launch {
            kernel: lower_kernel(&horner)?.into(),
            grid_dim: 128,
            block_dim: (128, 1, 1),
            dynamic_shared_bytes: 0,
            args: horner_args.clone(),
        },
    ])?;

    let mut fused_gpu = Gpu::new(GpuConfig::pascal_like());
    let src_f = fused_gpu.memory_mut().alloc_from_f32(&input);
    let data_f = fused_gpu.memory_mut().alloc_f32(n);
    let out_f = fused_gpu.memory_mut().alloc_f32(n);
    let mut args = vec![
        ParamValue::Ptr(data_f),
        ParamValue::Ptr(src_f),
        ParamValue::I32(n as i32),
        ParamValue::F32(3.0),
    ];
    args.extend([ParamValue::Ptr(out_f), ParamValue::I32(n as i32)]);
    let fused_result = fused_gpu.run(&[Launch {
        kernel: lower_kernel(&fused.function)?.into(),
        grid_dim: 128,
        block_dim: (fused.block_threads(), 1, 1),
        dynamic_shared_bytes: 0,
        args,
    }])?;

    assert_eq!(
        native.memory().read_f32s(data_n),
        fused_gpu.memory().read_f32s(data_f),
        "fused kernel must produce identical scale output"
    );
    assert_eq!(
        native.memory().read_f32s(out_n),
        fused_gpu.memory().read_f32s(out_f),
        "fused kernel must produce identical horner output"
    );

    println!("results identical ✔");
    println!(
        "native co-execution: {} cycles | fused: {} cycles ({:+.1}%)",
        native_result.total_cycles,
        fused_result.total_cycles,
        100.0 * (native_result.total_cycles as f64 / fused_result.total_cycles as f64 - 1.0),
    );
    Ok(())
}
