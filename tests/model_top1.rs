//! Smoke tests of the calibrated analytic pre-filter's ranking quality.
//!
//! The search's *correctness* never depends on the model (the budget-abort
//! argument guarantees a bit-identical winner), but its *speed* does: the
//! winner must lie in the model-exempt front — the model's top-
//! [`hfuse::fusion::MODEL_TOP_K`] candidates plus near-ties within
//! [`hfuse::fusion::MODEL_MARGIN`] — so it profiles unbudgeted and
//! establishes the tightest abort budget for the rest of the sweep. These
//! tests pin that property (and the model's top-1 agreement where it is
//! exact) on every paper pair, so a calibration or feature regression
//! shows up as a test failure, not as a silent search slowdown.

use hfuse::fusion::{search_fusion_config, SearchOptions};
use hfuse::kernels::{all_pairs, PairSpec};
use hfuse::sim::{Gpu, GpuConfig};

fn run_pair(pair: &PairSpec, scale: f64, opts: SearchOptions) -> hfuse::fusion::SearchReport {
    let (a, b) = pair.at_scale(scale);
    let mut gpu = Gpu::new(GpuConfig::pascal_like());
    let in1 = a.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b.benchmark().fusion_input(gpu.memory_mut());
    search_fusion_config(&gpu, &in1, &in2, opts)
        .unwrap_or_else(|e| panic!("{}: search failed: {e}", pair.name()))
}

/// Every paper pair, at the calibration workload (full scale, default
/// search options): the simulated winner must be inside the model-exempt
/// front. Expensive in debug; the CI model-front smoke job runs it in
/// release with `--include-ignored`.
#[test]
#[ignore = "full-scale sweep of all 16 paper pairs; run in release by the CI smoke job"]
fn winner_in_model_front_on_all_paper_pairs() {
    let mut ranks = Vec::new();
    for pair in &all_pairs() {
        let report = run_pair(pair, 1.0, SearchOptions::default());
        assert!(
            report.best_in_model_front(),
            "{}: winner (model rank {}/{}) fell outside the model-exempt front",
            pair.name(),
            report.best_model_rank(),
            report.candidates.len()
        );
        ranks.push((pair.name(), report.best_model_rank()));
    }
    // The model must rank the true winner first on a solid majority of the
    // pairs — the level the checked-in constants achieved at calibration
    // time (11/16); a drop below 10 means the constants are stale.
    let top1 = ranks.iter().filter(|&&(_, r)| r == 1).count();
    assert!(top1 >= 10, "model top-1 agreement collapsed: {ranks:?}");
}

/// Fast canary run in the default (debug) suite: on the cheap Blake/SHA
/// crypto pairs at the calibration workload the model's top-1 choice must
/// *be* the simulated winner — these are the pairs where the calibrated
/// constants get the ordering exactly right, so a sign-level regression in
/// the constants or the feature extraction trips this before the full CI
/// sweep does. (The model-exempt front is only pinned at the calibration
/// workload: at other scales or devices the search stays bit-identical to
/// exhaustive regardless, it just prunes less effectively.)
#[test]
fn model_top1_exact_on_blake_sha_pairs() {
    let pairs = all_pairs();
    // all_pairs() = 10 DL pairs then 6 crypto pairs; the last three are
    // the Ethash-free ones (Blake256+Blake2B, Blake256+SHA256,
    // Blake2B+SHA256).
    for pair in &pairs[13..16] {
        let report = run_pair(pair, 1.0, SearchOptions::default());
        assert_eq!(
            report.best_model_rank(),
            1,
            "{}: model no longer ranks the simulated winner first",
            pair.name()
        );
    }
}
