//! Property-based tests of the frontend: for arbitrary generated ASTs, the
//! pretty-printer's output must re-parse to the identical AST (so HFuse's
//! emitted CUDA is always valid input for the next tool).

use cuda_frontend::ast::{Axis, BinOp, Block, BuiltinVar, Expr, Stmt, Ty, UnOp, VarDecl};
use cuda_frontend::parser::{parse_block, parse_expr};
use cuda_frontend::printer::{print_expr, print_stmt};
use proptest::prelude::*;

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::BitAnd),
        Just(BinOp::BitOr),
        Just(BinOp::BitXor),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::LogAnd),
        Just(BinOp::LogOr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)]
}

fn arb_builtin() -> impl Strategy<Value = BuiltinVar> {
    let axis = prop_oneof![Just(Axis::X), Just(Axis::Y), Just(Axis::Z)];
    prop_oneof![
        axis.clone().prop_map(BuiltinVar::ThreadIdx),
        axis.clone().prop_map(BuiltinVar::BlockIdx),
        axis.clone().prop_map(BuiltinVar::BlockDim),
        axis.prop_map(BuiltinVar::GridDim),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Non-negative literals only: `-5` re-parses as Neg(5).
        (0i64..1000).prop_map(Expr::int),
        (0u32..4096).prop_map(|v| Expr::FloatLit(f64::from(v) / 8.0, Ty::F32)),
        prop_oneof![Just("x"), Just("y"), Just("z"), Just("buf")]
            .prop_map(Expr::ident),
        arb_builtin().prop_map(Expr::Builtin),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (arb_unop(), inner.clone())
                .prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| {
                Expr::Ternary(Box::new(c), Box::new(t), Box::new(f))
            }),
            inner
                .clone()
                .prop_map(|i| Expr::Index(Box::new(Expr::ident("buf")), Box::new(i))),
            (prop_oneof![Just(Ty::I32), Just(Ty::U32), Just(Ty::F32)], inner.clone())
                .prop_map(|(ty, e)| Expr::Cast(ty, Box::new(e))),
            proptest::collection::vec(inner, 1..3)
                .prop_map(|args| Expr::Call("fmaxf".to_owned(), args)),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let assign = (arb_expr(), prop_oneof![Just("x"), Just("y")]).prop_map(|(e, v)| {
        Stmt::Expr(Expr::Assign(
            cuda_frontend::ast::AssignOp::Assign,
            Box::new(Expr::ident(v)),
            Box::new(e),
        ))
    });
    let decl = (arb_expr(), prop_oneof![Just(Ty::I32), Just(Ty::F32)]).prop_map(|(e, ty)| {
        Stmt::Decl(VarDecl {
            name: "v".to_owned(),
            ty,
            quals: Default::default(),
            array_len: None,
            init: Some(e),
        })
    });
    let leaf = prop_oneof![assign, decl, Just(Stmt::SyncThreads), Just(Stmt::Break)];
    leaf.prop_recursive(3, 16, 4, |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..4).prop_map(Block::new);
        prop_oneof![
            (arb_expr(), block.clone(), proptest::option::of(block.clone()))
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            (arb_expr(), block.clone()).prop_map(|(c, b)| Stmt::While(c, b)),
            (block.clone(), arb_expr()).prop_map(|(b, c)| Stmt::DoWhile(b, c)),
            block.prop_map(Stmt::Block),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn expr_print_parse_round_trip(e in arb_expr()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printed `{printed}` failed to parse: {err}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
    }

    #[test]
    fn stmt_print_parse_round_trip(s in arb_stmt()) {
        let printed = format!("{{\n{}}}", print_stmt(&s));
        let reparsed = parse_block(&printed)
            .unwrap_or_else(|err| panic!("printed `{printed}` failed to parse: {err}"));
        prop_assert_eq!(reparsed.stmts.len(), 1, "printed: {}", printed);
        prop_assert_eq!(&reparsed.stmts[0], &s, "printed: {}", printed);
    }

    #[test]
    fn printed_expressions_are_stable(e in arb_expr()) {
        // print(parse(print(e))) == print(e): printing is idempotent.
        let p1 = print_expr(&e);
        let reparsed = parse_expr(&p1).expect("reparse");
        let p2 = print_expr(&reparsed);
        prop_assert_eq!(p1, p2);
    }
}
