//! Differential tests of the lane-vectorized warp interpreter on the paper
//! benchmark pairs: with and without vectorization ([`Gpu::set_vector_exec`],
//! the programmatic twin of `HFUSE_SIM_NO_VECTOR`), every timed number and
//! every output byte must be bit-identical — both for a single fused launch
//! and end to end through the fusion search.

use hfuse::fusion::{horizontal_fuse, search_fusion_config, BlockShape, SearchOptions};
use hfuse::ir::lower_kernel;
use hfuse::kernels::{crypto_pairs, dl_pairs, AnyBenchmark, Benchmark};
use hfuse::sim::{Gpu, GpuConfig, Launch, ParamValue};

fn dims_for(b: &dyn Benchmark, threads: u32) -> Option<(u32, u32, u32)> {
    match b.shape() {
        BlockShape::Linear => Some((threads, 1, 1)),
        BlockShape::Rows { y } => {
            if threads.is_multiple_of(y) {
                Some((threads / y, y, 1))
            } else {
                None
            }
        }
    }
}

/// Fuses the pair at its default partition and runs the timed simulator
/// twice — vectorized and scalar — on identical fresh devices, asserting
/// cycles, the full metrics struct, and every argument buffer match bit
/// for bit.
fn assert_fused_run_identical(a: &AnyBenchmark, b: &AnyBenchmark) {
    let (ba, bb) = (a.benchmark(), b.benchmark());
    let (d1, d2) = (ba.default_threads(), bb.default_threads());
    let (Some(dims1), Some(dims2)) = (dims_for(ba, d1), dims_for(bb, d2)) else {
        panic!("{}+{}: default dims incompatible", ba.name(), bb.name());
    };
    let fused = horizontal_fuse(&ba.kernel(), dims1, &bb.kernel(), dims2)
        .unwrap_or_else(|e| panic!("fuse {}+{}: {e}", ba.name(), bb.name()));
    let ir: std::sync::Arc<_> = lower_kernel(&fused.function).expect("lower fused").into();

    let run_arm = |vector: bool| {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.set_vector_exec(vector);
        let args_a = ba.setup(gpu.memory_mut());
        let args_b = bb.setup(gpu.memory_mut());
        let mut args = args_a.clone();
        args.extend(args_b.iter().copied());
        let res = gpu
            .run(&[Launch {
                kernel: ir.clone(),
                grid_dim: ba.grid_dim().max(bb.grid_dim()),
                block_dim: (d1 + d2, 1, 1),
                dynamic_shared_bytes: ba.dynamic_shared() + bb.dynamic_shared(),
                args: args.clone(),
            }])
            .unwrap_or_else(|e| panic!("run fused {}+{}: {e}", ba.name(), bb.name()));
        let buffers: Vec<Vec<u32>> = args
            .iter()
            .filter_map(|p| match p {
                ParamValue::Ptr(buf) => Some(gpu.memory().read_u32s(*buf)),
                _ => None,
            })
            .collect();
        (res, buffers)
    };

    let label = format!("{}+{}", ba.name(), bb.name());
    let (vec_res, vec_bufs) = run_arm(true);
    let (sca_res, sca_bufs) = run_arm(false);
    assert_eq!(
        vec_res.total_cycles, sca_res.total_cycles,
        "{label}: cycles diverge"
    );
    assert_eq!(vec_res.metrics, sca_res.metrics, "{label}: metrics diverge");
    assert_eq!(vec_bufs, sca_bufs, "{label}: buffer contents diverge");
}

#[test]
fn fused_dl_pairs_identical_under_vectorization() {
    for pair in &dl_pairs() {
        let (a, b) = pair.at_scale(0.125);
        assert_fused_run_identical(&a, &b);
    }
}

#[test]
fn fused_crypto_pairs_identical_under_vectorization() {
    // The Ethash pairs dominate the wall clock; scale them down harder.
    for (i, pair) in crypto_pairs().iter().enumerate() {
        let scale = if i < 3 { 0.0625 } else { 0.25 };
        let (a, b) = pair.at_scale(scale);
        assert_fused_run_identical(&a, &b);
    }
}

/// Runs the full fusion search (pruning and model filtering on, as
/// shipped) on a vectorized and a scalar base device: every candidate —
/// cycles, abort clocks, model scores, histograms — and the winner must be
/// identical, so vectorization can never change a search outcome.
fn assert_search_identical(
    gpu_of: impl Fn(bool) -> (Gpu, hfuse::fusion::FusionInput, hfuse::fusion::FusionInput),
    label: &str,
) {
    let opts = SearchOptions {
        d0: 512,
        granularity: 128,
        ..SearchOptions::default()
    };
    let (vgpu, vin1, vin2) = gpu_of(true);
    let vec_report = search_fusion_config(&vgpu, &vin1, &vin2, opts)
        .unwrap_or_else(|e| panic!("{label}: vector search failed: {e}"));
    let (sgpu, sin1, sin2) = gpu_of(false);
    let sca_report = search_fusion_config(&sgpu, &sin1, &sin2, opts)
        .unwrap_or_else(|e| panic!("{label}: scalar search failed: {e}"));

    assert_eq!(
        vec_report.best_idx, sca_report.best_idx,
        "{label}: winner diverges"
    );
    assert_eq!(
        vec_report.candidates, sca_report.candidates,
        "{label}: candidates diverge"
    );
    assert_eq!(
        vec_report.best_kernel, sca_report.best_kernel,
        "{label}: fused winner source diverges"
    );
}

#[test]
fn search_identical_under_vectorization_on_dl_pairs() {
    // Three representative DL pairs: tunable reduction + histogram +
    // 2D-shaped batchnorm member kernels.
    for idx in [0usize, 5, 9] {
        let pair = &dl_pairs()[idx];
        let (a, b) = pair.at_scale(0.25);
        assert_search_identical(
            |vector| {
                let mut gpu = Gpu::new(GpuConfig::test_tiny());
                gpu.set_vector_exec(vector);
                let in1 = a.benchmark().fusion_input(gpu.memory_mut());
                let in2 = b.benchmark().fusion_input(gpu.memory_mut());
                (gpu, in1, in2)
            },
            &pair.name(),
        );
    }
}

#[test]
fn search_identical_under_vectorization_on_crypto_pair() {
    let pair = &crypto_pairs()[3]; // Blake256+Blake2B, the fast pair
    assert_search_identical(
        |vector| {
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            gpu.set_vector_exec(vector);
            let in1 = pair.first.benchmark().fusion_input(gpu.memory_mut());
            let in2 = pair.second.benchmark().fusion_input(gpu.memory_mut());
            (gpu, in1, in2)
        },
        &pair.name(),
    );
}
