//! Property-based semantics tests across the whole pipeline: for randomly
//! generated kernels,
//!
//! * the optimizer (const-fold + CSE + LICM + DCE) must not change results,
//! * horizontal fusion must produce exactly the memory state of running the
//!   two kernels natively,
//! * the register-bound spill pass must not change results.

use hfuse::fusion::{horizontal_fuse, horizontal_fuse_many, FusionPart};
use hfuse::frontend::parse_kernel;
use hfuse::ir::{lower_kernel, lower_kernel_unoptimized};
use hfuse::sim::{Gpu, GpuConfig, Launch, ParamValue};
use proptest::prelude::*;

/// Generates a random arithmetic statement over `a`, `b`, `c` (unsigned) —
/// rich enough to exercise CSE/LICM/folding, always well-defined.
fn arb_calc_stmt() -> impl Strategy<Value = String> {
    let var = prop_oneof![Just("a"), Just("b"), Just("c")];
    let term = prop_oneof![
        var.clone().prop_map(str::to_owned),
        (1u32..97).prop_map(|k| format!("{k}u")),
        Just("(unsigned int)threadIdx.x".to_owned()),
        Just("(unsigned int)blockIdx.x".to_owned()),
    ];
    let op = prop_oneof![Just("+"), Just("*"), Just("^"), Just("|"), Just("&")];
    prop_oneof![
        // v = t op t op t;
        (var.clone(), term.clone(), op.clone(), term.clone(), op.clone(), term.clone())
            .prop_map(|(v, t1, o1, t2, o2, t3)| format!("{v} = {t1} {o1} {t2} {o2} {t3};")),
        // v = (t op t) >> k;
        (var.clone(), term.clone(), op.clone(), term.clone(), 0u32..31).prop_map(
            |(v, t1, o, t2, k)| format!("{v} = ({t1} {o} {t2}) >> {k}u;")
        ),
        // if (v % k == 0) { v2 = expr; }
        (var.clone(), 2u32..7, var.clone(), term.clone(), op, term.clone()).prop_map(
            |(v, k, v2, t1, o, t2)| format!("if ({v} % {k}u == 0u) {{ {v2} = {t1} {o} {t2}; }}")
        ),
        // plain constant assignment: after const-folding this becomes an
        // `imm` that CSE may alias to the constant pool — the pattern that
        // once orphaned aliases when the register was later redefined.
        (var.clone(), 0u32..5).prop_map(|(v, k)| format!("{v} = {k}u;")),
        // bounded loop with an accumulator
        (var, 1u32..6, term).prop_map(|(v, n, t)| {
            format!("for (int i = 0; i < {n}; i++) {{ {v} = {v} * 3u + {t} + (unsigned int)i; }}")
        }),
    ]
}

/// Builds a complete kernel from generated statements. Each thread mixes
/// its state into a distinct output slot, so any semantic change is visible.
fn kernel_source(name: &str, stmts: &[String]) -> String {
    format!(
        "__global__ void {name}(unsigned int* out, unsigned int* in, int n) {{\n\
           unsigned int gid = blockIdx.x * blockDim.x + threadIdx.x;\n\
           unsigned int a = in[gid % (unsigned int)n] + 1u;\n\
           unsigned int b = gid * 2654435761u;\n\
           unsigned int c = 0x9e3779b9u;\n\
           {body}\n\
           out[gid] = a ^ b ^ c;\n\
         }}",
        body = stmts.join("\n           ")
    )
}

const GRID: u32 = 2;
const BLOCK: u32 = 64;
const N: usize = 256;

fn run_kernel(ir: thread_ir::KernelIr, extra: Option<thread_ir::KernelIr>) -> (Vec<u32>, Vec<u32>) {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let input: Vec<u32> = (0..N as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
    let in_buf = gpu.memory_mut().alloc_from_u32(&input);
    let out1 = gpu.memory_mut().alloc_u32((GRID * BLOCK) as usize);
    let out2 = gpu.memory_mut().alloc_u32((GRID * BLOCK) as usize);
    let mut launches = vec![];
    match extra {
        None => {
            launches.push(Launch {
                kernel: ir,
                grid_dim: GRID,
                block_dim: (BLOCK, 1, 1),
                dynamic_shared_bytes: 0,
                args: vec![
                    ParamValue::Ptr(out1),
                    ParamValue::Ptr(in_buf),
                    ParamValue::I32(N as i32),
                ],
            });
        }
        Some(second) => {
            for (k, out) in [(ir, out1), (second, out2)] {
                launches.push(Launch {
                    kernel: k,
                    grid_dim: GRID,
                    block_dim: (BLOCK, 1, 1),
                    dynamic_shared_bytes: 0,
                    args: vec![
                        ParamValue::Ptr(out),
                        ParamValue::Ptr(in_buf),
                        ParamValue::I32(N as i32),
                    ],
                });
            }
        }
    }
    gpu.run_functional(&launches).expect("functional run");
    (gpu.memory().read_u32s(out1), gpu.memory().read_u32s(out2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn optimizer_preserves_semantics(stmts in proptest::collection::vec(arb_calc_stmt(), 1..8)) {
        let src = kernel_source("k", &stmts);
        let ast = parse_kernel(&src).expect("generated kernel parses");
        let raw = lower_kernel_unoptimized(&ast).expect("lower raw");
        let opt = lower_kernel(&ast).expect("lower optimized");
        prop_assert!(
            opt.insts.len() <= raw.insts.len() + 8,
            "optimizer should not bloat code: {} -> {}",
            raw.insts.len(),
            opt.insts.len()
        );
        let (raw_out, _) = run_kernel(raw, None);
        let (opt_out, _) = run_kernel(opt, None);
        prop_assert_eq!(raw_out, opt_out, "source:\n{}", src);
    }

    #[test]
    fn fusion_preserves_semantics(
        s1 in proptest::collection::vec(arb_calc_stmt(), 1..6),
        s2 in proptest::collection::vec(arb_calc_stmt(), 1..6),
    ) {
        let k1 = parse_kernel(&kernel_source("k1", &s1)).expect("k1 parses");
        let k2 = parse_kernel(&kernel_source("k2", &s2)).expect("k2 parses");

        // Native: two separate launches.
        let (native1, native2) = run_kernel(
            lower_kernel(&k1).expect("lower k1"),
            Some(lower_kernel(&k2).expect("lower k2")),
        );

        // Fused: one launch with the concatenated argument list.
        let fused = horizontal_fuse(&k1, (BLOCK, 1, 1), &k2, (BLOCK, 1, 1)).expect("fuse");
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let input: Vec<u32> = (0..N as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
        let in_buf = gpu.memory_mut().alloc_from_u32(&input);
        let out1 = gpu.memory_mut().alloc_u32((GRID * BLOCK) as usize);
        let out2 = gpu.memory_mut().alloc_u32((GRID * BLOCK) as usize);
        gpu.run_functional(&[Launch {
            kernel: lower_kernel(&fused.function).expect("lower fused"),
            grid_dim: GRID,
            block_dim: (2 * BLOCK, 1, 1),
            dynamic_shared_bytes: 0,
            args: vec![
                ParamValue::Ptr(out1),
                ParamValue::Ptr(in_buf),
                ParamValue::I32(N as i32),
                ParamValue::Ptr(out2),
                ParamValue::Ptr(in_buf),
                ParamValue::I32(N as i32),
            ],
        }])
        .expect("fused run");
        prop_assert_eq!(gpu.memory().read_u32s(out1), native1);
        prop_assert_eq!(gpu.memory().read_u32s(out2), native2);
    }

    #[test]
    fn three_way_fusion_preserves_semantics(
        s1 in proptest::collection::vec(arb_calc_stmt(), 1..4),
        s2 in proptest::collection::vec(arb_calc_stmt(), 1..4),
        s3 in proptest::collection::vec(arb_calc_stmt(), 1..4),
    ) {
        let kernels: Vec<_> = [("k1", &s1), ("k2", &s2), ("k3", &s3)]
            .iter()
            .map(|(n, s)| parse_kernel(&kernel_source(n, s)).expect("parses"))
            .collect();

        // Native: three separate functional launches on one GPU.
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let input: Vec<u32> = (0..N as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
        let in_buf = gpu.memory_mut().alloc_from_u32(&input);
        let outs: Vec<_> =
            (0..3).map(|_| gpu.memory_mut().alloc_u32((GRID * BLOCK) as usize)).collect();
        let launches: Vec<Launch> = kernels
            .iter()
            .zip(&outs)
            .map(|(k, &out)| Launch {
                kernel: lower_kernel(k).expect("lower"),
                grid_dim: GRID,
                block_dim: (BLOCK, 1, 1),
                dynamic_shared_bytes: 0,
                args: vec![
                    ParamValue::Ptr(out),
                    ParamValue::Ptr(in_buf),
                    ParamValue::I32(N as i32),
                ],
            })
            .collect();
        gpu.run_functional(&launches).expect("native runs");
        let native: Vec<Vec<u32>> = outs.iter().map(|&o| gpu.memory().read_u32s(o)).collect();

        // Fused: one launch over three intervals.
        let parts: Vec<FusionPart> = kernels
            .iter()
            .map(|k| FusionPart::new(k.clone(), (BLOCK, 1, 1)))
            .collect();
        let fused = horizontal_fuse_many(&parts).expect("3-way fuse");
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let in_buf = gpu.memory_mut().alloc_from_u32(&input);
        let outs: Vec<_> =
            (0..3).map(|_| gpu.memory_mut().alloc_u32((GRID * BLOCK) as usize)).collect();
        let mut args = Vec::new();
        for &out in &outs {
            args.extend([
                ParamValue::Ptr(out),
                ParamValue::Ptr(in_buf),
                ParamValue::I32(N as i32),
            ]);
        }
        gpu.run_functional(&[Launch {
            kernel: lower_kernel(&fused.function).expect("lower fused"),
            grid_dim: GRID,
            block_dim: (3 * BLOCK, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        }])
        .expect("fused run");
        for (i, &out) in outs.iter().enumerate() {
            prop_assert_eq!(gpu.memory().read_u32s(out), native[i].clone(), "kernel {}", i);
        }
    }

    #[test]
    fn register_bound_preserves_semantics(stmts in proptest::collection::vec(arb_calc_stmt(), 2..8)) {
        let ast = parse_kernel(&kernel_source("k", &stmts)).expect("parses");
        let mut ir = lower_kernel(&ast).expect("lower");
        let (plain_out, _) = run_kernel(ir.clone(), None);
        let bound = thread_ir::liveness::MIN_REGS.max(ir.reg_pressure().saturating_sub(6));
        thread_ir::spill::apply_register_bound(&mut ir, bound);
        let (spilled_out, _) = run_kernel(ir, None);
        prop_assert_eq!(plain_out, spilled_out);
    }
}
