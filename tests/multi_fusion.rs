//! End-to-end tests of N-way horizontal fusion (the generalization of the
//! paper's algorithm): fusing three benchmark kernels into one block must
//! preserve all three results, and the timing engine must accept it.

use hfuse::fusion::{horizontal_fuse_many, FusionPart};
use hfuse::ir::lower_kernel;
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig, Launch};

#[test]
fn three_dl_kernels_fuse_and_match_references() {
    let names = ["Hist", "Maxpool", "Upsample"];
    let benches: Vec<AnyBenchmark> = names
        .iter()
        .map(|n| {
            AnyBenchmark::by_name(n)
                .expect("benchmark exists")
                .scaled(0.25)
        })
        .collect();

    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let mut all_args = Vec::new();
    let mut parts = Vec::new();
    let mut fused_args = Vec::new();
    for b in &benches {
        let bench = b.benchmark();
        let args = bench.setup(gpu.memory_mut());
        parts.push(FusionPart::new(bench.kernel(), (256, 1, 1)));
        fused_args.extend(args.iter().copied());
        all_args.push(args);
    }
    let fused = horizontal_fuse_many(&parts).expect("3-way fuse");
    assert_eq!(fused.block_threads(), 768);

    let dyn_shared: u32 = benches.iter().map(|b| b.benchmark().dynamic_shared()).sum();
    gpu.run_functional(&[Launch {
        kernel: lower_kernel(&fused.function).expect("lower").into(),
        grid_dim: benches[0].benchmark().grid_dim(),
        block_dim: (768, 1, 1),
        dynamic_shared_bytes: dyn_shared,
        args: fused_args,
    }])
    .expect("fused run");

    for (b, args) in benches.iter().zip(&all_args) {
        b.benchmark()
            .check(gpu.memory(), args)
            .unwrap_or_else(|e| panic!("{} wrong after 3-way fusion: {e}", b.name()));
    }
}

#[test]
fn four_crypto_kernels_fuse_into_one_block() {
    // All four crypto kernels in one 1024-thread block, each keeping its
    // native 256 threads.
    let benches: Vec<AnyBenchmark> = ["Ethash", "SHA256", "Blake256", "Blake2B"]
        .iter()
        .map(|n| AnyBenchmark::by_name(n).expect("benchmark exists"))
        .collect();

    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let mut all_args = Vec::new();
    let mut parts = Vec::new();
    let mut fused_args = Vec::new();
    for b in &benches {
        let bench = b.benchmark();
        let args = bench.setup(gpu.memory_mut());
        parts.push(FusionPart::new(bench.kernel(), (256, 1, 1)));
        fused_args.extend(args.iter().copied());
        all_args.push(args);
    }
    let fused = horizontal_fuse_many(&parts).expect("4-way fuse");

    // Timed run (also exercises the scheduler with 4 heterogeneous intervals).
    let r = gpu
        .run(&[Launch {
            kernel: lower_kernel(&fused.function).expect("lower").into(),
            grid_dim: benches[0].benchmark().grid_dim(),
            block_dim: (1024, 1, 1),
            dynamic_shared_bytes: 0,
            args: fused_args,
        }])
        .expect("fused timed run");
    assert!(r.total_cycles > 0);

    for (b, args) in benches.iter().zip(&all_args) {
        b.benchmark()
            .check(gpu.memory(), args)
            .unwrap_or_else(|e| panic!("{} wrong after 4-way fusion: {e}", b.name()));
    }
}
