//! Integration tests of the `hfuse` command-line tool, driving the real
//! binary end-to-end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hfuse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hfuse"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_tmp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hfuse_cli_test_{name}"));
    std::fs::write(&path, content).expect("write temp file");
    path
}

const KERNEL_A: &str = r#"
__global__ void writer(float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = 2.0f * i; }
}
"#;

const KERNEL_B: &str = r#"
__global__ void adder(float* data, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { data[i] = data[i] + 1.0f; }
}
"#;

#[test]
fn help_lists_commands() {
    let out = hfuse(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["fuse", "vfuse", "compile", "run", "search", "bench", "list"] {
        assert!(text.contains(cmd), "help must mention `{cmd}`");
    }
}

#[test]
fn fuse_emits_parsable_cuda() {
    let a = write_tmp("a.cu", KERNEL_A);
    let b = write_tmp("b.cu", KERNEL_B);
    let out = hfuse(&[
        "fuse",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--threads",
        "128,128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fused = String::from_utf8_lossy(&out.stdout);
    assert!(
        fused.contains("__global__ void writer_adder_fused"),
        "{fused}"
    );
    assert!(fused.contains("goto"), "{fused}");
    // Output is valid input.
    hfuse::frontend::parse_kernel(&fused).expect("fused output parses");
}

#[test]
fn fuse_three_way_from_files() {
    let a = write_tmp("3a.cu", KERNEL_A);
    let b = write_tmp("3b.cu", KERNEL_B);
    let c = write_tmp(
        "3c.cu",
        "__global__ void third(float* q) { q[threadIdx.x] = 1.0f; }",
    );
    let out = hfuse(&[
        "fuse",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        c.to_str().unwrap(),
        "--threads",
        "128,64,32",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("partitions [128, 64, 32]"), "{err}");
}

#[test]
fn vfuse_emits_concatenated_kernel() {
    let a = write_tmp("va.cu", KERNEL_A);
    let b = write_tmp("vb.cu", KERNEL_B);
    let out = hfuse(&["vfuse", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success());
    let fused = String::from_utf8_lossy(&out.stdout);
    assert!(fused.contains("_vfused"), "{fused}");
    assert!(!fused.contains("goto"), "{fused}");
}

#[test]
fn compile_reports_stats_and_ir() {
    let a = write_tmp("c.cu", KERNEL_A);
    let out = hfuse(&["compile", a.to_str().unwrap(), "--dump-ir"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("register pressure"), "{text}");
    assert!(text.contains("ld.param"), "{text}");
    assert!(text.contains("ret"), "{text}");
}

#[test]
fn run_executes_and_prints_buffers() {
    let a = write_tmp("r.cu", KERNEL_B);
    let out = hfuse(&[
        "run",
        a.to_str().unwrap(),
        "--grid",
        "2",
        "--block",
        "64",
        "--arg",
        "buf:128:5.0",
        "--arg",
        "i32:128",
        "--show",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles"), "{text}");
    assert!(text.contains("[6.0, 6.0]"), "5.0 + 1.0 expected: {text}");
}

#[test]
fn bad_source_produces_rendered_diagnostic() {
    let bad = write_tmp("bad.cu", "__global__ void k(int n) {\n  n = ;\n}\n");
    let out = hfuse(&["compile", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--> line 2"), "{err}");
    assert!(err.contains("n = ;"), "{err}");
}

#[test]
fn list_shows_benchmarks_and_pairs() {
    let out = hfuse(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "Batchnorm",
        "Ethash",
        "Softmax",
        "Transpose",
        "*Batchnorm*+Hist",
    ] {
        assert!(text.contains(name), "list must mention {name}: {text}");
    }
}

#[test]
fn lint_all_builtins_are_clean() {
    let out = hfuse(&["lint", "--all"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no diagnostics"), "{err}");
}

#[test]
fn lint_json_reports_extent_violation() {
    let oob = write_tmp(
        "oob.cu",
        "__global__ void k(int* out, int n) {\n  int t = threadIdx.x;\n  out[t + 1] = t;\n}\n",
    );
    let out = hfuse(&[
        "lint",
        oob.to_str().unwrap(),
        "--threads",
        "64",
        "--extent",
        "out=64",
        "--json",
    ]);
    assert!(!out.status.success(), "the overrun must fail the lint");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"total\": 1"), "{text}");
    assert!(
        text.contains("\"code\": \"global-out-of-bounds\""),
        "{text}"
    );
    assert!(text.contains("\"line\": 3"), "{text}");
    // Without the extent declaration the analyzer cannot claim anything.
    let out = hfuse(&["lint", oob.to_str().unwrap(), "--threads", "64", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"total\": 0"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = hfuse(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
