//! Seeded-race regression suite for the simulator's sanitizer
//! (`HFUSE_SANITIZE=1` / [`Gpu::enable_sanitizer`]).
//!
//! Two halves: hand-written kernels with known races or malformed partial
//! barriers that the sanitizer **must** flag, and clean kernels — including
//! every paper benchmark, unfused and fused — on which it **must** stay
//! silent. Together they pin down both the detector's recall and its
//! false-positive rate.

use hfuse::frontend::parse_kernel;
use hfuse::fusion::{horizontal_fuse, BlockShape};
use hfuse::ir::lower_kernel;
use hfuse::kernels::{crypto_pairs, dl_pairs, Benchmark};
use hfuse::sim::{Gpu, GpuConfig, Launch, ParamValue, ReportKind, SanitizerReport};

/// Runs `src` as a single `(int* out, int n)` kernel launch with the
/// sanitizer on and returns the reports.
fn reports_for(src: &str, grid: u32, threads: u32) -> Vec<SanitizerReport> {
    let f = parse_kernel(src).expect("fixture parses");
    let kernel = lower_kernel(&f).expect("fixture lowers");
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.enable_sanitizer();
    let n = (grid * threads) as usize;
    let out = gpu.memory_mut().alloc_u32(n);
    gpu.run_functional(&[Launch {
        kernel: kernel.into(),
        grid_dim: grid,
        block_dim: (threads, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::I32(n as i32)],
    }])
    .expect("fixture runs");
    gpu.take_sanitizer_reports()
}

fn assert_flags(src: &str, grid: u32, threads: u32, kind: ReportKind) {
    let reports = reports_for(src, grid, threads);
    assert!(
        reports.iter().any(|r| r.kind == kind),
        "expected a {kind} report, got {reports:?}"
    );
}

fn assert_clean(src: &str, grid: u32, threads: u32) {
    let reports = reports_for(src, grid, threads);
    assert!(reports.is_empty(), "expected no reports, got {reports:?}");
}

/// Like [`reports_for`] but tolerating a faulted run — out-of-bounds
/// accesses abort the simulation after the sanitizer has recorded them.
fn reports_for_faulting(src: &str, grid: u32, threads: u32) -> Vec<SanitizerReport> {
    let f = parse_kernel(src).expect("fixture parses");
    let kernel = lower_kernel(&f).expect("fixture lowers");
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.enable_sanitizer();
    let n = (grid * threads) as usize;
    let out = gpu.memory_mut().alloc_u32(n);
    let _ = gpu.run_functional(&[Launch {
        kernel: kernel.into(),
        grid_dim: grid,
        block_dim: (threads, 1, 1),
        dynamic_shared_bytes: 0,
        args: vec![ParamValue::Ptr(out), ParamValue::I32(n as i32)],
    }]);
    gpu.take_sanitizer_reports()
}

// ---- kernels the sanitizer must flag ----------------------------------------

#[test]
fn out_of_bounds_shared_write_is_flagged() {
    // Thread 63 stores s[64] in a 64-element array: one past the end.
    let reports = reports_for_faulting(
        "__global__ void k(int* out, int n) {
            __shared__ int s[64];
            int t = threadIdx.x;
            s[t + 1] = t;
            out[t] = 0;
        }",
        1,
        64,
    );
    assert!(
        reports.iter().any(|r| r.kind == ReportKind::OutOfBounds),
        "expected an out-of-bounds report, got {reports:?}"
    );
}

#[test]
fn out_of_bounds_global_read_is_flagged() {
    // out has grid*threads elements; thread 63 reads out[64].
    let reports = reports_for_faulting(
        "__global__ void k(int* out, int n) {
            int t = threadIdx.x;
            out[t] = out[t + 1];
        }",
        1,
        64,
    );
    assert!(
        reports.iter().any(|r| r.kind == ReportKind::OutOfBounds),
        "expected an out-of-bounds report, got {reports:?}"
    );
}

#[test]
fn cross_warp_shared_write_write_race_is_flagged() {
    // Threads 0 and 32 are in different warps and both store to s[0] with no
    // barrier ordering them.
    assert_flags(
        "__global__ void k(int* out, int n) {
            __shared__ int s[64];
            int t = threadIdx.x;
            s[0] = t;
            __syncthreads();
            out[t] = s[0];
        }",
        1,
        64,
        ReportKind::SharedRace,
    );
}

#[test]
fn unsynced_shared_read_write_race_is_flagged() {
    // Each thread reads the slot the opposite warp writes, with no
    // __syncthreads() between the store and the load.
    assert_flags(
        "__global__ void k(int* out, int n) {
            __shared__ int s[64];
            int t = threadIdx.x;
            s[t] = t;
            out[t] = s[(t + 32) % 64];
        }",
        1,
        64,
        ReportKind::SharedRace,
    );
}

#[test]
fn cross_block_global_write_race_is_flagged() {
    // Blocks share no barrier: both writing out[0] is a race even though
    // each block alone would be fine.
    assert_flags(
        "__global__ void k(int* out, int n) {
            out[0] = blockIdx.x;
        }",
        2,
        32,
        ReportKind::GlobalRace,
    );
}

#[test]
fn non_warp_multiple_barrier_count_is_flagged() {
    // bar.sync counts whole warps in hardware; declaring 48 participants
    // cannot match any warp set.
    assert_flags(
        "__global__ void k(int* out, int n) {
            int t = threadIdx.x;
            out[t] = 0;
            if (t < 48) { asm(\"bar.sync 1, 48;\"); }
            out[t] = t;
        }",
        1,
        64,
        ReportKind::BarrierDivergence,
    );
}

#[test]
fn split_warp_barrier_arrival_is_flagged() {
    // 32 threads arrive, but they are the even lanes of two different warps:
    // the hardware barrier would count 64 threads, not 32.
    assert_flags(
        "__global__ void k(int* out, int n) {
            int t = threadIdx.x;
            out[t] = 0;
            if (t % 2 == 0) { asm(\"bar.sync 1, 32;\"); }
            out[t] = t;
        }",
        1,
        64,
        ReportKind::BarrierDivergence,
    );
}

#[test]
fn mismatched_barrier_counts_are_flagged() {
    // Both warps name barrier 3 but disagree on the participant count
    // within one release interval.
    assert_flags(
        "__global__ void k(int* out, int n) {
            int t = threadIdx.x;
            out[t] = 0;
            if (t < 32) { asm(\"bar.sync 3, 64;\"); } else { asm(\"bar.sync 3, 32;\"); }
            out[t] = t;
        }",
        1,
        64,
        ReportKind::BarrierCountMismatch,
    );
}

// ---- kernels the sanitizer must NOT flag ------------------------------------

#[test]
fn atomic_contention_is_not_a_race() {
    // The racy global fixture, repaired with atomics: contended but ordered.
    assert_clean(
        "__global__ void k(int* out, int n) {
            atomicAdd(&out[0], 1);
        }",
        2,
        64,
    );
}

#[test]
fn synced_shared_exchange_is_clean() {
    // The racy shared fixture, repaired with a barrier between the store
    // and the cross-warp load.
    assert_clean(
        "__global__ void k(int* out, int n) {
            __shared__ int s[64];
            int t = threadIdx.x;
            s[t] = t;
            __syncthreads();
            out[t] = s[(t + 32) % 64];
        }",
        1,
        64,
    );
}

#[test]
fn whole_warp_partial_barrier_is_clean() {
    // A correctly formed partial barrier: 64 declared, exactly warps 0-1
    // arrive, warp 2 skips it entirely.
    assert_clean(
        "__global__ void k(int* out, int n) {
            int t = threadIdx.x;
            if (t < 64) { asm(\"bar.sync 1, 64;\"); }
            out[t] = t;
        }",
        1,
        96,
    );
}

// ---- paper benchmarks, unfused and fused ------------------------------------

fn dims_for(b: &dyn Benchmark, threads: u32) -> Option<(u32, u32, u32)> {
    match b.shape() {
        BlockShape::Linear => Some((threads, 1, 1)),
        BlockShape::Rows { y } => threads.is_multiple_of(y).then(|| (threads / y, y, 1)),
    }
}

/// Every benchmark pair of the paper's evaluation at quarter scale, run
/// unfused (two launches) with the sanitizer enabled: zero reports.
#[test]
fn paper_benchmarks_unfused_are_clean() {
    for pair in dl_pairs().into_iter().chain(crypto_pairs()) {
        let (a, b) = pair.at_scale(0.25);
        let (ba, bb) = (a.benchmark(), b.benchmark());
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_sanitizer();
        let args_a = ba.setup(gpu.memory_mut());
        let args_b = bb.setup(gpu.memory_mut());
        let mk = |bench: &dyn Benchmark, args: &[ParamValue]| Launch {
            kernel: lower_kernel(&bench.kernel()).expect("lower").into(),
            grid_dim: bench.grid_dim(),
            block_dim: dims_for(bench, bench.default_threads()).expect("default dims"),
            dynamic_shared_bytes: bench.dynamic_shared(),
            args: args.to_vec(),
        };
        gpu.run_functional(&[mk(ba, &args_a), mk(bb, &args_b)])
            .unwrap_or_else(|e| panic!("{}: unfused run: {e}", pair.name()));
        let reports = gpu.take_sanitizer_reports();
        assert!(
            reports.is_empty(),
            "{}: sanitizer flagged the unfused benchmarks: {reports:?}",
            pair.name()
        );
    }
}

/// The same pairs horizontally fused at their default thread partition:
/// the fused kernel's partial barriers and interleaved shared arrays must
/// also produce zero reports.
#[test]
fn paper_benchmarks_fused_are_clean() {
    for pair in dl_pairs().into_iter().chain(crypto_pairs()) {
        let (a, b) = pair.at_scale(0.25);
        let (ba, bb) = (a.benchmark(), b.benchmark());
        let (d1, d2) = (ba.default_threads(), bb.default_threads());
        let (Some(dims1), Some(dims2)) = (dims_for(ba, d1), dims_for(bb, d2)) else {
            continue;
        };
        let fused = horizontal_fuse(&ba.kernel(), dims1, &bb.kernel(), dims2)
            .unwrap_or_else(|e| panic!("{}: fuse: {e}", pair.name()));
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        gpu.enable_sanitizer();
        let args_a = ba.setup(gpu.memory_mut());
        let args_b = bb.setup(gpu.memory_mut());
        let mut args = args_a.clone();
        args.extend(args_b.iter().copied());
        gpu.run_functional(&[Launch {
            kernel: lower_kernel(&fused.function).expect("lower fused").into(),
            grid_dim: ba.grid_dim().max(bb.grid_dim()),
            block_dim: (d1 + d2, 1, 1),
            dynamic_shared_bytes: ba.dynamic_shared() + bb.dynamic_shared(),
            args,
        }])
        .unwrap_or_else(|e| panic!("{}: fused run: {e}", pair.name()));
        let reports = gpu.take_sanitizer_reports();
        assert!(
            reports.is_empty(),
            "{}: sanitizer flagged the fused kernel: {reports:?}",
            pair.name()
        );
    }
}
