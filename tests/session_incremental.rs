//! Invalidation-correctness tests for the incremental [`Session`] pipeline.
//!
//! These pin down the contract of the query database in `hfuse-core`'s
//! `db` module: repeated queries on unchanged inputs are pure cache hits
//! with bitwise-identical results; editing one kernel of a pair recomputes
//! only that kernel's own queries plus the shared pair queries; a device
//! configuration change re-runs measurements but no parses or lowers; and
//! a whitespace-only source edit is cut off at the `ast` query. Everything
//! is observed through [`Session::stats`] deltas, which is exactly how a
//! future daemon's cache telemetry would watch the same pipeline.

use std::sync::Arc;

use hfuse::fusion::{search_fusion_config, SearchOptions, Session, SessionStats};
use hfuse::kernels::AnyBenchmark;
use hfuse::sim::{Gpu, GpuConfig};

const WRITER: &str = "__global__ void writer(float* x) { x[threadIdx.x] = 1.0f; }";
const ADDER: &str = "__global__ void adder(float* y) { y[threadIdx.x] = y[threadIdx.x] + 2.0f; }";

/// Search options sized like the conformance harness: small fused block,
/// paper partition step.
fn small_search() -> SearchOptions {
    SearchOptions {
        d0: 512,
        granularity: 128,
        ..SearchOptions::default()
    }
}

/// A session over a freshly-built benchmark pair, plus the ids.
fn pair_session(
    first: &str,
    second: &str,
) -> (Session, hfuse::fusion::KernelId, hfuse::fusion::KernelId) {
    let a = AnyBenchmark::by_name(first)
        .expect("benchmark")
        .scaled(0.25);
    let b = AnyBenchmark::by_name(second)
        .expect("benchmark")
        .scaled(0.25);
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let in1 = a.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b.benchmark().fusion_input(gpu.memory_mut());
    let mut s = Session::with_gpu(gpu);
    s.set_search_options(small_search());
    let ka = s.add_fusion_input(&in1);
    let kb = s.add_fusion_input(&in2);
    (s, ka, kb)
}

/// Per-query compute deltas between two stats snapshots.
fn computes_delta(before: SessionStats, after: SessionStats) -> u64 {
    after.total_computes() - before.total_computes()
}

#[test]
fn repeated_queries_are_pure_hits_with_identical_results() {
    let (mut s, ka, kb) = pair_session("Maxpool", "Batchnorm");

    let ast1 = s.ast(ka).expect("ast");
    let ir1 = s.ir(ka).expect("ir");
    let lints1 = s.lints(ka, None).expect("lints");
    let single1 = s.single(ka).expect("single");
    let native1 = s.native(ka, kb).expect("native");
    let report1 = s.search_winner(ka, kb).expect("search");
    let before = s.stats();

    // Second round: every query must hit, share the exact Arc, and run no
    // query function at all — in particular, zero new simulations.
    let ast2 = s.ast(ka).expect("ast");
    let ir2 = s.ir(ka).expect("ir");
    let lints2 = s.lints(ka, None).expect("lints");
    let single2 = s.single(ka).expect("single");
    let native2 = s.native(ka, kb).expect("native");
    let report2 = s.search_winner(ka, kb).expect("search");
    let after = s.stats();

    assert!(Arc::ptr_eq(&ast1, &ast2));
    assert!(Arc::ptr_eq(&ir1, &ir2));
    assert!(Arc::ptr_eq(&lints1, &lints2));
    assert!(Arc::ptr_eq(&single1, &single2));
    assert!(Arc::ptr_eq(&native1, &native2));
    assert!(Arc::ptr_eq(&report1, &report2));

    assert_eq!(computes_delta(before, after), 0, "second round ran work");
    assert_eq!(after.search.hits - before.search.hits, 1);
    assert_eq!(after.search.computes(), 1, "exactly one search ever ran");
    assert_eq!(after.single.computes(), 1);
    assert_eq!(after.native.computes(), 1);
}

#[test]
fn ranges_query_memoizes_and_surfaces_the_analysis_cache() {
    let (mut s, ka, _) = pair_session("Maxpool", "Batchnorm");

    let r1 = s.ranges(ka, Some(256)).expect("ranges");
    let before = s.stats();
    let r2 = s.ranges(ka, Some(256)).expect("ranges");
    let after = s.stats();

    assert!(Arc::ptr_eq(&r1, &r2), "cached summary is the same Arc");
    assert_eq!(after.ranges.hits - before.ranges.hits, 1);
    assert_eq!(computes_delta(before, after), 0, "second query ran work");
    // A different block size is a different summary, computed fresh.
    let r3 = s.ranges(ka, Some(128)).expect("ranges");
    assert!(!Arc::ptr_eq(&r1, &r3));

    // The process-wide analysis cache shared with the fuse gate is
    // surfaced through the same snapshot.
    let stats = s.stats();
    assert!(
        stats.analysis_cache.range_entries > 0,
        "range summaries must land in the shared analysis cache: {stats:?}"
    );
}

#[test]
fn global_extents_invalidate_lints_but_not_ranges() {
    let mut s = Session::new(GpuConfig::test_tiny());
    let k = s.add_kernel(
        "__global__ void k(int* out, int n) {\n  out[threadIdx.x + 1] = 1;\n}\n".to_owned(),
    );

    let clean = s.lints(k, Some(64)).expect("lints");
    assert!(clean.is_empty(), "no extents, no claim: {clean:?}");
    s.ranges(k, Some(64)).expect("ranges");
    let before = s.stats();

    // Declaring the buffer's real length re-arms the lint and recomputes it;
    // the range summary itself does not depend on extents and must hit.
    s.set_global_extents(Some([("out".to_owned(), 64)].into()));
    let flagged = s.lints(k, Some(64)).expect("lints");
    s.ranges(k, Some(64)).expect("ranges");
    let after = s.stats();

    assert_eq!(flagged.len(), 1, "{flagged:?}");
    assert_eq!(flagged[0].code, "global-out-of-bounds");
    assert_eq!(after.lints.recomputes - before.lints.recomputes, 1);
    assert_eq!(after.ranges.hits - before.ranges.hits, 1);
    assert_eq!(after.ranges.recomputes, before.ranges.recomputes);
}

#[test]
fn editing_one_kernel_recomputes_only_its_suffix() {
    let (mut s, ka, kb) = pair_session("Maxpool", "Batchnorm");

    // Warm every query for both kernels.
    s.ast(ka).expect("ast a");
    s.ast(kb).expect("ast b");
    s.ir(ka).expect("ir a");
    s.ir(kb).expect("ir b");
    s.lints(ka, None).expect("lints a");
    s.lints(kb, None).expect("lints b");
    let report1 = s.search_winner(ka, kb).expect("search");
    let before = s.stats();

    // A semantic edit to kernel `a` only: rename the function. The AST (and
    // its printed-form hash) changes, so everything downstream of `a` must
    // re-run — but kernel `b`'s queries must all stay hits.
    let name = s.ast(ka).expect("ast a").name.clone();
    let edited = s
        .kernel_source(ka)
        .replacen(&name, &format!("{name}_v2"), 1);
    s.set_kernel_source(ka, edited);

    s.ast(ka).expect("ast a");
    s.ast(kb).expect("ast b");
    s.ir(ka).expect("ir a");
    s.ir(kb).expect("ir b");
    s.lints(ka, None).expect("lints a");
    s.lints(kb, None).expect("lints b");
    let report2 = s.search_winner(ka, kb).expect("search");
    let after = s.stats();

    // Exactly one recompute per query kind touching `a` (the `ast(ka)`
    // lookup that fetched the name above already counted it), one hit for
    // each of `b`'s, and a recomputed search. Nothing is a fresh miss.
    assert_eq!(after.ast.recomputes - before.ast.recomputes, 1);
    assert_eq!(after.ir.recomputes - before.ir.recomputes, 1);
    assert_eq!(after.lints.recomputes - before.lints.recomputes, 1);
    assert_eq!(after.search.recomputes - before.search.recomputes, 1);
    assert_eq!(after.ast.misses, before.ast.misses);
    assert_eq!(after.ir.misses, before.ir.misses);
    assert_eq!(after.lints.misses, before.lints.misses);
    assert_eq!(after.search.misses, before.search.misses);
    // Kernel b's lookups in the second round were all hits.
    assert_eq!(after.ir.hits - before.ir.hits, 1);
    assert_eq!(after.lints.hits - before.lints.hits, 1);

    // The rename is behavior-preserving, so the recomputed search must land
    // on the same configuration.
    assert_eq!(report1.best().d1, report2.best().d1);
    assert_eq!(report1.best().d2, report2.best().d2);
}

#[test]
fn gpu_config_change_reruns_search_but_no_parses_or_lowers() {
    let a = AnyBenchmark::by_name("Maxpool")
        .expect("benchmark")
        .scaled(0.25);
    let b = AnyBenchmark::by_name("Batchnorm")
        .expect("benchmark")
        .scaled(0.25);
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let in1 = a.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b.benchmark().fusion_input(gpu.memory_mut());
    let mut s = Session::with_gpu(gpu);
    s.set_search_options(small_search());
    let ka = s.add_fusion_input(&in1);
    let kb = s.add_fusion_input(&in2);

    s.ir(ka).expect("ir a");
    s.ir(kb).expect("ir b");
    s.search_winner(ka, kb).expect("search");
    let before = s.stats();

    // A new device with a different configuration, but the same buffers
    // allocated in the same order — so the workload arguments (buffer ids)
    // stay valid and hash identically; only the config fingerprint moves.
    let mut cfg = GpuConfig::test_tiny();
    cfg.dram_transactions_per_cycle *= 2;
    let mut gpu2 = Gpu::new(cfg);
    let re1 = a.benchmark().fusion_input(gpu2.memory_mut());
    let re2 = b.benchmark().fusion_input(gpu2.memory_mut());
    assert_eq!(format!("{:?}", re1.args), format!("{:?}", in1.args));
    assert_eq!(format!("{:?}", re2.args), format!("{:?}", in2.args));
    s.set_gpu(gpu2);

    s.ir(ka).expect("ir a");
    s.ir(kb).expect("ir b");
    s.search_winner(ka, kb).expect("search");
    let after = s.stats();

    assert_eq!(after.ast.computes(), before.ast.computes(), "no re-parse");
    assert_eq!(after.ir.computes(), before.ir.computes(), "no re-lower");
    assert_eq!(after.search.recomputes - before.search.recomputes, 1);
}

#[test]
fn whitespace_edit_cuts_off_at_the_ast_query() {
    let mut s = Session::new(GpuConfig::test_tiny());
    let k = s.add_kernel(WRITER);
    let ir1 = s.ir(k).expect("ir");
    let before = s.stats();

    // Reformat without changing the AST: the parse re-runs (source hash
    // moved) but prints to the same function, so the lower still hits.
    s.set_kernel_source(k, WRITER.replace(" = 1.0f;", "   =   1.0f;\n"));
    let ir2 = s.ir(k).expect("ir");
    let after = s.stats();

    assert_eq!(after.ast.recomputes - before.ast.recomputes, 1);
    assert_eq!(after.ir.hits - before.ir.hits, 1);
    assert_eq!(after.ir.computes(), before.ir.computes());
    assert!(
        Arc::ptr_eq(&ir1, &ir2),
        "early cutoff shares the lowered IR"
    );
}

#[test]
fn fused_query_memoizes_per_partition_and_tracks_both_kernels() {
    let mut s = Session::new(GpuConfig::test_tiny());
    let ka = s.add_kernel(WRITER);
    let kb = s.add_kernel(ADDER);

    let f1 = s.fused(ka, kb, (128, 1, 1), (64, 1, 1)).expect("fuse");
    let f2 = s.fused(ka, kb, (128, 1, 1), (64, 1, 1)).expect("fuse");
    assert!(Arc::ptr_eq(&f1, &f2));
    assert_eq!(s.stats().fused.hits, 1);

    // A different partition is a different key: a miss, not a recompute.
    s.fused(ka, kb, (256, 1, 1), (64, 1, 1)).expect("fuse");
    assert_eq!(s.stats().fused.misses, 2);

    // Editing the *second* kernel invalidates the pair query too.
    s.set_kernel_source(kb, ADDER.replace("+ 2.0f", "+ 3.0f"));
    let f3 = s.fused(ka, kb, (128, 1, 1), (64, 1, 1)).expect("fuse");
    assert_eq!(s.stats().fused.recomputes, 1);
    assert!(!Arc::ptr_eq(&f1, &f3));
}

#[test]
fn parse_errors_are_memoized_values() {
    let mut s = Session::new(GpuConfig::test_tiny());
    let k = s.add_kernel("__global__ void broken(float* x) { x[threadIdx.x] = ; }");
    assert!(s.ast(k).is_err());
    assert!(s.ast(k).is_err());
    let stats = s.stats();
    assert_eq!(stats.ast.misses, 1);
    assert_eq!(stats.ast.hits, 1, "the error is cached, not re-parsed");

    // Fixing the source recomputes and succeeds.
    s.set_kernel_source(k, WRITER);
    assert!(s.ast(k).is_ok());
    assert_eq!(s.stats().ast.recomputes, 1);
}

/// The bench matrix of `examples/bench_search.rs`: the five tunable DL
/// pairs, the dual-Ethash co-location, and the three new-family crosses.
const BENCH_MATRIX: [(&str, &str); 9] = [
    ("Maxpool", "Batchnorm"),
    ("Upsample", "Hist"),
    ("Batchnorm", "Upsample"),
    ("Batchnorm", "Im2Col"),
    ("Hist", "Im2Col"),
    ("Ethash", "Ethash"),
    ("Axpy", "Blur"),
    ("Dot", "Downsample"),
    ("Gemv", "Attention"),
];

#[test]
fn session_winners_match_the_free_function_path_bitwise() {
    for (first, second) in BENCH_MATRIX {
        let a = AnyBenchmark::by_name(first)
            .expect("benchmark")
            .scaled(0.25);
        let b = AnyBenchmark::by_name(second)
            .expect("benchmark")
            .scaled(0.25);
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let in1 = a.benchmark().fusion_input(gpu.memory_mut());
        let in2 = b.benchmark().fusion_input(gpu.memory_mut());

        let free = search_fusion_config(&gpu, &in1, &in2, small_search())
            .unwrap_or_else(|e| panic!("{first}+{second}: free search: {e}"));

        let mut s = Session::with_gpu(gpu);
        s.set_search_options(small_search());
        let ka = s.add_fusion_input(&in1);
        let kb = s.add_fusion_input(&in2);
        let via_session = s
            .search_winner(ka, kb)
            .unwrap_or_else(|e| panic!("{first}+{second}: session search: {e}"));

        // Bitwise-identical results: every candidate row, the winner index,
        // and the compiled winning kernel (wall-clock fields excluded).
        assert_eq!(
            via_session.candidates, free.candidates,
            "{first}+{second}: candidate rows diverge"
        );
        assert_eq!(via_session.best_idx, free.best_idx, "{first}+{second}");
        assert_eq!(via_session.d0, free.d0, "{first}+{second}");
        assert_eq!(
            format!("{:?}", via_session.best_kernel),
            format!("{:?}", free.best_kernel),
            "{first}+{second}: winning kernels diverge"
        );
    }
}
