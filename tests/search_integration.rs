//! Integration tests of the Fig. 6 configuration search and the measurement
//! helpers, run end-to-end on real benchmark pairs.

use hfuse::fusion::{
    measure_naive_horizontal, measure_native, measure_single, measure_vertical,
    search_fusion_config, SearchOptions,
};
use hfuse::kernels::{crypto_pairs, dl_pairs, AnyBenchmark};
use hfuse::sim::{Gpu, GpuConfig};

fn inputs(
    a: &AnyBenchmark,
    b: &AnyBenchmark,
) -> (Gpu, hfuse::fusion::FusionInput, hfuse::fusion::FusionInput) {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let in1 = a.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b.benchmark().fusion_input(gpu.memory_mut());
    (gpu, in1, in2)
}

#[test]
fn search_sweeps_all_partitions_for_tunable_pairs() {
    let pair = &dl_pairs()[5]; // Hist+Maxpool
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let report = search_fusion_config(
        &gpu,
        &in1,
        &in2,
        SearchOptions {
            d0: 1024,
            granularity: 128,
            ..SearchOptions::default()
        },
    )
    .expect("search");
    // 7 partitions (128..896) × 2 register variants.
    assert_eq!(report.candidates.len(), 14);
    let best = report.best();
    assert!(report.candidates.iter().all(|c| c.cycles >= best.cycles));
    // Every candidate must have a consistent partition.
    for c in &report.candidates {
        assert_eq!(c.d1 + c.d2, 1024);
        assert_eq!(c.d1 % 128, 0);
    }
}

#[test]
fn search_respects_granularity_option() {
    let pair = &dl_pairs()[5];
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let coarse = search_fusion_config(
        &gpu,
        &in1,
        &in2,
        SearchOptions {
            d0: 1024,
            granularity: 256,
            ..SearchOptions::default()
        },
    )
    .expect("search");
    assert_eq!(coarse.candidates.len(), 6); // 256, 512, 768 × 2 variants
}

#[test]
fn crypto_pair_has_single_partition() {
    let pair = &crypto_pairs()[3]; // Blake256+Blake2B (fast pair)
    let (gpu, in1, in2) = inputs(&pair.first, &pair.second);
    let report = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search");
    assert_eq!(report.candidates.len(), 2);
    assert_eq!(report.best().d1, 256);
    assert_eq!(report.best().d2, 256);
}

#[test]
fn native_time_is_bounded_by_singles() {
    let pair = &dl_pairs()[1]; // Batchnorm+Hist
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let t1 = measure_single(&gpu, &in1).expect("single 1").total_cycles;
    let t2 = measure_single(&gpu, &in2).expect("single 2").total_cycles;
    let native = measure_native(&gpu, &in1, &in2)
        .expect("native")
        .total_cycles;
    // Co-execution can overlap but cannot be faster than the longer kernel,
    // nor slower than strictly serial plus slack.
    assert!(native >= t1.max(t2), "native {native} < max({t1}, {t2})");
    assert!(
        native <= (t1 + t2) * 11 / 10,
        "native {native} > serial {}",
        t1 + t2
    );
}

#[test]
fn fused_kernel_metrics_are_plausible() {
    let pair = &dl_pairs()[1];
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let report = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search");
    for c in &report.candidates {
        assert!(c.cycles > 0);
        assert!((0.0..=100.0).contains(&c.issue_util), "{c:?}");
        assert!((0.0..=100.0).contains(&c.mem_stall), "{c:?}");
        assert!((0.0..=100.0).contains(&c.occupancy), "{c:?}");
    }
}

#[test]
fn vertical_and_naive_measurements_run() {
    let pair = &dl_pairs()[9]; // Maxpool+Upsample (both linear shapes)
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let v = measure_vertical(&gpu, &in1, &in2).expect("vertical");
    assert!(v.total_cycles > 0);
    let n = measure_naive_horizontal(&gpu, &in1, &in2, 1024).expect("naive");
    assert!(n.total_cycles > 0);
}

#[test]
fn search_report_carries_runnable_best_kernel() {
    let pair = &dl_pairs()[5];
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let report = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search");
    // The reported best kernel must actually run with the reported config.
    let mut gpu = gpu.clone();
    let mut args = in1.args.clone();
    args.extend(in2.args.iter().copied());
    let r = gpu
        .run(&[hfuse::sim::Launch {
            kernel: report.best_kernel.clone().into(),
            grid_dim: in1.grid_dim,
            block_dim: (report.best().d1 + report.best().d2, 1, 1),
            dynamic_shared_bytes: in1.dynamic_shared + in2.dynamic_shared,
            args,
        }])
        .expect("best kernel runs");
    assert!(r.total_cycles > 0);
}

#[test]
fn search_is_deterministic_across_runs_and_threads() {
    // With pruning, which losers get budget-aborted can vary with thread
    // timing, but the winner, its cycles, and every surviving candidate's
    // cycles are deterministic: candidates profile on independent clones of
    // the device state, and a run whose true cycle count is within the
    // budget always completes with its exact unbudgeted result.
    let pair = &dl_pairs()[5];
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let r1 = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search 1");
    let r2 = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search 2");
    assert_eq!(r1.candidates.len(), r2.candidates.len());
    for (c1, c2) in r1.candidates.iter().zip(&r2.candidates) {
        assert_eq!((c1.d1, c1.d2, c1.reg_bound), (c2.d1, c2.d2, c2.reg_bound));
        if c1.pruned_at.is_none() && c2.pruned_at.is_none() {
            assert_eq!(c1, c2);
        }
    }
    assert_eq!(r1.best_idx, r2.best_idx);
    assert_eq!(r1.best().cycles, r2.best().cycles);
    assert_eq!(r1.best_kernel, r2.best_kernel);
}

#[test]
fn exhaustive_search_is_byte_identical_across_runs() {
    // With pruning disabled every candidate profiles to completion, so the
    // whole report must be byte-identical run to run.
    let pair = &dl_pairs()[5];
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    let opts = SearchOptions {
        prune: false,
        ..SearchOptions::default()
    };
    let r1 = search_fusion_config(&gpu, &in1, &in2, opts).expect("search 1");
    let r2 = search_fusion_config(&gpu, &in1, &in2, opts).expect("search 2");
    assert_eq!(r1.pruned_count(), 0);
    assert_eq!(r2.pruned_count(), 0);
    assert_eq!(r1.candidates, r2.candidates);
    assert_eq!(r1.best_idx, r2.best_idx);
    assert_eq!(r1.best_kernel, r2.best_kernel);
}

#[test]
fn parallel_search_path_matches_serial() {
    // Force the scoped-thread pool even on single-core machines and check
    // it produces the same winner and surviving cycle counts as the serial
    // path (the pruned set may differ — see above).
    let pair = &dl_pairs()[9];
    let (a, b) = (pair.first.scaled(0.25), pair.second.scaled(0.25));
    let (gpu, in1, in2) = inputs(&a, &b);
    std::env::set_var("HFUSE_SEARCH_THREADS", "1");
    let serial = search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("serial");
    std::env::set_var("HFUSE_SEARCH_THREADS", "4");
    let parallel =
        search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("parallel");
    std::env::remove_var("HFUSE_SEARCH_THREADS");
    assert_eq!(serial.candidates.len(), parallel.candidates.len());
    for (s, p) in serial.candidates.iter().zip(&parallel.candidates) {
        if s.pruned_at.is_none() && p.pruned_at.is_none() {
            assert_eq!(s, p);
        }
    }
    assert_eq!(serial.best_idx, parallel.best_idx);
    assert_eq!(serial.best().cycles, parallel.best().cycles);
}
