//! Differential tests of branch-and-bound search pruning: on every paper
//! benchmark pair and on committed fuzz-corpus seeds, the pruned search must
//! report the same best candidate (partition, register bound, cycles) and
//! the same cycle counts for every *surviving* candidate as the exhaustive
//! search. Only which losers get budget-aborted — and at what clock — may
//! differ.

use hfuse::frontend::parse_kernel;
use hfuse::fusion::{search_fusion_config, BlockShape, FusionInput, SearchOptions};
use hfuse::kernels::{crypto_pairs, dl_pairs};
use hfuse::sim::{Gpu, GpuConfig, ParamValue};

/// Runs both arms on clones of the same device state and checks the
/// invariants pruning must preserve.
fn assert_prune_matches_exhaustive(
    label: &str,
    gpu: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    opts: SearchOptions,
) {
    let pruned = search_fusion_config(gpu, in1, in2, opts)
        .unwrap_or_else(|e| panic!("{label}: pruned search failed: {e}"));
    let exhaustive = search_fusion_config(
        gpu,
        in1,
        in2,
        SearchOptions {
            prune: false,
            ..opts
        },
    )
    .unwrap_or_else(|e| panic!("{label}: exhaustive search failed: {e}"));

    assert_eq!(exhaustive.pruned_count(), 0, "{label}");
    assert_eq!(
        pruned.candidates.len(),
        exhaustive.candidates.len(),
        "{label}: candidate counts differ"
    );
    assert_eq!(pruned.best_idx, exhaustive.best_idx, "{label}");
    assert_eq!(pruned.best().cycles, exhaustive.best().cycles, "{label}");
    assert_eq!(
        (pruned.best().d1, pruned.best().d2, pruned.best().reg_bound),
        (
            exhaustive.best().d1,
            exhaustive.best().d2,
            exhaustive.best().reg_bound
        ),
        "{label}"
    );
    assert_eq!(pruned.best_kernel, exhaustive.best_kernel, "{label}");
    for (p, e) in pruned.candidates.iter().zip(&exhaustive.candidates) {
        assert_eq!(
            (p.d1, p.d2, p.reg_bound),
            (e.d1, e.d2, e.reg_bound),
            "{label}: candidate order changed"
        );
        match p.pruned_at {
            // Survivors must report the exact exhaustive numbers.
            None => assert_eq!(p, e, "{label}: surviving candidate diverged"),
            Some(at) => {
                assert_eq!(Some(p.cycles), Some(at), "{label}");
                // The abort clock is a lower bound on the true cycle count
                // and lies strictly past the winner.
                assert!(at <= e.cycles, "{label}: {at} > true {}", e.cycles);
                assert!(at > pruned.best().cycles, "{label}");
            }
        }
    }
}

#[test]
fn pruned_search_matches_exhaustive_on_all_dl_pairs() {
    for pair in &dl_pairs() {
        let (a, b) = pair.at_scale(0.25);
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let in1 = a.benchmark().fusion_input(gpu.memory_mut());
        let in2 = b.benchmark().fusion_input(gpu.memory_mut());
        assert_prune_matches_exhaustive(
            &pair.name(),
            &gpu,
            &in1,
            &in2,
            SearchOptions {
                d0: 512,
                granularity: 128,
                ..SearchOptions::default()
            },
        );
    }
}

#[test]
fn pruned_search_matches_exhaustive_on_crypto_pair() {
    // Crypto pairs are non-tunable (single partition, two register
    // variants); use the fast Blake256+Blake2B pair.
    let pair = &crypto_pairs()[3];
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let in1 = pair.first.benchmark().fusion_input(gpu.memory_mut());
    let in2 = pair.second.benchmark().fusion_input(gpu.memory_mut());
    assert_prune_matches_exhaustive(&pair.name(), &gpu, &in1, &in2, SearchOptions::default());
}

/// Builds a pair of [`FusionInput`]s from a deterministic fuzz-corpus case,
/// mirroring how the fuzzer's oracle launches the kernels natively.
fn fuzz_inputs(seed: u64, case: u64) -> (Gpu, FusionInput, FusionInput) {
    let (pair, mut input_rng) = hfuse_fuzz::case_streams(seed, case);
    let f1 = parse_kernel(&pair.k1.render()).expect("parse k1");
    let f2 = parse_kernel(&pair.k2.render()).expect("parse k2");
    let mut gpu = Gpu::new(GpuConfig::test_tiny());

    let in1_data = hfuse_fuzz::gen::CasePair::input_data(&mut input_rng, pair.k1.n);
    let in2_data = hfuse_fuzz::gen::CasePair::input_data(&mut input_rng, pair.k2.n);
    let out1 = gpu.memory_mut().alloc_u32(pair.k1.out_len() as usize);
    let in1b = gpu.memory_mut().alloc_from_u32(&in1_data);
    let out2 = gpu.memory_mut().alloc_u32(pair.k2.out_len() as usize);
    let in2b = gpu.memory_mut().alloc_from_u32(&in2_data);

    let mk = |kernel, out, inp, n: u32, threads, grid| FusionInput {
        kernel,
        args: vec![
            ParamValue::Ptr(out),
            ParamValue::Ptr(inp),
            ParamValue::I32(n as i32),
        ],
        grid_dim: grid,
        dynamic_shared: 0,
        default_threads: threads,
        tunable: false,
        shape: BlockShape::Linear,
    };
    let in1 = mk(f1, out1, in1b, pair.k1.n, pair.k1.threads, pair.k1.grid);
    let in2 = mk(f2, out2, in2b, pair.k2.n, pair.k2.threads, pair.k2.grid);
    (gpu, in1, in2)
}

#[test]
fn pruned_search_matches_exhaustive_on_fuzz_corpus() {
    // The committed corpus seeds from the differential fuzzer (see
    // crates/fuzz): generated kernel pairs with barriers, shared memory,
    // and atomics, fused at their native (fixed) partitions.
    for seed in [0u64, 7, 42, 0xdead] {
        for case in 0..2 {
            let (gpu, in1, in2) = fuzz_inputs(seed, case);
            if in1.grid_dim != in2.grid_dim {
                continue; // search requires matching grids
            }
            assert_prune_matches_exhaustive(
                &format!("fuzz seed {seed} case {case}"),
                &gpu,
                &in1,
                &in2,
                SearchOptions::default(),
            );
        }
    }
}
