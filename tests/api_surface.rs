//! Exercises every re-export root of the `hfuse` facade crate.
//!
//! The facade (`src/lib.rs`) re-exports the six member crates wholesale —
//! [`hfuse::frontend`], [`hfuse::ir`], [`hfuse::sim`], [`hfuse::analysis`],
//! [`hfuse::fusion`], [`hfuse::kernels`] — so downstream code can use one
//! import root. This test drives one representative item through each root
//! (including the items added by the Session redesign: `fusion::Session`
//! and friends, `ir::AsmError`, `fusion::HfuseError`,
//! `analysis::analyze_kernel_memoized`, `frontend::hash`), so an
//! accidentally-dropped re-export fails to compile here instead of in a
//! downstream consumer.

use std::sync::Arc;

use hfuse::analysis::{analysis_cache_stats, analyze_kernel_memoized, AnalysisOptions};
use hfuse::frontend::hash::{fnv1a_64, Fnv64};
use hfuse::frontend::printer::print_function;
use hfuse::frontend::{parse_kernel, parse_kernel_with_spans, FrontendError};
use hfuse::fusion::{
    horizontal_fuse, measure_single, search_fusion_config, FusionInput, HfuseError, KernelId,
    QueryStats, SearchOptions, Session, SessionStats, Workload,
};
use hfuse::ir::printer::print_kernel_ir;
use hfuse::ir::{lower_kernel, lower_kernel_unoptimized, parse_kernel_ir, AsmError, KernelIr};
use hfuse::kernels::{all_pairs, family_pairs, AnyBenchmark};
use hfuse::sim::{Gpu, GpuConfig, Launch, ParamValue, RunResult, SimError};

const SRC: &str = "__global__ void probe(float* x) { x[threadIdx.x] = 4.0f; }";

#[test]
fn frontend_root_parses_prints_and_hashes() {
    let f = parse_kernel(SRC).expect("parse");
    assert_eq!(f.name, "probe");
    let (f2, spans) = parse_kernel_with_spans(SRC).expect("parse with spans");
    assert_eq!(print_function(&f), print_function(&f2));
    assert!(!spans.is_empty());

    // The FNV-1a module added for session fingerprints.
    let mut h = Fnv64::new();
    h.write(SRC.as_bytes());
    assert_eq!(h.finish(), fnv1a_64(SRC.as_bytes()));

    let err: FrontendError = parse_kernel("__global__ void broken( {").unwrap_err();
    assert!(!err.to_string().is_empty());
}

#[test]
fn ir_root_lowers_prints_and_reparses() {
    let f = parse_kernel(SRC).expect("parse");
    let ir: KernelIr = lower_kernel(&f).expect("lower");
    let unopt = lower_kernel_unoptimized(&f).expect("lower unoptimized");
    assert!(unopt.insts.len() >= ir.insts.len());

    // Round-trip through the textual listing, and the typed parse error.
    let listing = print_kernel_ir(&ir);
    let reparsed = parse_kernel_ir(&listing).expect("reparse listing");
    assert_eq!(reparsed.insts.len(), ir.insts.len());
    let err: AsmError = parse_kernel_ir("not an ir listing").unwrap_err();
    assert!(err.to_string().contains("ir listing"));
}

#[test]
fn sim_root_runs_a_kernel() {
    let f = parse_kernel(SRC).expect("parse");
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let buf = gpu.memory_mut().alloc_f32(64);
    let r: RunResult = gpu
        .run(&[Launch {
            kernel: lower_kernel(&f).expect("lower").into(),
            grid_dim: 1,
            block_dim: (64, 1, 1),
            dynamic_shared_bytes: 0,
            args: vec![ParamValue::Ptr(buf)],
        }])
        .expect("run");
    assert!(r.total_cycles > 0);
    assert_eq!(gpu.memory().read_f32(buf, 0), 4.0);

    let err: SimError = SimError::new("probe error");
    assert!(err.to_string().contains("probe error"));
}

#[test]
fn analysis_root_lints_directly_and_memoized() {
    let (f, spans) = parse_kernel_with_spans(SRC).expect("parse");
    let opts = AnalysisOptions {
        block_threads: Some(64),
        ..AnalysisOptions::default()
    };
    let direct = hfuse::analysis::analyze_kernel(&f, Some(&spans), &opts);
    assert!(direct.is_empty(), "probe kernel lints clean");

    let before = analysis_cache_stats();
    let first = analyze_kernel_memoized(&f, Some(&spans), &opts);
    let second = analyze_kernel_memoized(&f, Some(&spans), &opts);
    let after = analysis_cache_stats();
    assert!(Arc::ptr_eq(&first, &second));
    assert_eq!(*first, direct);
    assert!(after.hits + after.misses > before.hits + before.misses);
}

#[test]
fn fusion_root_fuses_measures_and_sessions() {
    let a = parse_kernel(SRC).expect("parse");
    let b =
        parse_kernel("__global__ void other(float* y) { y[threadIdx.x] = 5.0f; }").expect("parse");
    let fused = horizontal_fuse(&a, (128, 1, 1), &b, (64, 1, 1)).expect("fuse");
    assert_eq!(fused.block_threads(), 192);

    // The Session API and its telemetry types.
    let mut s = Session::new(GpuConfig::test_tiny());
    let k: KernelId = s.add_kernel(SRC);
    assert_eq!(k.index(), 0);
    s.ir(k).expect("ir query");
    let stats: SessionStats = s.stats();
    let q: QueryStats = stats.ir;
    assert_eq!((q.misses, q.hits), (1, 0));
    assert_eq!(stats.total_computes(), 2, "one parse + one lower");

    // Workload extraction, the free measurement wrapper, and the unified
    // error type it returns.
    let bench = AnyBenchmark::by_name("Maxpool")
        .expect("bench")
        .scaled(0.25);
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let input: FusionInput = bench.benchmark().fusion_input(gpu.memory_mut());
    let w = Workload::from_fusion_input(&input);
    assert_eq!(w.grid_dim, input.grid_dim);
    let measured: Result<RunResult, HfuseError> = measure_single(&gpu, &input);
    assert!(measured.expect("measure").total_cycles > 0);

    // A config error surfaces through HfuseError's Config variant.
    let mut bare = Session::new(GpuConfig::test_tiny());
    let nk = bare.add_kernel(SRC);
    let err = bare.single(nk).unwrap_err();
    assert!(matches!(err, HfuseError::Config(_)), "{err}");
    assert!(err.to_string().contains("no workload"));

    // The search entry point stays callable through the facade (exercised
    // end-to-end in tests/session_incremental.rs; just surface-check here).
    let _: fn(&Gpu, &FusionInput, &FusionInput, SearchOptions) -> Result<_, HfuseError> =
        search_fusion_config;
}

#[test]
fn kernels_root_lists_benchmarks_and_pairs() {
    assert!(AnyBenchmark::by_name("Batchnorm").is_some());
    assert!(all_pairs().len() >= 16, "the paper's sixteen pairs");
    assert!(family_pairs().len() >= 3, "new-family crosses");
    let b = AnyBenchmark::by_name("Hist").expect("bench");
    assert_eq!(b.benchmark().name(), "Hist");
}
