//! End-to-end functional-equivalence tests: for every benchmark pair of the
//! paper's evaluation, the horizontally fused kernel (at several thread
//! partitions), the vertically fused kernel, and native execution must all
//! produce exactly the outputs of the CPU reference implementations.

use hfuse::fusion::{horizontal_fuse, vertical::vertical_fuse_shaped, BlockShape};
use hfuse::ir::lower_kernel;
use hfuse::kernels::{AnyBenchmark, Benchmark};
use hfuse::sim::{Gpu, GpuConfig, Launch};

fn dims_for(b: &dyn Benchmark, threads: u32) -> Option<(u32, u32, u32)> {
    match b.shape() {
        BlockShape::Linear => Some((threads, 1, 1)),
        BlockShape::Rows { y } => {
            if threads.is_multiple_of(y) {
                Some((threads / y, y, 1))
            } else {
                None
            }
        }
    }
}

/// Runs the pair natively (functional) and checks both outputs.
fn check_native(a: &AnyBenchmark, b: &AnyBenchmark) {
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let (ba, bb) = (a.benchmark(), b.benchmark());
    let args_a = ba.setup(gpu.memory_mut());
    let args_b = bb.setup(gpu.memory_mut());
    let mk = |bench: &dyn Benchmark, args: &[hfuse::sim::ParamValue]| Launch {
        kernel: lower_kernel(&bench.kernel()).expect("lower").into(),
        grid_dim: bench.grid_dim(),
        block_dim: dims_for(bench, bench.default_threads()).expect("default dims"),
        dynamic_shared_bytes: bench.dynamic_shared(),
        args: args.to_vec(),
    };
    gpu.run_functional(&[mk(ba, &args_a), mk(bb, &args_b)])
        .expect("native run");
    ba.check(gpu.memory(), &args_a)
        .expect("first kernel output");
    bb.check(gpu.memory(), &args_b)
        .expect("second kernel output");
}

/// Fuses at partition (d1, d2) and checks both outputs.
fn check_fused(a: &AnyBenchmark, b: &AnyBenchmark, d1: u32, d2: u32) {
    let (ba, bb) = (a.benchmark(), b.benchmark());
    let (Some(dims1), Some(dims2)) = (dims_for(ba, d1), dims_for(bb, d2)) else {
        return; // partition incompatible with the block shape
    };
    let fused = horizontal_fuse(&ba.kernel(), dims1, &bb.kernel(), dims2)
        .unwrap_or_else(|e| panic!("fuse {}+{}: {e}", ba.name(), bb.name()));
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let args_a = ba.setup(gpu.memory_mut());
    let args_b = bb.setup(gpu.memory_mut());
    let mut args = args_a.clone();
    args.extend(args_b.iter().copied());
    gpu.run_functional(&[Launch {
        kernel: lower_kernel(&fused.function).expect("lower fused").into(),
        grid_dim: ba.grid_dim().max(bb.grid_dim()),
        block_dim: (d1 + d2, 1, 1),
        dynamic_shared_bytes: ba.dynamic_shared() + bb.dynamic_shared(),
        args,
    }])
    .unwrap_or_else(|e| panic!("run fused {}+{} at {d1}/{d2}: {e}", ba.name(), bb.name()));
    ba.check(gpu.memory(), &args_a)
        .unwrap_or_else(|e| panic!("{} wrong after fusion at {d1}/{d2}: {e}", ba.name()));
    bb.check(gpu.memory(), &args_b)
        .unwrap_or_else(|e| panic!("{} wrong after fusion at {d1}/{d2}: {e}", bb.name()));
}

/// Vertically fuses and checks both outputs.
fn check_vertical(a: &AnyBenchmark, b: &AnyBenchmark) {
    let (ba, bb) = (a.benchmark(), b.benchmark());
    if ba.grid_dim() != bb.grid_dim() {
        return;
    }
    let threads = ba.default_threads().max(bb.default_threads());
    let (Some(dims1), Some(dims2)) = (dims_for(ba, threads), dims_for(bb, threads)) else {
        return;
    };
    let fused = vertical_fuse_shaped(&ba.kernel(), dims1, &bb.kernel(), dims2)
        .unwrap_or_else(|e| panic!("vfuse {}+{}: {e}", ba.name(), bb.name()));
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let args_a = ba.setup(gpu.memory_mut());
    let args_b = bb.setup(gpu.memory_mut());
    let mut args = args_a.clone();
    args.extend(args_b.iter().copied());
    gpu.run_functional(&[Launch {
        kernel: lower_kernel(&fused.function).expect("lower vfused").into(),
        grid_dim: ba.grid_dim(),
        block_dim: (threads, 1, 1),
        dynamic_shared_bytes: ba.dynamic_shared() + bb.dynamic_shared(),
        args,
    }])
    .unwrap_or_else(|e| panic!("run vfused {}+{}: {e}", ba.name(), bb.name()));
    ba.check(gpu.memory(), &args_a)
        .unwrap_or_else(|e| panic!("{} wrong after vfuse: {e}", ba.name()));
    bb.check(gpu.memory(), &args_b)
        .unwrap_or_else(|e| panic!("{} wrong after vfuse: {e}", bb.name()));
}

/// Shrinks a benchmark's workload so the functional runs stay fast while
/// still covering every code path.
fn small(b: &AnyBenchmark) -> AnyBenchmark {
    b.scaled(0.25)
}

#[test]
fn all_dl_pairs_native_and_fused_match_references() {
    for pair in hfuse::kernels::dl_pairs() {
        let a = small(&pair.first);
        let b = small(&pair.second);
        check_native(&a, &b);
        // Uneven, even, and reversed-uneven partitions of a 1024 block.
        for (d1, d2) in [(512, 512), (768, 256), (256, 768)] {
            check_fused(&a, &b, d1, d2);
        }
        check_vertical(&a, &b);
    }
}

#[test]
fn all_crypto_pairs_native_and_fused_match_references() {
    for pair in hfuse::kernels::crypto_pairs() {
        // Crypto kernels are not tunable: the only partition is their
        // native 256/256.
        check_native(&pair.first, &pair.second);
        check_fused(&pair.first, &pair.second, 256, 256);
        check_vertical(&pair.first, &pair.second);
    }
}

#[test]
fn fused_order_does_not_matter_functionally() {
    // Fusing (A, B) and (B, A) must both be correct.
    let pair = &hfuse::kernels::dl_pairs()[1]; // Batchnorm+Hist
    let a = small(&pair.first);
    let b = small(&pair.second);
    check_fused(&b, &a, 512, 512);
}

#[test]
fn timed_and_functional_runs_agree_for_a_fused_pair() {
    // The timing engine must not change results.
    let pair = &hfuse::kernels::dl_pairs()[5]; // Hist+Maxpool
    let (a, b) = (small(&pair.first), small(&pair.second));
    let (ba, bb) = (a.benchmark(), b.benchmark());
    let fused =
        horizontal_fuse(&ba.kernel(), (512, 1, 1), &bb.kernel(), (512, 1, 1)).expect("fuse");
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    let args_a = ba.setup(gpu.memory_mut());
    let args_b = bb.setup(gpu.memory_mut());
    let mut args = args_a.clone();
    args.extend(args_b.iter().copied());
    gpu.run(&[Launch {
        kernel: lower_kernel(&fused.function).expect("lower").into(),
        grid_dim: ba.grid_dim(),
        block_dim: (1024, 1, 1),
        dynamic_shared_bytes: ba.dynamic_shared() + bb.dynamic_shared(),
        args,
    }])
    .expect("timed run");
    ba.check(gpu.memory(), &args_a).expect("first output");
    bb.check(gpu.memory(), &args_b).expect("second output");
}
