//! Property tests of the scalar ALU: every operation must agree with native
//! Rust arithmetic on the corresponding type, for arbitrary bit patterns.
//! The ALU is the single source of truth for both the interpreter and the
//! constant folder, so these properties guard the whole pipeline.

use proptest::prelude::*;
use thread_ir::alu::{bin, canon_load, cast, un};
use thread_ir::ir::{BinIr, ScalarTy, UnIr};

fn canon_i32(v: i32) -> u64 {
    v as i64 as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn i32_arithmetic_matches_wrapping_semantics(a in any::<i32>(), b in any::<i32>()) {
        let (ca, cb) = (canon_i32(a), canon_i32(b));
        prop_assert_eq!(bin(BinIr::Add, ScalarTy::I32, ca, cb), canon_i32(a.wrapping_add(b)));
        prop_assert_eq!(bin(BinIr::Sub, ScalarTy::I32, ca, cb), canon_i32(a.wrapping_sub(b)));
        prop_assert_eq!(bin(BinIr::Mul, ScalarTy::I32, ca, cb), canon_i32(a.wrapping_mul(b)));
        prop_assert_eq!(bin(BinIr::Xor, ScalarTy::I32, ca, cb), canon_i32(a ^ b));
        prop_assert_eq!(bin(BinIr::Min, ScalarTy::I32, ca, cb), canon_i32(a.min(b)));
        prop_assert_eq!(bin(BinIr::Lt, ScalarTy::I32, ca, cb), u64::from(a < b));
    }

    #[test]
    fn i32_division_by_zero_yields_zero(a in any::<i32>()) {
        prop_assert_eq!(bin(BinIr::Div, ScalarTy::I32, canon_i32(a), 0), 0);
        prop_assert_eq!(bin(BinIr::Rem, ScalarTy::I32, canon_i32(a), 0), 0);
    }

    #[test]
    fn i32_division_matches_rust(a in any::<i32>(), b in any::<i32>().prop_filter("nonzero", |b| *b != 0)) {
        prop_assert_eq!(
            bin(BinIr::Div, ScalarTy::I32, canon_i32(a), canon_i32(b)),
            canon_i32(a.wrapping_div(b))
        );
        prop_assert_eq!(
            bin(BinIr::Rem, ScalarTy::I32, canon_i32(a), canon_i32(b)),
            canon_i32(a.wrapping_rem(b))
        );
    }

    #[test]
    fn u32_results_are_zero_extended(a in any::<u32>(), b in any::<u32>()) {
        for op in [BinIr::Add, BinIr::Sub, BinIr::Mul, BinIr::And, BinIr::Or, BinIr::Xor] {
            let r = bin(op, ScalarTy::U32, u64::from(a), u64::from(b));
            prop_assert!(r <= u64::from(u32::MAX), "{op:?} result not canonical: {r:#x}");
        }
    }

    #[test]
    fn u64_shifts_clamp_at_width(a in any::<u64>(), s in 64u64..2000) {
        prop_assert_eq!(bin(BinIr::Shl, ScalarTy::U64, a, s), 0);
        prop_assert_eq!(bin(BinIr::Shr, ScalarTy::U64, a, s), 0);
    }

    #[test]
    fn i32_shr_is_arithmetic(a in any::<i32>(), s in 0u64..32) {
        prop_assert_eq!(
            bin(BinIr::Shr, ScalarTy::I32, canon_i32(a), s),
            canon_i32(a >> s)
        );
    }

    #[test]
    fn f32_bin_matches_ieee(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let (ca, cb) = (u64::from(a.to_bits()), u64::from(b.to_bits()));
        let as_f = |r: u64| f32::from_bits(r as u32);
        prop_assert_eq!(as_f(bin(BinIr::Add, ScalarTy::F32, ca, cb)).to_bits(), (a + b).to_bits());
        prop_assert_eq!(as_f(bin(BinIr::Mul, ScalarTy::F32, ca, cb)).to_bits(), (a * b).to_bits());
        prop_assert_eq!(bin(BinIr::Le, ScalarTy::F32, ca, cb), u64::from(a <= b));
    }

    #[test]
    fn cast_i32_f64_round_trips_exactly(a in any::<i32>()) {
        // i32 → f64 → i32 is lossless.
        let f = cast(ScalarTy::I32, ScalarTy::F64, canon_i32(a));
        let back = cast(ScalarTy::F64, ScalarTy::I32, f);
        prop_assert_eq!(back, canon_i32(a));
    }

    #[test]
    fn cast_truncation_matches_rust_as(a in any::<u64>()) {
        prop_assert_eq!(cast(ScalarTy::U64, ScalarTy::U32, a), u64::from(a as u32));
        prop_assert_eq!(cast(ScalarTy::U64, ScalarTy::I32, a), canon_i32(a as u32 as i32));
    }

    #[test]
    fn float_to_int_cast_saturates_like_rust(a in any::<f32>()) {
        let bits = u64::from(a.to_bits());
        prop_assert_eq!(cast(ScalarTy::F32, ScalarTy::I32, bits), canon_i32(a as i32));
        prop_assert_eq!(cast(ScalarTy::F32, ScalarTy::U32, bits), u64::from(a as u32));
    }

    #[test]
    fn canon_load_sign_behaviour(raw in any::<u32>()) {
        prop_assert_eq!(canon_load(ScalarTy::I32, u64::from(raw)), canon_i32(raw as i32));
        prop_assert_eq!(canon_load(ScalarTy::U32, u64::from(raw)), u64::from(raw));
    }

    #[test]
    fn unary_neg_matches_rust(a in any::<i32>()) {
        prop_assert_eq!(un(UnIr::Neg, ScalarTy::I32, canon_i32(a)), canon_i32(a.wrapping_neg()));
    }

    #[test]
    fn unary_not_is_boolean(a in any::<u64>()) {
        let r = un(UnIr::Not, ScalarTy::U64, a);
        prop_assert_eq!(r, u64::from(a == 0));
    }

    #[test]
    fn abs_matches_rust(a in any::<f32>()) {
        prop_assume!(!a.is_nan());
        let r = un(UnIr::Abs, ScalarTy::F32, u64::from(a.to_bits()));
        prop_assert_eq!(f32::from_bits(r as u32).to_bits(), a.abs().to_bits());
    }
}
