//! Property tests of the scalar ALU: every operation must agree with native
//! Rust arithmetic on the corresponding type, for arbitrary bit patterns.
//! The ALU is the single source of truth for both the interpreter and the
//! constant folder, so these properties guard the whole pipeline.
//!
//! Inputs come from a seeded SplitMix64 generator (dependency-free, so the
//! workspace builds with no network access); every run covers the same
//! deterministic sample plus hand-picked edge cases.

use thread_ir::alu::{bin, canon_load, cast, un};
use thread_ir::ir::{BinIr, ScalarTy, UnIr};

/// SplitMix64: tiny, seedable, full-period 64-bit generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn u32(&mut self) -> u32 {
        self.next() as u32
    }

    fn i32(&mut self) -> i32 {
        self.next() as i32
    }

    fn f32(&mut self) -> f32 {
        f32::from_bits(self.u32())
    }
}

const CASES: usize = 2048;

/// Edge-case i32 values mixed into every random sweep.
const I32_EDGES: &[i32] = &[0, 1, -1, i32::MIN, i32::MAX, i32::MIN + 1, 2, -2];

fn i32_pairs() -> impl Iterator<Item = (i32, i32)> {
    let mut rng = Rng(0x5eed_0001);
    let edges = I32_EDGES
        .iter()
        .flat_map(|&a| I32_EDGES.iter().map(move |&b| (a, b)));
    let random: Vec<(i32, i32)> = (0..CASES).map(|_| (rng.i32(), rng.i32())).collect();
    edges.chain(random)
}

fn canon_i32(v: i32) -> u64 {
    v as i64 as u64
}

#[test]
fn i32_arithmetic_matches_wrapping_semantics() {
    for (a, b) in i32_pairs() {
        let (ca, cb) = (canon_i32(a), canon_i32(b));
        assert_eq!(
            bin(BinIr::Add, ScalarTy::I32, ca, cb),
            canon_i32(a.wrapping_add(b))
        );
        assert_eq!(
            bin(BinIr::Sub, ScalarTy::I32, ca, cb),
            canon_i32(a.wrapping_sub(b))
        );
        assert_eq!(
            bin(BinIr::Mul, ScalarTy::I32, ca, cb),
            canon_i32(a.wrapping_mul(b))
        );
        assert_eq!(bin(BinIr::Xor, ScalarTy::I32, ca, cb), canon_i32(a ^ b));
        assert_eq!(bin(BinIr::Min, ScalarTy::I32, ca, cb), canon_i32(a.min(b)));
        assert_eq!(bin(BinIr::Lt, ScalarTy::I32, ca, cb), u64::from(a < b));
    }
}

#[test]
fn i32_division_by_zero_yields_zero() {
    for (a, _) in i32_pairs() {
        assert_eq!(bin(BinIr::Div, ScalarTy::I32, canon_i32(a), 0), 0);
        assert_eq!(bin(BinIr::Rem, ScalarTy::I32, canon_i32(a), 0), 0);
    }
}

#[test]
fn i32_division_matches_rust() {
    for (a, b) in i32_pairs() {
        if b == 0 {
            continue;
        }
        assert_eq!(
            bin(BinIr::Div, ScalarTy::I32, canon_i32(a), canon_i32(b)),
            canon_i32(a.wrapping_div(b))
        );
        assert_eq!(
            bin(BinIr::Rem, ScalarTy::I32, canon_i32(a), canon_i32(b)),
            canon_i32(a.wrapping_rem(b))
        );
    }
}

#[test]
fn u32_results_are_zero_extended() {
    let mut rng = Rng(0x5eed_0002);
    for _ in 0..CASES {
        let (a, b) = (rng.u32(), rng.u32());
        for op in [
            BinIr::Add,
            BinIr::Sub,
            BinIr::Mul,
            BinIr::And,
            BinIr::Or,
            BinIr::Xor,
        ] {
            let r = bin(op, ScalarTy::U32, u64::from(a), u64::from(b));
            assert!(
                r <= u64::from(u32::MAX),
                "{op:?} result not canonical: {r:#x}"
            );
        }
    }
}

#[test]
fn u64_shifts_clamp_at_width() {
    let mut rng = Rng(0x5eed_0003);
    for _ in 0..CASES {
        let a = rng.next();
        let s = 64 + rng.next() % (2000 - 64);
        assert_eq!(bin(BinIr::Shl, ScalarTy::U64, a, s), 0);
        assert_eq!(bin(BinIr::Shr, ScalarTy::U64, a, s), 0);
    }
}

#[test]
fn i32_shr_is_arithmetic() {
    let mut rng = Rng(0x5eed_0004);
    for _ in 0..CASES {
        let a = rng.i32();
        let s = rng.next() % 32;
        assert_eq!(
            bin(BinIr::Shr, ScalarTy::I32, canon_i32(a), s),
            canon_i32(a >> s)
        );
    }
}

#[test]
fn f32_bin_matches_ieee() {
    let mut rng = Rng(0x5eed_0005);
    let mut tested = 0;
    while tested < CASES {
        let (a, b) = (rng.f32(), rng.f32());
        if a.is_nan() || b.is_nan() {
            continue;
        }
        tested += 1;
        let (ca, cb) = (u64::from(a.to_bits()), u64::from(b.to_bits()));
        let as_f = |r: u64| f32::from_bits(r as u32);
        assert_eq!(
            as_f(bin(BinIr::Add, ScalarTy::F32, ca, cb)).to_bits(),
            (a + b).to_bits()
        );
        assert_eq!(
            as_f(bin(BinIr::Mul, ScalarTy::F32, ca, cb)).to_bits(),
            (a * b).to_bits()
        );
        assert_eq!(bin(BinIr::Le, ScalarTy::F32, ca, cb), u64::from(a <= b));
    }
}

#[test]
fn cast_i32_f64_round_trips_exactly() {
    for (a, _) in i32_pairs() {
        // i32 → f64 → i32 is lossless.
        let f = cast(ScalarTy::I32, ScalarTy::F64, canon_i32(a));
        let back = cast(ScalarTy::F64, ScalarTy::I32, f);
        assert_eq!(back, canon_i32(a));
    }
}

#[test]
fn cast_truncation_matches_rust_as() {
    let mut rng = Rng(0x5eed_0006);
    for _ in 0..CASES {
        let a = rng.next();
        assert_eq!(cast(ScalarTy::U64, ScalarTy::U32, a), u64::from(a as u32));
        assert_eq!(
            cast(ScalarTy::U64, ScalarTy::I32, a),
            canon_i32(a as u32 as i32)
        );
    }
}

#[test]
fn float_to_int_cast_saturates_like_rust() {
    let mut rng = Rng(0x5eed_0007);
    for _ in 0..CASES {
        let a = rng.f32();
        let bits = u64::from(a.to_bits());
        assert_eq!(
            cast(ScalarTy::F32, ScalarTy::I32, bits),
            canon_i32(a as i32)
        );
        assert_eq!(
            cast(ScalarTy::F32, ScalarTy::U32, bits),
            u64::from(a as u32)
        );
    }
}

#[test]
fn canon_load_sign_behaviour() {
    let mut rng = Rng(0x5eed_0008);
    for _ in 0..CASES {
        let raw = rng.u32();
        assert_eq!(
            canon_load(ScalarTy::I32, u64::from(raw)),
            canon_i32(raw as i32)
        );
        assert_eq!(canon_load(ScalarTy::U32, u64::from(raw)), u64::from(raw));
    }
}

#[test]
fn unary_neg_matches_rust() {
    for (a, _) in i32_pairs() {
        assert_eq!(
            un(UnIr::Neg, ScalarTy::I32, canon_i32(a)),
            canon_i32(a.wrapping_neg())
        );
    }
}

#[test]
fn unary_not_is_boolean() {
    let mut rng = Rng(0x5eed_0009);
    for a in (0..CASES).map(|_| rng.next()).chain([0, 1, u64::MAX]) {
        let r = un(UnIr::Not, ScalarTy::U64, a);
        assert_eq!(r, u64::from(a == 0));
    }
}

#[test]
fn abs_matches_rust() {
    let mut rng = Rng(0x5eed_000a);
    let mut tested = 0;
    while tested < CASES {
        let a = rng.f32();
        if a.is_nan() {
            continue;
        }
        tested += 1;
        let r = un(UnIr::Abs, ScalarTy::F32, u64::from(a.to_bits()));
        assert_eq!(f32::from_bits(r as u32).to_bits(), a.abs().to_bits());
    }
}
