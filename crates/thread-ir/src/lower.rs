//! Lowering from the CUDA-dialect AST to the flat SIMT IR.
//!
//! Control flow becomes explicit branches over instruction indices; each
//! thread later executes the stream with its own program counter, so
//! divergence (including the `goto` guards HFuse generates) needs no special
//! handling here.
//!
//! ## Value representation
//!
//! Registers hold raw 64-bit words. 32-bit integers are kept *canonical*:
//! `I32` values are sign-extended, `U32` values zero-extended, and `F32`
//! values live in the low 32 bits. Every producer re-canonicalizes, so
//! consumers can compare 64-bit words directly.

use std::collections::HashMap;

use cuda_frontend::ast::SwitchCase;
use cuda_frontend::ast::{
    const_eval_int, ArrayLen, AssignOp, Axis, BinOp, Block, BuiltinVar, Expr, Function, Stmt, Ty,
    UnOp, VarDecl,
};
use cuda_frontend::typeck::{promote, Intrinsic};
use cuda_frontend::FrontendError;

use crate::ir::{
    AtomOp, BarCount, BinIr, Inst, KernelIr, ParamKind, Reg, ScalarTy, ShflKind, SpecialReg, UnIr,
    VoteKind,
};

/// Lowers a preprocessed kernel to IR and computes its register pressure.
///
/// # Errors
///
/// Returns [`FrontendError`] for constructs outside the dialect (unknown
/// calls, non-constant array sizes, unsupported lvalues, undefined labels).
pub fn lower_kernel(f: &Function) -> Result<KernelIr, FrontendError> {
    let mut kernel = lower_kernel_unoptimized(f)?;
    crate::opt::optimize(&mut kernel);
    Ok(kernel)
}

/// Lowers without running the optimizer (used by the optimizer's own tests
/// and the optimization-ablation benches).
///
/// # Errors
///
/// Same as [`lower_kernel`].
pub fn lower_kernel_unoptimized(f: &Function) -> Result<KernelIr, FrontendError> {
    let mut lw = Lowerer::new(&f.name);
    for (i, p) in f.params.iter().enumerate() {
        let reg = lw.fresh();
        lw.emit(Inst::LdParam {
            dst: reg,
            index: i as u32,
        });
        lw.params.push(match &p.ty {
            Ty::Ptr(_) => ParamKind::Pointer,
            t => ParamKind::Scalar(scalar_of(t)),
        });
        lw.declare(&p.name, Binding::Scalar(reg, p.ty.clone()));
    }
    lw.materialize_constants(&f.body);
    lw.block(&f.body)?;
    lw.emit(Inst::Ret);
    lw.finish()
}

/// What a name is bound to.
#[derive(Debug, Clone)]
enum Binding {
    /// Scalar (or pointer-valued) variable living in a register.
    Scalar(Reg, Ty),
    /// `__shared__ T name[N]` at a static shared offset.
    SharedArray { offset: u32, elem: Ty },
    /// `extern __shared__ T name[]` — the dynamic region.
    DynSharedArray { elem: Ty },
    /// Per-thread local array.
    LocalArray { offset: u32, elem: Ty },
}

/// An assignable location.
enum Place {
    Reg(Reg, Ty),
    Mem { addr: Reg, ty: Ty },
}

struct LoopCtx {
    /// `None` for `switch` frames: `continue` skips them and binds to the
    /// innermost enclosing loop.
    continue_label: Option<LabelId>,
    break_label: LabelId,
}

type LabelId = usize;

struct Lowerer {
    name: String,
    insts: Vec<Inst>,
    next_reg: Reg,
    scopes: Vec<HashMap<String, Binding>>,
    labels: Vec<Option<usize>>,
    user_labels: HashMap<String, LabelId>,
    loops: Vec<LoopCtx>,
    shared_offset: u32,
    local_offset: u32,
    uses_dynamic_shared: bool,
    params: Vec<ParamKind>,
    /// Function-entry constant pool: literals and builtin reads are
    /// materialized once (their definitions dominate every use).
    const_pool: HashMap<ConstKey, Reg>,
    /// Set once body lowering starts: new constants can no longer join the
    /// pool (a definition emitted mid-body might not dominate later uses).
    pool_frozen: bool,
}

/// Key of a pooled entry-block constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    Imm(u64),
    Special(SpecialReg),
}

impl Lowerer {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            insts: Vec::new(),
            next_reg: 0,
            scopes: vec![HashMap::new()],
            labels: Vec::new(),
            user_labels: HashMap::new(),
            loops: Vec::new(),
            shared_offset: 0,
            local_offset: 0,
            uses_dynamic_shared: false,
            params: Vec::new(),
            const_pool: HashMap::new(),
            pool_frozen: false,
        }
    }

    /// Emits (or reuses) a pooled immediate. After the entry block, misses
    /// emit an unpooled definition (it might not dominate later uses).
    fn imm(&mut self, bits: u64) -> Reg {
        if let Some(&r) = self.const_pool.get(&ConstKey::Imm(bits)) {
            return r;
        }
        let dst = self.fresh();
        self.emit(Inst::Imm { dst, value: bits });
        if !self.pool_frozen {
            self.const_pool.insert(ConstKey::Imm(bits), dst);
        }
        dst
    }

    /// Emits (or reuses) a pooled special-register read (same freezing rule
    /// as [`Self::imm`]).
    fn special(&mut self, reg: SpecialReg) -> Reg {
        if let Some(&r) = self.const_pool.get(&ConstKey::Special(reg)) {
            return r;
        }
        let dst = self.fresh();
        self.emit(Inst::Special { dst, reg });
        if !self.pool_frozen {
            self.const_pool.insert(ConstKey::Special(reg), dst);
        }
        dst
    }

    /// Pre-materializes every literal and builtin the body mentions, so the
    /// pooled definitions dominate all uses regardless of control flow.
    fn materialize_constants(&mut self, body: &Block) {
        let mut clone = body.clone();
        let mut keys: Vec<ConstKey> = Vec::new();
        cuda_frontend::transform::visit::walk_exprs_block(&mut clone, &mut |e| match e {
            Expr::IntLit(v, ty) => keys.push(ConstKey::Imm(canonical_int_bits(*v, ty))),
            Expr::FloatLit(v, ty) => {
                let bits = match ty {
                    Ty::F32 => u64::from((*v as f32).to_bits()),
                    _ => v.to_bits(),
                };
                keys.push(ConstKey::Imm(bits));
            }
            Expr::Builtin(b) => keys.push(ConstKey::Special(special_of(*b))),
            _ => {}
        });
        // Constants the lowering itself synthesizes (truthiness zero,
        // increment one, pointer scales, default shuffle width).
        for bits in [0u64, 1, 2, 4, 8, 32] {
            keys.push(ConstKey::Imm(bits));
        }
        for key in keys {
            match key {
                ConstKey::Imm(bits) => {
                    self.imm(bits);
                }
                ConstKey::Special(r) => {
                    self.special(r);
                }
            }
        }
        self.pool_frozen = true;
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    fn declare(&mut self, name: &str, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), binding);
    }

    fn lookup(&self, name: &str) -> Result<&Binding, FrontendError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .ok_or_else(|| FrontendError::new(format!("undeclared variable `{name}`")))
    }

    // ---- labels ----------------------------------------------------------

    fn new_label(&mut self) -> LabelId {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind_label(&mut self, label: LabelId) {
        debug_assert!(self.labels[label].is_none(), "label bound twice");
        self.labels[label] = Some(self.insts.len());
    }

    fn user_label(&mut self, name: &str) -> LabelId {
        if let Some(&l) = self.user_labels.get(name) {
            return l;
        }
        let l = self.new_label();
        self.user_labels.insert(name.to_owned(), l);
        l
    }

    /// Emits a branch whose target is patched in [`Self::finish`]. Targets
    /// temporarily hold the label id.
    fn emit_bra(&mut self, cond: Reg, if_zero: bool, label: LabelId) {
        self.emit(Inst::Bra {
            cond,
            if_zero,
            target: label,
        });
    }

    fn emit_jmp(&mut self, label: LabelId) {
        self.emit(Inst::Jmp { target: label });
    }

    fn finish(mut self) -> Result<KernelIr, FrontendError> {
        // Patch branch targets from label ids to instruction indices.
        let resolve = |labels: &[Option<usize>], id: usize| -> Result<usize, FrontendError> {
            labels[id].ok_or_else(|| FrontendError::new("goto to undefined label"))
        };
        for inst in &mut self.insts {
            match inst {
                Inst::Bra { target, .. } | Inst::Jmp { target } => {
                    *target = resolve(&self.labels, *target)?;
                }
                // The dynamic shared region starts after all statics; its
                // offset is only known once every static is allocated.
                Inst::SharedAddr { offset, .. } if *offset == u32::MAX => {
                    *offset = self.shared_offset;
                }
                _ => {}
            }
        }
        let mut kernel = KernelIr {
            name: self.name,
            insts: self.insts,
            num_regs: self.next_reg,
            params: self.params,
            shared_static_bytes: self.shared_offset,
            uses_dynamic_shared: self.uses_dynamic_shared,
            dynamic_shared_offset: self.shared_offset,
            local_bytes: self.local_offset,
            spilled_regs: Vec::new(),
            pressure: 0,
        };
        kernel.pressure = crate::liveness::register_pressure(&kernel);
        crate::verify::verify(&kernel).map_err(FrontendError::new)?;
        Ok(kernel)
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self, b: &Block) -> Result<(), FrontendError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), FrontendError> {
        match s {
            Stmt::Decl(d) => self.decl(d),
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::If(cond, then_b, else_b) => {
                let (c, cty) = self.expr(cond)?;
                let c = self.truthy(c, &cty);
                let l_else = self.new_label();
                self.emit_bra(c, true, l_else);
                self.block(then_b)?;
                match else_b {
                    Some(else_b) => {
                        let l_end = self.new_label();
                        self.emit_jmp(l_end);
                        self.bind_label(l_else);
                        self.block(else_b)?;
                        self.bind_label(l_end);
                    }
                    None => self.bind_label(l_else),
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let l_cond = self.new_label();
                let l_end = self.new_label();
                self.bind_label(l_cond);
                let (c, cty) = self.expr(cond)?;
                let c = self.truthy(c, &cty);
                self.emit_bra(c, true, l_end);
                self.loops.push(LoopCtx {
                    continue_label: Some(l_cond),
                    break_label: l_end,
                });
                self.block(body)?;
                self.loops.pop();
                self.emit_jmp(l_cond);
                self.bind_label(l_end);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let l_cond = self.new_label();
                let l_cont = self.new_label();
                let l_end = self.new_label();
                self.bind_label(l_cond);
                if let Some(cond) = cond {
                    let (c, cty) = self.expr(cond)?;
                    let c = self.truthy(c, &cty);
                    self.emit_bra(c, true, l_end);
                }
                self.loops.push(LoopCtx {
                    continue_label: Some(l_cont),
                    break_label: l_end,
                });
                self.block(body)?;
                self.loops.pop();
                self.bind_label(l_cont);
                if let Some(step) = step {
                    self.expr(step)?;
                }
                self.emit_jmp(l_cond);
                self.bind_label(l_end);
                self.scopes.pop();
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let l_top = self.new_label();
                let l_cond = self.new_label();
                let l_end = self.new_label();
                self.bind_label(l_top);
                self.loops.push(LoopCtx {
                    continue_label: Some(l_cond),
                    break_label: l_end,
                });
                self.block(body)?;
                self.loops.pop();
                self.bind_label(l_cond);
                let (c, cty) = self.expr(cond)?;
                let c = self.truthy(c, &cty);
                self.emit_bra(c, false, l_top);
                self.bind_label(l_end);
                Ok(())
            }
            Stmt::Switch { scrutinee, cases } => self.switch(scrutinee, cases),
            Stmt::Return(None) => {
                self.emit(Inst::Ret);
                Ok(())
            }
            Stmt::Return(Some(_)) => Err(FrontendError::new("kernels cannot return a value")),
            Stmt::Break => {
                let l = self
                    .loops
                    .last()
                    .ok_or_else(|| FrontendError::new("`break` outside loop"))?
                    .break_label;
                self.emit_jmp(l);
                Ok(())
            }
            Stmt::Continue => {
                let l = self
                    .loops
                    .iter()
                    .rev()
                    .find_map(|ctx| ctx.continue_label)
                    .ok_or_else(|| FrontendError::new("`continue` outside loop"))?;
                self.emit_jmp(l);
                Ok(())
            }
            Stmt::Block(b) => self.block(b),
            Stmt::SyncThreads => {
                self.emit(Inst::Bar {
                    id: 0,
                    count: BarCount::All,
                });
                Ok(())
            }
            Stmt::BarSync { id, count } => {
                self.emit(Inst::Bar {
                    id: *id,
                    count: BarCount::Fixed(*count),
                });
                Ok(())
            }
            Stmt::Goto(name) => {
                let l = self.user_label(name);
                self.emit_jmp(l);
                Ok(())
            }
            Stmt::Label(name) => {
                let l = self.user_label(name);
                self.bind_label(l);
                Ok(())
            }
        }
    }

    /// Lowers `switch` with C fallthrough: evaluate the scrutinee once,
    /// emit a compare/branch dispatch chain to per-case labels, then the
    /// case bodies in order (fallthrough is the natural successor).
    fn switch(&mut self, scrutinee: &Expr, cases: &[SwitchCase]) -> Result<(), FrontendError> {
        let (v, vty) = self.expr(scrutinee)?;
        let common = if vty.is_integer() {
            promote(&vty, &Ty::I32)
        } else {
            vty.clone()
        };
        if !common.is_integer() {
            return Err(FrontendError::new("switch scrutinee must be an integer"));
        }
        let v = self.coerce(v, &vty, &common);
        let l_end = self.new_label();
        let case_labels: Vec<LabelId> = cases.iter().map(|_| self.new_label()).collect();

        // Dispatch chain.
        let mut default: Option<LabelId> = None;
        for (case, &label) in cases.iter().zip(&case_labels) {
            match case.value {
                Some(k) => {
                    let kreg = self.imm(canonical_int_bits(k, &common));
                    let eq = self.fresh();
                    self.emit(Inst::Bin {
                        op: BinIr::Eq,
                        ty: scalar_of(&common),
                        dst: eq,
                        a: v,
                        b: kreg,
                    });
                    self.emit_bra(eq, false, label);
                }
                None => default = Some(label),
            }
        }
        self.emit_jmp(default.unwrap_or(l_end));

        // Bodies, in source order; `break` exits, fallthrough continues.
        self.loops.push(LoopCtx {
            continue_label: None,
            break_label: l_end,
        });
        self.scopes.push(HashMap::new());
        for (case, &label) in cases.iter().zip(&case_labels) {
            self.bind_label(label);
            for s in &case.body {
                self.stmt(s)?;
            }
        }
        self.scopes.pop();
        self.loops.pop();
        self.bind_label(l_end);
        Ok(())
    }

    fn decl(&mut self, d: &VarDecl) -> Result<(), FrontendError> {
        match (&d.array_len, d.quals.shared) {
            (None, false) => {
                let reg = self.fresh();
                if let Some(init) = &d.init {
                    let (v, vty) = self.expr(init)?;
                    let v = self.coerce(v, &vty, &d.ty);
                    self.emit(Inst::Mov { dst: reg, src: v });
                }
                self.declare(&d.name, Binding::Scalar(reg, d.ty.clone()));
                Ok(())
            }
            (Some(ArrayLen::Fixed(len)), shared) => {
                if d.init.is_some() {
                    return Err(FrontendError::new("array initializers are not supported"));
                }
                let n = const_eval_int(len).ok_or_else(|| {
                    FrontendError::new(format!("array size of `{}` must be constant", d.name))
                })? as u32;
                let bytes = align8(n * d.ty.size_bytes());
                if shared {
                    let offset = self.shared_offset;
                    self.shared_offset += bytes;
                    self.declare(
                        &d.name,
                        Binding::SharedArray {
                            offset,
                            elem: d.ty.clone(),
                        },
                    );
                } else {
                    let offset = self.local_offset;
                    self.local_offset += bytes;
                    self.declare(
                        &d.name,
                        Binding::LocalArray {
                            offset,
                            elem: d.ty.clone(),
                        },
                    );
                }
                Ok(())
            }
            (Some(ArrayLen::Unsized), _) => {
                if !d.quals.extern_shared {
                    return Err(FrontendError::new(format!(
                        "unsized array `{}` must be extern __shared__",
                        d.name
                    )));
                }
                self.uses_dynamic_shared = true;
                self.declare(&d.name, Binding::DynSharedArray { elem: d.ty.clone() });
                Ok(())
            }
            (None, true) => {
                // Scalar __shared__ variable: allocate one element.
                let bytes = align8(d.ty.size_bytes());
                let offset = self.shared_offset;
                self.shared_offset += bytes;
                self.declare(
                    &d.name,
                    Binding::SharedArray {
                        offset,
                        elem: d.ty.clone(),
                    },
                );
                Ok(())
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    /// Lowers `e`, returning the result register and its static type.
    fn expr(&mut self, e: &Expr) -> Result<(Reg, Ty), FrontendError> {
        match e {
            Expr::IntLit(v, ty) => {
                let bits = canonical_int_bits(*v, ty);
                let dst = self.imm(bits);
                Ok((dst, if *ty == Ty::Bool { Ty::I32 } else { ty.clone() }))
            }
            Expr::FloatLit(v, ty) => {
                let bits = match ty {
                    Ty::F32 => u64::from((*v as f32).to_bits()),
                    _ => v.to_bits(),
                };
                let dst = self.imm(bits);
                Ok((dst, ty.clone()))
            }
            Expr::Ident(name) => match self.lookup(name)?.clone() {
                Binding::Scalar(reg, ty) => Ok((reg, ty)),
                // Arrays decay to pointers.
                Binding::SharedArray { offset, elem } => {
                    let dst = self.fresh();
                    self.emit(Inst::SharedAddr { dst, offset });
                    Ok((dst, elem.ptr_to()))
                }
                Binding::DynSharedArray { elem } => {
                    let dst = self.fresh();
                    // The dynamic region starts right after the statics; the
                    // simulator adds the block's frame base.
                    self.emit(Inst::SharedAddr {
                        dst,
                        offset: u32::MAX,
                    });
                    Ok((dst, elem.ptr_to()))
                }
                Binding::LocalArray { offset, elem } => {
                    let dst = self.fresh();
                    self.emit(Inst::LocalAddr { dst, offset });
                    Ok((dst, elem.ptr_to()))
                }
            },
            Expr::Builtin(b) => Ok((self.special(special_of(*b)), Ty::I32)),
            Expr::Unary(op, inner) => {
                let (a, aty) = self.expr(inner)?;
                match op {
                    UnOp::Not => {
                        let a = self.truthy(a, &aty);
                        let dst = self.fresh();
                        self.emit(Inst::Un {
                            op: UnIr::Not,
                            ty: ScalarTy::I32,
                            dst,
                            a,
                        });
                        Ok((dst, Ty::I32))
                    }
                    UnOp::Neg => {
                        let rty = promote(&aty, &Ty::I32);
                        let a = self.coerce(a, &aty, &rty);
                        let dst = self.fresh();
                        self.emit(Inst::Un {
                            op: UnIr::Neg,
                            ty: scalar_of(&rty),
                            dst,
                            a,
                        });
                        Ok((dst, rty))
                    }
                    UnOp::BitNot => {
                        let rty = promote(&aty, &Ty::I32);
                        let a = self.coerce(a, &aty, &rty);
                        let dst = self.fresh();
                        self.emit(Inst::Un {
                            op: UnIr::BitNot,
                            ty: scalar_of(&rty),
                            dst,
                            a,
                        });
                        Ok((dst, rty))
                    }
                }
            }
            Expr::Binary(op, lhs, rhs) if op.is_logical() => self.logical(*op, lhs, rhs),
            Expr::Binary(op, lhs, rhs) => {
                let (a, aty) = self.expr(lhs)?;
                let (b, bty) = self.expr(rhs)?;
                self.binary(*op, a, &aty, b, &bty)
            }
            Expr::Assign(op, lhs, rhs) => {
                let place = self.place(lhs)?;
                let val = match op {
                    AssignOp::Assign => {
                        let (v, vty) = self.expr(rhs)?;
                        let target_ty = place_ty(&place);
                        self.coerce(v, &vty, &target_ty)
                    }
                    AssignOp::Compound(bin) => {
                        let (old, old_ty) = self.read_place(&place);
                        let (v, vty) = self.expr(rhs)?;
                        let (res, res_ty) = self.binary(*bin, old, &old_ty, v, &vty)?;
                        self.coerce(res, &res_ty, &old_ty)
                    }
                };
                self.write_place(&place, val);
                Ok((val, place_ty(&place)))
            }
            Expr::IncDec { inc, pre, target } => {
                let place = self.place(target)?;
                let (old, ty) = self.read_place(&place);
                // Preserve the old value for the postfix result.
                let saved = self.fresh();
                self.emit(Inst::Mov {
                    dst: saved,
                    src: old,
                });
                let bits = if ty.is_float() {
                    match scalar_of(&ty) {
                        ScalarTy::F32 => u64::from(1f32.to_bits()),
                        _ => 1f64.to_bits(),
                    }
                } else {
                    1
                };
                let one = self.imm(bits);
                let dst = self.fresh();
                let op = if *inc { BinIr::Add } else { BinIr::Sub };
                self.emit(Inst::Bin {
                    op,
                    ty: scalar_of(&ty),
                    dst,
                    a: old,
                    b: one,
                });
                // Pointer step must scale — but `p++` on pointers is not in
                // the dialect; reject for clarity.
                if ty.is_pointer() {
                    return Err(FrontendError::new("++/-- on pointers is not supported"));
                }
                self.write_place(&place, dst);
                Ok((if *pre { dst } else { saved }, ty))
            }
            Expr::Ternary(cond, t, f) => {
                let (c, cty) = self.expr(cond)?;
                let c = self.truthy(c, &cty);
                let l_else = self.new_label();
                let l_end = self.new_label();
                let result = self.fresh();
                self.emit_bra(c, true, l_else);
                let (tv, tty) = self.expr(t)?;
                // Result type: promote both arms (pointers win).
                let fty_probe = self.probe_ty(f)?;
                let rty = if tty.is_pointer() {
                    tty.clone()
                } else if fty_probe.is_pointer() {
                    fty_probe.clone()
                } else {
                    promote(&tty, &fty_probe)
                };
                let tv = self.coerce(tv, &tty, &rty);
                self.emit(Inst::Mov {
                    dst: result,
                    src: tv,
                });
                self.emit_jmp(l_end);
                self.bind_label(l_else);
                let (fv, fty) = self.expr(f)?;
                let fv = self.coerce(fv, &fty, &rty);
                self.emit(Inst::Mov {
                    dst: result,
                    src: fv,
                });
                self.bind_label(l_end);
                Ok((result, rty))
            }
            Expr::Call(name, args) => self.call(name, args),
            Expr::Index(..) | Expr::Deref(_) => {
                let place = self.place(e)?;
                Ok(self.read_place(&place))
            }
            Expr::Cast(ty, inner) => {
                let (v, vty) = self.expr(inner)?;
                let r = self.coerce(v, &vty, ty);
                Ok((r, ty.clone()))
            }
            Expr::AddrOf(inner) => {
                let place = self.place(inner)?;
                match place {
                    Place::Mem { addr, ty } => Ok((addr, ty.ptr_to())),
                    Place::Reg(..) => Err(FrontendError::new(
                        "cannot take the address of a register variable",
                    )),
                }
            }
        }
    }

    /// Infers the type of `f` without emitting code (used for ternary result
    /// typing). Falls back to re-lowering into a scratch buffer.
    fn probe_ty(&mut self, e: &Expr) -> Result<Ty, FrontendError> {
        // Cheap structural probe for the common cases.
        Ok(match e {
            Expr::IntLit(_, ty) => {
                if *ty == Ty::Bool {
                    Ty::I32
                } else {
                    ty.clone()
                }
            }
            Expr::FloatLit(_, ty) => ty.clone(),
            Expr::Cast(ty, _) => ty.clone(),
            Expr::Ident(name) => match self.lookup(name)? {
                Binding::Scalar(_, ty) => ty.clone(),
                Binding::SharedArray { elem, .. }
                | Binding::DynSharedArray { elem }
                | Binding::LocalArray { elem, .. } => elem.clone().ptr_to(),
            },
            Expr::Builtin(_) => Ty::I32,
            Expr::Index(base, _) => {
                let bt = self.probe_ty(base)?;
                bt.pointee()
                    .cloned()
                    .ok_or_else(|| FrontendError::new("indexing a non-pointer"))?
            }
            Expr::Deref(inner) => {
                let t = self.probe_ty(inner)?;
                t.pointee()
                    .cloned()
                    .ok_or_else(|| FrontendError::new("dereferencing a non-pointer"))?
            }
            Expr::Unary(UnOp::Not, _) => Ty::I32,
            Expr::Unary(_, a) => promote(&self.probe_ty(a)?, &Ty::I32),
            Expr::Binary(op, a, b) => {
                if op.is_comparison() || op.is_logical() {
                    Ty::I32
                } else {
                    let at = self.probe_ty(a)?;
                    let bt = self.probe_ty(b)?;
                    if at.is_pointer() {
                        at
                    } else if bt.is_pointer() {
                        bt
                    } else {
                        promote(&at, &bt)
                    }
                }
            }
            Expr::Ternary(_, t, f) => {
                let tt = self.probe_ty(t)?;
                let ft = self.probe_ty(f)?;
                if tt.is_pointer() {
                    tt
                } else if ft.is_pointer() {
                    ft
                } else {
                    promote(&tt, &ft)
                }
            }
            Expr::Assign(_, lhs, _) => self.probe_ty(lhs)?,
            Expr::IncDec { target, .. } => self.probe_ty(target)?,
            Expr::AddrOf(inner) => self.probe_ty(inner)?.ptr_to(),
            Expr::Call(name, args) => match Intrinsic::lookup(name, args.len()) {
                Some(
                    Intrinsic::FminF
                    | Intrinsic::FmaxF
                    | Intrinsic::FabsF
                    | Intrinsic::SqrtF
                    | Intrinsic::RsqrtF
                    | Intrinsic::ExpF
                    | Intrinsic::LogF
                    | Intrinsic::FmaF,
                ) => Ty::F32,
                Some(Intrinsic::Min | Intrinsic::Max) => {
                    promote(&self.probe_ty(&args[0])?, &self.probe_ty(&args[1])?)
                }
                Some(Intrinsic::ShflXor | Intrinsic::ShflDown) => {
                    self.probe_ty(&args[cuda_frontend::typeck::shuffle_value_arg(args.len())])?
                }
                Some(Intrinsic::Popc | Intrinsic::Clz | Intrinsic::Any | Intrinsic::All) => Ty::I32,
                Some(Intrinsic::Brev | Intrinsic::Ballot) => Ty::U32,
                Some(Intrinsic::AtomicAdd | Intrinsic::AtomicMax | Intrinsic::AtomicExch) => {
                    let pt = self.probe_ty(&args[0])?;
                    pt.pointee()
                        .cloned()
                        .ok_or_else(|| FrontendError::new("atomic on non-pointer"))?
                }
                None => return Err(FrontendError::new(format!("unknown function `{name}`"))),
            },
        })
    }

    fn logical(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<(Reg, Ty), FrontendError> {
        if is_pure_cheap(rhs) {
            // Eager evaluation: no branches, same result for pure operands.
            let (a, aty) = self.expr(lhs)?;
            let a = self.truthy(a, &aty);
            let (b, bty) = self.expr(rhs)?;
            let b = self.truthy(b, &bty);
            let dst = self.fresh();
            let ir_op = if op == BinOp::LogAnd {
                BinIr::And
            } else {
                BinIr::Or
            };
            self.emit(Inst::Bin {
                op: ir_op,
                ty: ScalarTy::I32,
                dst,
                a,
                b,
            });
            Ok((dst, Ty::I32))
        } else {
            // Short-circuit form.
            let result = self.fresh();
            let (a, aty) = self.expr(lhs)?;
            let a = self.truthy(a, &aty);
            self.emit(Inst::Mov {
                dst: result,
                src: a,
            });
            let l_end = self.new_label();
            // `&&`: skip rhs when lhs is false; `||`: skip when lhs is true.
            self.emit_bra(a, op == BinOp::LogAnd, l_end);
            let (b, bty) = self.expr(rhs)?;
            let b = self.truthy(b, &bty);
            self.emit(Inst::Mov {
                dst: result,
                src: b,
            });
            self.bind_label(l_end);
            Ok((result, Ty::I32))
        }
    }

    /// Lowers a non-logical binary operation with the usual conversions.
    fn binary(
        &mut self,
        op: BinOp,
        a: Reg,
        aty: &Ty,
        b: Reg,
        bty: &Ty,
    ) -> Result<(Reg, Ty), FrontendError> {
        // Pointer arithmetic.
        if aty.is_pointer() || bty.is_pointer() {
            return self.pointer_arith(op, a, aty, b, bty);
        }
        let common = if matches!(op, BinOp::Shl | BinOp::Shr) {
            promote(aty, &Ty::I32)
        } else {
            promote(aty, bty)
        };
        let a = self.coerce(a, aty, &common);
        let b = if matches!(op, BinOp::Shl | BinOp::Shr) {
            // Shift amounts only need to be integral; use them as-is.
            self.coerce(b, bty, &promote(bty, &Ty::I32))
        } else {
            self.coerce(b, bty, &common)
        };
        let dst = self.fresh();
        let sc = scalar_of(&common);
        let ir_op = match op {
            BinOp::Add => BinIr::Add,
            BinOp::Sub => BinIr::Sub,
            BinOp::Mul => BinIr::Mul,
            BinOp::Div => BinIr::Div,
            BinOp::Rem => BinIr::Rem,
            BinOp::Shl => BinIr::Shl,
            BinOp::Shr => BinIr::Shr,
            BinOp::BitAnd => BinIr::And,
            BinOp::BitOr => BinIr::Or,
            BinOp::BitXor => BinIr::Xor,
            BinOp::Lt => BinIr::Lt,
            BinOp::Le => BinIr::Le,
            BinOp::Gt => BinIr::Gt,
            BinOp::Ge => BinIr::Ge,
            BinOp::Eq => BinIr::Eq,
            BinOp::Ne => BinIr::Ne,
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled by logical()"),
        };
        self.emit(Inst::Bin {
            op: ir_op,
            ty: sc,
            dst,
            a,
            b,
        });
        let rty = if op.is_comparison() { Ty::I32 } else { common };
        Ok((dst, rty))
    }

    fn pointer_arith(
        &mut self,
        op: BinOp,
        a: Reg,
        aty: &Ty,
        b: Reg,
        bty: &Ty,
    ) -> Result<(Reg, Ty), FrontendError> {
        match (op, aty.is_pointer(), bty.is_pointer()) {
            (BinOp::Add | BinOp::Sub, true, false) => {
                let elem = aty.pointee().expect("pointer checked").size_bytes();
                let scaled = self.scale_index(b, bty, elem);
                let dst = self.fresh();
                let ir_op = if op == BinOp::Add {
                    BinIr::Add
                } else {
                    BinIr::Sub
                };
                self.emit(Inst::Bin {
                    op: ir_op,
                    ty: ScalarTy::U64,
                    dst,
                    a,
                    b: scaled,
                });
                Ok((dst, aty.clone()))
            }
            (BinOp::Add, false, true) => self.pointer_arith(op, b, bty, a, aty),
            (BinOp::Sub, true, true) => {
                let elem = aty.pointee().expect("pointer checked").size_bytes();
                let diff = self.fresh();
                self.emit(Inst::Bin {
                    op: BinIr::Sub,
                    ty: ScalarTy::I64,
                    dst: diff,
                    a,
                    b,
                });
                let size = self.fresh();
                self.emit(Inst::Imm {
                    dst: size,
                    value: u64::from(elem),
                });
                let dst = self.fresh();
                self.emit(Inst::Bin {
                    op: BinIr::Div,
                    ty: ScalarTy::I64,
                    dst,
                    a: diff,
                    b: size,
                });
                Ok((dst, Ty::I64))
            }
            (op, _, _) if op.is_comparison() => {
                let dst = self.fresh();
                let ir_op = match op {
                    BinOp::Lt => BinIr::Lt,
                    BinOp::Le => BinIr::Le,
                    BinOp::Gt => BinIr::Gt,
                    BinOp::Ge => BinIr::Ge,
                    BinOp::Eq => BinIr::Eq,
                    BinOp::Ne => BinIr::Ne,
                    _ => unreachable!("comparison checked"),
                };
                self.emit(Inst::Bin {
                    op: ir_op,
                    ty: ScalarTy::U64,
                    dst,
                    a,
                    b,
                });
                Ok((dst, Ty::I32))
            }
            _ => Err(FrontendError::new(format!(
                "invalid pointer arithmetic `{} {} {}`",
                aty,
                op.symbol(),
                bty
            ))),
        }
    }

    /// Multiplies an index register by the element size, as a U64.
    fn scale_index(&mut self, idx: Reg, idx_ty: &Ty, elem_bytes: u32) -> Reg {
        let wide = self.coerce(idx, idx_ty, &Ty::I64);
        if elem_bytes == 1 {
            return wide;
        }
        let size = self.imm(u64::from(elem_bytes));
        let dst = self.fresh();
        self.emit(Inst::Bin {
            op: BinIr::Mul,
            ty: ScalarTy::I64,
            dst,
            a: wide,
            b: size,
        });
        dst
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(Reg, Ty), FrontendError> {
        let intrinsic = Intrinsic::lookup(name, args.len()).ok_or_else(|| {
            FrontendError::new(format!(
                "unknown function `{name}` with {} args (inline device functions first)",
                args.len()
            ))
        })?;
        match intrinsic {
            Intrinsic::Min | Intrinsic::Max => {
                let (a, aty) = self.expr(&args[0])?;
                let (b, bty) = self.expr(&args[1])?;
                let common = promote(&aty, &bty);
                let a = self.coerce(a, &aty, &common);
                let b = self.coerce(b, &bty, &common);
                let dst = self.fresh();
                let op = if intrinsic == Intrinsic::Min {
                    BinIr::Min
                } else {
                    BinIr::Max
                };
                self.emit(Inst::Bin {
                    op,
                    ty: scalar_of(&common),
                    dst,
                    a,
                    b,
                });
                Ok((dst, common))
            }
            Intrinsic::FminF | Intrinsic::FmaxF => {
                let (a, aty) = self.expr(&args[0])?;
                let (b, bty) = self.expr(&args[1])?;
                let a = self.coerce(a, &aty, &Ty::F32);
                let b = self.coerce(b, &bty, &Ty::F32);
                let dst = self.fresh();
                let op = if intrinsic == Intrinsic::FminF {
                    BinIr::Min
                } else {
                    BinIr::Max
                };
                self.emit(Inst::Bin {
                    op,
                    ty: ScalarTy::F32,
                    dst,
                    a,
                    b,
                });
                Ok((dst, Ty::F32))
            }
            Intrinsic::FmaF => {
                // Lowers to mul-then-add (two roundings); CPU references
                // mirror this as `a * b + c`, not a true fused `mul_add`.
                let (a, aty) = self.expr(&args[0])?;
                let (b, bty) = self.expr(&args[1])?;
                let (c, cty) = self.expr(&args[2])?;
                let a = self.coerce(a, &aty, &Ty::F32);
                let b = self.coerce(b, &bty, &Ty::F32);
                let c = self.coerce(c, &cty, &Ty::F32);
                let prod = self.fresh();
                self.emit(Inst::Bin {
                    op: BinIr::Mul,
                    ty: ScalarTy::F32,
                    dst: prod,
                    a,
                    b,
                });
                let dst = self.fresh();
                self.emit(Inst::Bin {
                    op: BinIr::Add,
                    ty: ScalarTy::F32,
                    dst,
                    a: prod,
                    b: c,
                });
                Ok((dst, Ty::F32))
            }
            Intrinsic::FabsF
            | Intrinsic::SqrtF
            | Intrinsic::RsqrtF
            | Intrinsic::ExpF
            | Intrinsic::LogF => {
                let (a, aty) = self.expr(&args[0])?;
                let a = self.coerce(a, &aty, &Ty::F32);
                let dst = self.fresh();
                let op = match intrinsic {
                    Intrinsic::FabsF => UnIr::Abs,
                    Intrinsic::SqrtF => UnIr::Sqrt,
                    Intrinsic::RsqrtF => UnIr::Rsqrt,
                    Intrinsic::ExpF => UnIr::Exp,
                    _ => UnIr::Log,
                };
                self.emit(Inst::Un {
                    op,
                    ty: ScalarTy::F32,
                    dst,
                    a,
                });
                Ok((dst, Ty::F32))
            }
            Intrinsic::ShflXor | Intrinsic::ShflDown => {
                let val_idx = cuda_frontend::typeck::shuffle_value_arg(args.len());
                // `_sync` forms carry a member mask first; evaluate and drop.
                if val_idx == 1 {
                    self.expr(&args[0])?;
                }
                let (src, vty) = self.expr(&args[val_idx])?;
                let (lane, lty) = self.expr(&args[val_idx + 1])?;
                let lane = self.coerce(lane, &lty, &Ty::I32);
                let width = if args.len() > val_idx + 2 {
                    let (w, wty) = self.expr(&args[val_idx + 2])?;
                    self.coerce(w, &wty, &Ty::I32)
                } else {
                    self.imm(32)
                };
                let dst = self.fresh();
                let kind = if intrinsic == Intrinsic::ShflXor {
                    ShflKind::Xor
                } else {
                    ShflKind::Down
                };
                self.emit(Inst::Shfl {
                    kind,
                    dst,
                    src,
                    lane,
                    width,
                });
                Ok((dst, vty))
            }
            Intrinsic::Ballot | Intrinsic::Any | Intrinsic::All => {
                // `_sync` forms carry a member mask first; evaluate and drop.
                let pred_idx = usize::from(args.len() == 2);
                if pred_idx == 1 {
                    self.expr(&args[0])?;
                }
                let (p, pty) = self.expr(&args[pred_idx])?;
                let p = self.truthy(p, &pty);
                let dst = self.fresh();
                let (kind, rty) = match intrinsic {
                    Intrinsic::Ballot => (VoteKind::Ballot, Ty::U32),
                    Intrinsic::Any => (VoteKind::Any, Ty::I32),
                    _ => (VoteKind::All, Ty::I32),
                };
                self.emit(Inst::Vote { kind, dst, src: p });
                Ok((dst, rty))
            }
            Intrinsic::Popc | Intrinsic::Clz | Intrinsic::Brev => {
                let (a, aty) = self.expr(&args[0])?;
                let a = self.coerce(a, &aty, &Ty::U32);
                let dst = self.fresh();
                let (op, rty) = match intrinsic {
                    Intrinsic::Popc => (UnIr::Popc, Ty::I32),
                    Intrinsic::Clz => (UnIr::Clz, Ty::I32),
                    _ => (UnIr::Brev, Ty::U32),
                };
                self.emit(Inst::Un {
                    op,
                    ty: ScalarTy::U32,
                    dst,
                    a,
                });
                Ok((dst, rty))
            }
            Intrinsic::AtomicAdd | Intrinsic::AtomicMax | Intrinsic::AtomicExch => {
                let (addr, pty) = self.expr(&args[0])?;
                let elem = pty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| FrontendError::new("atomic on non-pointer"))?;
                let (v, vty) = self.expr(&args[1])?;
                let v = self.coerce(v, &vty, &elem);
                let dst = self.fresh();
                let op = match intrinsic {
                    Intrinsic::AtomicAdd => AtomOp::Add,
                    Intrinsic::AtomicMax => AtomOp::Max,
                    _ => AtomOp::Exch,
                };
                self.emit(Inst::Atom {
                    op,
                    ty: scalar_of(&elem),
                    dst,
                    addr,
                    val: v,
                });
                Ok((dst, elem))
            }
        }
    }

    // ---- places ------------------------------------------------------------

    fn place(&mut self, e: &Expr) -> Result<Place, FrontendError> {
        match e {
            Expr::Ident(name) => match self.lookup(name)?.clone() {
                Binding::Scalar(reg, ty) => Ok(Place::Reg(reg, ty)),
                _ => Err(FrontendError::new(format!(
                    "array `{name}` is not assignable"
                ))),
            },
            Expr::Index(base, idx) => {
                let (base_reg, base_ty) = self.expr(base)?;
                let elem = base_ty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| FrontendError::new("indexing a non-pointer"))?;
                let (i, ity) = self.expr(idx)?;
                let scaled = self.scale_index(i, &ity, elem.size_bytes());
                let addr = self.fresh();
                self.emit(Inst::Bin {
                    op: BinIr::Add,
                    ty: ScalarTy::U64,
                    dst: addr,
                    a: base_reg,
                    b: scaled,
                });
                Ok(Place::Mem { addr, ty: elem })
            }
            Expr::Deref(inner) => {
                let (addr, pty) = self.expr(inner)?;
                let elem = pty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| FrontendError::new("dereferencing a non-pointer"))?;
                Ok(Place::Mem { addr, ty: elem })
            }
            other => Err(FrontendError::new(format!("not an lvalue: {other:?}"))),
        }
    }

    fn read_place(&mut self, place: &Place) -> (Reg, Ty) {
        match place {
            Place::Reg(r, ty) => (*r, ty.clone()),
            Place::Mem { addr, ty } => {
                let dst = self.fresh();
                self.emit(Inst::Ld {
                    ty: scalar_of(ty),
                    dst,
                    addr: *addr,
                });
                (dst, ty.clone())
            }
        }
    }

    fn write_place(&mut self, place: &Place, val: Reg) {
        match place {
            Place::Reg(r, _) => self.emit(Inst::Mov { dst: *r, src: val }),
            Place::Mem { addr, ty } => self.emit(Inst::St {
                ty: scalar_of(ty),
                addr: *addr,
                val,
            }),
        }
    }

    // ---- conversions ---------------------------------------------------------

    /// Converts `v` of type `from` into type `to`, emitting a cast when the
    /// runtime representation differs.
    fn coerce(&mut self, v: Reg, from: &Ty, to: &Ty) -> Reg {
        let from_sc = scalar_of(from);
        let to_sc = scalar_of(to);
        // Pointer-to-pointer casts (and same scalar type) are free.
        if from_sc == to_sc || (from.is_pointer() && to.is_pointer()) {
            return v;
        }
        let dst = self.fresh();
        self.emit(Inst::Cast {
            dst,
            src: v,
            from: from_sc,
            to: to_sc,
        });
        dst
    }

    /// Normalizes a value to a 0/1 truth value.
    fn truthy(&mut self, v: Reg, ty: &Ty) -> Reg {
        // Comparison results are already 0/1, but we cannot see that here;
        // emit `v != 0` under the value's own type. Cheap (one ALU op).
        let zero = self.imm(0);
        let dst = self.fresh();
        self.emit(Inst::Bin {
            op: BinIr::Ne,
            ty: scalar_of(ty),
            dst,
            a: v,
            b: zero,
        });
        dst
    }
}

fn place_ty(place: &Place) -> Ty {
    match place {
        Place::Reg(_, ty) => ty.clone(),
        Place::Mem { ty, .. } => ty.clone(),
    }
}

/// AST type → runtime scalar type. Pointers are 64-bit words.
pub fn scalar_of(ty: &Ty) -> ScalarTy {
    match ty {
        Ty::Void => panic!("void has no runtime representation"),
        Ty::Bool | Ty::I32 => ScalarTy::I32,
        Ty::U32 => ScalarTy::U32,
        Ty::I64 => ScalarTy::I64,
        Ty::U64 | Ty::Ptr(_) => ScalarTy::U64,
        Ty::F32 => ScalarTy::F32,
        Ty::F64 => ScalarTy::F64,
    }
}

fn special_of(b: BuiltinVar) -> SpecialReg {
    match b {
        BuiltinVar::ThreadIdx(Axis::X) => SpecialReg::ThreadIdxX,
        BuiltinVar::ThreadIdx(Axis::Y) => SpecialReg::ThreadIdxY,
        BuiltinVar::ThreadIdx(Axis::Z) => SpecialReg::ThreadIdxZ,
        BuiltinVar::BlockIdx(Axis::X) => SpecialReg::BlockIdxX,
        BuiltinVar::BlockIdx(Axis::Y) => SpecialReg::BlockIdxY,
        BuiltinVar::BlockIdx(Axis::Z) => SpecialReg::BlockIdxZ,
        BuiltinVar::BlockDim(Axis::X) => SpecialReg::BlockDimX,
        BuiltinVar::BlockDim(Axis::Y) => SpecialReg::BlockDimY,
        BuiltinVar::BlockDim(Axis::Z) => SpecialReg::BlockDimZ,
        BuiltinVar::GridDim(Axis::X) => SpecialReg::GridDimX,
        BuiltinVar::GridDim(Axis::Y) => SpecialReg::GridDimY,
        BuiltinVar::GridDim(Axis::Z) => SpecialReg::GridDimZ,
    }
}

/// Canonical register bits of an integer literal (sign-extend `I32`,
/// zero-extend `U32`).
fn canonical_int_bits(v: i64, ty: &Ty) -> u64 {
    match ty {
        Ty::Bool => u64::from(v != 0),
        Ty::I32 => (v as i32) as i64 as u64,
        Ty::U32 => u64::from(v as u32),
        _ => v as u64,
    }
}

/// True when evaluating `e` has no side effects and cannot fault, making it
/// safe to evaluate eagerly on a not-taken short-circuit path.
fn is_pure_cheap(e: &Expr) -> bool {
    match e {
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Ident(_) | Expr::Builtin(_) => true,
        Expr::Unary(_, a) => is_pure_cheap(a),
        Expr::Cast(_, a) => is_pure_cheap(a),
        Expr::Binary(op, a, b) => {
            !matches!(op, BinOp::Div | BinOp::Rem) && is_pure_cheap(a) && is_pure_cheap(b)
        }
        Expr::Ternary(a, b, c) => is_pure_cheap(a) && is_pure_cheap(b) && is_pure_cheap(c),
        // Loads can fault (out-of-bounds), assignments/calls have effects.
        _ => false,
    }
}

fn align8(n: u32) -> u32 {
    (n + 7) & !7
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;

    fn lower(src: &str) -> KernelIr {
        lower_kernel(&parse_kernel(src).expect("parse")).expect("lower")
    }

    #[test]
    fn lowers_minimal_kernel() {
        let ir = lower("__global__ void k(float* a, int n) { a[0] = 1.0f; }");
        assert_eq!(
            ir.params,
            vec![ParamKind::Pointer, ParamKind::Scalar(ScalarTy::I32)]
        );
        assert!(matches!(ir.insts.last(), Some(Inst::Ret)));
        assert!(ir.insts.iter().any(|i| matches!(
            i,
            Inst::St {
                ty: ScalarTy::F32,
                ..
            }
        )));
    }

    #[test]
    fn fmaf_lowers_to_mul_then_add() {
        let ir = lower("__global__ void k(float* a, float s) { a[0] = fmaf(s, a[0], a[1]); }");
        let mul = ir.insts.iter().position(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinIr::Mul,
                    ty: ScalarTy::F32,
                    ..
                }
            )
        });
        let add = ir.insts.iter().position(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: BinIr::Add,
                    ty: ScalarTy::F32,
                    ..
                }
            )
        });
        let (mul, add) = (mul.expect("mul"), add.expect("add"));
        assert!(mul < add, "fmaf must multiply before it adds");
    }

    #[test]
    fn fmaf_wrong_arity_is_unknown_function() {
        let f = parse_kernel("__global__ void k(float* a) { a[0] = fmaf(a[0], a[1]); }")
            .expect("parse");
        let err = lower_kernel(&f).expect_err("two-arg fmaf must not lower");
        assert!(
            err.to_string().contains("unknown function"),
            "unhelpful message: {err}"
        );
    }

    #[test]
    fn if_produces_branch_and_join() {
        let ir = lower("__global__ void k(int n) { if (n) { n = 1; } }");
        let branches = ir
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bra { .. }))
            .count();
        assert_eq!(branches, 1);
    }

    #[test]
    fn for_loop_has_backward_edge() {
        let ir = lower("__global__ void k(int n) { for (int i = 0; i < n; i++) { } }");
        let has_backward = ir
            .insts
            .iter()
            .enumerate()
            .any(|(pc, i)| matches!(i, Inst::Jmp { target } if *target < pc));
        assert!(has_backward, "loop must jump backwards: {:#?}", ir.insts);
    }

    #[test]
    fn shared_arrays_get_distinct_offsets() {
        let ir = lower(
            "__global__ void k(int n) { __shared__ int a[8]; __shared__ float b[4]; a[0] = n; b[0] = 0.0f; }",
        );
        assert_eq!(ir.shared_static_bytes, 32 + 16);
        let offsets: Vec<u32> = ir
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::SharedAddr { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert!(offsets.contains(&0));
        assert!(offsets.contains(&32));
    }

    #[test]
    fn extern_shared_is_dynamic() {
        let ir =
            lower("__global__ void k(int n) { extern __shared__ float buf[]; buf[0] = 0.0f; }");
        assert!(ir.uses_dynamic_shared);
        assert_eq!(ir.shared_static_bytes, 0);
    }

    #[test]
    fn local_array_allocates_local_bytes() {
        let ir = lower("__global__ void k(int n) { unsigned int w[16]; w[0] = 1u; }");
        assert_eq!(ir.local_bytes, 64);
        assert!(ir.insts.iter().any(|i| matches!(i, Inst::LocalAddr { .. })));
    }

    #[test]
    fn pointer_arithmetic_scales_by_element_size() {
        // Inspect the raw lowering: the optimizer strength-reduces the
        // multiply into a shift.
        let k = parse_kernel("__global__ void k(float* p, int i) { p[i] = 0.0f; }").expect("parse");
        let ir = crate::lower::lower_kernel_unoptimized(&k).expect("lower");
        // Must multiply the index by 4 somewhere.
        assert!(
            ir.insts
                .iter()
                .any(|inst| matches!(inst, Inst::Imm { value: 4, .. })),
            "expected a 4-byte scale constant: {:#?}",
            ir.insts
        );
    }

    #[test]
    fn syncthreads_lowered_to_bar_all() {
        // Memory ops on both sides so the redundant-barrier pass keeps it.
        let ir = lower("__global__ void k(int* p) { p[0] = 1; __syncthreads(); p[1] = 2; }");
        assert!(ir.insts.iter().any(|i| matches!(
            i,
            Inst::Bar {
                id: 0,
                count: BarCount::All
            }
        )));
    }

    #[test]
    fn partial_barrier_keeps_id_and_count() {
        let ir =
            lower("__global__ void k(int* p) { p[0] = 1; asm(\"bar.sync 2, 128;\"); p[1] = 2; }");
        assert!(ir.insts.iter().any(|i| matches!(
            i,
            Inst::Bar {
                id: 2,
                count: BarCount::Fixed(128)
            }
        )));
    }

    #[test]
    fn do_while_body_runs_before_condition() {
        let ir = lower(
            "__global__ void k(int* out, int n) {\
               int count = 0;\
               do { count = count + 1; n = n - 1; } while (n > 0);\
               out[0] = count;\
             }",
        );
        // Backward conditional branch, no entry guard before the body.
        let back = ir
            .insts
            .iter()
            .enumerate()
            .any(|(pc, i)| matches!(i, Inst::Bra { target, .. } if *target < pc));
        assert!(back, "do-while must branch backwards: {:#?}", ir.insts);
    }

    #[test]
    fn goto_lowered_to_jump() {
        let k = parse_kernel("__global__ void k(int n) { if (n) goto end; n = 0; end: ; }")
            .expect("parse");
        let ir = crate::lower::lower_kernel_unoptimized(&k).expect("lower");
        assert!(ir.insts.iter().any(|i| matches!(i, Inst::Jmp { .. })));
    }

    #[test]
    fn undefined_label_is_error() {
        let k = parse_kernel("__global__ void k(int n) { goto nowhere; }").expect("parse");
        assert!(lower_kernel(&k).is_err());
    }

    #[test]
    fn break_outside_loop_is_error() {
        let k = parse_kernel("__global__ void k(int n) { break; }").expect("parse");
        assert!(lower_kernel(&k).is_err());
    }

    #[test]
    fn shuffle_lowering() {
        let ir = lower(
            "__global__ void k(float* p) { float v = p[0]; v += __shfl_xor_sync(0xffffffffu, v, 1, 32); p[0] = v; }",
        );
        assert!(ir.insts.iter().any(|i| matches!(
            i,
            Inst::Shfl {
                kind: ShflKind::Xor,
                ..
            }
        )));
    }

    #[test]
    fn atomic_add_on_shared() {
        let ir = lower("__global__ void k(int n) { __shared__ int c[4]; atomicAdd(&c[0], 1); }");
        assert!(ir.insts.iter().any(|i| matches!(
            i,
            Inst::Atom {
                op: AtomOp::Add,
                ty: ScalarTy::I32,
                ..
            }
        )));
    }

    #[test]
    fn compound_assign_on_memory_reads_then_writes() {
        let ir = lower("__global__ void k(float* p) { p[0] += 2.0f; }");
        let ld = ir
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Ld { .. }))
            .expect("load");
        let st = ir
            .insts
            .iter()
            .position(|i| matches!(i, Inst::St { .. }))
            .expect("store");
        assert!(ld < st);
    }

    #[test]
    fn short_circuit_with_impure_rhs_branches() {
        let ir = lower("__global__ void k(int* p, int n) { if (n && p[0]) { n = 1; } }");
        // rhs loads memory, so a short-circuit branch must guard it.
        let branches = ir
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bra { .. }))
            .count();
        assert!(
            branches >= 2,
            "expected short-circuit branch: {:#?}",
            ir.insts
        );
    }

    #[test]
    fn pure_logical_is_branch_free() {
        let ir = lower("__global__ void k(int a, int b, int* o) { o[0] = (a > 1 && b < 2); }");
        let branches = ir
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bra { .. }))
            .count();
        assert_eq!(branches, 0, "pure && should lower eagerly: {:#?}", ir.insts);
    }

    #[test]
    fn float_literal_f32_bits() {
        let ir = lower("__global__ void k(float* p) { p[0] = 1.5f; }");
        let expected = u64::from(1.5f32.to_bits());
        assert!(ir
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Imm { value, .. } if *value == expected)));
    }

    #[test]
    fn int_to_float_cast_emitted() {
        let ir = lower("__global__ void k(float* p, int n) { p[0] = n; }");
        assert!(ir.insts.iter().any(|i| matches!(
            i,
            Inst::Cast {
                from: ScalarTy::I32,
                to: ScalarTy::F32,
                ..
            }
        )));
    }

    #[test]
    fn ternary_produces_diamond() {
        let ir = lower("__global__ void k(int* p, int n) { p[0] = n > 0 ? n : -n; }");
        assert!(ir.insts.iter().any(|i| matches!(i, Inst::Bra { .. })));
        assert!(ir.insts.iter().any(|i| matches!(i, Inst::Jmp { .. })));
    }

    #[test]
    fn pressure_is_positive_and_bounded() {
        let ir = lower(
            "__global__ void k(float* a, float* b, int n) {\
               int i = blockIdx.x * blockDim.x + threadIdx.x;\
               float x = a[i]; float y = b[i];\
               a[i] = x * y + x - y;\
             }",
        );
        let p = ir.reg_pressure();
        assert!(p >= 4, "pressure {p} too low");
        assert!(p <= 64, "pressure {p} absurdly high");
    }

    #[test]
    fn kernel_with_return_value_rejected() {
        let k = parse_kernel("__global__ void k(int n) { return; }").expect("parse");
        assert!(lower_kernel(&k).is_ok());
        let tu = cuda_frontend::parse_translation_unit("__device__ int f(int n) { return n; }")
            .expect("parse");
        assert!(lower_kernel(&tu.functions[0]).is_err());
    }
}
