//! Control-flow graph over the flat IR, used by the optimizer.
//!
//! The flat instruction stream is partitioned into basic blocks whose
//! terminators reference *block ids*; transforms (hoisting, deletion,
//! preheader insertion) then work structurally, and [`Cfg::flatten`]
//! re-linearizes with correct instruction-index targets.

use crate::ir::{Inst, KernelIr};

/// A basic-block id.
pub type BlockId = usize;

/// Block terminator (targets are block ids).
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Conditional branch: to `taken` when (`cond` == 0) == `if_zero`, else
    /// fall through to `fallthrough`.
    Bra {
        /// Condition register.
        cond: u32,
        /// Branch-if-zero flag.
        if_zero: bool,
        /// Taken target.
        taken: BlockId,
        /// Not-taken target.
        fallthrough: BlockId,
    },
    /// Unconditional jump.
    Jmp(BlockId),
    /// Thread exit.
    Ret,
}

impl Term {
    /// Successor block ids.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Term::Bra {
                taken, fallthrough, ..
            } => vec![*fallthrough, *taken],
            Term::Jmp(t) => vec![*t],
            Term::Ret => vec![],
        }
    }

    fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Term::Bra {
                taken, fallthrough, ..
            } => {
                if *taken == from {
                    *taken = to;
                }
                if *fallthrough == from {
                    *fallthrough = to;
                }
            }
            Term::Jmp(t) => {
                if *t == from {
                    *t = to;
                }
            }
            Term::Ret => {}
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Bb {
    /// Non-terminator instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

/// A control-flow graph with an explicit layout order (block 0 is entry;
/// [`Cfg::flatten`] emits blocks in `layout` order).
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The blocks, indexed by [`BlockId`].
    pub blocks: Vec<Bb>,
    /// Linearization order.
    pub layout: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of a kernel's instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not end in a terminator (the verifier
    /// guarantees it does).
    pub fn build(kernel: &KernelIr) -> Cfg {
        let insts = &kernel.insts;
        let n = insts.len();
        // Find leaders.
        let mut is_leader = vec![false; n];
        if n > 0 {
            is_leader[0] = true;
        }
        for (pc, inst) in insts.iter().enumerate() {
            match inst {
                Inst::Bra { target, .. } => {
                    is_leader[*target] = true;
                    if pc + 1 < n {
                        is_leader[pc + 1] = true;
                    }
                }
                Inst::Jmp { target } => {
                    is_leader[*target] = true;
                    if pc + 1 < n {
                        is_leader[pc + 1] = true;
                    }
                }
                Inst::Ret if pc + 1 < n => {
                    is_leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let leaders: Vec<usize> = (0..n).filter(|&i| is_leader[i]).collect();
        let block_of_pc = {
            let mut map = vec![0usize; n];
            let mut b = 0;
            for (pc, slot) in map.iter_mut().enumerate() {
                if b + 1 < leaders.len() && pc >= leaders[b + 1] {
                    b += 1;
                }
                *slot = b;
            }
            map
        };

        let mut blocks = Vec::with_capacity(leaders.len());
        for (bi, &start) in leaders.iter().enumerate() {
            let end = leaders.get(bi + 1).copied().unwrap_or(n);
            let last = end - 1;
            let (body_end, term) = match &insts[last] {
                Inst::Bra {
                    cond,
                    if_zero,
                    target,
                } => (
                    last,
                    Term::Bra {
                        cond: *cond,
                        if_zero: *if_zero,
                        taken: block_of_pc[*target],
                        // Fallthrough: the next block in program order.
                        fallthrough: bi + 1,
                    },
                ),
                Inst::Jmp { target } => (last, Term::Jmp(block_of_pc[*target])),
                Inst::Ret => (last, Term::Ret),
                // Fallthrough block (ends because the next pc is a leader).
                _ => (end, Term::Jmp(bi + 1)),
            };
            blocks.push(Bb {
                insts: insts[start..body_end].to_vec(),
                term,
            });
        }
        let layout = (0..blocks.len()).collect();
        Cfg { blocks, layout }
    }

    /// Predecessors of every block.
    pub fn preds(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, bb) in self.blocks.iter().enumerate() {
            for s in bb.term.succs() {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Immediate-style dominator *sets*: `dom[b]` contains every block that
    /// dominates `b` (including itself). Unreachable blocks dominate
    /// nothing and report an empty set.
    pub fn dominators(&self) -> Vec<Vec<bool>> {
        let n = self.blocks.len();
        let preds = self.preds();
        let mut dom = vec![vec![true; n]; n];
        dom[0] = vec![false; n];
        dom[0][0] = true;
        let mut reachable = vec![false; n];
        // Mark reachability.
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if reachable[b] {
                continue;
            }
            reachable[b] = true;
            stack.extend(self.blocks[b].term.succs());
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                if !reachable[b] {
                    continue;
                }
                let mut new: Option<Vec<bool>> = None;
                for &p in &preds[b] {
                    if !reachable[p] {
                        continue;
                    }
                    match &mut new {
                        None => new = Some(dom[p].clone()),
                        Some(acc) => {
                            for (a, d) in acc.iter_mut().zip(&dom[p]) {
                                *a = *a && *d;
                            }
                        }
                    }
                }
                let mut new = new.unwrap_or_else(|| vec![false; n]);
                new[b] = true;
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }
        for b in 0..n {
            if !reachable[b] {
                dom[b] = vec![false; n];
            }
        }
        dom
    }

    /// Natural loops: `(header, body)` pairs where `body` contains every
    /// block of the loop including the header. Nested loops appear as
    /// separate entries; entries are deduplicated by header (merged bodies).
    pub fn natural_loops(&self) -> Vec<(BlockId, Vec<bool>)> {
        let n = self.blocks.len();
        let dom = self.dominators();
        let preds = self.preds();
        let mut loops: Vec<(BlockId, Vec<bool>)> = Vec::new();
        for (b, dom_b) in dom.iter().enumerate() {
            for h in self.blocks[b].term.succs() {
                // Back edge b -> h when h dominates b.
                if !dom_b[h] {
                    continue;
                }
                let mut body = vec![false; n];
                body[h] = true;
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body[x] {
                        continue;
                    }
                    body[x] = true;
                    stack.extend(preds[x].iter().copied());
                }
                if let Some(existing) = loops.iter_mut().find(|(eh, _)| *eh == h) {
                    for (e, m) in existing.1.iter_mut().zip(&body) {
                        *e = *e || *m;
                    }
                } else {
                    loops.push((h, body));
                }
            }
        }
        loops
    }

    /// Inserts a preheader before `header`, redirecting every edge from
    /// outside `body` into the header through the new block. Returns the
    /// new block's id.
    pub fn insert_preheader(&mut self, header: BlockId, body: &[bool]) -> BlockId {
        let pre = self.blocks.len();
        self.blocks.push(Bb {
            insts: Vec::new(),
            term: Term::Jmp(header),
        });
        for b in 0..pre {
            // `body` may be shorter than `blocks` when earlier transforms
            // appended blocks after the loop analysis ran.
            let in_body = body.get(b).copied().unwrap_or(false);
            if !in_body {
                let term = &mut self.blocks[b].term;
                term.retarget(header, pre);
            }
        }
        // Place the preheader right before the header in layout.
        let pos = self
            .layout
            .iter()
            .position(|&b| b == header)
            .expect("header must be in layout");
        self.layout.insert(pos, pre);
        pre
    }

    /// Re-linearizes the CFG into a flat instruction stream. Jump
    /// terminators to the next block in layout are elided.
    pub fn flatten(&self) -> Vec<Inst> {
        // First pass: compute start pc of each block (in layout order), as
        // if every terminator were emitted; we elide jumps in a second pass
        // would shift offsets, so instead decide elision *before* computing
        // addresses: a Jmp is elided iff its target is the next block in
        // layout. A Bra needs a following Jmp iff its fallthrough is not
        // next.
        let order = &self.layout;
        let next_in_layout = |i: usize| order.get(i + 1).copied();
        let mut size = vec![0usize; self.blocks.len()];
        for (i, &b) in order.iter().enumerate() {
            let bb = &self.blocks[b];
            let term_size = match &bb.term {
                Term::Ret => 1,
                Term::Jmp(t) => usize::from(next_in_layout(i) != Some(*t)),
                Term::Bra { fallthrough, .. } => {
                    1 + usize::from(next_in_layout(i) != Some(*fallthrough))
                }
            };
            size[b] = bb.insts.len() + term_size;
        }
        let mut start = vec![0usize; self.blocks.len()];
        let mut pc = 0;
        for &b in order {
            start[b] = pc;
            pc += size[b];
        }
        let mut out = Vec::with_capacity(pc);
        for (i, &b) in order.iter().enumerate() {
            let bb = &self.blocks[b];
            out.extend(bb.insts.iter().cloned());
            match &bb.term {
                Term::Ret => out.push(Inst::Ret),
                Term::Jmp(t) => {
                    if next_in_layout(i) != Some(*t) {
                        out.push(Inst::Jmp { target: start[*t] });
                    }
                }
                Term::Bra {
                    cond,
                    if_zero,
                    taken,
                    fallthrough,
                } => {
                    out.push(Inst::Bra {
                        cond: *cond,
                        if_zero: *if_zero,
                        target: start[*taken],
                    });
                    if next_in_layout(i) != Some(*fallthrough) {
                        out.push(Inst::Jmp {
                            target: start[*fallthrough],
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use cuda_frontend::parse_kernel;

    fn kernel(src: &str) -> KernelIr {
        lower_kernel(&parse_kernel(src).expect("parse")).expect("lower")
    }

    fn rebuild(k: &KernelIr) -> KernelIr {
        let cfg = Cfg::build(k);
        let mut out = k.clone();
        out.insts = cfg.flatten();
        crate::verify::verify(&out).expect("flattened kernel verifies");
        out
    }

    #[test]
    fn straight_line_is_one_block() {
        let k = kernel("__global__ void k(float* p) { p[0] = 1.0f; }");
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].term, Term::Ret);
    }

    #[test]
    fn loop_creates_back_edge_and_natural_loop() {
        let k = kernel("__global__ void k(int n) { for (int i = 0; i < n; i++) { n += i; } }");
        let cfg = Cfg::build(&k);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        let (header, body) = &loops[0];
        assert!(body[*header]);
        assert!(body.iter().filter(|&&x| x).count() >= 2);
    }

    #[test]
    fn build_flatten_round_trip_preserves_behavior() {
        let src = "__global__ void k(unsigned int* out, int n) {\
            unsigned int acc = 0u;\
            for (int i = 0; i < n; i++) {\
              if (i % 2 == 0) { acc += i; } else { acc ^= i; }\
            }\
            out[threadIdx.x] = acc;\
          }";
        let k = kernel(src);
        let k2 = rebuild(&k);
        // Execute both on the simulator-independent path: compare by
        // running a tiny interpretation via gpu-sim is not possible here
        // (crate dependency direction), so compare structurally: same
        // number of non-control instructions.
        let count = |k: &KernelIr| k.insts.iter().filter(|i| !i.is_control()).count();
        assert_eq!(count(&k), count(&k2));
    }

    #[test]
    fn dominators_entry_dominates_all() {
        let k = kernel(
            "__global__ void k(int n) { if (n) { n = 1; } else { n = 2; } for (int i = 0; i < n; i++) { } }",
        );
        let cfg = Cfg::build(&k);
        let dom = cfg.dominators();
        for (b, d) in dom.iter().enumerate() {
            if d.iter().any(|&x| x) {
                assert!(d[0], "entry must dominate reachable block {b}");
            }
        }
    }

    #[test]
    fn preheader_redirects_outside_edges() {
        let k = kernel("__global__ void k(int n) { for (int i = 0; i < n; i++) { n += i; } }");
        let mut cfg = Cfg::build(&k);
        let loops = cfg.natural_loops();
        let (header, body) = loops[0].clone();
        let pre = cfg.insert_preheader(header, &body);
        // After insertion, the only out-of-loop predecessor of the header
        // is the preheader.
        let preds = cfg.preds();
        for &p in &preds[header] {
            assert!(
                p == pre || body[p],
                "pred {p} should be preheader or in-loop"
            );
        }
        // Flattening still verifies.
        let mut out = k.clone();
        out.insts = cfg.flatten();
        crate::verify::verify(&out).expect("verifies");
    }

    #[test]
    fn flatten_elides_fallthrough_jumps() {
        let k = kernel("__global__ void k(int n) { if (n) { n = 1; } n = 2; }");
        let flat = rebuild(&k);
        // No Jmp whose target is the immediately following instruction.
        for (pc, inst) in flat.insts.iter().enumerate() {
            if let Inst::Jmp { target } = inst {
                assert_ne!(*target, pc + 1, "useless jump at {pc}");
            }
        }
    }
}
