//! A readable text format for the IR, in the spirit of a PTX listing.
//!
//! Useful for debugging lowered kernels (`hfuse compile --dump-ir`) and for
//! golden tests that pin down exactly what a pass produces.

use std::fmt::Write as _;

use crate::ir::{AtomOp, BarCount, BinIr, Inst, KernelIr, ShflKind, SpecialReg, UnIr, VoteKind};

/// Formats one instruction as assembly-like text (without its index).
pub fn format_inst(inst: &Inst) -> String {
    match inst {
        Inst::Imm { dst, value } => {
            // Show small values in decimal, others in hex.
            if *value < 4096 {
                format!("r{dst} = imm {value}")
            } else {
                format!("r{dst} = imm {value:#x}")
            }
        }
        Inst::Mov { dst, src } => format!("r{dst} = mov r{src}"),
        Inst::Bin { op, ty, dst, a, b } => {
            format!("r{dst} = {}.{ty} r{a}, r{b}", bin_name(*op))
        }
        Inst::Un { op, ty, dst, a } => format!("r{dst} = {}.{ty} r{a}", un_name(*op)),
        Inst::Cast { dst, src, from, to } => format!("r{dst} = cvt.{to}.{from} r{src}"),
        Inst::Ld { ty, dst, addr } => format!("r{dst} = ld.{ty} [r{addr}]"),
        Inst::St { ty, addr, val } => format!("st.{ty} [r{addr}], r{val}"),
        Inst::Atom {
            op,
            ty,
            dst,
            addr,
            val,
        } => {
            format!("r{dst} = atom.{}.{ty} [r{addr}], r{val}", atom_name(*op))
        }
        Inst::Shfl {
            kind,
            dst,
            src,
            lane,
            width,
        } => {
            let k = match kind {
                ShflKind::Xor => "bfly",
                ShflKind::Down => "down",
            };
            format!("r{dst} = shfl.{k} r{src}, r{lane}, r{width}")
        }
        Inst::Vote { kind, dst, src } => {
            let k = match kind {
                VoteKind::Ballot => "ballot",
                VoteKind::Any => "any",
                VoteKind::All => "all",
            };
            format!("r{dst} = vote.{k} r{src}")
        }
        Inst::Bar { id, count } => match count {
            BarCount::All => format!("bar.sync {id}"),
            BarCount::Fixed(n) => format!("bar.sync {id}, {n}"),
        },
        Inst::Special { dst, reg } => format!("r{dst} = mov {}", special_name(*reg)),
        Inst::LdParam { dst, index } => format!("r{dst} = ld.param [{index}]"),
        Inst::SharedAddr { dst, offset } => format!("r{dst} = mov shared+{offset}"),
        Inst::LocalAddr { dst, offset } => format!("r{dst} = mov local+{offset}"),
        Inst::Bra {
            cond,
            if_zero,
            target,
        } => {
            let sense = if *if_zero { "z" } else { "nz" };
            format!("bra.{sense} r{cond}, @{target}")
        }
        Inst::Jmp { target } => format!("bra @{target}"),
        Inst::Ret => "ret".to_owned(),
    }
}

/// Formats a whole kernel as a listing with instruction indices and a
/// header describing its resources.
pub fn print_kernel_ir(kernel: &KernelIr) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// kernel {} — {} insts, {} regs (pressure {}), shared {}B{}, local {}B",
        kernel.name,
        kernel.insts.len(),
        kernel.num_regs,
        kernel.reg_pressure(),
        kernel.shared_static_bytes,
        if kernel.uses_dynamic_shared {
            "+dyn"
        } else {
            ""
        },
        kernel.local_bytes,
    );
    if !kernel.spilled_regs.is_empty() {
        let _ = writeln!(out, "// spilled: {:?}", kernel.spilled_regs);
    }
    // Mark branch targets for readability.
    let mut is_target = vec![false; kernel.insts.len()];
    for inst in &kernel.insts {
        match inst {
            Inst::Bra { target, .. } | Inst::Jmp { target } => is_target[*target] = true,
            _ => {}
        }
    }
    for (pc, inst) in kernel.insts.iter().enumerate() {
        if is_target[pc] {
            let _ = writeln!(out, "@{pc}:");
        }
        let _ = writeln!(out, "  {pc:4}  {}", format_inst(inst));
    }
    out
}

fn bin_name(op: BinIr) -> &'static str {
    match op {
        BinIr::Add => "add",
        BinIr::Sub => "sub",
        BinIr::Mul => "mul",
        BinIr::Div => "div",
        BinIr::Rem => "rem",
        BinIr::Shl => "shl",
        BinIr::Shr => "shr",
        BinIr::And => "and",
        BinIr::Or => "or",
        BinIr::Xor => "xor",
        BinIr::Min => "min",
        BinIr::Max => "max",
        BinIr::Lt => "setp.lt",
        BinIr::Le => "setp.le",
        BinIr::Gt => "setp.gt",
        BinIr::Ge => "setp.ge",
        BinIr::Eq => "setp.eq",
        BinIr::Ne => "setp.ne",
    }
}

fn un_name(op: UnIr) -> &'static str {
    match op {
        UnIr::Neg => "neg",
        UnIr::Not => "not",
        UnIr::BitNot => "bnot",
        UnIr::Abs => "abs",
        UnIr::Sqrt => "sqrt",
        UnIr::Rsqrt => "rsqrt",
        UnIr::Exp => "exp",
        UnIr::Log => "log",
        UnIr::Popc => "popc",
        UnIr::Clz => "clz",
        UnIr::Brev => "brev",
    }
}

fn atom_name(op: AtomOp) -> &'static str {
    match op {
        AtomOp::Add => "add",
        AtomOp::Max => "max",
        AtomOp::Exch => "exch",
    }
}

fn special_name(reg: SpecialReg) -> &'static str {
    match reg {
        SpecialReg::ThreadIdxX => "%tid.x",
        SpecialReg::ThreadIdxY => "%tid.y",
        SpecialReg::ThreadIdxZ => "%tid.z",
        SpecialReg::BlockIdxX => "%ctaid.x",
        SpecialReg::BlockIdxY => "%ctaid.y",
        SpecialReg::BlockIdxZ => "%ctaid.z",
        SpecialReg::BlockDimX => "%ntid.x",
        SpecialReg::BlockDimY => "%ntid.y",
        SpecialReg::BlockDimZ => "%ntid.z",
        SpecialReg::GridDimX => "%nctaid.x",
        SpecialReg::GridDimY => "%nctaid.y",
        SpecialReg::GridDimZ => "%nctaid.z",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use cuda_frontend::parse_kernel;

    #[test]
    fn formats_each_instruction_kind() {
        use crate::ir::ScalarTy;
        assert_eq!(format_inst(&Inst::Imm { dst: 1, value: 42 }), "r1 = imm 42");
        assert_eq!(
            format_inst(&Inst::Imm {
                dst: 1,
                value: 0xdead_beef
            }),
            "r1 = imm 0xdeadbeef"
        );
        assert_eq!(
            format_inst(&Inst::Bin {
                op: BinIr::Add,
                ty: ScalarTy::F32,
                dst: 3,
                a: 1,
                b: 2
            }),
            "r3 = add.f32 r1, r2"
        );
        assert_eq!(
            format_inst(&Inst::Ld {
                ty: ScalarTy::U64,
                dst: 4,
                addr: 5
            }),
            "r4 = ld.u64 [r5]"
        );
        assert_eq!(
            format_inst(&Inst::Bar {
                id: 2,
                count: BarCount::Fixed(128)
            }),
            "bar.sync 2, 128"
        );
        assert_eq!(
            format_inst(&Inst::Bra {
                cond: 7,
                if_zero: true,
                target: 12
            }),
            "bra.z r7, @12"
        );
        assert_eq!(
            format_inst(&Inst::Special {
                dst: 0,
                reg: SpecialReg::ThreadIdxX
            }),
            "r0 = mov %tid.x"
        );
    }

    #[test]
    fn listing_marks_branch_targets() {
        let k =
            parse_kernel("__global__ void k(int n) { for (int i = 0; i < n; i++) { n += i; } }")
                .expect("parse");
        let ir = lower_kernel(&k).expect("lower");
        let listing = print_kernel_ir(&ir);
        assert!(listing.contains("// kernel k"), "{listing}");
        assert!(
            listing.contains("@"),
            "loop head must be labelled: {listing}"
        );
        assert!(listing.contains("ret"), "{listing}");
    }

    #[test]
    fn listing_reports_shared_and_spills() {
        let k = parse_kernel(
            "__global__ void k(float* p) { __shared__ float s[64]; s[threadIdx.x % 64] = 1.0f; p[0] = s[0]; }",
        )
        .expect("parse");
        let mut ir = lower_kernel(&k).expect("lower");
        assert!(print_kernel_ir(&ir).contains("shared 256B"));
        ir.spilled_regs = vec![3];
        assert!(print_kernel_ir(&ir).contains("spilled: [3]"));
    }
}
