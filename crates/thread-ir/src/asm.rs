//! Parser for the IR listing format emitted by [`crate::printer`] — an
//! "assembler" counterpart to the disassembler. Round-tripping through text
//! lets tests pin down pass output exactly and lets developers hand-write
//! IR fixtures.

use std::fmt;

use crate::ir::{
    AtomOp, BarCount, BinIr, Inst, KernelIr, ParamKind, Reg, ScalarTy, ShflKind, SpecialReg, UnIr,
    VoteKind,
};

/// Error from assembling an IR listing: a malformed line or a listing that
/// fails structural verification. Carries the offending line's text when
/// the failure is line-local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    message: String,
}

impl AsmError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir listing: {}", self.message)
    }
}

impl std::error::Error for AsmError {}

/// Parses a kernel listing produced by [`crate::printer::print_kernel_ir`].
///
/// The header comment is optional; `@pc:` label lines are ignored (targets
/// are numeric); each instruction line is `  <pc>  <text>` or just
/// `<text>`. Resource metadata that the text format does not carry
/// (parameter kinds, shared sizes) is reconstructed conservatively:
/// parameter count from the highest `ld.param` index, shared/local sizes
/// from the highest referenced offsets.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first malformed line.
pub fn parse_kernel_ir(text: &str) -> Result<KernelIr, AsmError> {
    let mut insts = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") || line.ends_with(':') {
            continue;
        }
        // Strip a leading numeric index if present.
        let body = match line.split_once("  ") {
            Some((idx, rest)) if idx.trim().parse::<usize>().is_ok() => rest.trim(),
            _ => line,
        };
        insts.push(parse_inst(body).map_err(|e| AsmError::new(format!("`{line}`: {e}")))?);
    }
    if insts.is_empty() {
        return Err(AsmError::new("empty listing"));
    }

    // Reconstruct metadata.
    let mut num_regs = 0;
    let mut max_param = None::<u32>;
    let mut shared_top = 0u32;
    let mut local_top = 0u32;
    let mut srcs = Vec::with_capacity(3);
    for inst in &insts {
        if let Some(d) = inst.dst() {
            num_regs = num_regs.max(d + 1);
        }
        srcs.clear();
        inst.srcs_into(&mut srcs);
        for &s in &srcs {
            num_regs = num_regs.max(s + 1);
        }
        match inst {
            Inst::LdParam { index, .. } => {
                max_param = Some(max_param.map_or(*index, |m: u32| m.max(*index)));
            }
            Inst::SharedAddr { offset, .. } => shared_top = shared_top.max(*offset + 8),
            Inst::LocalAddr { offset, .. } => local_top = local_top.max(*offset + 8),
            _ => {}
        }
    }
    let mut kernel = KernelIr {
        name: "asm".to_owned(),
        insts,
        num_regs,
        params: (0..max_param.map_or(0, |m| m + 1))
            .map(|_| ParamKind::Scalar(ScalarTy::U64))
            .collect(),
        shared_static_bytes: shared_top,
        uses_dynamic_shared: false,
        dynamic_shared_offset: shared_top,
        local_bytes: local_top,
        spilled_regs: Vec::new(),
        pressure: 0,
    };
    kernel.pressure = crate::liveness::register_pressure(&kernel);
    crate::verify::verify(&kernel).map_err(AsmError::new)?;
    Ok(kernel)
}

fn reg(tok: &str) -> Result<Reg, String> {
    tok.trim()
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("expected register, got `{tok}`"))
}

fn target(tok: &str) -> Result<usize, String> {
    tok.trim()
        .strip_prefix('@')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("expected @target, got `{tok}`"))
}

fn scalar_ty(name: &str) -> Result<ScalarTy, String> {
    Ok(match name {
        "s32" => ScalarTy::I32,
        "u32" => ScalarTy::U32,
        "s64" => ScalarTy::I64,
        "u64" => ScalarTy::U64,
        "f32" => ScalarTy::F32,
        "f64" => ScalarTy::F64,
        other => return Err(format!("unknown type `{other}`")),
    })
}

fn parse_imm(tok: &str) -> Result<u64, String> {
    let t = tok.trim();
    if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())
    } else {
        t.parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }
}

fn special(name: &str) -> Result<SpecialReg, String> {
    Ok(match name {
        "%tid.x" => SpecialReg::ThreadIdxX,
        "%tid.y" => SpecialReg::ThreadIdxY,
        "%tid.z" => SpecialReg::ThreadIdxZ,
        "%ctaid.x" => SpecialReg::BlockIdxX,
        "%ctaid.y" => SpecialReg::BlockIdxY,
        "%ctaid.z" => SpecialReg::BlockIdxZ,
        "%ntid.x" => SpecialReg::BlockDimX,
        "%ntid.y" => SpecialReg::BlockDimY,
        "%ntid.z" => SpecialReg::BlockDimZ,
        "%nctaid.x" => SpecialReg::GridDimX,
        "%nctaid.y" => SpecialReg::GridDimY,
        "%nctaid.z" => SpecialReg::GridDimZ,
        other => return Err(format!("unknown special register `{other}`")),
    })
}

fn bin_op(name: &str) -> Option<BinIr> {
    Some(match name {
        "add" => BinIr::Add,
        "sub" => BinIr::Sub,
        "mul" => BinIr::Mul,
        "div" => BinIr::Div,
        "rem" => BinIr::Rem,
        "shl" => BinIr::Shl,
        "shr" => BinIr::Shr,
        "and" => BinIr::And,
        "or" => BinIr::Or,
        "xor" => BinIr::Xor,
        "min" => BinIr::Min,
        "max" => BinIr::Max,
        "setp.lt" => BinIr::Lt,
        "setp.le" => BinIr::Le,
        "setp.gt" => BinIr::Gt,
        "setp.ge" => BinIr::Ge,
        "setp.eq" => BinIr::Eq,
        "setp.ne" => BinIr::Ne,
        _ => return None,
    })
}

fn un_op(name: &str) -> Option<UnIr> {
    Some(match name {
        "neg" => UnIr::Neg,
        "not" => UnIr::Not,
        "bnot" => UnIr::BitNot,
        "abs" => UnIr::Abs,
        "sqrt" => UnIr::Sqrt,
        "rsqrt" => UnIr::Rsqrt,
        "exp" => UnIr::Exp,
        "log" => UnIr::Log,
        "popc" => UnIr::Popc,
        "clz" => UnIr::Clz,
        "brev" => UnIr::Brev,
        _ => return None,
    })
}

/// Parses one instruction in the printer's format.
pub fn parse_inst(text: &str) -> Result<Inst, String> {
    let text = text.trim();
    // Forms without a destination.
    if text == "ret" {
        return Ok(Inst::Ret);
    }
    if let Some(rest) = text.strip_prefix("bar.sync ") {
        let mut it = rest.split(',');
        let id: u32 = it
            .next()
            .ok_or("missing id")?
            .trim()
            .parse()
            .map_err(|_| "bad barrier id")?;
        return Ok(match it.next() {
            Some(n) => Inst::Bar {
                id,
                count: BarCount::Fixed(n.trim().parse().map_err(|_| "bad barrier count")?),
            },
            None => Inst::Bar {
                id,
                count: BarCount::All,
            },
        });
    }
    if let Some(rest) = text.strip_prefix("bra.z ") {
        let (c, t) = rest.split_once(',').ok_or("bra.z needs cond, @target")?;
        return Ok(Inst::Bra {
            cond: reg(c)?,
            if_zero: true,
            target: target(t)?,
        });
    }
    if let Some(rest) = text.strip_prefix("bra.nz ") {
        let (c, t) = rest.split_once(',').ok_or("bra.nz needs cond, @target")?;
        return Ok(Inst::Bra {
            cond: reg(c)?,
            if_zero: false,
            target: target(t)?,
        });
    }
    if let Some(rest) = text.strip_prefix("bra ") {
        return Ok(Inst::Jmp {
            target: target(rest)?,
        });
    }
    if let Some(rest) = text.strip_prefix("st.") {
        // st.<ty> [rA], rV
        let (ty, rest) = rest.split_once(' ').ok_or("st needs operands")?;
        let (addr, val) = rest.split_once(',').ok_or("st needs [addr], val")?;
        let addr = addr
            .trim()
            .strip_prefix('[')
            .and_then(|a| a.strip_suffix(']'));
        return Ok(Inst::St {
            ty: scalar_ty(ty)?,
            addr: reg(addr.ok_or("bad address operand")?)?,
            val: reg(val)?,
        });
    }

    // Destination forms: `rD = <op> ...`.
    let (dst, rhs) = text.split_once('=').ok_or("expected `=`")?;
    let dst = reg(dst)?;
    let rhs = rhs.trim();

    if let Some(rest) = rhs.strip_prefix("imm ") {
        return Ok(Inst::Imm {
            dst,
            value: parse_imm(rest)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("mov ") {
        let rest = rest.trim();
        if let Some(offset) = rest.strip_prefix("shared+") {
            return Ok(Inst::SharedAddr {
                dst,
                offset: offset.parse().map_err(|_| "bad shared offset")?,
            });
        }
        if let Some(offset) = rest.strip_prefix("local+") {
            return Ok(Inst::LocalAddr {
                dst,
                offset: offset.parse().map_err(|_| "bad local offset")?,
            });
        }
        if rest.starts_with('%') {
            return Ok(Inst::Special {
                dst,
                reg: special(rest)?,
            });
        }
        return Ok(Inst::Mov {
            dst,
            src: reg(rest)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("ld.param ") {
        let idx = rest
            .trim()
            .strip_prefix('[')
            .and_then(|a| a.strip_suffix(']'));
        return Ok(Inst::LdParam {
            dst,
            index: idx.and_then(|i| i.parse().ok()).ok_or("bad param index")?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("ld.") {
        let (ty, addr) = rest.split_once(' ').ok_or("ld needs an address")?;
        let addr = addr
            .trim()
            .strip_prefix('[')
            .and_then(|a| a.strip_suffix(']'));
        return Ok(Inst::Ld {
            ty: scalar_ty(ty)?,
            dst,
            addr: reg(addr.ok_or("bad address operand")?)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("atom.") {
        // atom.<op>.<ty> [rA], rV
        let (opty, rest) = rest.split_once(' ').ok_or("atom needs operands")?;
        let (op_name, ty_name) = opty.split_once('.').ok_or("atom needs op.ty")?;
        let op = match op_name {
            "add" => AtomOp::Add,
            "max" => AtomOp::Max,
            "exch" => AtomOp::Exch,
            other => return Err(format!("unknown atomic `{other}`")),
        };
        let (addr, val) = rest.split_once(',').ok_or("atom needs [addr], val")?;
        let addr = addr
            .trim()
            .strip_prefix('[')
            .and_then(|a| a.strip_suffix(']'));
        return Ok(Inst::Atom {
            op,
            ty: scalar_ty(ty_name)?,
            dst,
            addr: reg(addr.ok_or("bad address operand")?)?,
            val: reg(val)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("shfl.") {
        let (kind, rest) = rest.split_once(' ').ok_or("shfl needs operands")?;
        let kind = match kind {
            "bfly" => ShflKind::Xor,
            "down" => ShflKind::Down,
            other => return Err(format!("unknown shuffle `{other}`")),
        };
        let ops: Vec<&str> = rest.split(',').collect();
        let [src, lane, width] = ops.as_slice() else {
            return Err("shfl needs src, lane, width".to_owned());
        };
        return Ok(Inst::Shfl {
            kind,
            dst,
            src: reg(src)?,
            lane: reg(lane)?,
            width: reg(width)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("vote.") {
        let (kind, src) = rest.split_once(' ').ok_or("vote needs an operand")?;
        let kind = match kind {
            "ballot" => VoteKind::Ballot,
            "any" => VoteKind::Any,
            "all" => VoteKind::All,
            other => return Err(format!("unknown vote `{other}`")),
        };
        return Ok(Inst::Vote {
            kind,
            dst,
            src: reg(src)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("cvt.") {
        // cvt.<to>.<from> rS
        let (tys, src) = rest.split_once(' ').ok_or("cvt needs an operand")?;
        let (to, from) = tys.split_once('.').ok_or("cvt needs to.from")?;
        return Ok(Inst::Cast {
            dst,
            src: reg(src)?,
            from: scalar_ty(from)?,
            to: scalar_ty(to)?,
        });
    }
    // Generic `name.ty operands` binary/unary.
    let (opty, rest) = rhs.split_once(' ').ok_or("expected operands")?;
    let (op_name, ty_name) = opty.rsplit_once('.').ok_or("expected op.ty")?;
    let ty = scalar_ty(ty_name)?;
    let ops: Vec<&str> = rest.split(',').collect();
    if let Some(op) = bin_op(op_name) {
        let [a, b] = ops.as_slice() else {
            return Err(format!("{op_name} needs two operands"));
        };
        return Ok(Inst::Bin {
            op,
            ty,
            dst,
            a: reg(a)?,
            b: reg(b)?,
        });
    }
    if let Some(op) = un_op(op_name) {
        let [a] = ops.as_slice() else {
            return Err(format!("{op_name} needs one operand"));
        };
        return Ok(Inst::Un {
            op,
            ty,
            dst,
            a: reg(a)?,
        });
    }
    Err(format!("unknown instruction `{rhs}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use crate::printer::{format_inst, print_kernel_ir};
    use cuda_frontend::parse_kernel;

    #[test]
    fn every_instruction_kind_round_trips() {
        let samples = vec![
            Inst::Imm { dst: 0, value: 42 },
            Inst::Imm {
                dst: 1,
                value: 0xdead_beef,
            },
            Inst::Mov { dst: 2, src: 0 },
            Inst::Bin {
                op: BinIr::Xor,
                ty: ScalarTy::U32,
                dst: 3,
                a: 1,
                b: 2,
            },
            Inst::Bin {
                op: BinIr::Le,
                ty: ScalarTy::F64,
                dst: 4,
                a: 3,
                b: 3,
            },
            Inst::Un {
                op: UnIr::Rsqrt,
                ty: ScalarTy::F32,
                dst: 5,
                a: 4,
            },
            Inst::Cast {
                dst: 6,
                src: 5,
                from: ScalarTy::F32,
                to: ScalarTy::I64,
            },
            Inst::Ld {
                ty: ScalarTy::U64,
                dst: 7,
                addr: 6,
            },
            Inst::St {
                ty: ScalarTy::F32,
                addr: 7,
                val: 5,
            },
            Inst::Atom {
                op: AtomOp::Add,
                ty: ScalarTy::U32,
                dst: 8,
                addr: 7,
                val: 3,
            },
            Inst::Shfl {
                kind: ShflKind::Xor,
                dst: 9,
                src: 8,
                lane: 3,
                width: 2,
            },
            Inst::Shfl {
                kind: ShflKind::Down,
                dst: 10,
                src: 9,
                lane: 3,
                width: 2,
            },
            Inst::Vote {
                kind: VoteKind::Ballot,
                dst: 15,
                src: 4,
            },
            Inst::Vote {
                kind: VoteKind::Any,
                dst: 16,
                src: 4,
            },
            Inst::Vote {
                kind: VoteKind::All,
                dst: 17,
                src: 4,
            },
            Inst::Bar {
                id: 0,
                count: BarCount::All,
            },
            Inst::Bar {
                id: 3,
                count: BarCount::Fixed(224),
            },
            Inst::Special {
                dst: 11,
                reg: SpecialReg::GridDimX,
            },
            Inst::LdParam { dst: 12, index: 4 },
            Inst::SharedAddr {
                dst: 13,
                offset: 160,
            },
            Inst::LocalAddr { dst: 14, offset: 8 },
            Inst::Bra {
                cond: 4,
                if_zero: true,
                target: 2,
            },
            Inst::Bra {
                cond: 4,
                if_zero: false,
                target: 0,
            },
            Inst::Jmp { target: 1 },
            Inst::Ret,
        ];
        for inst in samples {
            let text = format_inst(&inst);
            let parsed = parse_inst(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, inst, "text was `{text}`");
        }
    }

    #[test]
    fn full_kernel_listing_round_trips() {
        let k = parse_kernel(
            "__global__ void k(float* out, float* in, int n) {\
               __shared__ float s[32];\
               int i = blockIdx.x * blockDim.x + threadIdx.x;\
               s[threadIdx.x % 32] = in[i % n];\
               __syncthreads();\
               float v = s[(threadIdx.x + 1) % 32];\
               v += __shfl_xor_sync(0xffffffffu, v, 1, 32);\
               if (i < n) { out[i] = v; }\
             }",
        )
        .expect("parse");
        let ir = lower_kernel(&k).expect("lower");
        let listing = print_kernel_ir(&ir);
        let reparsed = parse_kernel_ir(&listing).expect("assemble");
        assert_eq!(
            reparsed.insts, ir.insts,
            "instructions must round-trip exactly"
        );
        assert_eq!(reparsed.num_regs, ir.num_regs);
    }

    #[test]
    fn all_benchmark_kernels_round_trip_through_text() {
        // The heavyweight guarantee: listing → parse reproduces the exact
        // instruction stream for every benchmark kernel.
        for src in [
            "__global__ void a(float* p) { p[threadIdx.x] = 1.0f; }",
            "__global__ void b(unsigned int* p, int n) {\
               for (int i = threadIdx.x; i < n; i += blockDim.x) { atomicAdd(&p[0], 1u); }\
             }",
        ] {
            let ir = lower_kernel(&parse_kernel(src).expect("parse")).expect("lower");
            let reparsed = parse_kernel_ir(&print_kernel_ir(&ir)).expect("assemble");
            assert_eq!(reparsed.insts, ir.insts);
        }
    }

    #[test]
    fn malformed_lines_are_reported() {
        assert!(parse_inst("r1 = frob.u32 r2, r3").is_err());
        assert!(parse_inst("r1 = imm zz").is_err());
        assert!(parse_inst("bra.z r1").is_err());
        assert!(parse_kernel_ir("").is_err());
        // Missing terminator fails verification.
        assert!(parse_kernel_ir("r0 = imm 1").is_err());
    }

    #[test]
    fn hand_written_fixture_assembles_and_runs_structurally() {
        let listing = "\
            r0 = mov %tid.x\n\
            r1 = imm 2\n\
            r2 = mul.s32 r0, r1\n\
            @3:\n\
            ret\n";
        let k = parse_kernel_ir(listing).expect("assemble");
        assert_eq!(k.insts.len(), 4);
        assert_eq!(k.num_regs, 3);
    }
}
