//! Scalar ALU semantics of the IR: the single source of truth for what
//! every operation computes on canonical 64-bit register values. Used by
//! the simulator's interpreter and by the optimizer's constant folder, so
//! folded constants are bit-identical to runtime results.

use crate::ir::{BinIr, ScalarTy, UnIr};

/// Canonicalizes a value just loaded from memory (`raw` holds the low
/// `ty` bytes, zero-extended).
pub fn canon_load(ty: ScalarTy, raw: u64) -> u64 {
    match ty {
        ScalarTy::I32 => (raw as u32 as i32) as i64 as u64,
        _ => raw,
    }
}

fn canon_i32(v: i32) -> u64 {
    v as i64 as u64
}

fn canon_u32(v: u32) -> u64 {
    u64::from(v)
}

/// Executes a binary operation under `ty`. Integer division by zero
/// yields 0 (PTX-like saturation instead of a fault).
pub fn bin(op: BinIr, ty: ScalarTy, a: u64, b: u64) -> u64 {
    match ty {
        ScalarTy::I32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            match op {
                BinIr::Add => canon_i32(x.wrapping_add(y)),
                BinIr::Sub => canon_i32(x.wrapping_sub(y)),
                BinIr::Mul => canon_i32(x.wrapping_mul(y)),
                BinIr::Div => canon_i32(if y == 0 { 0 } else { x.wrapping_div(y) }),
                BinIr::Rem => canon_i32(if y == 0 { 0 } else { x.wrapping_rem(y) }),
                BinIr::Shl => canon_i32(if (y as u32) >= 32 {
                    0
                } else {
                    x.wrapping_shl(y as u32)
                }),
                BinIr::Shr => canon_i32(if (y as u32) >= 32 {
                    if x < 0 {
                        -1
                    } else {
                        0
                    }
                } else {
                    x.wrapping_shr(y as u32)
                }),
                BinIr::And => canon_i32(x & y),
                BinIr::Or => canon_i32(x | y),
                BinIr::Xor => canon_i32(x ^ y),
                BinIr::Min => canon_i32(x.min(y)),
                BinIr::Max => canon_i32(x.max(y)),
                BinIr::Lt => u64::from(x < y),
                BinIr::Le => u64::from(x <= y),
                BinIr::Gt => u64::from(x > y),
                BinIr::Ge => u64::from(x >= y),
                BinIr::Eq => u64::from(x == y),
                BinIr::Ne => u64::from(x != y),
            }
        }
        ScalarTy::U32 => {
            let (x, y) = (a as u32, b as u32);
            match op {
                BinIr::Add => canon_u32(x.wrapping_add(y)),
                BinIr::Sub => canon_u32(x.wrapping_sub(y)),
                BinIr::Mul => canon_u32(x.wrapping_mul(y)),
                BinIr::Div => canon_u32(x.checked_div(y).unwrap_or(0)),
                BinIr::Rem => canon_u32(if y == 0 { 0 } else { x % y }),
                BinIr::Shl => canon_u32(if y >= 32 { 0 } else { x.wrapping_shl(y) }),
                BinIr::Shr => canon_u32(if y >= 32 { 0 } else { x.wrapping_shr(y) }),
                BinIr::And => canon_u32(x & y),
                BinIr::Or => canon_u32(x | y),
                BinIr::Xor => canon_u32(x ^ y),
                BinIr::Min => canon_u32(x.min(y)),
                BinIr::Max => canon_u32(x.max(y)),
                BinIr::Lt => u64::from(x < y),
                BinIr::Le => u64::from(x <= y),
                BinIr::Gt => u64::from(x > y),
                BinIr::Ge => u64::from(x >= y),
                BinIr::Eq => u64::from(x == y),
                BinIr::Ne => u64::from(x != y),
            }
        }
        ScalarTy::I64 => {
            let (x, y) = (a as i64, b as i64);
            match op {
                BinIr::Add => x.wrapping_add(y) as u64,
                BinIr::Sub => x.wrapping_sub(y) as u64,
                BinIr::Mul => x.wrapping_mul(y) as u64,
                BinIr::Div => (if y == 0 { 0 } else { x.wrapping_div(y) }) as u64,
                BinIr::Rem => (if y == 0 { 0 } else { x.wrapping_rem(y) }) as u64,
                BinIr::Shl => {
                    if (y as u64) >= 64 {
                        0
                    } else {
                        (x.wrapping_shl(y as u32)) as u64
                    }
                }
                BinIr::Shr => {
                    if (y as u64) >= 64 {
                        (if x < 0 { -1i64 } else { 0 }) as u64
                    } else {
                        (x.wrapping_shr(y as u32)) as u64
                    }
                }
                BinIr::And => (x & y) as u64,
                BinIr::Or => (x | y) as u64,
                BinIr::Xor => (x ^ y) as u64,
                BinIr::Min => x.min(y) as u64,
                BinIr::Max => x.max(y) as u64,
                BinIr::Lt => u64::from(x < y),
                BinIr::Le => u64::from(x <= y),
                BinIr::Gt => u64::from(x > y),
                BinIr::Ge => u64::from(x >= y),
                BinIr::Eq => u64::from(x == y),
                BinIr::Ne => u64::from(x != y),
            }
        }
        ScalarTy::U64 => {
            let (x, y) = (a, b);
            match op {
                BinIr::Add => x.wrapping_add(y),
                BinIr::Sub => x.wrapping_sub(y),
                BinIr::Mul => x.wrapping_mul(y),
                BinIr::Div => x.checked_div(y).unwrap_or(0),
                BinIr::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x % y
                    }
                }
                BinIr::Shl => {
                    if y >= 64 {
                        0
                    } else {
                        x.wrapping_shl(y as u32)
                    }
                }
                BinIr::Shr => {
                    if y >= 64 {
                        0
                    } else {
                        x.wrapping_shr(y as u32)
                    }
                }
                BinIr::And => x & y,
                BinIr::Or => x | y,
                BinIr::Xor => x ^ y,
                BinIr::Min => x.min(y),
                BinIr::Max => x.max(y),
                BinIr::Lt => u64::from(x < y),
                BinIr::Le => u64::from(x <= y),
                BinIr::Gt => u64::from(x > y),
                BinIr::Ge => u64::from(x >= y),
                BinIr::Eq => u64::from(x == y),
                BinIr::Ne => u64::from(x != y),
            }
        }
        ScalarTy::F32 => {
            let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
            let f = |v: f32| u64::from(v.to_bits());
            match op {
                BinIr::Add => f(x + y),
                BinIr::Sub => f(x - y),
                BinIr::Mul => f(x * y),
                BinIr::Div => f(x / y),
                BinIr::Rem => f(x % y),
                BinIr::Min => f(x.min(y)),
                BinIr::Max => f(x.max(y)),
                BinIr::Lt => u64::from(x < y),
                BinIr::Le => u64::from(x <= y),
                BinIr::Gt => u64::from(x > y),
                BinIr::Ge => u64::from(x >= y),
                BinIr::Eq => u64::from(x == y),
                BinIr::Ne => u64::from(x != y),
                other => panic!("operation {other:?} undefined on f32"),
            }
        }
        ScalarTy::F64 => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let f = |v: f64| v.to_bits();
            match op {
                BinIr::Add => f(x + y),
                BinIr::Sub => f(x - y),
                BinIr::Mul => f(x * y),
                BinIr::Div => f(x / y),
                BinIr::Rem => f(x % y),
                BinIr::Min => f(x.min(y)),
                BinIr::Max => f(x.max(y)),
                BinIr::Lt => u64::from(x < y),
                BinIr::Le => u64::from(x <= y),
                BinIr::Gt => u64::from(x > y),
                BinIr::Ge => u64::from(x >= y),
                BinIr::Eq => u64::from(x == y),
                BinIr::Ne => u64::from(x != y),
                other => panic!("operation {other:?} undefined on f64"),
            }
        }
    }
}

/// Executes a unary operation under `ty`.
pub fn un(op: UnIr, ty: ScalarTy, a: u64) -> u64 {
    match op {
        UnIr::Not => u64::from(is_zero(ty, a)),
        UnIr::Neg => match ty {
            ScalarTy::I32 | ScalarTy::U32 => canon_i32((a as u32 as i32).wrapping_neg()),
            ScalarTy::I64 | ScalarTy::U64 => (a as i64).wrapping_neg() as u64,
            ScalarTy::F32 => u64::from((-f32::from_bits(a as u32)).to_bits()),
            ScalarTy::F64 => (-f64::from_bits(a)).to_bits(),
        },
        UnIr::BitNot => match ty {
            ScalarTy::I32 => canon_i32(!(a as u32 as i32)),
            ScalarTy::U32 => canon_u32(!(a as u32)),
            _ => !a,
        },
        UnIr::Abs => match ty {
            ScalarTy::I32 => canon_i32((a as u32 as i32).wrapping_abs()),
            ScalarTy::I64 => (a as i64).wrapping_abs() as u64,
            ScalarTy::F32 => u64::from(f32::from_bits(a as u32).abs().to_bits()),
            ScalarTy::F64 => f64::from_bits(a).abs().to_bits(),
            _ => a,
        },
        UnIr::Popc => match ty {
            ScalarTy::I32 | ScalarTy::U32 => u64::from((a as u32).count_ones()),
            _ => u64::from(a.count_ones()),
        },
        UnIr::Clz => match ty {
            ScalarTy::I32 | ScalarTy::U32 => u64::from((a as u32).leading_zeros()),
            _ => u64::from(a.leading_zeros()),
        },
        UnIr::Brev => match ty {
            ScalarTy::I32 | ScalarTy::U32 => u64::from((a as u32).reverse_bits()),
            _ => a.reverse_bits(),
        },
        UnIr::Sqrt | UnIr::Rsqrt | UnIr::Exp | UnIr::Log => match ty {
            ScalarTy::F32 => {
                let x = f32::from_bits(a as u32);
                let r = match op {
                    UnIr::Sqrt => x.sqrt(),
                    UnIr::Rsqrt => x.sqrt().recip(),
                    UnIr::Exp => x.exp(),
                    _ => x.ln(),
                };
                u64::from(r.to_bits())
            }
            ScalarTy::F64 => {
                let x = f64::from_bits(a);
                let r = match op {
                    UnIr::Sqrt => x.sqrt(),
                    UnIr::Rsqrt => x.sqrt().recip(),
                    UnIr::Exp => x.exp(),
                    _ => x.ln(),
                };
                r.to_bits()
            }
            other => panic!("special function on non-float type {other:?}"),
        },
    }
}

fn is_zero(ty: ScalarTy, a: u64) -> bool {
    match ty {
        ScalarTy::F32 => f32::from_bits(a as u32) == 0.0,
        ScalarTy::F64 => f64::from_bits(a) == 0.0,
        ScalarTy::I32 | ScalarTy::U32 => a as u32 == 0,
        _ => a == 0,
    }
}

/// Numeric conversion between scalar types.
pub fn cast(from: ScalarTy, to: ScalarTy, v: u64) -> u64 {
    // Decode to a wide intermediate.
    enum Wide {
        I(i64),
        U(u64),
        F(f64),
    }
    let wide = match from {
        ScalarTy::I32 => Wide::I(v as u32 as i32 as i64),
        ScalarTy::U32 => Wide::U(u64::from(v as u32)),
        ScalarTy::I64 => Wide::I(v as i64),
        ScalarTy::U64 => Wide::U(v),
        ScalarTy::F32 => Wide::F(f64::from(f32::from_bits(v as u32))),
        ScalarTy::F64 => Wide::F(f64::from_bits(v)),
    };
    match (wide, to) {
        (Wide::I(x), ScalarTy::I32) => canon_i32(x as i32),
        (Wide::I(x), ScalarTy::U32) => canon_u32(x as u32),
        (Wide::I(x), ScalarTy::I64) => x as u64,
        (Wide::I(x), ScalarTy::U64) => x as u64,
        (Wide::I(x), ScalarTy::F32) => u64::from((x as f32).to_bits()),
        (Wide::I(x), ScalarTy::F64) => (x as f64).to_bits(),
        (Wide::U(x), ScalarTy::I32) => canon_i32(x as i32),
        (Wide::U(x), ScalarTy::U32) => canon_u32(x as u32),
        (Wide::U(x), ScalarTy::I64) => x,
        (Wide::U(x), ScalarTy::U64) => x,
        (Wide::U(x), ScalarTy::F32) => u64::from((x as f32).to_bits()),
        (Wide::U(x), ScalarTy::F64) => (x as f64).to_bits(),
        (Wide::F(x), ScalarTy::I32) => canon_i32(x as i32),
        (Wide::F(x), ScalarTy::U32) => canon_u32(x as u32),
        (Wide::F(x), ScalarTy::I64) => (x as i64) as u64,
        (Wide::F(x), ScalarTy::U64) => x as u64,
        (Wide::F(x), ScalarTy::F32) => u64::from((x as f32).to_bits()),
        (Wide::F(x), ScalarTy::F64) => x.to_bits(),
    }
}
