//! The SIMT instruction set and kernel container.
//!
//! Values are raw 64-bit words ([`u64`]); every operation carries the
//! [`ScalarTy`] under which it interprets its operands, like a real ISA.
//! Pointers are tagged addresses (see [`MemAddr`]): two tag bits select the
//! memory space, thirty bits name a global buffer, and the low 32 bits are a
//! byte offset. This lets `reinterpret_cast` between pointer types and
//! pointer arithmetic work without static aliasing information.

use std::fmt;

/// A virtual register index. Registers are per-thread.
pub type Reg = u32;

/// Scalar interpretation of a 64-bit register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarTy {
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// 64-bit signed integer.
    I64,
    /// 64-bit unsigned integer (also pointer values).
    U64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl ScalarTy {
    /// Width of a memory access of this type, in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            ScalarTy::I32 | ScalarTy::U32 | ScalarTy::F32 => 4,
            ScalarTy::I64 | ScalarTy::U64 | ScalarTy::F64 => 8,
        }
    }

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::F32 | ScalarTy::F64)
    }
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarTy::I32 => "s32",
            ScalarTy::U32 => "u32",
            ScalarTy::I64 => "s64",
            ScalarTy::U64 => "u64",
            ScalarTy::F32 => "f32",
            ScalarTy::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Memory spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device (global) memory; addressed as (buffer id, offset).
    Global,
    /// Per-block shared memory.
    Shared,
    /// Per-thread local memory (local arrays and register spills).
    Local,
}

/// Tagged 64-bit address.
///
/// Layout: bits 63–62 space tag (0 = global, 1 = shared, 2 = local),
/// bits 61–32 buffer id (global only), bits 31–0 byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAddr(pub u64);

impl MemAddr {
    const TAG_SHIFT: u32 = 62;
    const BUF_SHIFT: u32 = 32;
    const BUF_MASK: u64 = 0x3fff_ffff;

    /// Builds a global-memory address.
    pub fn global(buffer: u32, offset: u32) -> Self {
        debug_assert!(u64::from(buffer) <= Self::BUF_MASK);
        MemAddr((u64::from(buffer) << Self::BUF_SHIFT) | u64::from(offset))
    }

    /// Builds a shared-memory address.
    pub fn shared(offset: u32) -> Self {
        MemAddr((1u64 << Self::TAG_SHIFT) | u64::from(offset))
    }

    /// Builds a local-memory address.
    pub fn local(offset: u32) -> Self {
        MemAddr((2u64 << Self::TAG_SHIFT) | u64::from(offset))
    }

    /// The memory space this address points into.
    pub fn space(self) -> Space {
        match self.0 >> Self::TAG_SHIFT {
            0 => Space::Global,
            1 => Space::Shared,
            _ => Space::Local,
        }
    }

    /// The global buffer id (meaningful for [`Space::Global`] only).
    pub fn buffer(self) -> u32 {
        ((self.0 >> Self::BUF_SHIFT) & Self::BUF_MASK) as u32
    }

    /// The byte offset within the buffer / shared / local frame.
    pub fn offset(self) -> u32 {
        self.0 as u32
    }

    /// Returns the address advanced by `bytes` (offset arithmetic only; the
    /// tag and buffer are preserved, matching pointer arithmetic semantics).
    pub fn add_bytes(self, bytes: i64) -> Self {
        let off = (i64::from(self.offset()) + bytes) as u32;
        MemAddr((self.0 & !0xffff_ffff) | u64::from(off))
    }
}

/// Binary ALU operations. Comparisons produce 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the operations
pub enum BinIr {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Unary operations. The transcendental ones model the GPU special function
/// unit and carry a longer latency in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnIr {
    Neg,
    /// Logical not: 1 if zero, else 0.
    Not,
    BitNot,
    Abs,
    Sqrt,
    Rsqrt,
    Exp,
    Log,
    /// Population count.
    Popc,
    /// Count leading zeros.
    Clz,
    /// Bit reversal.
    Brev,
}

/// Atomic read-modify-write operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AtomOp {
    Add,
    Max,
    Exch,
}

/// Warp vote kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoteKind {
    /// Bitmask of participating lanes with a true predicate.
    Ballot,
    /// 1 when any participating lane's predicate is true.
    Any,
    /// 1 when all participating lanes' predicates are true.
    All,
}

/// Warp shuffle kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShflKind {
    /// Source lane = `lane_id ^ operand`.
    Xor,
    /// Source lane = `lane_id + operand` (within the width group).
    Down,
}

/// Thread/block geometry values readable by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpecialReg {
    ThreadIdxX,
    ThreadIdxY,
    ThreadIdxZ,
    BlockIdxX,
    BlockIdxY,
    BlockIdxZ,
    BlockDimX,
    BlockDimY,
    BlockDimZ,
    GridDimX,
    GridDimY,
    GridDimZ,
}

/// How many threads participate in a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarCount {
    /// All threads of the block (`__syncthreads()`).
    All,
    /// Exactly `n` threads (`bar.sync id, n`).
    Fixed(u32),
}

/// One IR instruction. Each executing thread interprets the stream with its
/// own program counter; branch targets are instruction indices.
///
/// Every operand is a plain scalar, so instructions are `Copy` — the
/// simulator pre-decodes kernels into flat instruction buffers by value.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // operand fields follow the uniform dst/src naming
pub enum Inst {
    /// `dst = value` (raw 64-bit bits).
    Imm { dst: Reg, value: u64 },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b` under `ty`.
    Bin {
        op: BinIr,
        ty: ScalarTy,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = <op> a` under `ty`.
    Un {
        op: UnIr,
        ty: ScalarTy,
        dst: Reg,
        a: Reg,
    },
    /// `dst = (to)(from)src` — numeric conversion.
    Cast {
        dst: Reg,
        src: Reg,
        from: ScalarTy,
        to: ScalarTy,
    },
    /// Load `ty` from the address in `addr`.
    Ld { ty: ScalarTy, dst: Reg, addr: Reg },
    /// Store `ty` to the address in `addr`.
    St { ty: ScalarTy, addr: Reg, val: Reg },
    /// Atomic read-modify-write; `dst` receives the old value.
    Atom {
        op: AtomOp,
        ty: ScalarTy,
        dst: Reg,
        addr: Reg,
        val: Reg,
    },
    /// Warp shuffle: `dst = register `src` of the source lane`.
    Shfl {
        kind: ShflKind,
        dst: Reg,
        src: Reg,
        lane: Reg,
        width: Reg,
    },
    /// Warp vote over the executing group's predicate values.
    Vote { kind: VoteKind, dst: Reg, src: Reg },
    /// Named barrier with participation count.
    Bar { id: u32, count: BarCount },
    /// Read a geometry special register.
    Special { dst: Reg, reg: SpecialReg },
    /// Load the `index`-th kernel parameter.
    LdParam { dst: Reg, index: u32 },
    /// Materialize the base address of a shared-memory allocation.
    SharedAddr { dst: Reg, offset: u32 },
    /// Materialize the base address of a per-thread local allocation.
    LocalAddr { dst: Reg, offset: u32 },
    /// Conditional branch: if (`cond` == 0) == `if_zero`, jump to `target`.
    Bra {
        cond: Reg,
        if_zero: bool,
        target: usize,
    },
    /// Unconditional jump.
    Jmp { target: usize },
    /// Thread exit.
    Ret,
}

impl Inst {
    /// The destination register this instruction writes, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Imm { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Ld { dst, .. }
            | Inst::Atom { dst, .. }
            | Inst::Shfl { dst, .. }
            | Inst::Vote { dst, .. }
            | Inst::Special { dst, .. }
            | Inst::LdParam { dst, .. }
            | Inst::SharedAddr { dst, .. }
            | Inst::LocalAddr { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Appends the source registers this instruction reads to `out`.
    pub fn srcs_into(&self, out: &mut Vec<Reg>) {
        match self {
            Inst::Mov { src, .. } => out.push(*src),
            Inst::Bin { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Inst::Un { a, .. } => out.push(*a),
            Inst::Cast { src, .. } => out.push(*src),
            Inst::Ld { addr, .. } => out.push(*addr),
            Inst::St { addr, val, .. } => {
                out.push(*addr);
                out.push(*val);
            }
            Inst::Atom { addr, val, .. } => {
                out.push(*addr);
                out.push(*val);
            }
            Inst::Shfl {
                src, lane, width, ..
            } => {
                out.push(*src);
                out.push(*lane);
                out.push(*width);
            }
            Inst::Vote { src, .. } => out.push(*src),
            Inst::Bra { cond, .. } => out.push(*cond),
            _ => {}
        }
    }

    /// The source registers this instruction reads.
    pub fn srcs(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(3);
        self.srcs_into(&mut v);
        v
    }

    /// True for instructions that access global/local memory (the long-
    /// latency class in the simulator).
    pub fn is_memory(&self) -> bool {
        matches!(self, Inst::Ld { .. } | Inst::St { .. } | Inst::Atom { .. })
    }

    /// True for control-flow instructions.
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Bra { .. } | Inst::Jmp { .. } | Inst::Ret)
    }
}

/// Scalar type of a kernel parameter as seen at launch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// An integer/float scalar passed by value (raw bits).
    Scalar(ScalarTy),
    /// A pointer parameter; bound to a buffer at launch.
    Pointer,
}

/// A compiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelIr {
    /// Kernel name (diagnostics only).
    pub name: String,
    /// The flat instruction stream.
    pub insts: Vec<Inst>,
    /// Number of virtual registers used.
    pub num_regs: u32,
    /// Parameter kinds, in declaration order.
    pub params: Vec<ParamKind>,
    /// Bytes of statically declared `__shared__` memory.
    pub shared_static_bytes: u32,
    /// True if the kernel declares an `extern __shared__` array (its size is
    /// supplied at launch).
    pub uses_dynamic_shared: bool,
    /// Offset of the `extern __shared__` region within the block's shared
    /// frame (== `shared_static_bytes` when present).
    pub dynamic_shared_offset: u32,
    /// Bytes of per-thread local memory for local arrays.
    pub local_bytes: u32,
    /// Registers demoted to local memory by the spill pass. Each use of one
    /// of these registers costs a local-memory access in the timing model.
    pub spilled_regs: Vec<Reg>,
    /// Cached register-pressure estimate (filled by lowering).
    pub pressure: u32,
}

impl KernelIr {
    /// The register-pressure estimate used as `NRegs` by the occupancy
    /// model: maximum simultaneously live virtual registers plus a small
    /// architectural overhead. The spill pass recomputes it with the spilled
    /// registers excluded.
    pub fn reg_pressure(&self) -> u32 {
        self.pressure
    }

    /// Total shared-memory bytes per block given a dynamic allocation.
    pub fn shared_bytes(&self, dynamic: u32) -> u32 {
        self.shared_static_bytes + if self.uses_dynamic_shared { dynamic } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_addr_round_trips() {
        let a = MemAddr::global(17, 4096);
        assert_eq!(a.space(), Space::Global);
        assert_eq!(a.buffer(), 17);
        assert_eq!(a.offset(), 4096);

        let s = MemAddr::shared(128);
        assert_eq!(s.space(), Space::Shared);
        assert_eq!(s.offset(), 128);

        let l = MemAddr::local(8);
        assert_eq!(l.space(), Space::Local);
        assert_eq!(l.offset(), 8);
    }

    #[test]
    fn mem_addr_arithmetic_preserves_tag() {
        let a = MemAddr::shared(100).add_bytes(28);
        assert_eq!(a.space(), Space::Shared);
        assert_eq!(a.offset(), 128);

        let b = MemAddr::global(3, 100).add_bytes(-4);
        assert_eq!(b.buffer(), 3);
        assert_eq!(b.offset(), 96);
    }

    #[test]
    fn inst_dst_and_srcs() {
        let i = Inst::Bin {
            op: BinIr::Add,
            ty: ScalarTy::I32,
            dst: 5,
            a: 1,
            b: 2,
        };
        assert_eq!(i.dst(), Some(5));
        assert_eq!(i.srcs(), vec![1, 2]);

        let st = Inst::St {
            ty: ScalarTy::F32,
            addr: 3,
            val: 4,
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), vec![3, 4]);
        assert!(st.is_memory());

        let ret = Inst::Ret;
        assert!(ret.is_control());
        assert!(ret.srcs().is_empty());
    }

    #[test]
    fn scalar_ty_sizes() {
        assert_eq!(ScalarTy::F32.size_bytes(), 4);
        assert_eq!(ScalarTy::U64.size_bytes(), 8);
        assert!(ScalarTy::F64.is_float());
        assert!(!ScalarTy::I64.is_float());
    }
}
