//! Register-bound spilling, modeling `nvcc -maxrregcount`.
//!
//! When HFuse applies a register bound to recover occupancy (Fig. 6 of the
//! paper), the real compiler spills excess registers to local memory, which
//! turns register accesses into memory traffic. We model this by *marking*
//! virtual registers as spilled: functionally nothing changes (values still
//! live in the register file of the interpreter), but the simulator charges
//! a local-memory access for every use of a spilled register and a store for
//! every definition — the same cost structure real spilling has.

use crate::ir::KernelIr;
use crate::liveness::{pressure_excluding, reg_stats, RegSet};

/// Bytes of local memory reserved per spilled register.
const SPILL_SLOT_BYTES: u32 = 8;

/// Applies a register bound to the kernel, selecting registers to spill
/// until the pressure estimate fits within `bound`.
///
/// Registers with long live ranges and few occurrences are spilled first
/// (cheapest: few extra memory accesses per register freed). Returns the
/// number of registers spilled. If `bound` is already satisfied this is a
/// no-op.
pub fn apply_register_bound(kernel: &mut KernelIr, bound: u32) -> usize {
    let bound = bound.max(crate::liveness::MIN_REGS);
    if kernel.reg_pressure() <= bound {
        return 0;
    }

    // Rank candidates: lowest (occurrences / live_points) first. Constant
    // registers are already free (see `liveness::rematerializable_regs`),
    // so spilling them would not reduce pressure.
    let cheap = crate::liveness::rematerializable_regs(kernel);
    let mut candidates: Vec<_> = reg_stats(kernel)
        .into_iter()
        .filter(|s| s.live_points > 0 && !cheap.contains(s.reg))
        .collect();
    candidates.sort_by(|a, b| {
        let pa = f64::from(a.occurrences) / f64::from(a.live_points);
        let pb = f64::from(b.occurrences) / f64::from(b.live_points);
        pa.partial_cmp(&pb)
            .expect("priorities are finite")
            .then(b.live_points.cmp(&a.live_points))
    });

    let mut spilled = RegSet::new(kernel.num_regs);
    let mut count = 0;
    for cand in candidates {
        if pressure_excluding(kernel, Some(&spilled)) <= bound {
            break;
        }
        spilled.insert(cand.reg);
        count += 1;
    }

    kernel.spilled_regs = spilled.iter().collect();
    kernel.local_bytes += SPILL_SLOT_BYTES * count as u32;
    kernel.pressure = pressure_excluding(kernel, Some(&spilled)).min(bound);
    count as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use cuda_frontend::parse_kernel;

    fn wide_kernel() -> KernelIr {
        // Sixteen simultaneously live loads.
        let mut body = String::new();
        for i in 0..16 {
            body.push_str(&format!("float x{i} = a[{i}];"));
        }
        body.push_str("a[0] = ");
        body.push_str(
            &(0..16)
                .map(|i| format!("x{i}"))
                .collect::<Vec<_>>()
                .join(" + "),
        );
        body.push(';');
        let src = format!("__global__ void k(float* a) {{ {body} }}");
        lower_kernel(&parse_kernel(&src).expect("parse")).expect("lower")
    }

    #[test]
    fn bound_above_pressure_is_noop() {
        let mut k = wide_kernel();
        let p = k.reg_pressure();
        let spilled = apply_register_bound(&mut k, p + 10);
        assert_eq!(spilled, 0);
        assert!(k.spilled_regs.is_empty());
        assert_eq!(k.reg_pressure(), p);
    }

    #[test]
    fn bound_below_pressure_spills_until_fit() {
        let mut k = wide_kernel();
        let p = k.reg_pressure();
        assert!(p > 16, "test kernel should be register-hungry, got {p}");
        let target = p - 6;
        let spilled = apply_register_bound(&mut k, target);
        assert!(spilled > 0);
        assert!(
            k.reg_pressure() <= target,
            "{} > {target}",
            k.reg_pressure()
        );
        assert_eq!(k.spilled_regs.len(), spilled);
    }

    #[test]
    fn spilling_reserves_local_memory() {
        let mut k = wide_kernel();
        let before = k.local_bytes;
        let p = k.reg_pressure();
        let spilled = apply_register_bound(&mut k, p - 4);
        assert_eq!(k.local_bytes, before + 8 * spilled as u32);
    }

    #[test]
    fn bound_is_floored_at_min_regs() {
        let mut k = wide_kernel();
        apply_register_bound(&mut k, 1);
        assert!(k.reg_pressure() >= crate::liveness::MIN_REGS);
    }

    #[test]
    fn spilled_regs_have_long_live_ranges() {
        let mut k = wide_kernel();
        let stats = reg_stats(&k);
        let p = k.reg_pressure();
        apply_register_bound(&mut k, p - 4);
        // Every spilled register should be live somewhere.
        for &r in &k.spilled_regs {
            assert!(stats[r as usize].live_points > 0);
        }
    }
}
