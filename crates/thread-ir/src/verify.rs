//! Structural well-formedness checks on [`KernelIr`].

use crate::ir::{BarCount, Inst, KernelIr};

/// Verifies structural invariants of a kernel:
///
/// * every branch target is a valid instruction index,
/// * every register index is below `num_regs`,
/// * every `LdParam` index is below the parameter count,
/// * barrier ids are within the hardware range (0–15),
/// * the last instruction is a terminator (so the PC cannot run off the end),
/// * static shared offsets lie within the declared static region.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn verify(kernel: &KernelIr) -> Result<(), String> {
    let n = kernel.insts.len();
    if n == 0 {
        return Err("kernel has no instructions".to_owned());
    }
    match kernel.insts.last() {
        Some(Inst::Ret) | Some(Inst::Jmp { .. }) => {}
        other => {
            return Err(format!(
                "kernel must end in a terminator, ends in {other:?}"
            ))
        }
    }
    let mut srcs = Vec::with_capacity(3);
    for (pc, inst) in kernel.insts.iter().enumerate() {
        if let Some(d) = inst.dst() {
            if d >= kernel.num_regs {
                return Err(format!("pc {pc}: dst register {d} out of range"));
            }
        }
        srcs.clear();
        inst.srcs_into(&mut srcs);
        for &s in &srcs {
            if s >= kernel.num_regs {
                return Err(format!("pc {pc}: src register {s} out of range"));
            }
        }
        match inst {
            Inst::Bra { target, .. } | Inst::Jmp { target } if *target >= n => {
                return Err(format!("pc {pc}: branch target {target} out of range"));
            }
            Inst::LdParam { index, .. } if *index as usize >= kernel.params.len() => {
                return Err(format!("pc {pc}: parameter index {index} out of range"));
            }
            Inst::Bar { id, count } => {
                if *id > 15 {
                    return Err(format!(
                        "pc {pc}: barrier id {id} exceeds hardware maximum 15"
                    ));
                }
                if let BarCount::Fixed(0) = count {
                    return Err(format!("pc {pc}: barrier with zero participants"));
                }
            }
            Inst::SharedAddr { offset, .. } => {
                // The dynamic region base sits exactly at the end of the
                // statics, so `offset == shared_static_bytes` is legal when
                // the kernel uses extern shared memory.
                let limit = kernel.shared_static_bytes;
                if *offset > limit || (*offset == limit && !kernel.uses_dynamic_shared && limit > 0)
                {
                    return Err(format!(
                        "pc {pc}: shared offset {offset} beyond static region {limit}"
                    ));
                }
            }
            _ => {}
        }
    }
    for &r in &kernel.spilled_regs {
        if r >= kernel.num_regs {
            return Err(format!("spilled register {r} out of range"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ParamKind, ScalarTy};

    fn minimal() -> KernelIr {
        KernelIr {
            name: "t".to_owned(),
            insts: vec![Inst::Ret],
            num_regs: 0,
            params: vec![],
            shared_static_bytes: 0,
            uses_dynamic_shared: false,
            dynamic_shared_offset: 0,
            local_bytes: 0,
            spilled_regs: vec![],
            pressure: 8,
        }
    }

    #[test]
    fn minimal_kernel_verifies() {
        assert!(verify(&minimal()).is_ok());
    }

    #[test]
    fn empty_kernel_rejected() {
        let mut k = minimal();
        k.insts.clear();
        assert!(verify(&k).is_err());
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut k = minimal();
        k.insts = vec![Inst::Imm { dst: 0, value: 1 }];
        k.num_regs = 1;
        assert!(verify(&k).unwrap_err().contains("terminator"));
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut k = minimal();
        k.insts = vec![Inst::Imm { dst: 3, value: 1 }, Inst::Ret];
        k.num_regs = 2;
        assert!(verify(&k).unwrap_err().contains("register 3"));
    }

    #[test]
    fn out_of_range_branch_rejected() {
        let mut k = minimal();
        k.insts = vec![Inst::Jmp { target: 99 }];
        assert!(verify(&k).unwrap_err().contains("target 99"));
    }

    #[test]
    fn bad_param_index_rejected() {
        let mut k = minimal();
        k.insts = vec![Inst::LdParam { dst: 0, index: 2 }, Inst::Ret];
        k.num_regs = 1;
        k.params = vec![ParamKind::Scalar(ScalarTy::I32)];
        assert!(verify(&k).unwrap_err().contains("parameter index"));
    }

    #[test]
    fn barrier_id_limit_enforced() {
        let mut k = minimal();
        k.insts = vec![
            Inst::Bar {
                id: 16,
                count: crate::ir::BarCount::Fixed(32),
            },
            Inst::Ret,
        ];
        assert!(verify(&k).unwrap_err().contains("barrier id"));
    }

    #[test]
    fn zero_participant_barrier_rejected() {
        let mut k = minimal();
        k.insts = vec![
            Inst::Bar {
                id: 1,
                count: crate::ir::BarCount::Fixed(0),
            },
            Inst::Ret,
        ];
        assert!(verify(&k).unwrap_err().contains("zero participants"));
    }
}
