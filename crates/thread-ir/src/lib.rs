#![warn(missing_docs)]

//! A flat SIMT register IR for GPU kernels, plus the lowering from the
//! CUDA-dialect AST, liveness-based register-pressure analysis, and a spill
//! model for register-bound compilation.
//!
//! The IR is the interface between the frontend and the simulator:
//!
//! * [`ir`] — instruction set ([`ir::Inst`]), kernel container
//!   ([`ir::KernelIr`]), and the tagged 64-bit address encoding
//!   ([`ir::MemAddr`]).
//! * [`lower`] — compiles a preprocessed [`cuda_frontend::Function`] into a
//!   [`ir::KernelIr`]. Control flow becomes explicit branches; each thread
//!   executes the instruction stream with its own program counter
//!   (divergence is handled by the simulator's warp stepper).
//! * [`liveness`] — dataflow liveness and the register-pressure estimate the
//!   occupancy model uses for `NRegs(S)`.
//! * [`spill`] — selects virtual registers to demote to local memory when a
//!   register bound (`maxrregcount`) is applied.
//! * [`verify`] — structural well-formedness checks on the IR.
//!
//! # Example
//!
//! ```
//! use cuda_frontend::parse_kernel;
//! use thread_ir::lower::lower_kernel;
//!
//! let k = parse_kernel(
//!     "__global__ void axpy(float* y, float* x, float a, int n) {
//!          int i = blockIdx.x * blockDim.x + threadIdx.x;
//!          if (i < n) { y[i] = a * x[i] + y[i]; }
//!      }",
//! )?;
//! let ir = lower_kernel(&k)?;
//! assert!(ir.insts.len() > 5);
//! assert!(ir.reg_pressure() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alu;
pub mod asm;
pub mod cfg;
pub mod ir;
pub mod liveness;
pub mod lower;
pub mod opt;
pub mod printer;
pub mod spill;
pub mod verify;

pub use asm::{parse_kernel_ir, AsmError};
pub use ir::{Inst, KernelIr, MemAddr, ScalarTy, Space};
pub use lower::{lower_kernel, lower_kernel_unoptimized};
