//! Dataflow liveness analysis and register-pressure estimation.
//!
//! Register pressure is the occupancy model's `NRegs(S)`: the maximum number
//! of simultaneously live virtual registers at any program point, plus a
//! small architectural overhead mimicking the fixed registers a real
//! compiler reserves.

use crate::ir::{Inst, KernelIr, Reg};

/// Floor on any pressure estimate — even an empty kernel occupies a few
/// architectural registers.
pub const MIN_REGS: u32 = 8;

/// Fixed overhead added to the max-live count, mimicking the scheduling
/// and addressing registers `nvcc` keeps beyond the dataflow minimum (our
/// estimates sit well below `nvcc`'s reported counts otherwise).
pub const REG_OVERHEAD: u32 = 12;

/// Hardware limit per thread.
pub const MAX_REGS: u32 = 255;

/// A dense bitset over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// Creates an empty set able to hold `n` registers.
    pub fn new(n: u32) -> Self {
        Self {
            words: vec![0; (n as usize).div_ceil(64)],
        }
    }

    /// Inserts `r`; returns true if it was newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let (w, b) = (r as usize / 64, r as usize % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: Reg) {
        let (w, b) = (r as usize / 64, r as usize % 64);
        self.words[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        let (w, b) = (r as usize / 64, r as usize % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of registers in the set, optionally ignoring some registers.
    pub fn count_excluding(&self, excluded: Option<&RegSet>) -> u32 {
        match excluded {
            None => self.words.iter().map(|w| w.count_ones()).sum(),
            Some(ex) => self
                .words
                .iter()
                .zip(&ex.words)
                .map(|(w, e)| (w & !e).count_ones())
                .sum(),
        }
    }

    /// Number of registers in the set.
    pub fn len(&self) -> u32 {
        self.count_excluding(None)
    }

    /// True when no register is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }

    /// Iterates over the registers in the set.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            (0..64).filter_map(move |b| {
                if w & (1 << b) != 0 {
                    Some((wi * 64 + b) as Reg)
                } else {
                    None
                }
            })
        })
    }
}

/// Successor program counters of the instruction at `pc`.
pub fn successors(insts: &[Inst], pc: usize) -> SmallSuccs {
    match &insts[pc] {
        Inst::Ret => SmallSuccs::none(),
        Inst::Jmp { target } => SmallSuccs::one(*target),
        Inst::Bra { target, .. } => SmallSuccs::two(pc + 1, *target),
        _ => {
            if pc + 1 < insts.len() {
                SmallSuccs::one(pc + 1)
            } else {
                SmallSuccs::none()
            }
        }
    }
}

/// Up to two successor PCs, without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallSuccs {
    items: [usize; 2],
    len: u8,
}

impl SmallSuccs {
    fn none() -> Self {
        Self {
            items: [0; 2],
            len: 0,
        }
    }
    fn one(a: usize) -> Self {
        Self {
            items: [a, 0],
            len: 1,
        }
    }
    fn two(a: usize, b: usize) -> Self {
        Self {
            items: [a, b],
            len: 2,
        }
    }

    /// The successors as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.items[..self.len as usize]
    }
}

/// Per-instruction live-in sets (registers live immediately before each
/// instruction executes), computed by iterative backward dataflow.
pub fn live_in_sets(kernel: &KernelIr) -> Vec<RegSet> {
    let insts = &kernel.insts;
    let n = insts.len();
    let mut live_in: Vec<RegSet> = vec![RegSet::new(kernel.num_regs); n];
    let mut srcs_buf: Vec<Reg> = Vec::with_capacity(3);

    // Iterate to a fixed point. Reverse order converges quickly on mostly
    // forward CFGs.
    let mut changed = true;
    while changed {
        changed = false;
        for pc in (0..n).rev() {
            // live_out = union of successors' live_in
            let mut out = RegSet::new(kernel.num_regs);
            for &s in successors(insts, pc).as_slice() {
                out.union_with(&live_in[s]);
            }
            // live_in = (live_out - def) | use
            if let Some(d) = insts[pc].dst() {
                out.remove(d);
            }
            srcs_buf.clear();
            insts[pc].srcs_into(&mut srcs_buf);
            for &s in &srcs_buf {
                out.insert(s);
            }
            if out != live_in[pc] {
                live_in[pc] = out;
                changed = true;
            }
        }
    }
    live_in
}

/// Registers that a real compiler would not keep in the register file:
/// defined exclusively by immediates, parameter loads, or static address
/// materialization, all of which SASS encodes as instruction immediates or
/// constant-bank reads. They are excluded from pressure so that constant
/// pooling does not distort occupancy.
pub fn rematerializable_regs(kernel: &KernelIr) -> RegSet {
    let mut cheap = RegSet::new(kernel.num_regs);
    let mut expensive = RegSet::new(kernel.num_regs);
    for inst in &kernel.insts {
        if let Some(d) = inst.dst() {
            match inst {
                Inst::Imm { .. }
                | Inst::LdParam { .. }
                | Inst::SharedAddr { .. }
                | Inst::LocalAddr { .. } => {
                    cheap.insert(d);
                }
                _ => {
                    expensive.insert(d);
                }
            }
        }
    }
    for r in expensive.iter() {
        cheap.remove(r);
    }
    cheap
}

/// Register pressure: the maximum over program points of simultaneously live
/// registers (excluding `excluded` and rematerializable constants), plus
/// [`REG_OVERHEAD`], clamped to `[MIN_REGS, MAX_REGS]`.
pub fn pressure_excluding(kernel: &KernelIr, excluded: Option<&RegSet>) -> u32 {
    let live = live_in_sets(kernel);
    let mut skip = rematerializable_regs(kernel);
    if let Some(ex) = excluded {
        skip.union_with(ex);
    }
    let max_live = live
        .iter()
        .map(|s| s.count_excluding(Some(&skip)))
        .max()
        .unwrap_or(0);
    (max_live + REG_OVERHEAD).clamp(MIN_REGS, MAX_REGS)
}

/// Register pressure of the kernel as lowered (no exclusions).
pub fn register_pressure(kernel: &KernelIr) -> u32 {
    pressure_excluding(kernel, None)
}

/// Per-register statistics used by the spill heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegStats {
    /// The register.
    pub reg: Reg,
    /// Number of program points at which the register is live.
    pub live_points: u32,
    /// Static def + use count.
    pub occurrences: u32,
}

/// Computes live-length and occurrence counts for every register.
pub fn reg_stats(kernel: &KernelIr) -> Vec<RegStats> {
    let live = live_in_sets(kernel);
    let mut stats: Vec<RegStats> = (0..kernel.num_regs)
        .map(|reg| RegStats {
            reg,
            live_points: 0,
            occurrences: 0,
        })
        .collect();
    for set in &live {
        for r in set.iter() {
            stats[r as usize].live_points += 1;
        }
    }
    let mut srcs = Vec::with_capacity(3);
    for inst in &kernel.insts {
        if let Some(d) = inst.dst() {
            stats[d as usize].occurrences += 1;
        }
        srcs.clear();
        inst.srcs_into(&mut srcs);
        for &s in &srcs {
            stats[s as usize].occurrences += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel_unoptimized;
    use cuda_frontend::parse_kernel;

    fn lower(src: &str) -> KernelIr {
        // Liveness unit tests inspect the raw lowering (the optimizer would
        // delete the dead code some of them rely on).
        lower_kernel_unoptimized(&parse_kernel(src).expect("parse")).expect("lower")
    }

    #[test]
    fn regset_basic_operations() {
        let mut s = RegSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        s.remove(0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn regset_union() {
        let mut a = RegSet::new(64);
        a.insert(1);
        let mut b = RegSet::new(64);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn straight_line_pressure_counts_overlap() {
        // x and y are both live across the final store.
        let ir =
            lower("__global__ void k(float* a) { float x = a[0]; float y = a[1]; a[2] = x + y; }");
        let p = register_pressure(&ir);
        assert!(p >= MIN_REGS, "pressure {p}");
        assert!(p < 32, "pressure {p} too high for a tiny kernel");
    }

    #[test]
    fn dead_values_do_not_add_pressure() {
        let narrow = lower("__global__ void k(float* a) { a[0] = 1.0f; a[1] = 2.0f; }");
        let wide = lower(
            "__global__ void k(float* a) {\
              float x0 = a[0]; float x1 = a[1]; float x2 = a[2]; float x3 = a[3];\
              float x4 = a[4]; float x5 = a[5]; float x6 = a[6]; float x7 = a[7];\
              a[0] = x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7;\
            }",
        );
        assert!(
            register_pressure(&wide) > register_pressure(&narrow),
            "eight live loads must out-pressure two dead stores: {} vs {}",
            register_pressure(&wide),
            register_pressure(&narrow)
        );
    }

    #[test]
    fn loop_carried_values_stay_live() {
        let ir = lower(
            "__global__ void k(float* a, int n) {\
               float acc = 0.0f;\
               for (int i = 0; i < n; i++) { acc += a[i]; }\
               a[0] = acc;\
             }",
        );
        let live = live_in_sets(&ir);
        // The accumulator's register must be live at the loop back-edge.
        let backedge = ir
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Jmp { target } if *target < ir.insts.len()))
            .expect("loop jump");
        assert!(!live[backedge].is_empty());
    }

    #[test]
    fn stats_track_occurrences() {
        let ir = lower("__global__ void k(int n) { n = n + n; }");
        let stats = reg_stats(&ir);
        // The register bound to `n` (param reg 0) is read twice and written.
        let n_stats = stats[0];
        assert!(n_stats.occurrences >= 3, "{n_stats:?}");
    }

    #[test]
    fn pressure_excluding_reduces() {
        let ir = lower(
            "__global__ void k(float* a) {\
              float x0 = a[0]; float x1 = a[1]; float x2 = a[2]; float x3 = a[3];\
              a[0] = x0 + x1 + x2 + x3;\
            }",
        );
        let base = pressure_excluding(&ir, None);
        let live = live_in_sets(&ir);
        // Exclude the register with the longest live range.
        let stats = reg_stats(&ir);
        let longest = stats
            .iter()
            .max_by_key(|s| s.live_points)
            .expect("stats")
            .reg;
        let mut ex = RegSet::new(ir.num_regs);
        ex.insert(longest);
        let reduced = pressure_excluding(&ir, Some(&ex));
        assert!(reduced <= base, "{reduced} vs {base}");
        let _ = live;
    }
}
