//! Machine-independent optimizations on the flat IR.
//!
//! Real GPU compilers eliminate most of the redundancy a naive lowering
//! produces (re-materialized constants, repeated address arithmetic,
//! loop-invariant subexpressions). Without these passes, simulated kernels
//! issue far more instructions than their SASS counterparts, which distorts
//! the issue-utilization balance the fusion study depends on. Three classic
//! passes run to a fixed point:
//!
//! * **LICM** — hoists pure, loop-invariant instructions into a loop
//!   preheader (safe here because no pure instruction can fault: integer
//!   division by zero is defined to produce 0).
//! * **local CSE** — value-numbers pure instructions within each basic
//!   block, deleting recomputations (or downgrading them to register moves
//!   when the redundant destination is live out of the block).
//! * **DCE** — removes pure instructions whose results are never used.

use std::collections::HashMap;

use crate::cfg::{Bb, BlockId, Cfg, Term};
use crate::ir::{Inst, KernelIr, Reg};
use crate::liveness::RegSet;

/// Counters describing what [`optimize`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions hoisted to loop preheaders.
    pub hoisted: usize,
    /// Instructions removed (or downgraded to moves) by CSE.
    pub cse_removed: usize,
    /// Dead instructions removed.
    pub dce_removed: usize,
    /// Instructions replaced by immediates through constant folding.
    pub folded: usize,
    /// `Bar` instructions dropped because no memory operation is reachable
    /// on any path before them, or on any path after them.
    pub barriers_removed: usize,
}

/// Like [`optimize`] but prints the listing after every pass (debugging
/// aid; not part of the stable API).
#[doc(hidden)]
pub fn optimize_debug(kernel: &mut KernelIr) {
    for round in 0..4 {
        let mut cfg = Cfg::build(kernel);
        let f = const_fold(&mut cfg, kernel.num_regs);
        kernel.insts = cfg.flatten();
        eprintln!(
            "== round {round} after fold ({f}) ==\n{}",
            crate::printer::print_kernel_ir(kernel)
        );
        let mut cfg = Cfg::build(kernel);
        let p = peephole(&mut cfg, &mut kernel.num_regs);
        kernel.insts = cfg.flatten();
        eprintln!(
            "== round {round} after peephole ({p}) ==\n{}",
            crate::printer::print_kernel_ir(kernel)
        );
        let mut cfg = Cfg::build(kernel);
        let c1 = local_cse(&mut cfg, kernel.num_regs);
        kernel.insts = cfg.flatten();
        eprintln!(
            "== round {round} after cse1 ({c1}) ==\n{}",
            crate::printer::print_kernel_ir(kernel)
        );
        let mut cfg = Cfg::build(kernel);
        let h = licm(&mut cfg, kernel.num_regs);
        let c2 = local_cse(&mut cfg, kernel.num_regs);
        let d = dce(&mut cfg, kernel.num_regs);
        kernel.insts = cfg.flatten();
        eprintln!(
            "== round {round} after licm/cse2/dce ({h}/{c2}/{d}) ==\n{}",
            crate::printer::print_kernel_ir(kernel)
        );
        if f + p + c1 + h + c2 + d == 0 {
            break;
        }
    }
}

/// True for instructions that have no side effects and cannot fault.
fn is_pure(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Imm { .. }
            | Inst::Mov { .. }
            | Inst::Bin { .. }
            | Inst::Un { .. }
            | Inst::Cast { .. }
            | Inst::Special { .. }
            | Inst::LdParam { .. }
            | Inst::SharedAddr { .. }
            | Inst::LocalAddr { .. }
    )
}

/// Optimizes the kernel in place and refreshes its register-pressure
/// estimate. Returns the pass statistics.
pub fn optimize(kernel: &mut KernelIr) -> OptStats {
    let mut stats = OptStats::default();
    for _round in 0..4 {
        let mut cfg = Cfg::build(kernel);
        let folded =
            const_fold(&mut cfg, kernel.num_regs) + peephole(&mut cfg, &mut kernel.num_regs);
        // CSE must run before LICM: folding can leave many copies of the
        // same constant in a loop body, and hoisting them individually
        // would turn each into a loop-long live range.
        let cse_removed = local_cse(&mut cfg, kernel.num_regs);
        let hoisted = licm(&mut cfg, kernel.num_regs);
        let cse_removed = cse_removed + local_cse(&mut cfg, kernel.num_regs);
        let dce_removed = dce(&mut cfg, kernel.num_regs);
        kernel.insts = cfg.flatten();
        stats.folded += folded;
        stats.hoisted += hoisted;
        stats.cse_removed += cse_removed;
        stats.dce_removed += dce_removed;
        if folded + hoisted + cse_removed + dce_removed == 0 {
            break;
        }
    }
    if !no_barrier_elim() {
        stats.barriers_removed = redundant_barrier_elim(kernel);
    }
    kernel.pressure = crate::liveness::register_pressure(kernel);
    debug_assert!(crate::verify::verify(kernel).is_ok());
    stats
}

/// `HFUSE_NO_BARRIER_ELIM` disables [`redundant_barrier_elim`]. Parsed here
/// rather than through `gpu_sim::env` because `gpu-sim` depends on this
/// crate (the same inversion as `HFUSE_NO_STATIC_CHECK` in
/// `hfuse-analysis`); the variable is listed in the `gpu_sim::env::HATCHES`
/// registry.
fn no_barrier_elim() -> bool {
    std::env::var_os("HFUSE_NO_BARRIER_ELIM").is_some_and(|v| v != "0")
}

/// Drops `Bar` instructions that provably synchronize nothing: a barrier
/// only orders memory operations before it against memory operations after
/// it, so if no `Ld`/`St`/`Atom` is reachable on any path from entry to the
/// barrier, or on any path from the barrier to exit, removing it cannot
/// change any thread's observable memory behavior. This is the IR-level
/// safety net under the range-based AST pass in `hfuse-analysis` (which
/// proves much stronger facts); it catches barriers whose surroundings
/// only became empty after DCE/folding.
fn redundant_barrier_elim(kernel: &mut KernelIr) -> usize {
    let insts = &kernel.insts;
    let n = insts.len();
    if !insts.iter().any(|i| matches!(i, Inst::Bar { .. })) {
        return 0;
    }
    let succs = |i: usize| -> [Option<usize>; 2] {
        match &insts[i] {
            Inst::Jmp { target } => [Some(*target), None],
            Inst::Bra { target, .. } => [Some(*target), (i + 1 < n).then_some(i + 1)],
            Inst::Ret => [None, None],
            _ => [(i + 1 < n).then_some(i + 1), None],
        }
    };
    // mem_before[i]: some path from entry to i executes a memory op first.
    let mut mem_before = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let reaches = mem_before[i] || insts[i].is_memory();
            for j in succs(i).into_iter().flatten() {
                if reaches && !mem_before[j] {
                    mem_before[j] = true;
                    changed = true;
                }
            }
        }
    }
    // mem_after[i]: some path from i (exclusive) reaches a memory op.
    let mut mem_after = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let after = succs(i)
                .into_iter()
                .flatten()
                .any(|j| insts[j].is_memory() || mem_after[j]);
            if after && !mem_after[i] {
                mem_after[i] = true;
                changed = true;
            }
        }
    }
    let remove: Vec<bool> = (0..n)
        .map(|i| {
            matches!(insts[i], Inst::Bar { .. }) && i + 1 < n && (!mem_before[i] || !mem_after[i])
        })
        .collect();
    let removed = remove.iter().filter(|&&r| r).count();
    if removed == 0 {
        return 0;
    }
    // Splice the dropped barriers out and remap branch targets. A target
    // pointing at a removed instruction lands on the next kept one.
    let mut new_idx = vec![0usize; n + 1];
    let mut kept = 0usize;
    for i in 0..n {
        new_idx[i] = kept;
        if !remove[i] {
            kept += 1;
        }
    }
    new_idx[n] = kept;
    let old = std::mem::take(&mut kernel.insts);
    kernel.insts = old
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !remove[*i])
        .map(|(_, mut inst)| {
            match &mut inst {
                Inst::Jmp { target } | Inst::Bra { target, .. } => *target = new_idx[*target],
                _ => {}
            }
            inst
        })
        .collect();
    removed
}

// ---- liveness over the CFG --------------------------------------------------

fn block_uses_defs(bb: &Bb, num_regs: u32) -> (RegSet, RegSet) {
    let mut uses = RegSet::new(num_regs);
    let mut defs = RegSet::new(num_regs);
    let mut srcs = Vec::with_capacity(3);
    for inst in &bb.insts {
        srcs.clear();
        inst.srcs_into(&mut srcs);
        for &s in &srcs {
            if !defs.contains(s) {
                uses.insert(s);
            }
        }
        if let Some(d) = inst.dst() {
            defs.insert(d);
        }
    }
    if let Term::Bra { cond, .. } = &bb.term {
        if !defs.contains(*cond) {
            uses.insert(*cond);
        }
    }
    (uses, defs)
}

/// Per-block live-in / live-out sets.
fn block_liveness(cfg: &Cfg, num_regs: u32) -> (Vec<RegSet>, Vec<RegSet>) {
    let n = cfg.blocks.len();
    let mut live_in = vec![RegSet::new(num_regs); n];
    let mut live_out = vec![RegSet::new(num_regs); n];
    let ud: Vec<(RegSet, RegSet)> = cfg
        .blocks
        .iter()
        .map(|b| block_uses_defs(b, num_regs))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = RegSet::new(num_regs);
            for s in cfg.blocks[b].term.succs() {
                out.union_with(&live_in[s]);
            }
            // in = use | (out - def)
            let mut inn = ud[b].0.clone();
            for r in out.iter() {
                if !ud[b].1.contains(r) {
                    inn.insert(r);
                }
            }
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    (live_in, live_out)
}

// ---- constant folding ---------------------------------------------------------

/// Replaces pure computations over constant operands with immediates.
///
/// A register is *known constant* when its only definition in the whole
/// kernel is an `Imm`. Folding uses the exact runtime ALU semantics
/// ([`crate::alu`]), so values are bit-identical (including the defined
/// division-by-zero and oversized-shift behavior).
fn const_fold(cfg: &mut Cfg, num_regs: u32) -> usize {
    let mut folded = 0;
    loop {
        // Map each reg to its constant value when its single definition is
        // an Imm.
        let mut def_count = vec![0u32; num_regs as usize];
        let mut value: Vec<Option<u64>> = vec![None; num_regs as usize];
        for bb in &cfg.blocks {
            for inst in &bb.insts {
                if let Some(d) = inst.dst() {
                    def_count[d as usize] += 1;
                    value[d as usize] = match inst {
                        Inst::Imm { value, .. } => Some(*value),
                        _ => None,
                    };
                }
            }
        }
        let known = |r: Reg| {
            if def_count[r as usize] == 1 {
                value[r as usize]
            } else {
                None
            }
        };
        let mut changed = 0;
        for bb in &mut cfg.blocks {
            for inst in &mut bb.insts {
                let replacement = match inst {
                    Inst::Bin { op, ty, dst, a, b } => match (known(*a), known(*b)) {
                        (Some(va), Some(vb)) => Some(Inst::Imm {
                            dst: *dst,
                            value: crate::alu::bin(*op, *ty, va, vb),
                        }),
                        _ => None,
                    },
                    Inst::Un { op, ty, dst, a } => known(*a).map(|va| Inst::Imm {
                        dst: *dst,
                        value: crate::alu::un(*op, *ty, va),
                    }),
                    Inst::Cast { dst, src, from, to } => known(*src).map(|v| Inst::Imm {
                        dst: *dst,
                        value: crate::alu::cast(*from, *to, v),
                    }),
                    Inst::Mov { dst, src } => known(*src).map(|v| Inst::Imm {
                        dst: *dst,
                        value: v,
                    }),
                    _ => None,
                };
                if let Some(imm) = replacement {
                    *inst = imm;
                    changed += 1;
                }
            }
        }
        folded += changed;
        if changed == 0 {
            break;
        }
    }
    folded
}

/// Algebraic simplification and strength reduction, as `nvcc`/`ptxas`
/// perform: identities (`x + 0`, `x * 1`, `x ^ 0`, shifts by 0) become
/// moves, multiplication/division/remainder by powers of two become shifts
/// and masks (unsigned only for div/rem — signed division rounds toward
/// zero, not down). This matters for timing: the simulator's divide class
/// is an order of magnitude slower than a shift.
fn peephole(cfg: &mut Cfg, num_regs: &mut u32) -> usize {
    use crate::ir::{BinIr, ScalarTy};
    // Known-constant registers (single definition, and it is an Imm).
    let n = *num_regs as usize;
    let mut def_count = vec![0u32; n];
    let mut value: Vec<Option<u64>> = vec![None; n];
    for bb in &cfg.blocks {
        for inst in &bb.insts {
            if let Some(d) = inst.dst() {
                def_count[d as usize] += 1;
                value[d as usize] = match inst {
                    Inst::Imm { value, .. } => Some(*value),
                    _ => None,
                };
            }
        }
    }
    let known = |r: Reg| {
        if def_count[r as usize] == 1 {
            value[r as usize]
        } else {
            None
        }
    };

    let mut changed = 0;
    for bb in &mut cfg.blocks {
        let mut out: Vec<Inst> = Vec::with_capacity(bb.insts.len());
        for inst in std::mem::take(&mut bb.insts) {
            let Inst::Bin { op, ty, dst, a, b } = inst else {
                out.push(inst);
                continue;
            };
            if ty.is_float() {
                // Float identities are not exact (-0.0, NaN); leave them.
                out.push(inst);
                continue;
            }
            let ka = known(a);
            let kb = known(b);
            let width = ty.size_bytes() * 8;
            let mask = if width == 32 {
                0xffff_ffffu64
            } else {
                u64::MAX
            };
            // Emits a fresh constant register holding `v` just before the
            // rewritten instruction.
            let mut fresh_const = |v: u64, out: &mut Vec<Inst>| -> Reg {
                let r = *num_regs;
                *num_regs += 1;
                out.push(Inst::Imm { dst: r, value: v });
                r
            };
            let replacement = match (op, ka, kb) {
                // x + 0, x - 0, x | 0, x ^ 0, x << 0, x >> 0
                (
                    BinIr::Add | BinIr::Sub | BinIr::Or | BinIr::Xor | BinIr::Shl | BinIr::Shr,
                    _,
                    Some(0),
                ) => Some(Inst::Mov { dst, src: a }),
                (BinIr::Add | BinIr::Or | BinIr::Xor, Some(0), _) => {
                    Some(Inst::Mov { dst, src: b })
                }
                // x * 1
                (BinIr::Mul, _, Some(1)) => Some(Inst::Mov { dst, src: a }),
                (BinIr::Mul, Some(1), _) => Some(Inst::Mov { dst, src: b }),
                // x * 2^k  ->  x << k (two's-complement wrap-safe)
                (BinIr::Mul, _, Some(c)) if (c & mask).is_power_of_two() && (c & mask) > 1 => {
                    let sh = fresh_const(u64::from((c & mask).trailing_zeros()), &mut out);
                    Some(Inst::Bin {
                        op: BinIr::Shl,
                        ty,
                        dst,
                        a,
                        b: sh,
                    })
                }
                // unsigned x / 2^k  ->  x >> k
                (BinIr::Div, _, Some(c))
                    if matches!(ty, ScalarTy::U32 | ScalarTy::U64)
                        && (c & mask).is_power_of_two() =>
                {
                    let sh = fresh_const(u64::from((c & mask).trailing_zeros()), &mut out);
                    Some(Inst::Bin {
                        op: BinIr::Shr,
                        ty,
                        dst,
                        a,
                        b: sh,
                    })
                }
                // unsigned x % 2^k  ->  x & (2^k - 1)
                (BinIr::Rem, _, Some(c))
                    if matches!(ty, ScalarTy::U32 | ScalarTy::U64)
                        && (c & mask).is_power_of_two() =>
                {
                    let m = fresh_const((c & mask) - 1, &mut out);
                    Some(Inst::Bin {
                        op: BinIr::And,
                        ty,
                        dst,
                        a,
                        b: m,
                    })
                }
                _ => None,
            };
            match replacement {
                Some(r) => {
                    out.push(r);
                    changed += 1;
                }
                None => out.push(inst),
            }
        }
        bb.insts = out;
    }
    changed
}

// ---- LICM -------------------------------------------------------------------

fn licm(cfg: &mut Cfg, num_regs: u32) -> usize {
    let mut hoisted_total = 0;
    // Collect loops up front; preheader insertion appends blocks, so body
    // bitmaps must be padded when consulted later.
    let loops = cfg.natural_loops();
    for (header, body) in loops {
        let (live_in, _) = block_liveness(cfg, num_regs);
        let in_body = |b: BlockId| body.get(b).copied().unwrap_or(false);

        // Count definitions of each register inside the loop.
        let mut def_count: HashMap<Reg, u32> = HashMap::new();
        for (b, bb) in cfg.blocks.iter().enumerate() {
            if !in_body(b) {
                continue;
            }
            for inst in &bb.insts {
                if let Some(d) = inst.dst() {
                    *def_count.entry(d).or_insert(0) += 1;
                }
            }
        }

        // Iteratively mark invariant instructions: pure, single def in the
        // loop, destination not live into the header (its pre-loop value is
        // never observed), and all operands either defined outside the loop
        // or by an already-invariant instruction.
        let mut invariant_defs: RegSet = RegSet::new(num_regs);
        let mut hoist: Vec<(BlockId, usize)> = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for (b, bb) in cfg.blocks.iter().enumerate() {
                if !in_body(b) {
                    continue;
                }
                for (i, inst) in bb.insts.iter().enumerate() {
                    if hoist.contains(&(b, i)) || !is_pure(inst) {
                        continue;
                    }
                    // Constants are rematerializable (cost-free in the
                    // pressure model); hoisting them only lengthens live
                    // ranges.
                    if matches!(
                        inst,
                        Inst::Imm { .. }
                            | Inst::LdParam { .. }
                            | Inst::SharedAddr { .. }
                            | Inst::LocalAddr { .. }
                    ) {
                        continue;
                    }
                    let Some(d) = inst.dst() else { continue };
                    if def_count.get(&d).copied().unwrap_or(0) != 1 {
                        continue;
                    }
                    if live_in[header].contains(d) {
                        continue;
                    }
                    let ok = inst.srcs().iter().all(|&s| {
                        def_count.get(&s).copied().unwrap_or(0) == 0 || invariant_defs.contains(s)
                    });
                    if ok {
                        invariant_defs.insert(d);
                        hoist.push((b, i));
                        changed = true;
                    }
                }
            }
        }
        if hoist.is_empty() {
            continue;
        }
        // Move the instructions, preserving their program order: collect in
        // (block-layout, index) order.
        let layout_pos: HashMap<BlockId, usize> = cfg
            .layout
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, i))
            .collect();
        hoist.sort_by_key(|&(b, i)| (layout_pos.get(&b).copied().unwrap_or(usize::MAX), i));
        let pre = cfg.insert_preheader(header, &body);
        let mut moved = Vec::with_capacity(hoist.len());
        // Remove from the back of each block to keep indices valid.
        let mut by_block: HashMap<BlockId, Vec<usize>> = HashMap::new();
        for &(b, i) in &hoist {
            by_block.entry(b).or_default().push(i);
        }
        let mut extracted: HashMap<(BlockId, usize), Inst> = HashMap::new();
        for (b, mut idxs) in by_block {
            idxs.sort_unstable_by(|a, c| c.cmp(a));
            for i in idxs {
                extracted.insert((b, i), cfg.blocks[b].insts.remove(i));
            }
        }
        for key in &hoist {
            moved.push(extracted.remove(key).expect("extracted above"));
        }
        hoisted_total += moved.len();
        cfg.blocks[pre].insts = moved;
    }
    hoisted_total
}

// ---- local CSE ----------------------------------------------------------------

/// A value-number key: the instruction shape with operand registers
/// replaced by (register, version-at-read) pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Imm(u64),
    Mov(Reg, u32),
    Bin(
        crate::ir::BinIr,
        crate::ir::ScalarTy,
        (Reg, u32),
        (Reg, u32),
    ),
    Un(crate::ir::UnIr, crate::ir::ScalarTy, (Reg, u32)),
    Cast(crate::ir::ScalarTy, crate::ir::ScalarTy, (Reg, u32)),
    Special(crate::ir::SpecialReg),
    LdParam(u32),
    SharedAddr(u32),
    LocalAddr(u32),
}

/// Maximum reuse distance (in instructions) for non-constant CSE hits.
/// Reusing a value computed far earlier keeps it live across the whole gap,
/// which real compilers avoid (they rematerialize instead of inflating
/// register pressure); BLAKE's repeating message schedule is the archetypal
/// victim.
const CSE_WINDOW: usize = 120;

fn local_cse(cfg: &mut Cfg, num_regs: u32) -> usize {
    let (_, live_out) = block_liveness(cfg, num_regs);
    let mut removed = 0;
    for (bi, bb) in cfg.blocks.iter_mut().enumerate() {
        let mut version: HashMap<Reg, u32> = HashMap::new();
        let ver = |version: &HashMap<Reg, u32>, r: Reg| version.get(&r).copied().unwrap_or(0);
        // key → (canonical register, canonical's version at definition,
        // definition position). A hit is only valid while the canonical
        // register still holds that version — a redefinition of the
        // canonical (e.g. `b = 2; b = 3;` where `b` became canonical for
        // Imm(2)) silently invalidates the entry via the version check.
        let mut avail: HashMap<Key, (Reg, u32, usize)> = HashMap::new();
        // Map from a deleted destination to its canonical register, applied
        // to subsequent operands; an entry dies when either side is
        // redefined.
        let mut rename: HashMap<Reg, Reg> = HashMap::new();

        let mut out: Vec<Inst> = Vec::with_capacity(bb.insts.len());
        let mut defined_later: RegSet = RegSet::new(num_regs);
        // Precompute which regs are redefined after each point is not
        // needed: liveness-out plus in-block subsequent uses are handled by
        // keeping Movs when the dst is live-out OR used later in the block
        // after a redefinition of the canonical — conservatively, keep a
        // Mov when dst is live out of the block; in-block uses are renamed.
        let _ = &mut defined_later;

        for (pos, mut inst) in std::mem::take(&mut bb.insts).into_iter().enumerate() {
            // Apply operand renames.
            remap_srcs(&mut inst, &rename);
            let key = match &inst {
                Inst::Imm { value, .. } => Some(Key::Imm(*value)),
                Inst::Mov { src, .. } => Some(Key::Mov(*src, ver(&version, *src))),
                Inst::Bin { op, ty, a, b, .. } => Some(Key::Bin(
                    *op,
                    *ty,
                    (*a, ver(&version, *a)),
                    (*b, ver(&version, *b)),
                )),
                Inst::Un { op, ty, a, .. } => Some(Key::Un(*op, *ty, (*a, ver(&version, *a)))),
                Inst::Cast { from, to, src, .. } => {
                    Some(Key::Cast(*from, *to, (*src, ver(&version, *src))))
                }
                Inst::Special { reg, .. } => Some(Key::Special(*reg)),
                Inst::LdParam { index, .. } => Some(Key::LdParam(*index)),
                Inst::SharedAddr { offset, .. } => Some(Key::SharedAddr(*offset)),
                Inst::LocalAddr { offset, .. } => Some(Key::LocalAddr(*offset)),
                _ => None,
            };
            let dst = inst.dst();
            if let (Some(key), Some(d)) = (key, dst) {
                // Constants cost nothing to keep live (they never occupy a
                // hardware register); other values only dedup within the
                // scheduling window.
                let windowless = matches!(
                    key,
                    Key::Imm(_) | Key::LdParam(_) | Key::SharedAddr(_) | Key::LocalAddr(_)
                );
                match avail.get(&key).copied() {
                    Some((canonical, def_ver, def_pos))
                        if canonical != d
                            && def_ver == ver(&version, canonical)
                            && (windowless || pos - def_pos <= CSE_WINDOW) =>
                    {
                        if live_out[bi].contains(d) {
                            // `d` is really redefined on both live-out
                            // paths, so rescue its aliases first.
                            on_redefine(d, &mut rename, &mut version, &mut out);
                            bump(&mut version, d);
                            if windowless {
                                // A live-out constant is cheaper re-issued
                                // than kept alive through a move.
                                out.push(inst);
                                continue;
                            }
                            // Keep the architectural value with a cheap move.
                            removed += 1;
                            out.push(Inst::Mov {
                                dst: d,
                                src: canonical,
                            });
                        } else {
                            // Deleted: `d`'s register is NOT clobbered, so
                            // aliases pointing at `d` stay valid — only
                            // `d`'s own alias entry (if any) dies.
                            removed += 1;
                            bump(&mut version, d);
                            rename.remove(&d);
                            rename.insert(d, canonical);
                        }
                        continue;
                    }
                    _ => {
                        // Miss, out of window, stale canonical version, or
                        // an idempotent recompute into the canonical itself:
                        // make this definition the new canonical. Its
                        // version becomes current-version + 1 because the
                        // bump below happens after this insert.
                        avail.insert(key, (d, ver(&version, d) + 1, pos));
                    }
                }
            }
            if let Some(d) = dst {
                on_redefine(d, &mut rename, &mut version, &mut out);
                bump(&mut version, d);
            }
            out.push(inst);
        }
        // Terminator condition may also need renaming.
        if let Term::Bra { cond, .. } = &mut bb.term {
            if let Some(&c) = rename.get(cond) {
                *cond = c;
            }
        }
        bb.insts = out;
    }
    removed
}

fn bump(version: &mut HashMap<Reg, u32>, r: Reg) {
    *version.entry(r).or_insert(0) += 1;
}

/// Handles an *actual* redefinition of `d` during CSE: every alias that was
/// renamed to `d` (its own defining instruction was deleted) would be
/// orphaned by the clobber, so materialize each with a compensation move
/// first, then drop all entries involving `d`.
fn on_redefine(
    d: Reg,
    rename: &mut HashMap<Reg, Reg>,
    version: &mut HashMap<Reg, u32>,
    out: &mut Vec<Inst>,
) {
    let mut orphans: Vec<Reg> = rename
        .iter()
        .filter(|(_, &v)| v == d)
        .map(|(&k, _)| k)
        .collect();
    orphans.sort_unstable(); // deterministic emission order
    for k in orphans {
        out.push(Inst::Mov { dst: k, src: d });
        bump(version, k);
    }
    rename.retain(|k, v| *k != d && *v != d);
}

fn remap_srcs(inst: &mut Inst, rename: &HashMap<Reg, Reg>) {
    if rename.is_empty() {
        return;
    }
    let m = |r: &mut Reg| {
        if let Some(&c) = rename.get(r) {
            *r = c;
        }
    };
    match inst {
        Inst::Mov { src, .. } => m(src),
        Inst::Bin { a, b, .. } => {
            m(a);
            m(b);
        }
        Inst::Un { a, .. } => m(a),
        Inst::Cast { src, .. } => m(src),
        Inst::Ld { addr, .. } => m(addr),
        Inst::St { addr, val, .. } => {
            m(addr);
            m(val);
        }
        Inst::Atom { addr, val, .. } => {
            m(addr);
            m(val);
        }
        Inst::Shfl {
            src, lane, width, ..
        } => {
            m(src);
            m(lane);
            m(width);
        }
        Inst::Bra { cond, .. } => m(cond),
        _ => {}
    }
}

// ---- DCE ---------------------------------------------------------------------

fn dce(cfg: &mut Cfg, num_regs: u32) -> usize {
    let (_, live_out) = block_liveness(cfg, num_regs);
    let mut removed = 0;
    for (bi, bb) in cfg.blocks.iter_mut().enumerate() {
        let mut live = live_out[bi].clone();
        if let Term::Bra { cond, .. } = &bb.term {
            live.insert(*cond);
        }
        let mut keep: Vec<bool> = vec![true; bb.insts.len()];
        for (i, inst) in bb.insts.iter().enumerate().rev() {
            let dead = is_pure(inst) && inst.dst().is_some_and(|d| !live.contains(d));
            if dead {
                keep[i] = false;
                removed += 1;
                continue;
            }
            if let Some(d) = inst.dst() {
                live.remove(d);
            }
            for s in inst.srcs() {
                live.insert(s);
            }
        }
        let mut idx = 0;
        bb.insts.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel_unoptimized;
    use cuda_frontend::parse_kernel;

    fn raw(src: &str) -> KernelIr {
        lower_kernel_unoptimized(&parse_kernel(src).expect("parse")).expect("lower")
    }

    fn optimized(src: &str) -> (KernelIr, OptStats) {
        let mut k = raw(src);
        let stats = optimize(&mut k);
        crate::verify::verify(&k).expect("optimized kernel verifies");
        (k, stats)
    }

    #[test]
    fn cse_removes_recomputed_constants() {
        let (k, stats) =
            optimized("__global__ void k(float* p) { p[0] = 1.0f; p[1] = 1.0f; p[2] = 1.0f; }");
        assert!(stats.cse_removed + stats.dce_removed > 0, "{stats:?}");
        let imms = k
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Imm { .. }))
            .count();
        // 1.0f once, scale constant 4 once, offsets folded into adds.
        assert!(imms <= 5, "{imms} immediates left: {:#?}", k.insts);
    }

    #[test]
    fn cse_removes_repeated_subexpressions() {
        let before = raw(
            "__global__ void k(float* p, int i) { p[i * 7 + 1] = p[i * 7 + 2] + p[i * 7 + 3]; }",
        );
        let (after, _) = optimized(
            "__global__ void k(float* p, int i) { p[i * 7 + 1] = p[i * 7 + 2] + p[i * 7 + 3]; }",
        );
        assert!(
            after.insts.len() < before.insts.len(),
            "{} !< {}",
            after.insts.len(),
            before.insts.len()
        );
    }

    #[test]
    fn licm_hoists_invariant_address_math() {
        let (k, stats) = optimized(
            "__global__ void k(float* p, int n, int c) {\
               for (int i = 0; i < n; i++) { p[i] = c * 12 + 5; }\
             }",
        );
        assert!(stats.hoisted > 0, "{stats:?}");
        // The c*12+5 computation must appear before the loop's backward edge
        // region exactly once — verify by counting Bin Mul instructions.
        let muls = k
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: crate::ir::BinIr::Mul,
                        ..
                    }
                )
            })
            .count();
        assert!(muls <= 3, "expected hoisted mul, got {muls}");
    }

    #[test]
    fn loop_variant_values_not_hoisted() {
        let (k, _) = optimized(
            "__global__ void k(unsigned int* p, int n) {\
               unsigned int acc = 1u;\
               for (int i = 0; i < n; i++) { acc = acc * 3u + 1u; p[i] = acc; }\
             }",
        );
        // acc's multiply must stay in the loop: find the loop's backward
        // jump and check a Mul exists between the header and it.
        let back = k
            .insts
            .iter()
            .enumerate()
            .find_map(|(pc, i)| match i {
                Inst::Jmp { target } if *target < pc => Some((*target, pc)),
                Inst::Bra { target, .. } if *target < pc => Some((*target, pc)),
                _ => None,
            })
            .expect("loop exists");
        let in_loop_mul = k.insts[back.0..back.1].iter().any(|i| {
            matches!(
                i,
                Inst::Bin {
                    op: crate::ir::BinIr::Mul,
                    ..
                }
            )
        });
        assert!(
            in_loop_mul,
            "accumulator multiply must remain in loop: {:#?}",
            k.insts
        );
    }

    #[test]
    fn dce_removes_unused_results() {
        let (_, stats) = optimized(
            "__global__ void k(float* p, int n) { int unused = n * 12345; p[0] = 1.0f; }",
        );
        assert!(stats.dce_removed > 0, "{stats:?}");
    }

    #[test]
    fn optimization_shrinks_grid_stride_loops_substantially() {
        let src = "__global__ void k(float* out, float* in, int n) {\
            for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;\
                 i += gridDim.x * blockDim.x) {\
              out[i] = in[i] * 2.0f + 1.0f;\
            }\
          }";
        let before = raw(src).insts.len();
        let (after, _) = optimized(src);
        assert!(
            (after.insts.len() as f64) < before as f64 * 0.85,
            "expected >15% reduction: {before} -> {}",
            after.insts.len()
        );
    }

    #[test]
    fn stores_and_atomics_never_removed() {
        let src = "__global__ void k(unsigned int* p) {\
            atomicAdd(&p[0], 1u); p[1] = 2u; atomicAdd(&p[0], 1u);\
          }";
        let before = raw(src)
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Atom { .. } | Inst::St { .. }))
            .count();
        let (after, _) = optimized(src);
        let after_n = after
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Atom { .. } | Inst::St { .. }))
            .count();
        assert_eq!(before, after_n);
    }

    #[test]
    fn barriers_and_shuffles_preserved() {
        let src = "__global__ void k(float* p) {\
            __shared__ float s[32];\
            s[threadIdx.x % 32] = p[threadIdx.x];\
            __syncthreads();\
            float v = s[(threadIdx.x + 1) % 32];\
            v += __shfl_xor_sync(0xffffffffu, v, 1, 32);\
            p[threadIdx.x] = v;\
          }";
        let (after, _) = optimized(src);
        assert!(after.insts.iter().any(|i| matches!(i, Inst::Bar { .. })));
        assert!(after.insts.iter().any(|i| matches!(i, Inst::Shfl { .. })));
    }

    #[test]
    fn entry_barrier_with_no_memory_before_is_dropped() {
        let src = "__global__ void k(float* p) {\
            __syncthreads();\
            p[threadIdx.x] = 1.0f;\
          }";
        let (k, stats) = optimized(src);
        assert!(!k.insts.iter().any(|i| matches!(i, Inst::Bar { .. })));
        assert_eq!(stats.barriers_removed, 1);
    }

    #[test]
    fn trailing_barrier_with_no_memory_after_is_dropped() {
        let src = "__global__ void k(float* p) {\
            p[threadIdx.x] = 1.0f;\
            __syncthreads();\
          }";
        let (k, stats) = optimized(src);
        assert!(!k.insts.iter().any(|i| matches!(i, Inst::Bar { .. })));
        assert_eq!(stats.barriers_removed, 1);
    }

    #[test]
    fn barrier_between_memory_ops_survives_ir_elimination() {
        let src = "__global__ void k(float* p) {\
            __shared__ float s[64];\
            s[threadIdx.x] = p[threadIdx.x];\
            __syncthreads();\
            p[threadIdx.x] = s[63 - threadIdx.x];\
          }";
        let (k, stats) = optimized(src);
        assert!(k.insts.iter().any(|i| matches!(i, Inst::Bar { .. })));
        assert_eq!(stats.barriers_removed, 0);
    }

    #[test]
    fn branch_targets_survive_barrier_splice() {
        // The loop back-edge crosses the dropped trailing barrier's index.
        let src = "__global__ void k(float* p, int n) {\
            float acc = 0.0f;\
            for (int i = 0; i < n; i += 1) { acc += p[i]; }\
            p[threadIdx.x] = acc;\
            __syncthreads();\
          }";
        let (k, stats) = optimized(src);
        assert_eq!(stats.barriers_removed, 1);
        crate::verify::verify(&k).expect("spliced kernel verifies");
    }

    #[test]
    fn peephole_turns_power_of_two_rem_into_mask() {
        let (k, _) = optimized(
            "__global__ void k(unsigned int* out, unsigned int x) {\
               unsigned int m = 32u;\
               unsigned int mask = 31u;\
               out[0] = x % m + x / m + mask;\
             }",
        );
        assert!(
            !k.insts.iter().any(|i| matches!(
                i,
                Inst::Bin {
                    op: crate::ir::BinIr::Div | crate::ir::BinIr::Rem,
                    ..
                }
            )),
            "div/rem by 32u should strength-reduce: {:#?}",
            k.insts
        );
    }

    #[test]
    fn peephole_respects_signed_division() {
        // -1 / 2 == 0 in C but -1 >> 1 == -1: signed div must survive.
        let (k, _) =
            optimized("__global__ void k(int* out, int x) { int two = 2; out[0] = x / two; }");
        assert!(
            k.insts.iter().any(|i| matches!(
                i,
                Inst::Bin {
                    op: crate::ir::BinIr::Div,
                    ty: crate::ir::ScalarTy::I32,
                    ..
                }
            )),
            "signed divide must not become a shift: {:#?}",
            k.insts
        );
    }

    #[test]
    fn peephole_identities_fold_to_moves() {
        let (k, _) = optimized(
            "__global__ void k(unsigned int* out, unsigned int x) {\
               unsigned int zero = 0u;\
               unsigned int one = 1u;\
               out[0] = (x + zero) * one ^ zero;\
             }",
        );
        // No arithmetic should remain on the value path (just address math).
        let arith = k
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: crate::ir::BinIr::Xor | crate::ir::BinIr::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(arith, 0, "{:#?}", k.insts);
    }

    #[test]
    fn cse_compensates_when_canonical_register_is_redefined() {
        // r-level scenario: `a = x*2; b = x*2; a = 0; use b` — CSE deletes
        // b's computation (renamed to a), so redefining a must first save
        // the value back into b.
        let src = "__global__ void k(unsigned int* out, unsigned int x) {\
            unsigned int a = x * 3u;\
            unsigned int b = x * 3u;\
            a = 0u;\
            out[0] = b;\
            out[1] = a;\
          }";
        let ast = cuda_frontend::parse_kernel(src).expect("parse");
        let raw = crate::lower::lower_kernel_unoptimized(&ast).expect("raw");
        let mut opt = raw.clone();
        let _ = optimize(&mut opt);
        crate::verify::verify(&opt).expect("verifies");
        assert_eq!(mini_eval(&raw, 7, 2), [21, 0]);
        assert_eq!(
            mini_eval(&opt, 7, 2),
            [21, 0],
            "CSE must not lose b when a is clobbered"
        );
    }

    /// Interprets a straight-line/branchy ALU kernel with a miniature
    /// single-thread evaluator: param 0 is a u32 output buffer at address 0,
    /// param 1 is the scalar `x`. Returns the final buffer contents.
    fn mini_eval(k: &KernelIr, x: u64, mem_len: usize) -> Vec<u64> {
        let mut regs = vec![0u64; k.num_regs as usize];
        let mut mem = vec![0u64; mem_len];
        let mut pc = 0usize;
        loop {
            match &k.insts[pc] {
                Inst::Ret => break,
                Inst::Jmp { target } => {
                    pc = *target;
                    continue;
                }
                Inst::Bra {
                    cond,
                    if_zero,
                    target,
                } => {
                    if (regs[*cond as usize] == 0) == *if_zero {
                        pc = *target;
                        continue;
                    }
                }
                Inst::Imm { dst, value } => regs[*dst as usize] = *value,
                Inst::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
                Inst::LdParam { dst, index } => {
                    regs[*dst as usize] = if *index == 1 { x } else { 0 };
                }
                Inst::Bin { op, ty, dst, a, b } => {
                    regs[*dst as usize] =
                        crate::alu::bin(*op, *ty, regs[*a as usize], regs[*b as usize]);
                }
                Inst::Un { op, ty, dst, a } => {
                    regs[*dst as usize] = crate::alu::un(*op, *ty, regs[*a as usize]);
                }
                Inst::Cast { dst, src, from, to } => {
                    regs[*dst as usize] = crate::alu::cast(*from, *to, regs[*src as usize]);
                }
                Inst::St { addr, val, .. } => {
                    let a = regs[*addr as usize] as u32 as usize / 4;
                    mem[a] = regs[*val as usize];
                }
                other => panic!("unexpected instruction in test kernel: {other:?}"),
            }
            pc += 1;
        }
        mem
    }

    #[test]
    fn cse_ignores_stale_canonical_after_redefinition() {
        // Regression (found by proptest): in a non-entry block, `b = 2u`
        // makes b's register the block-local canonical for Imm(2); the
        // immediate redefinition `b = 3u` must invalidate that entry, or
        // the address shift constant materialized for `out[x]` (also an
        // Imm(2), since u32 elements are 4 bytes) gets renamed to a
        // register that now holds 3, computing `out + x*8`.
        let src = "__global__ void k(unsigned int* out, unsigned int x) {\
            unsigned int a = x;\
            for (int i = 0; i < 1; i++) { a = a + 1u; }\
            unsigned int b = 2u;\
            b = 3u;\
            out[x] = a ^ b;\
          }";
        let ast = cuda_frontend::parse_kernel(src).expect("parse");
        let raw = crate::lower::lower_kernel_unoptimized(&ast).expect("raw");
        let mut opt = raw.clone();
        let _ = optimize(&mut opt);
        crate::verify::verify(&opt).expect("verifies");
        // x = 7: a = 8, b = 3, out[7] = 8 ^ 3 = 11.
        let mut expected = vec![0u64; 16];
        expected[7] = 11;
        assert_eq!(mini_eval(&raw, 7, 16), expected);
        assert_eq!(
            mini_eval(&opt, 7, 16),
            expected,
            "redefined canonical register must not satisfy later CSE hits"
        );
    }

    #[test]
    fn pressure_is_recomputed() {
        let (k, _) = optimized("__global__ void k(float* p) { p[0] = 1.0f; }");
        assert!(k.pressure >= crate::liveness::MIN_REGS);
    }
}
