//! Declaration lifting: hoists every local variable declaration to the top
//! of the kernel body, leaving an assignment behind where the declaration
//! had an initializer.
//!
//! The paper performs this step because the fused kernel instruments `goto`
//! statements, and "CUDA may not allow goto statements to jump over local
//! variable declarations" (Section III-C). Names must already be unique
//! (run [`super::uniquify`] first).

use crate::ast::{AssignOp, Block, Expr, Function, Stmt, VarDecl};

/// Lifts all local declarations in `f` to the start of its body.
///
/// Initializers are preserved as assignments at the original location, so
/// the observable behaviour is unchanged.
pub fn lift_decls(f: &mut Function) {
    let mut decls: Vec<VarDecl> = Vec::new();
    let body = std::mem::take(&mut f.body);
    let mut rest = lift_block(body, &mut decls);
    let mut stmts: Vec<Stmt> = decls.into_iter().map(Stmt::Decl).collect();
    stmts.append(&mut rest.stmts);
    f.body = Block { stmts };
}

fn lift_block(block: Block, decls: &mut Vec<VarDecl>) -> Block {
    let mut out = Vec::with_capacity(block.stmts.len());
    for stmt in block.stmts {
        match stmt {
            Stmt::Decl(mut d) => {
                let init = d.init.take();
                decls.push(d.clone());
                if let Some(init) = init {
                    out.push(Stmt::Expr(Expr::Assign(
                        AssignOp::Assign,
                        Box::new(Expr::Ident(d.name.clone())),
                        Box::new(init),
                    )));
                }
            }
            Stmt::If(c, t, e) => out.push(Stmt::If(
                c,
                lift_block(t, decls),
                e.map(|b| lift_block(b, decls)),
            )),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let init = init.map(|s| match *s {
                    Stmt::Decl(mut d) => {
                        let i = d.init.take();
                        decls.push(d.clone());
                        match i {
                            Some(i) => Some(Box::new(Stmt::Expr(Expr::Assign(
                                AssignOp::Assign,
                                Box::new(Expr::Ident(d.name)),
                                Box::new(i),
                            )))),
                            None => None,
                        }
                    }
                    other => Some(Box::new(other)),
                });
                out.push(Stmt::For {
                    init: init.flatten(),
                    cond,
                    step,
                    body: lift_block(body, decls),
                });
            }
            Stmt::While(c, body) => out.push(Stmt::While(c, lift_block(body, decls))),
            Stmt::DoWhile(body, c) => out.push(Stmt::DoWhile(lift_block(body, decls), c)),
            Stmt::Switch { scrutinee, cases } => out.push(Stmt::Switch {
                scrutinee,
                cases: cases
                    .into_iter()
                    .map(|c| crate::ast::SwitchCase {
                        value: c.value,
                        body: lift_block(Block::new(c.body), decls).stmts,
                    })
                    .collect(),
            }),
            Stmt::Block(b) => out.push(Stmt::Block(lift_block(b, decls))),
            other => out.push(other),
        }
    }
    Block { stmts: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kernel;
    use crate::printer::print_function;
    use crate::transform::rename::{uniquify, NameGen};

    fn lifted(src: &str) -> Function {
        let mut k = parse_kernel(src).expect("parse");
        uniquify(&mut k, &mut NameGen::new());
        lift_decls(&mut k);
        k
    }

    fn leading_decl_count(f: &Function) -> usize {
        f.body
            .stmts
            .iter()
            .take_while(|s| matches!(s, Stmt::Decl(_)))
            .count()
    }

    fn total_decl_count(f: &Function) -> usize {
        let mut n = 0;
        let mut f = f.clone();
        crate::transform::visit::walk_stmts(&mut f.body, &mut |s| {
            if matches!(s, Stmt::Decl(_)) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn all_decls_move_to_top() {
        let k = lifted(
            "__global__ void k(int n) {\
               int a = 1;\
               if (n) { int b = 2; n = b; }\
               for (int i = 0; i < n; i++) { int c = i; n += c; }\
               __shared__ float s[32];\
               s[0] = a;\
             }",
        );
        assert_eq!(leading_decl_count(&k), 5); // a, b, i, c, s
        assert_eq!(total_decl_count(&k), 5, "no declarations may remain nested");
    }

    #[test]
    fn initializers_become_assignments_in_place() {
        let k = lifted("__global__ void k(int n) { if (n) { int b = n * 2; n = b; } }");
        let out = print_function(&k);
        // The assignment stays inside the if.
        assert!(out.contains("if (n_0) {"), "{out}");
        assert!(out.contains("b_1 = n_0 * 2;"), "{out}");
        // The declaration is at the top, without initializer.
        assert!(out.contains("int b_1;"), "{out}");
    }

    #[test]
    fn for_init_decl_becomes_assignment() {
        let k = lifted("__global__ void k(int n) { for (int i = 0; i < n; i++) { } }");
        let out = print_function(&k);
        assert!(out.contains("for (i_1 = 0; i_1 < n_0; i_1++)"), "{out}");
        assert!(out.contains("int i_1;"), "{out}");
    }

    #[test]
    fn shared_arrays_lift_with_qualifiers() {
        let k = lifted("__global__ void k(int n) { if (n) { __shared__ int s[64]; s[0] = n; } }");
        match &k.body.stmts[0] {
            Stmt::Decl(d) => {
                assert!(d.quals.shared);
                assert!(d.array_len.is_some());
            }
            other => panic!("expected lifted decl, got {other:?}"),
        }
    }

    #[test]
    fn declaration_order_is_preserved() {
        let k = lifted("__global__ void k(int n) { int a = 1; { int b = 2; } int c = 3; }");
        let names: Vec<&str> = k.body.stmts[..3]
            .iter()
            .map(|s| match s {
                Stmt::Decl(d) => d.name.as_str(),
                other => panic!("expected decl, got {other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["a_1", "b_2", "c_3"]);
    }
}
