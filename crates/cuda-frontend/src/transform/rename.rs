//! Alpha-renaming: gives every parameter, local variable, and label a
//! globally fresh name so two kernels can be merged without collisions.

use std::collections::HashMap;

use crate::ast::{Block, Expr, Function, Stmt};

/// A generator of fresh names, shared across the kernels being fused so the
/// merged function has no collisions.
#[derive(Debug, Default)]
pub struct NameGen {
    counter: u64,
}

impl NameGen {
    /// Creates a generator starting at suffix 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produces a fresh name derived from `base`.
    pub fn fresh(&mut self, base: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{base}_{n}")
    }
}

/// Renames every parameter, local variable, and label of `f` to a fresh
/// name from `names`, updating all references. Shadowing is resolved: after
/// this pass, every declaration in the function has a unique name.
pub fn uniquify(f: &mut Function, names: &mut NameGen) {
    let mut scopes: Vec<HashMap<String, String>> = vec![HashMap::new()];
    for p in &mut f.params {
        let fresh = names.fresh(&p.name);
        scopes[0].insert(p.name.clone(), fresh.clone());
        p.name = fresh;
    }
    // Labels are function-scoped; collect and rename them first.
    let mut labels: HashMap<String, String> = HashMap::new();
    collect_labels(&f.body, names, &mut labels);
    rename_block(&mut f.body, &mut scopes, names, &labels);
}

fn collect_labels(block: &Block, names: &mut NameGen, labels: &mut HashMap<String, String>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Label(l) => {
                labels.entry(l.clone()).or_insert_with(|| names.fresh(l));
            }
            Stmt::If(_, t, e) => {
                collect_labels(t, names, labels);
                if let Some(e) = e {
                    collect_labels(e, names, labels);
                }
            }
            Stmt::For { body, .. } | Stmt::While(_, body) | Stmt::DoWhile(body, _) => {
                collect_labels(body, names, labels)
            }
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    collect_labels(&Block::new(case.body.clone()), names, labels);
                }
            }
            Stmt::Block(b) => collect_labels(b, names, labels),
            _ => {}
        }
    }
}

fn rename_block(
    block: &mut Block,
    scopes: &mut Vec<HashMap<String, String>>,
    names: &mut NameGen,
    labels: &HashMap<String, String>,
) {
    scopes.push(HashMap::new());
    for stmt in &mut block.stmts {
        rename_stmt(stmt, scopes, names, labels);
    }
    scopes.pop();
}

fn rename_stmt(
    stmt: &mut Stmt,
    scopes: &mut Vec<HashMap<String, String>>,
    names: &mut NameGen,
    labels: &HashMap<String, String>,
) {
    match stmt {
        Stmt::Decl(d) => {
            // Initializer sees the *outer* binding (C semantics are that the
            // name is in scope in its own initializer, but self-reference in
            // an initializer is undefined; we rename references before
            // introducing the new binding, matching sane kernels).
            if let Some(crate::ast::ArrayLen::Fixed(len)) = &mut d.array_len {
                rename_expr(len, scopes);
            }
            if let Some(init) = &mut d.init {
                rename_expr(init, scopes);
            }
            let fresh = names.fresh(&d.name);
            scopes
                .last_mut()
                .expect("scope stack never empty")
                .insert(d.name.clone(), fresh.clone());
            d.name = fresh;
        }
        Stmt::Expr(e) => rename_expr(e, scopes),
        Stmt::If(c, t, e) => {
            rename_expr(c, scopes);
            rename_block(t, scopes, names, labels);
            if let Some(e) = e {
                rename_block(e, scopes, names, labels);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            // The for-init declaration scopes over cond/step/body.
            scopes.push(HashMap::new());
            if let Some(init) = init {
                rename_stmt(init, scopes, names, labels);
            }
            if let Some(c) = cond {
                rename_expr(c, scopes);
            }
            if let Some(s) = step {
                rename_expr(s, scopes);
            }
            rename_block(body, scopes, names, labels);
            scopes.pop();
        }
        Stmt::While(c, body) => {
            rename_expr(c, scopes);
            rename_block(body, scopes, names, labels);
        }
        Stmt::DoWhile(body, c) => {
            rename_block(body, scopes, names, labels);
            rename_expr(c, scopes);
        }
        Stmt::Switch { scrutinee, cases } => {
            rename_expr(scrutinee, scopes);
            // The whole switch body is one scope in C.
            scopes.push(HashMap::new());
            for case in cases {
                for s in &mut case.body {
                    rename_stmt(s, scopes, names, labels);
                }
            }
            scopes.pop();
        }
        Stmt::Return(Some(e)) => rename_expr(e, scopes),
        Stmt::Block(b) => rename_block(b, scopes, names, labels),
        Stmt::Goto(l) => {
            if let Some(fresh) = labels.get(l) {
                *l = fresh.clone();
            }
        }
        Stmt::Label(l) => {
            if let Some(fresh) = labels.get(l) {
                *l = fresh.clone();
            }
        }
        Stmt::Return(None)
        | Stmt::Break
        | Stmt::Continue
        | Stmt::SyncThreads
        | Stmt::BarSync { .. } => {}
    }
}

fn rename_expr(expr: &mut Expr, scopes: &[HashMap<String, String>]) {
    // Manual recursion instead of `walk_expr` so shadowing-sensitive
    // rewrites use the scope state at this statement.
    match expr {
        Expr::Ident(name) => {
            if let Some(fresh) = scopes.iter().rev().find_map(|s| s.get(name.as_str())) {
                *name = fresh.clone();
            }
        }
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Builtin(_) => {}
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::AddrOf(a) | Expr::Deref(a) => {
            rename_expr(a, scopes)
        }
        Expr::IncDec { target, .. } => rename_expr(target, scopes),
        Expr::Binary(_, a, b) | Expr::Assign(_, a, b) | Expr::Index(a, b) => {
            rename_expr(a, scopes);
            rename_expr(b, scopes);
        }
        Expr::Ternary(a, b, c) => {
            rename_expr(a, scopes);
            rename_expr(b, scopes);
            rename_expr(c, scopes);
        }
        Expr::Call(_, args) => {
            for a in args {
                rename_expr(a, scopes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kernel;
    use crate::printer::print_function;

    fn uniquified(src: &str) -> String {
        let mut k = parse_kernel(src).expect("parse");
        uniquify(&mut k, &mut NameGen::new());
        print_function(&k)
    }

    #[test]
    fn renames_params_and_references() {
        let out = uniquified("__global__ void k(int n) { n = n + 1; }");
        assert!(out.contains("int n_0"), "{out}");
        assert!(out.contains("n_0 = n_0 + 1;"), "{out}");
    }

    #[test]
    fn shadowing_resolved() {
        let out = uniquified(
            "__global__ void k(int n) { int x = n; { int x = 2; x = x + 1; } x = x * 2; }",
        );
        // Outer x and inner x must have different names.
        assert!(out.contains("x_1 = n_0"), "{out}");
        assert!(out.contains("x_2 = 2"), "{out}");
        assert!(out.contains("x_2 = x_2 + 1"), "{out}");
        assert!(out.contains("x_1 = x_1 * 2"), "{out}");
    }

    #[test]
    fn for_loop_variable_scoped() {
        let out = uniquified(
            "__global__ void k(int n) { int i = 9; for (int i = 0; i < n; i++) { n += i; } n += i; }",
        );
        assert!(out.contains("i_1 = 9"), "{out}");
        assert!(out.contains("for (int i_2 = 0; i_2 < n_0; i_2++)"), "{out}");
        // after the loop, `i` refers to the outer declaration again
        assert!(out.contains("n_0 += i_1;"), "{out}");
    }

    #[test]
    fn two_sequential_loops_get_distinct_names() {
        let out = uniquified(
            "__global__ void k(int n) { for (int i = 0; i < n; i++) { } for (int i = 0; i < n; i++) { } }",
        );
        assert!(out.contains("i_1"), "{out}");
        assert!(out.contains("i_2"), "{out}");
    }

    #[test]
    fn labels_and_gotos_renamed_consistently() {
        let out = uniquified("__global__ void k(int n) { if (n) goto end; n = 1; end: ; }");
        assert!(out.contains("goto end_1;"), "{out}");
        assert!(out.contains("end_1: ;"), "{out}");
    }

    #[test]
    fn initializer_sees_outer_binding() {
        let out = uniquified("__global__ void k(int x) { { int x = x + 1; } }");
        // inner decl's initializer refers to the parameter
        assert!(out.contains("int x_1 = x_0 + 1;"), "{out}");
    }

    #[test]
    fn shared_namegen_keeps_two_kernels_disjoint() {
        let mut k1 = parse_kernel("__global__ void a(int n) { int x = n; }").expect("parse");
        let mut k2 = parse_kernel("__global__ void b(int n) { int x = n; }").expect("parse");
        let mut names = NameGen::new();
        uniquify(&mut k1, &mut names);
        uniquify(&mut k2, &mut names);
        let out1 = print_function(&k1);
        let out2 = print_function(&k2);
        assert!(out1.contains("x_1"), "{out1}");
        assert!(out2.contains("x_3"), "{out2}");
    }
}
