//! Generic mutable AST walkers.

use crate::ast::{Block, Expr, Stmt};

/// Applies `f` to every expression in a block, bottom-up (children first).
pub fn walk_exprs_block(block: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for stmt in &mut block.stmts {
        walk_exprs_stmt(stmt, f);
    }
}

/// Applies `f` to every expression in a statement, bottom-up.
pub fn walk_exprs_stmt(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Stmt::Decl(d) => {
            if let Some(crate::ast::ArrayLen::Fixed(len)) = &mut d.array_len {
                walk_expr(len, f);
            }
            if let Some(init) = &mut d.init {
                walk_expr(init, f);
            }
        }
        Stmt::Expr(e) => walk_expr(e, f),
        Stmt::If(c, t, e) => {
            walk_expr(c, f);
            walk_exprs_block(t, f);
            if let Some(e) = e {
                walk_exprs_block(e, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                walk_exprs_stmt(init, f);
            }
            if let Some(c) = cond {
                walk_expr(c, f);
            }
            if let Some(s) = step {
                walk_expr(s, f);
            }
            walk_exprs_block(body, f);
        }
        Stmt::While(c, body) => {
            walk_expr(c, f);
            walk_exprs_block(body, f);
        }
        Stmt::DoWhile(body, c) => {
            walk_exprs_block(body, f);
            walk_expr(c, f);
        }
        Stmt::Switch { scrutinee, cases } => {
            walk_expr(scrutinee, f);
            for case in cases {
                for s in &mut case.body {
                    walk_exprs_stmt(s, f);
                }
            }
        }
        Stmt::Return(Some(e)) => walk_expr(e, f),
        Stmt::Block(b) => walk_exprs_block(b, f),
        Stmt::Return(None)
        | Stmt::Break
        | Stmt::Continue
        | Stmt::SyncThreads
        | Stmt::BarSync { .. }
        | Stmt::Goto(_)
        | Stmt::Label(_) => {}
    }
}

/// Applies `f` to `expr` and every sub-expression, children first.
pub fn walk_expr(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match expr {
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Ident(_) | Expr::Builtin(_) => {}
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::AddrOf(a) | Expr::Deref(a) => walk_expr(a, f),
        Expr::IncDec { target, .. } => walk_expr(target, f),
        Expr::Binary(_, a, b) | Expr::Assign(_, a, b) | Expr::Index(a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Ternary(a, b, c) => {
            walk_expr(a, f);
            walk_expr(b, f);
            walk_expr(c, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
    }
    f(expr);
}

/// Applies `f` to every statement in a block, innermost blocks first. The
/// callback receives each statement after its children were visited.
pub fn walk_stmts(block: &mut Block, f: &mut impl FnMut(&mut Stmt)) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If(_, t, e) => {
                walk_stmts(t, f);
                if let Some(e) = e {
                    walk_stmts(e, f);
                }
            }
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    f(init);
                }
                walk_stmts(body, f);
            }
            Stmt::While(_, body) | Stmt::DoWhile(body, _) => walk_stmts(body, f),
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    for s in &mut case.body {
                        // Visit nested statements, then the statement itself.
                        if let Stmt::Block(b) = s {
                            walk_stmts(b, f);
                        }
                        f(s);
                    }
                }
            }
            Stmt::Block(b) => walk_stmts(b, f),
            _ => {}
        }
        f(stmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_block;

    #[test]
    fn walk_exprs_reaches_all_positions() {
        let mut b = parse_block(
            "{ int x = 1 + 2; if (x < 3) { x = f(x, 4); } for (int i = 0; i < x; i++) { x += i; } }",
        )
        .expect("parse");
        let mut ints = Vec::new();
        walk_exprs_block(&mut b, &mut |e| {
            if let Expr::IntLit(v, _) = e {
                ints.push(*v);
            }
        });
        ints.sort_unstable();
        assert_eq!(ints, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn walk_exprs_can_rewrite() {
        let mut b = parse_block("{ x = 1; }").expect("parse");
        walk_exprs_block(&mut b, &mut |e| {
            if let Expr::IntLit(v, _) = e {
                *v += 41;
            }
        });
        let printed = crate::printer::print_stmt(&b.stmts[0]);
        assert_eq!(printed.trim(), "x = 42;");
    }

    #[test]
    fn walk_stmts_visits_nested() {
        let mut b = parse_block("{ if (1) { x = 1; } while (0) { y = 2; } }").expect("parse");
        let mut count = 0;
        walk_stmts(&mut b, &mut |_| count += 1);
        // if, x=1, while, y=2
        assert_eq!(count, 4);
    }
}
