//! AST transformation passes.
//!
//! These are the preprocessing steps the HFUSE paper performs before fusing
//! (Section III-C):
//!
//! * [`inline`] — inline `__device__` function calls into kernels,
//! * [`rename`] — give every local variable a globally fresh name,
//! * [`lift`] — hoist local declarations to the top of the kernel body,
//! * [`subst`] — substitute builtin variables / identifiers with expressions
//!   (used by the fusion pass to retarget `threadIdx.x` and friends),
//! * [`visit`] — the generic mutable AST walker the passes are built on.

pub mod inline;
pub mod lift;
pub mod rename;
pub mod subst;
pub mod visit;

pub use inline::inline_calls;
pub use lift::lift_decls;
pub use rename::{uniquify, NameGen};
pub use subst::{replace_builtins, replace_idents, BuiltinSubst};

use crate::ast::Function;
use crate::error::FrontendError;

/// Runs the full preprocessing pipeline on a kernel: inline all device-call
/// sites using `helpers`, uniquify local names with `names`, and lift
/// declarations to the top of the body.
///
/// After this, the kernel is in the canonical form the fusion algorithm of
/// the paper assumes: "macros are preprocessed, function calls are all
/// inlined, and local variable declarations are lifted to the top".
///
/// # Errors
///
/// Returns [`FrontendError`] if inlining fails (recursive or unsupported
/// call shapes).
pub fn preprocess_kernel(
    kernel: &mut Function,
    helpers: &[Function],
    names: &mut NameGen,
) -> Result<(), FrontendError> {
    inline_calls(kernel, helpers)?;
    uniquify(kernel, names);
    lift_decls(kernel);
    Ok(())
}
