//! Expression substitution utilities.
//!
//! The fusion pass uses these to replace `threadIdx.x` / `blockDim.x` with
//! the prologue-defined variables (`tid_1`, `size_1`, ...) as in Figure 5 of
//! the paper, and the inliner uses identifier substitution for argument
//! binding checks.

use std::collections::HashMap;

use crate::ast::{Axis, Block, BuiltinVar, Expr};
use crate::transform::visit::walk_exprs_block;

/// A mapping from builtin dim3 variables to replacement expressions.
///
/// Unmapped builtins are left untouched (e.g. `blockIdx.x` keeps its meaning
/// in the fused kernel).
#[derive(Debug, Clone, Default)]
pub struct BuiltinSubst {
    map: HashMap<BuiltinVar, Expr>,
}

impl BuiltinSubst {
    /// Creates an empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps one builtin to a replacement expression, returning `self` for
    /// chaining.
    pub fn set(mut self, var: BuiltinVar, replacement: Expr) -> Self {
        self.map.insert(var, replacement);
        self
    }

    /// Convenience: maps `threadIdx.{x,y,z}` and `blockDim.{x,y,z}` to the
    /// given identifier names (the prologue variables of the fused kernel).
    pub fn thread_remap(mut self, tid_names: [&str; 3], dim_names: [&str; 3]) -> Self {
        for (i, axis) in Axis::ALL.iter().enumerate() {
            self.map
                .insert(BuiltinVar::ThreadIdx(*axis), Expr::ident(tid_names[i]));
            self.map
                .insert(BuiltinVar::BlockDim(*axis), Expr::ident(dim_names[i]));
        }
        self
    }

    /// Looks up the replacement for a builtin.
    pub fn get(&self, var: BuiltinVar) -> Option<&Expr> {
        self.map.get(&var)
    }
}

/// Replaces builtin variables throughout a block according to `subst`.
pub fn replace_builtins(block: &mut Block, subst: &BuiltinSubst) {
    walk_exprs_block(block, &mut |e| {
        if let Expr::Builtin(b) = e {
            if let Some(replacement) = subst.get(*b) {
                *e = replacement.clone();
            }
        }
    });
}

/// Replaces free identifiers throughout a block according to `map`.
///
/// Names must be unique in the block (run [`crate::transform::uniquify`]
/// first); no scoping is applied.
pub fn replace_idents(block: &mut Block, map: &HashMap<String, Expr>) {
    walk_exprs_block(block, &mut |e| {
        if let Expr::Ident(name) = e {
            if let Some(replacement) = map.get(name.as_str()) {
                *e = replacement.clone();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_block;
    use crate::printer::print_stmt;

    fn print_block(b: &Block) -> String {
        b.stmts.iter().map(print_stmt).collect::<Vec<_>>().join("")
    }

    #[test]
    fn replaces_thread_builtins_only() {
        let mut b =
            parse_block("{ int i = blockIdx.x * blockDim.x + threadIdx.x; }").expect("parse");
        let subst = BuiltinSubst::new()
            .thread_remap(["tid_1", "tidy_1", "tidz_1"], ["size_1", "sy_1", "sz_1"]);
        replace_builtins(&mut b, &subst);
        let out = print_block(&b);
        assert!(out.contains("blockIdx.x * size_1 + tid_1"), "{out}");
    }

    #[test]
    fn replacement_can_be_full_expression() {
        let mut b = parse_block("{ x = threadIdx.x; }").expect("parse");
        let repl = crate::parser::parse_expr("tid - 896").expect("parse");
        let subst = BuiltinSubst::new().set(BuiltinVar::ThreadIdx(Axis::X), repl);
        replace_builtins(&mut b, &subst);
        assert!(print_block(&b).contains("x = tid - 896;"));
    }

    #[test]
    fn replace_idents_rewrites_references() {
        let mut b = parse_block("{ y = n + n; }").expect("parse");
        let mut map = HashMap::new();
        map.insert("n".to_owned(), Expr::int(5));
        replace_idents(&mut b, &map);
        assert!(print_block(&b).contains("y = 5 + 5;"));
    }
}
