//! `__device__` function inlining.
//!
//! The paper inlines all function calls before fusing (Section III-C). The
//! inliner supports non-recursive callees whose body either returns `void`
//! (no `return` statements) or ends in a single trailing `return expr;`.
//! Call sites may appear anywhere inside statement expressions except loop
//! conditions/steps (where hoisting would change evaluation frequency).

use std::collections::HashMap;

use crate::ast::{Block, Expr, Function, Stmt, Ty, VarDecl};
use crate::error::FrontendError;
use crate::transform::rename::{uniquify, NameGen};
use crate::typeck::Intrinsic;

const MAX_INLINE_DEPTH: u32 = 32;

/// Inlines every call to one of `helpers` inside `kernel`.
///
/// # Errors
///
/// Returns [`FrontendError`] for (mutually) recursive callees — the paper
/// explicitly leaves recursion unsupported — for unsupported callee shapes,
/// and for calls in positions that cannot be hoisted (loop conditions).
pub fn inline_calls(kernel: &mut Function, helpers: &[Function]) -> Result<(), FrontendError> {
    let by_name: HashMap<&str, &Function> = helpers.iter().map(|f| (f.name.as_str(), f)).collect();
    let mut names = NameGen::new();
    let body = std::mem::take(&mut kernel.body);
    kernel.body = inline_block(body, &by_name, &mut names, 0)?;
    Ok(())
}

fn inline_block(
    block: Block,
    helpers: &HashMap<&str, &Function>,
    names: &mut NameGen,
    depth: u32,
) -> Result<Block, FrontendError> {
    let mut out: Vec<Stmt> = Vec::with_capacity(block.stmts.len());
    for stmt in block.stmts {
        inline_stmt(stmt, helpers, names, depth, &mut out)?;
    }
    Ok(Block { stmts: out })
}

fn inline_stmt(
    stmt: Stmt,
    helpers: &HashMap<&str, &Function>,
    names: &mut NameGen,
    depth: u32,
    out: &mut Vec<Stmt>,
) -> Result<(), FrontendError> {
    match stmt {
        Stmt::Expr(mut e) => {
            hoist_calls_in_expr(&mut e, helpers, names, depth, out)?;
            out.push(Stmt::Expr(e));
        }
        Stmt::Decl(mut d) => {
            if let Some(init) = &mut d.init {
                hoist_calls_in_expr(init, helpers, names, depth, out)?;
            }
            out.push(Stmt::Decl(d));
        }
        Stmt::If(mut c, t, e) => {
            hoist_calls_in_expr(&mut c, helpers, names, depth, out)?;
            let t = inline_block(t, helpers, names, depth)?;
            let e = e
                .map(|b| inline_block(b, helpers, names, depth))
                .transpose()?;
            out.push(Stmt::If(c, t, e));
        }
        Stmt::For {
            init,
            mut cond,
            mut step,
            body,
        } => {
            let init = match init {
                Some(s) => {
                    let mut pre = Vec::new();
                    inline_stmt(*s, helpers, names, depth, &mut pre)?;
                    // If hoisting produced extra statements, emit them before
                    // the loop and keep the last as the init.
                    let last = pre.pop();
                    out.extend(pre);
                    last.map(Box::new)
                }
                None => None,
            };
            if let Some(c) = &mut cond {
                reject_calls(c, helpers, "loop condition")?;
            }
            if let Some(s) = &mut step {
                reject_calls(s, helpers, "loop step")?;
            }
            let body = inline_block(body, helpers, names, depth)?;
            out.push(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        Stmt::While(mut c, body) => {
            reject_calls(&mut c, helpers, "loop condition")?;
            let body = inline_block(body, helpers, names, depth)?;
            out.push(Stmt::While(c, body));
        }
        Stmt::DoWhile(body, mut c) => {
            reject_calls(&mut c, helpers, "loop condition")?;
            let body = inline_block(body, helpers, names, depth)?;
            out.push(Stmt::DoWhile(body, c));
        }
        Stmt::Return(Some(mut e)) => {
            hoist_calls_in_expr(&mut e, helpers, names, depth, out)?;
            out.push(Stmt::Return(Some(e)));
        }
        Stmt::Block(b) => {
            let b = inline_block(b, helpers, names, depth)?;
            out.push(Stmt::Block(b));
        }
        Stmt::Switch {
            mut scrutinee,
            cases,
        } => {
            hoist_calls_in_expr(&mut scrutinee, helpers, names, depth, out)?;
            let mut new_cases = Vec::with_capacity(cases.len());
            for case in cases {
                let body = inline_block(crate::ast::Block::new(case.body), helpers, names, depth)?;
                new_cases.push(crate::ast::SwitchCase {
                    value: case.value,
                    body: body.stmts,
                });
            }
            out.push(Stmt::Switch {
                scrutinee,
                cases: new_cases,
            });
        }
        other => out.push(other),
    }
    Ok(())
}

fn reject_calls(
    e: &mut Expr,
    helpers: &HashMap<&str, &Function>,
    position: &str,
) -> Result<(), FrontendError> {
    let mut bad: Option<String> = None;
    crate::transform::visit::walk_expr(e, &mut |e| {
        if let Expr::Call(name, _) = e {
            if helpers.contains_key(name.as_str()) && bad.is_none() {
                bad = Some(name.clone());
            }
        }
    });
    match bad {
        Some(name) => Err(FrontendError::new(format!(
            "cannot inline call to `{name}` inside a {position}"
        ))),
        None => Ok(()),
    }
}

/// Replaces device-function calls inside `e` with fresh temporaries, pushing
/// the inlined bodies onto `out` before the statement that contains `e`.
fn hoist_calls_in_expr(
    e: &mut Expr,
    helpers: &HashMap<&str, &Function>,
    names: &mut NameGen,
    depth: u32,
    out: &mut Vec<Stmt>,
) -> Result<(), FrontendError> {
    if depth > MAX_INLINE_DEPTH {
        return Err(FrontendError::new(
            "inlining too deep: recursive __device__ functions are not supported",
        ));
    }
    // Recurse into children first so nested calls `f(g(x))` hoist `g` before
    // `f`'s body (which then consumes the temporary).
    match e {
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Ident(_) | Expr::Builtin(_) => {}
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::AddrOf(a) | Expr::Deref(a) => {
            hoist_calls_in_expr(a, helpers, names, depth, out)?
        }
        Expr::IncDec { target, .. } => hoist_calls_in_expr(target, helpers, names, depth, out)?,
        Expr::Binary(op, a, b) => {
            if op.is_logical() {
                // The right operand of `&&`/`||` is conditionally evaluated;
                // hoisting would force it. Reject device calls there.
                hoist_calls_in_expr(a, helpers, names, depth, out)?;
                reject_calls(b, helpers, "short-circuit operand")?;
            } else {
                hoist_calls_in_expr(a, helpers, names, depth, out)?;
                hoist_calls_in_expr(b, helpers, names, depth, out)?;
            }
        }
        Expr::Assign(_, a, b) => {
            hoist_calls_in_expr(a, helpers, names, depth, out)?;
            hoist_calls_in_expr(b, helpers, names, depth, out)?;
        }
        Expr::Index(a, b) => {
            hoist_calls_in_expr(a, helpers, names, depth, out)?;
            hoist_calls_in_expr(b, helpers, names, depth, out)?;
        }
        Expr::Ternary(c, t, f) => {
            hoist_calls_in_expr(c, helpers, names, depth, out)?;
            reject_calls(t, helpers, "ternary arm")?;
            reject_calls(f, helpers, "ternary arm")?;
        }
        Expr::Call(_, args) => {
            for a in args.iter_mut() {
                hoist_calls_in_expr(a, helpers, names, depth, out)?;
            }
        }
    }
    // Now handle this node if it is itself a device call.
    let (name, args) = match e {
        Expr::Call(name, args) => (name.clone(), args.clone()),
        _ => return Ok(()),
    };
    if Intrinsic::lookup(&name, args.len()).is_some() {
        return Ok(());
    }
    let Some(callee) = helpers.get(name.as_str()).copied() else {
        return Ok(()); // unknown calls are left for typeck to reject later
    };
    if callee.params.len() != args.len() {
        return Err(FrontendError::new(format!(
            "call to `{name}` passes {} args, expected {}",
            args.len(),
            callee.params.len()
        )));
    }

    // Clone and freshen the callee.
    let mut body_fn = callee.clone();
    uniquify(&mut body_fn, names);

    // Bind arguments to the (renamed) parameters.
    let mut binds: Vec<Stmt> = Vec::new();
    for (param, arg) in body_fn.params.iter().zip(args) {
        binds.push(Stmt::Decl(VarDecl {
            name: param.name.clone(),
            ty: param.ty.clone(),
            quals: Default::default(),
            array_len: None,
            init: Some(arg),
        }));
    }

    // Split off the trailing return, if any.
    let mut stmts = body_fn.body.stmts;
    let has_other_returns = |ss: &mut [Stmt]| {
        let mut found = false;
        let mut block = Block { stmts: ss.to_vec() };
        crate::transform::visit::walk_stmts(&mut block, &mut |s| {
            if matches!(s, Stmt::Return(_)) {
                found = true;
            }
        });
        found
    };
    let result_expr = match stmts.last() {
        Some(Stmt::Return(Some(_))) => match stmts.pop() {
            Some(Stmt::Return(Some(expr))) => Some(expr),
            _ => unreachable!("just matched"),
        },
        Some(Stmt::Return(None)) => {
            stmts.pop();
            None
        }
        _ => None,
    };
    if has_other_returns(&mut stmts) {
        return Err(FrontendError::new(format!(
            "cannot inline `{name}`: only a single trailing return is supported"
        )));
    }
    if callee.ret != Ty::Void && result_expr.is_none() {
        return Err(FrontendError::new(format!(
            "cannot inline `{name}`: non-void callee must end in `return expr;`"
        )));
    }

    // Recursively inline calls inside the inlined body. The body statements
    // are spliced directly into the caller (names are already unique), so
    // the return expression keeps access to the body's locals.
    let inlined_body = inline_block(Block { stmts }, helpers, names, depth + 1)?;

    out.extend(binds);
    out.extend(inlined_body.stmts);
    match result_expr {
        Some(mut ret) => {
            hoist_calls_in_expr(&mut ret, helpers, names, depth + 1, out)?;
            let tmp = names.fresh(&format!("__inl_{name}"));
            out.push(Stmt::Decl(VarDecl {
                name: tmp.clone(),
                ty: callee.ret.clone(),
                quals: Default::default(),
                array_len: None,
                init: Some(ret),
            }));
            *e = Expr::Ident(tmp);
        }
        None => {
            // A void call used as a statement: the containing Stmt::Expr
            // becomes a no-op constant.
            *e = Expr::int(0);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_translation_unit;
    use crate::printer::print_function;

    fn inline_first_kernel(src: &str) -> Result<Function, FrontendError> {
        let tu = parse_translation_unit(src)?;
        let helpers: Vec<Function> = tu
            .functions
            .iter()
            .filter(|f| !f.is_kernel)
            .cloned()
            .collect();
        let mut kernel = tu
            .functions
            .iter()
            .find(|f| f.is_kernel)
            .expect("kernel present")
            .clone();
        inline_calls(&mut kernel, &helpers)?;
        Ok(kernel)
    }

    #[test]
    fn inlines_simple_call() {
        let k = inline_first_kernel(
            "__device__ int sq(int x) { return x * x; }\
             __global__ void k(int n) { n = sq(n) + 1; }",
        )
        .expect("inline");
        let out = print_function(&k);
        assert!(!out.contains("sq("), "call must be gone: {out}");
        assert!(out.contains("* "), "body must be inlined: {out}");
    }

    #[test]
    fn inlines_nested_calls() {
        let k = inline_first_kernel(
            "__device__ int sq(int x) { return x * x; }\
             __global__ void k(int n) { n = sq(sq(n)); }",
        )
        .expect("inline");
        let out = print_function(&k);
        assert!(!out.contains("sq("), "{out}");
    }

    #[test]
    fn inlines_callee_calling_helper() {
        let k = inline_first_kernel(
            "__device__ int dbl(int x) { return x + x; }\
             __device__ int quad(int x) { return dbl(dbl(x)); }\
             __global__ void k(int n) { n = quad(n); }",
        )
        .expect("inline");
        let out = print_function(&k);
        assert!(!out.contains("quad("), "{out}");
        assert!(!out.contains("dbl("), "{out}");
    }

    #[test]
    fn void_callee_statements_inline() {
        let k = inline_first_kernel(
            "__device__ void touch(float* p, int i) { p[i] = 1.0f; }\
             __global__ void k(float* p) { touch(p, 0); }",
        )
        .expect("inline");
        let out = print_function(&k);
        assert!(!out.contains("touch("), "{out}");
        assert!(out.contains("[") && out.contains("= 1.0f"), "{out}");
    }

    #[test]
    fn recursion_rejected() {
        let err = inline_first_kernel(
            "__device__ int f(int x) { return f(x); }\
             __global__ void k(int n) { n = f(n); }",
        )
        .unwrap_err();
        assert!(err.message().contains("recursive"), "{err}");
    }

    #[test]
    fn early_return_rejected() {
        let err = inline_first_kernel(
            "__device__ int f(int x) { if (x) { return 0; } return x; }\
             __global__ void k(int n) { n = f(n); }",
        )
        .unwrap_err();
        assert!(err.message().contains("single trailing return"), "{err}");
    }

    #[test]
    fn call_in_loop_condition_rejected() {
        let err = inline_first_kernel(
            "__device__ int f(int x) { return x; }\
             __global__ void k(int n) { while (f(n)) { n = n - 1; } }",
        )
        .unwrap_err();
        assert!(err.message().contains("loop condition"), "{err}");
    }

    #[test]
    fn arguments_evaluate_once() {
        let k = inline_first_kernel(
            "__device__ int sq(int x) { return x * x; }\
             __global__ void k(int n) { n = sq(n++); }",
        )
        .expect("inline");
        let out = print_function(&k);
        // The argument n++ appears exactly once (bound to the parameter).
        assert_eq!(out.matches("n++").count(), 1, "{out}");
    }

    #[test]
    fn intrinsics_are_not_inlined() {
        let k = inline_first_kernel("__global__ void k(float* p) { p[0] = fmaxf(p[0], 1.0f); }")
            .expect("inline");
        assert!(print_function(&k).contains("fmaxf("));
    }
}
