//! Token definitions shared by the lexer, preprocessor, and parser.

use std::fmt;

/// A lexical token with its source position (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line where the token starts.
    pub line: u32,
    /// 1-based column where the token starts; 0 for synthetic tokens.
    pub col: u32,
}

impl Token {
    /// Creates a token at the given line with no column information
    /// (synthetic tokens such as directive markers).
    pub fn new(kind: TokenKind, line: u32) -> Self {
        Self { kind, line, col: 0 }
    }

    /// Creates a token at a full line/column position.
    pub fn at(kind: TokenKind, line: u32, col: u32) -> Self {
        Self { kind, line, col }
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal with its suffix-derived signedness/width hints.
    IntLit {
        /// The literal's magnitude.
        value: u64,
        /// `u`/`U` suffix present.
        unsigned: bool,
        /// `l`/`ll` suffix present.
        long: bool,
    },
    /// Floating literal; `single` is true for an `f`/`F` suffix.
    FloatLit {
        /// The literal's value.
        value: f64,
        /// `f`/`F` suffix present (32-bit float).
        single: bool,
    },
    /// String literal contents (used by `asm("...")`).
    StrLit(String),
    /// Punctuation or operator, e.g. `+`, `<<=`, `(`.
    Punct(Punct),
    /// A `#` directive introducer at the start of a line (`#define`, ...).
    Hash,
    /// Explicit newline marker; only emitted while a `#` directive is open so
    /// the preprocessor can find the end of the directive.
    DirectiveEnd,
}

impl TokenKind {
    /// Returns the identifier text when this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants mirror the C operators they name
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Colon => ":",
            Punct::Question => "?",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Bang => "!",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::Le => "<=",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::AmpAmp => "&&",
            Punct::PipePipe => "||",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Assign => "=",
            Punct::PlusEq => "+=",
            Punct::MinusEq => "-=",
            Punct::StarEq => "*=",
            Punct::SlashEq => "/=",
            Punct::PercentEq => "%=",
            Punct::AmpEq => "&=",
            Punct::PipeEq => "|=",
            Punct::CaretEq => "^=",
            Punct::ShlEq => "<<=",
            Punct::ShrEq => ">>=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => f.write_str(s),
            TokenKind::IntLit { value, .. } => write!(f, "{value}"),
            TokenKind::FloatLit { value, .. } => write!(f, "{value}"),
            TokenKind::StrLit(s) => write!(f, "{s:?}"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Hash => f.write_str("#"),
            TokenKind::DirectiveEnd => f.write_str("<eol>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn punct_display_round_trips_compound_ops() {
        assert_eq!(Punct::ShlEq.to_string(), "<<=");
        assert_eq!(Punct::Arrow.to_string(), "->");
        assert_eq!(Punct::PlusPlus.to_string(), "++");
    }

    #[test]
    fn as_ident_only_matches_identifiers() {
        assert_eq!(TokenKind::Ident("x".into()).as_ident(), Some("x"));
        assert_eq!(TokenKind::Hash.as_ident(), None);
    }
}
