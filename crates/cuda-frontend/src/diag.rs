//! Span-carrying diagnostics for static analyses over the AST.
//!
//! The parser records a [`Span`] for every statement it produces, in the
//! canonical statement pre-order defined by [`preorder_stmts`]. Analyses map
//! statements back to source positions by walking a function in the same
//! order and zipping against the [`SpanTable`]. Diagnostics render in the
//! same style as [`crate::FrontendError`], extended with a column.

use std::fmt;

use crate::ast::{Block, Function, Stmt};

/// A 1-based source position (start of a statement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column; 0 when unknown (synthetic code).
    pub col: u32,
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong.
    Warning,
    /// Provably unsound code; fusion must reject it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One analysis finding, optionally anchored to a source statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Whether this finding blocks fusion.
    pub severity: Severity,
    /// Stable lint identifier, e.g. `barrier-divergence`.
    pub code: String,
    /// Position of the offending statement, when the source was parsed with
    /// spans (fused kernels are synthesized and carry no spans).
    pub span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        severity: Severity,
        code: impl Into<String>,
        span: Option<Span>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            severity,
            code: code.into(),
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic with the offending source line when the
    /// position is known — mirrors [`crate::FrontendError::render`].
    pub fn render(&self, source: &str) -> String {
        match self.span {
            Some(span) if span.line > 0 => {
                let text = source.lines().nth(span.line as usize - 1).unwrap_or("");
                format!(
                    "{sev}[{code}]: {msg}
 --> line {line}:{col}
  |
{line:3} | {text}
  |",
                    sev = self.severity,
                    code = self.code,
                    msg = self.message,
                    line = span.line,
                    col = span.col,
                )
            }
            _ => format!("{}[{}]: {}", self.severity, self.code, self.message),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(
                f,
                "line {}:{}: {}[{}]: {}",
                span.line, span.col, self.severity, self.code, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.code, self.message),
        }
    }
}

/// Per-function table of statement spans in [`preorder_stmts`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTable {
    spans: Vec<Span>,
}

impl SpanTable {
    /// Wraps a span list recorded in statement pre-order.
    pub fn new(spans: Vec<Span>) -> Self {
        Self { spans }
    }

    /// Span of the statement with pre-order index `idx`.
    pub fn get(&self, idx: usize) -> Option<Span> {
        self.spans.get(idx).copied()
    }

    /// Number of recorded statements.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Visits every statement of `f` in the canonical pre-order the parser uses
/// when recording spans: each statement before its children, children in
/// source order (`if`: then-branch then else-branch; `for`: init then body;
/// `switch`: case bodies in label order).
pub fn preorder_stmts<'a>(f: &'a Function, visit: &mut dyn FnMut(&'a Stmt)) {
    preorder_block(&f.body, visit);
}

fn preorder_block<'a>(b: &'a Block, visit: &mut dyn FnMut(&'a Stmt)) {
    for s in &b.stmts {
        preorder_stmt(s, visit);
    }
}

fn preorder_stmt<'a>(s: &'a Stmt, visit: &mut dyn FnMut(&'a Stmt)) {
    visit(s);
    match s {
        Stmt::If(_, then_b, else_b) => {
            preorder_block(then_b, visit);
            if let Some(e) = else_b {
                preorder_block(e, visit);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(init) = init {
                preorder_stmt(init, visit);
            }
            preorder_block(body, visit);
        }
        Stmt::While(_, body) | Stmt::DoWhile(body, _) => preorder_block(body, visit),
        Stmt::Switch { cases, .. } => {
            for case in cases {
                for cs in &case.body {
                    preorder_stmt(cs, visit);
                }
            }
        }
        Stmt::Block(b) => preorder_block(b, visit),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_position_and_code() {
        let d = Diagnostic::new(
            Severity::Error,
            "barrier-divergence",
            Some(Span { line: 2, col: 14 }),
            "barrier under divergent control",
        );
        let src = "__global__ void k() {\n  if (threadIdx.x < 5) __syncthreads();\n}";
        let r = d.render(src);
        assert!(
            r.contains("error[barrier-divergence]: barrier under divergent control"),
            "{r}"
        );
        assert!(r.contains(" --> line 2:14"), "{r}");
        assert!(
            r.contains("  2 |   if (threadIdx.x < 5) __syncthreads();"),
            "{r}"
        );
    }

    #[test]
    fn render_without_span_is_plain() {
        let d = Diagnostic::new(Severity::Warning, "shared-race", None, "boom");
        assert_eq!(d.render("x"), "warning[shared-race]: boom");
    }
}
