//! Hand-written lexer for the CUDA-C dialect.
//!
//! Comments (`//` and `/* */`) are stripped. Preprocessor directives are
//! tokenized: a `#` at the start of a (logical) line produces
//! [`TokenKind::Hash`], and the newline that ends the directive produces
//! [`TokenKind::DirectiveEnd`] so the preprocessor can delimit it. Backslash
//! line continuations inside directives are honored.

use crate::error::FrontendError;
use crate::token::{Punct, Token, TokenKind};

/// Lexes `src` into a token stream.
///
/// # Errors
///
/// Returns [`FrontendError`] on unterminated comments/strings or characters
/// outside the dialect.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset of the first character of the current line.
    line_start: usize,
    /// Position of the token currently being lexed, captured at dispatch.
    tok_line: u32,
    tok_col: u32,
    /// True while we are inside a `#` directive (until the next raw newline).
    in_directive: bool,
    /// True when no token has been produced yet on the current line.
    at_line_start: bool,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            tok_line: 1,
            tok_col: 1,
            in_directive: false,
            at_line_start: true,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.push(Token::at(kind, self.tok_line, self.tok_col));
        self.at_line_start = false;
    }

    fn run(mut self) -> Result<Vec<Token>, FrontendError> {
        while let Some(b) = self.peek() {
            // Token positions are captured before any bytes are consumed so
            // multi-character tokens report their starting column.
            self.tok_line = self.line;
            self.tok_col = (self.pos - self.line_start + 1) as u32;
            match b {
                b'\n' => {
                    self.bump();
                    if self.in_directive {
                        self.out
                            .push(Token::new(TokenKind::DirectiveEnd, self.line - 1));
                        self.in_directive = false;
                    }
                    self.at_line_start = true;
                }
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'\\' if self.in_directive && self.peek2() == Some(b'\n') => {
                    // Line continuation inside a directive.
                    self.bump();
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(FrontendError::at_line(
                                    "unterminated block comment",
                                    start_line,
                                ))
                            }
                        }
                    }
                }
                b'#' if self.at_line_start => {
                    self.bump();
                    self.in_directive = true;
                    self.push(TokenKind::Hash);
                }
                b'"' => self.lex_string()?,
                b'0'..=b'9' => self.lex_number()?,
                b'.' if matches!(self.peek2(), Some(b'0'..=b'9')) => self.lex_number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
                _ => self.lex_punct()?,
            }
        }
        if self.in_directive {
            self.out
                .push(Token::new(TokenKind::DirectiveEnd, self.line));
        }
        Ok(self.out)
    }

    fn lex_string(&mut self) -> Result<(), FrontendError> {
        let start_line = self.line;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc = self.bump().ok_or_else(|| {
                        FrontendError::at_line("unterminated string literal", start_line)
                    })?;
                    s.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => other as char,
                    });
                }
                Some(c) => s.push(c as char),
                None => {
                    return Err(FrontendError::at_line(
                        "unterminated string literal",
                        start_line,
                    ))
                }
            }
        }
        self.push(TokenKind::StrLit(s));
        Ok(())
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_owned();
        self.push(TokenKind::Ident(text));
    }

    fn lex_number(&mut self) -> Result<(), FrontendError> {
        let start = self.pos;
        let line = self.line;
        let mut is_float = false;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit()) {
                self.bump();
            }
        } else {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
            if self.peek() == Some(b'.') {
                is_float = true;
                self.bump();
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                let save = self.pos;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    is_float = true;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                } else {
                    self.pos = save;
                }
            }
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_owned();

        // Suffixes: f/F (float), u/U, l/L (possibly ll).
        let mut single = false;
        let mut unsigned = false;
        let mut long = false;
        loop {
            match self.peek() {
                Some(b'f') | Some(b'F') if is_float || digits.contains('.') => {
                    single = true;
                    is_float = true;
                    self.bump();
                }
                Some(b'f') | Some(b'F') => {
                    // `1f` is also accepted as a float literal in our dialect.
                    single = true;
                    is_float = true;
                    self.bump();
                }
                Some(b'u') | Some(b'U') => {
                    unsigned = true;
                    self.bump();
                }
                Some(b'l') | Some(b'L') => {
                    long = true;
                    self.bump();
                }
                _ => break,
            }
        }

        if is_float {
            let value: f64 = digits.parse().map_err(|_| {
                FrontendError::at_line(format!("bad float literal `{digits}`"), line)
            })?;
            self.push(TokenKind::FloatLit { value, single });
        } else {
            let value = if let Some(hex) = digits
                .strip_prefix("0x")
                .or_else(|| digits.strip_prefix("0X"))
            {
                u64::from_str_radix(hex, 16).map_err(|_| {
                    FrontendError::at_line(format!("bad hex literal `{digits}`"), line)
                })?
            } else {
                digits.parse().map_err(|_| {
                    FrontendError::at_line(format!("bad integer literal `{digits}`"), line)
                })?
            };
            self.push(TokenKind::IntLit {
                value,
                unsigned,
                long,
            });
        }
        Ok(())
    }

    fn lex_punct(&mut self) -> Result<(), FrontendError> {
        use Punct::*;
        let line = self.line;
        let b = self.bump().expect("caller checked peek");
        let two = self.peek();
        let three = self.peek2();
        let mut take = |n: usize, p: Punct| {
            for _ in 0..n {
                self.bump();
            }
            p
        };
        let p = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'?' => Question,
            b'.' => Dot,
            b'~' => Tilde,
            b'+' => match two {
                Some(b'+') => take(1, PlusPlus),
                Some(b'=') => take(1, PlusEq),
                _ => Plus,
            },
            b'-' => match two {
                Some(b'-') => take(1, MinusMinus),
                Some(b'=') => take(1, MinusEq),
                Some(b'>') => take(1, Arrow),
                _ => Minus,
            },
            b'*' => match two {
                Some(b'=') => take(1, StarEq),
                _ => Star,
            },
            b'/' => match two {
                Some(b'=') => take(1, SlashEq),
                _ => Slash,
            },
            b'%' => match two {
                Some(b'=') => take(1, PercentEq),
                _ => Percent,
            },
            b'&' => match two {
                Some(b'&') => take(1, AmpAmp),
                Some(b'=') => take(1, AmpEq),
                _ => Amp,
            },
            b'|' => match two {
                Some(b'|') => take(1, PipePipe),
                Some(b'=') => take(1, PipeEq),
                _ => Pipe,
            },
            b'^' => match two {
                Some(b'=') => take(1, CaretEq),
                _ => Caret,
            },
            b'!' => match two {
                Some(b'=') => take(1, Ne),
                _ => Bang,
            },
            b'<' => match (two, three) {
                (Some(b'<'), Some(b'=')) => take(2, ShlEq),
                (Some(b'<'), _) => take(1, Shl),
                (Some(b'='), _) => take(1, Le),
                _ => Lt,
            },
            b'>' => match (two, three) {
                (Some(b'>'), Some(b'=')) => take(2, ShrEq),
                (Some(b'>'), _) => take(1, Shr),
                (Some(b'='), _) => take(1, Ge),
                _ => Gt,
            },
            b'=' => match two {
                Some(b'=') => take(1, EqEq),
                _ => Assign,
            },
            other => {
                return Err(FrontendError::at_line(
                    format!("unexpected character `{}`", other as char),
                    line,
                ))
            }
        };
        self.push(TokenKind::Punct(p));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Punct as P;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex failed")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_idents_and_ints() {
        assert_eq!(
            kinds("foo 42"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::IntLit {
                    value: 42,
                    unsigned: false,
                    long: false
                }
            ]
        );
    }

    #[test]
    fn lexes_hex_and_suffixed_ints() {
        assert_eq!(
            kinds("0xFFu 7ull"),
            vec![
                TokenKind::IntLit {
                    value: 255,
                    unsigned: true,
                    long: false
                },
                TokenKind::IntLit {
                    value: 7,
                    unsigned: true,
                    long: true
                },
            ]
        );
    }

    #[test]
    fn lexes_floats() {
        assert_eq!(
            kinds("1.5f 2.0 1e3"),
            vec![
                TokenKind::FloatLit {
                    value: 1.5,
                    single: true
                },
                TokenKind::FloatLit {
                    value: 2.0,
                    single: false
                },
                TokenKind::FloatLit {
                    value: 1000.0,
                    single: false
                },
            ]
        );
    }

    #[test]
    fn lexes_three_char_operators() {
        assert_eq!(
            kinds("a <<= b >>= c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(P::ShlEq),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(P::ShrEq),
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn shift_vs_comparison() {
        assert_eq!(
            kinds("1 << 2 <= 3"),
            vec![
                TokenKind::IntLit {
                    value: 1,
                    unsigned: false,
                    long: false
                },
                TokenKind::Punct(P::Shl),
                TokenKind::IntLit {
                    value: 2,
                    unsigned: false,
                    long: false
                },
                TokenKind::Punct(P::Le),
                TokenKind::IntLit {
                    value: 3,
                    unsigned: false,
                    long: false
                },
            ]
        );
    }

    #[test]
    fn strips_comments() {
        assert_eq!(
            kinds("a // comment\n/* multi\nline */ b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn directive_markers() {
        let ks = kinds("#define N 4\nx");
        assert_eq!(ks[0], TokenKind::Hash);
        assert!(ks.contains(&TokenKind::DirectiveEnd));
        assert_eq!(*ks.last().expect("nonempty"), TokenKind::Ident("x".into()));
    }

    #[test]
    fn directive_line_continuation() {
        let ks = kinds("#define N 1 + \\\n 2\ny");
        // The continuation keeps both `1 + 2` inside the directive.
        let end = ks
            .iter()
            .position(|k| *k == TokenKind::DirectiveEnd)
            .expect("end");
        assert_eq!(end, 6); // # define N 1 + 2
    }

    #[test]
    fn hash_mid_line_is_error() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn string_literal_with_escapes() {
        assert_eq!(
            kinds(r#""bar.sync 1, 896;""#),
            vec![TokenKind::StrLit("bar.sync 1, 896;".into())]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").expect("lex");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn tracks_columns() {
        let toks = lex("ab <<= x\n  y").expect("lex");
        let pos: Vec<(u32, u32)> = toks.iter().map(|t| (t.line, t.col)).collect();
        assert_eq!(pos, vec![(1, 1), (1, 4), (1, 8), (2, 3)]);
    }

    #[test]
    fn columns_reset_after_comments() {
        let toks = lex("/* multi\nline */ a").expect("lex");
        assert_eq!((toks[0].line, toks[0].col), (2, 9));
    }
}
