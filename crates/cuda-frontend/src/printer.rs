//! Pretty-printer emitting CUDA source from the AST.
//!
//! Output is valid input for [`crate::parser`], enabling round-trip tests,
//! and is formatted the way `HFuse` presents fused kernels in the paper:
//! partial barriers print as inline PTX `asm("bar.sync id, count;")`.

use std::fmt::Write as _;

use crate::ast::{ArrayLen, Block, Expr, Function, Stmt, TranslationUnit, Ty, UnOp, VarDecl};

/// Pretty-prints a whole translation unit.
pub fn print_translation_unit(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for (i, f) in tu.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f));
    }
    out
}

/// Pretty-prints a single function definition.
pub fn print_function(f: &Function) -> String {
    let mut p = Printer::new();
    p.function(f);
    p.out
}

/// Pretty-prints a statement at top level (no trailing newline trimming).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out
}

/// Pretty-prints an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr, 0);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Self {
            out: String::new(),
            indent: 0,
        }
    }

    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn function(&mut self, f: &Function) {
        if f.is_kernel {
            self.out.push_str("__global__ ");
        } else {
            self.out.push_str("__device__ ");
        }
        let _ = write!(self.out, "{} {}(", f.ret, f.name);
        for (i, param) in f.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{} {}", param.ty, param.name);
        }
        self.out.push_str(") ");
        self.block(&f.body);
        self.out.push('\n');
    }

    fn block(&mut self, b: &Block) {
        self.out.push_str("{\n");
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Label(name) => {
                // Labels print at reduced indent, followed by an empty
                // statement so a label can legally end a block.
                let _ = writeln!(self.out, "{name}: ;");
                return;
            }
            _ => self.line_start(),
        }
        match s {
            Stmt::Decl(d) => {
                self.decl(d);
                self.out.push_str(";\n");
            }
            Stmt::Expr(e) => {
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            Stmt::If(cond, then_b, else_b) => {
                self.out.push_str("if (");
                self.expr(cond, 0);
                self.out.push_str(") ");
                self.block(then_b);
                if let Some(else_b) = else_b {
                    self.out.push_str(" else ");
                    self.block(else_b);
                }
                self.out.push('\n');
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.out.push_str("for (");
                match init.as_deref() {
                    Some(Stmt::Decl(d)) => self.decl(d),
                    Some(Stmt::Expr(e)) => self.expr(e, 0),
                    Some(other) => panic!("invalid for-init statement {other:?}"),
                    None => {}
                }
                self.out.push_str("; ");
                if let Some(c) = cond {
                    self.expr(c, 0);
                }
                self.out.push_str("; ");
                if let Some(st) = step {
                    self.expr(st, 0);
                }
                self.out.push_str(") ");
                self.block(body);
                self.out.push('\n');
            }
            Stmt::While(cond, body) => {
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(") ");
                self.block(body);
                self.out.push('\n');
            }
            Stmt::DoWhile(body, cond) => {
                self.out.push_str("do ");
                self.block(body);
                self.out.push_str(" while (");
                self.expr(cond, 0);
                self.out.push_str(");\n");
            }
            Stmt::Switch { scrutinee, cases } => {
                self.out.push_str("switch (");
                self.expr(scrutinee, 0);
                self.out.push_str(") {\n");
                self.indent += 1;
                for case in cases {
                    self.line_start();
                    match case.value {
                        Some(v) => {
                            let _ = writeln!(self.out, "case {v}:");
                        }
                        None => self.out.push_str("default:\n"),
                    }
                    self.indent += 1;
                    for s in &case.body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line_start();
                self.out.push_str("}\n");
            }
            Stmt::Return(e) => {
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
                self.out.push_str(";\n");
            }
            Stmt::Break => self.out.push_str("break;\n"),
            Stmt::Continue => self.out.push_str("continue;\n"),
            Stmt::Block(b) => {
                self.block(b);
                self.out.push('\n');
            }
            Stmt::SyncThreads => self.out.push_str("__syncthreads();\n"),
            Stmt::BarSync { id, count } => {
                let _ = writeln!(self.out, "asm(\"bar.sync {id}, {count};\");");
            }
            Stmt::Goto(label) => {
                let _ = writeln!(self.out, "goto {label};");
            }
            Stmt::Label(_) => unreachable!("handled above"),
        }
    }

    fn decl(&mut self, d: &VarDecl) {
        if d.quals.extern_shared {
            self.out.push_str("extern ");
        }
        if d.quals.shared {
            self.out.push_str("__shared__ ");
        }
        let _ = write!(self.out, "{} {}", d.ty, d.name);
        match &d.array_len {
            Some(ArrayLen::Fixed(len)) => {
                self.out.push('[');
                self.expr(len, 0);
                self.out.push(']');
            }
            Some(ArrayLen::Unsized) => self.out.push_str("[]"),
            None => {}
        }
        if let Some(init) = &d.init {
            self.out.push_str(" = ");
            self.expr(init, 0);
        }
    }

    /// Prints `e`; parenthesizes when the expression's precedence is below
    /// `min_prec` (the binding strength required by the context).
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = expr_prec(e);
        let parens = prec < min_prec;
        if parens {
            self.out.push('(');
        }
        match e {
            Expr::IntLit(v, ty) => {
                let _ = write!(self.out, "{v}");
                match ty {
                    Ty::U32 => self.out.push('u'),
                    Ty::I64 => self.out.push_str("ll"),
                    Ty::U64 => self.out.push_str("ull"),
                    _ => {}
                }
            }
            Expr::FloatLit(v, ty) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
                if *ty == Ty::F32 {
                    self.out.push('f');
                }
            }
            Expr::Ident(name) => self.out.push_str(name),
            Expr::Builtin(b) => {
                let _ = write!(self.out, "{b}");
            }
            Expr::Unary(op, inner) => {
                self.out.push(match op {
                    UnOp::Neg => '-',
                    UnOp::Not => '!',
                    UnOp::BitNot => '~',
                });
                // `-(-x)` must not print as `--x` (decrement).
                let clash = *op == UnOp::Neg
                    && matches!(
                        inner.as_ref(),
                        Expr::Unary(UnOp::Neg, _)
                            | Expr::IncDec {
                                inc: false,
                                pre: true,
                                ..
                            }
                    );
                self.expr(inner, if clash { POSTFIX_PREC + 1 } else { UNARY_PREC });
            }
            Expr::Binary(op, lhs, rhs) => {
                let op_prec = binop_prec(*op);
                self.expr(lhs, op_prec);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr(rhs, op_prec + 1);
            }
            Expr::Assign(op, lhs, rhs) => {
                self.expr(lhs, UNARY_PREC);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr(rhs, ASSIGN_PREC);
            }
            Expr::IncDec { inc, pre, target } => {
                let sym = if *inc { "++" } else { "--" };
                if *pre {
                    self.out.push_str(sym);
                    self.expr(target, UNARY_PREC);
                } else {
                    self.expr(target, POSTFIX_PREC);
                    self.out.push_str(sym);
                }
            }
            Expr::Ternary(c, t, f) => {
                self.expr(c, TERNARY_PREC + 1);
                self.out.push_str(" ? ");
                self.expr(t, 0);
                self.out.push_str(" : ");
                self.expr(f, TERNARY_PREC);
            }
            Expr::Call(name, args) => {
                self.out.push_str(name);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, ASSIGN_PREC);
                }
                self.out.push(')');
            }
            Expr::Index(base, idx) => {
                self.expr(base, POSTFIX_PREC);
                self.out.push('[');
                self.expr(idx, 0);
                self.out.push(']');
            }
            Expr::Cast(ty, inner) => {
                let _ = write!(self.out, "({ty})");
                self.expr(inner, UNARY_PREC);
            }
            Expr::AddrOf(inner) => {
                self.out.push('&');
                self.expr(inner, UNARY_PREC);
            }
            Expr::Deref(inner) => {
                self.out.push('*');
                self.expr(inner, UNARY_PREC);
            }
        }
        if parens {
            self.out.push(')');
        }
    }
}

const TERNARY_PREC: u8 = 10;
const ASSIGN_PREC: u8 = 5;
const UNARY_PREC: u8 = 110;
const POSTFIX_PREC: u8 = 120;

fn binop_prec(op: crate::ast::BinOp) -> u8 {
    use crate::ast::BinOp::*;
    match op {
        Mul | Div | Rem => 100,
        Add | Sub => 90,
        Shl | Shr => 80,
        Lt | Le | Gt | Ge => 70,
        Eq | Ne => 60,
        BitAnd => 50,
        BitXor => 45,
        BitOr => 40,
        LogAnd => 30,
        LogOr => 20,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary(op, ..) => binop_prec(*op),
        Expr::Assign(..) => ASSIGN_PREC,
        Expr::Ternary(..) => TERNARY_PREC,
        Expr::Unary(..) | Expr::Cast(..) | Expr::AddrOf(_) | Expr::Deref(_) => UNARY_PREC,
        Expr::IncDec { pre, .. } => {
            if *pre {
                UNARY_PREC
            } else {
                POSTFIX_PREC
            }
        }
        _ => u8::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::{parse_kernel, parse_translation_unit};

    fn round_trip_expr(src: &str) -> String {
        print_expr(&parse_expr(src).expect("parse"))
    }

    #[test]
    fn prints_precedence_parens_only_when_needed() {
        assert_eq!(round_trip_expr("1 + 2 * 3"), "1 + 2 * 3");
        assert_eq!(round_trip_expr("(1 + 2) * 3"), "(1 + 2) * 3");
        assert_eq!(round_trip_expr("1 - (2 - 3)"), "1 - (2 - 3)");
        assert_eq!(round_trip_expr("1 - 2 - 3"), "1 - 2 - 3");
    }

    #[test]
    fn prints_shift_in_additive_context() {
        assert_eq!(round_trip_expr("(1 << i) + 2"), "(1 << i) + 2");
        assert_eq!(round_trip_expr("1 << i + 2"), "1 << i + 2");
    }

    #[test]
    fn prints_literal_suffixes() {
        assert_eq!(round_trip_expr("1u"), "1u");
        assert_eq!(round_trip_expr("2ull"), "2ull");
        assert_eq!(round_trip_expr("1.5f"), "1.5f");
        assert_eq!(round_trip_expr("2.0"), "2.0");
    }

    #[test]
    fn prints_casts_and_calls() {
        assert_eq!(round_trip_expr("(float)x"), "(float)x");
        assert_eq!(round_trip_expr("(unsigned int*)p"), "(unsigned int*)p");
        assert_eq!(round_trip_expr("f(a, b + 1)"), "f(a, b + 1)");
    }

    #[test]
    fn parse_print_parse_is_identity_on_kernel() {
        let src = "__global__ void k(float* a, int n) {\
                     __shared__ float s[64];\
                     int i = blockIdx.x * blockDim.x + threadIdx.x;\
                     for (int j = 0; j < n; j++) { s[threadIdx.x] += a[j]; }\
                     __syncthreads();\
                     asm(\"bar.sync 1, 128;\");\
                     if (i < n) { a[i] = s[threadIdx.x]; } else { a[i] = 0.0f; }\
                   }";
        let k1 = parse_kernel(src).expect("first parse");
        let printed = print_function(&k1);
        let k2 = parse_kernel(&printed).expect("reparse printed output");
        assert_eq!(k1, k2, "printed form must reparse to the same AST");
    }

    #[test]
    fn prints_goto_form() {
        let src = "__global__ void k(int n) { if (n < 0) goto end; n = 0; end: ; }";
        let k = parse_kernel(src).expect("parse");
        let printed = print_function(&k);
        assert!(printed.contains("goto end;"));
        assert!(printed.contains("end: ;"));
        let k2 = parse_kernel(&printed).expect("reparse");
        assert_eq!(k, k2);
    }

    #[test]
    fn do_while_round_trips() {
        let src = "__global__ void k(int n) { do { n = n - 1; } while (n > 0); }";
        let k1 = parse_kernel(src).expect("parse");
        let printed = print_function(&k1);
        assert!(printed.contains("do {"), "{printed}");
        assert!(printed.contains("} while (n > 0);"), "{printed}");
        assert_eq!(parse_kernel(&printed).expect("reparse"), k1);
    }

    #[test]
    fn switch_round_trips() {
        let src = "__global__ void k(int n) {\
                     switch (n & 3) { case 0: n = 1; break; case 2: n = 2; default: n = 3; }\
                   }";
        let k1 = parse_kernel(src).expect("parse");
        let printed = print_function(&k1);
        assert!(printed.contains("switch (n & 3) {"), "{printed}");
        assert!(printed.contains("case 2:"), "{printed}");
        assert!(printed.contains("default:"), "{printed}");
        assert_eq!(parse_kernel(&printed).expect("reparse"), k1);
    }

    #[test]
    fn prints_translation_unit() {
        let src =
            "__device__ int sq(int x) { return x * x; }\n__global__ void k(int n) { n = sq(n); }\n";
        let tu = parse_translation_unit(src).expect("parse");
        let printed = print_translation_unit(&tu);
        let tu2 = parse_translation_unit(&printed).expect("reparse");
        assert_eq!(tu, tu2);
    }

    #[test]
    fn prints_ternary_nested() {
        assert_eq!(round_trip_expr("a ? b : c ? d : e"), "a ? b : c ? d : e");
        assert_eq!(
            round_trip_expr("(a ? b : c) ? d : e"),
            "(a ? b : c) ? d : e"
        );
    }

    #[test]
    fn negation_of_negation_does_not_print_decrement() {
        let printed = round_trip_expr("-(-x)");
        assert_eq!(printed, "-(-x)");
        // And the printed form parses back to the same AST.
        let reparsed = parse_expr(&printed).expect("reparse");
        assert_eq!(reparsed, parse_expr("-(-x)").expect("parse"));
    }
}
