//! Abstract syntax tree for the CUDA-C dialect.
//!
//! The AST is deliberately close to the source: HFuse is a source-to-source
//! transformation, so statements and expressions mirror what the programmer
//! wrote. Kernels are later lowered to a flat SIMT IR by the `thread-ir`
//! crate for simulation.

use std::fmt;

/// Scalar and pointer types of the dialect.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `void` (function return type only).
    Void,
    /// `bool`.
    Bool,
    /// `int` — 32-bit signed.
    I32,
    /// `unsigned int` — 32-bit unsigned.
    U32,
    /// `long long` — 64-bit signed.
    I64,
    /// `unsigned long long` — 64-bit unsigned.
    U64,
    /// `float` — 32-bit IEEE.
    F32,
    /// `double` — 64-bit IEEE.
    F64,
    /// Pointer to another type.
    Ptr(Box<Ty>),
}

impl Ty {
    /// Size of a value of this type in bytes.
    ///
    /// # Panics
    ///
    /// Panics for [`Ty::Void`], which has no size.
    pub fn size_bytes(&self) -> u32 {
        match self {
            Ty::Void => panic!("void has no size"),
            Ty::Bool => 1,
            Ty::I32 | Ty::U32 | Ty::F32 => 4,
            Ty::I64 | Ty::U64 | Ty::F64 | Ty::Ptr(_) => 8,
        }
    }

    /// True for the integer types (including `bool`).
    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::Bool | Ty::I32 | Ty::U32 | Ty::I64 | Ty::U64)
    }

    /// True for `float` / `double`.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// For a pointer type, the pointee type.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// Wraps this type in a pointer.
    pub fn ptr_to(self) -> Ty {
        Ty::Ptr(Box::new(self))
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => f.write_str("void"),
            Ty::Bool => f.write_str("bool"),
            Ty::I32 => f.write_str("int"),
            Ty::U32 => f.write_str("unsigned int"),
            Ty::I64 => f.write_str("long long"),
            Ty::U64 => f.write_str("unsigned long long"),
            Ty::F32 => f.write_str("float"),
            Ty::F64 => f.write_str("double"),
            Ty::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// One axis of a CUDA `dim3` builtin variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `.x`
    X,
    /// `.y`
    Y,
    /// `.z`
    Z,
}

impl Axis {
    /// All three axes in `x`, `y`, `z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Lower-case axis letter.
    pub fn letter(self) -> char {
        match self {
            Axis::X => 'x',
            Axis::Y => 'y',
            Axis::Z => 'z',
        }
    }
}

/// CUDA builtin special variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinVar {
    /// `threadIdx.{x,y,z}`
    ThreadIdx(Axis),
    /// `blockIdx.{x,y,z}`
    BlockIdx(Axis),
    /// `blockDim.{x,y,z}`
    BlockDim(Axis),
    /// `gridDim.{x,y,z}`
    GridDim(Axis),
}

impl fmt::Display for BuiltinVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (base, axis) = match self {
            BuiltinVar::ThreadIdx(a) => ("threadIdx", a),
            BuiltinVar::BlockIdx(a) => ("blockIdx", a),
            BuiltinVar::BlockDim(a) => ("blockDim", a),
            BuiltinVar::GridDim(a) => ("gridDim", a),
        };
        write!(f, "{base}.{}", axis.letter())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
}

/// Binary operators (excluding assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the C operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// True for comparison operators (result type `int` 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for the short-circuiting logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }

    /// Source spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// Plain `=`.
    Assign,
    /// Compound assignment `op=`; the payload is the underlying operator.
    Compound(BinOp),
}

impl AssignOp {
    /// Source spelling of the operator.
    pub fn symbol(self) -> String {
        match self {
            AssignOp::Assign => "=".to_owned(),
            AssignOp::Compound(op) => format!("{}=", op.symbol()),
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal; `ty` is `I32`, `U32`, `I64`, or `U64` based on the
    /// suffix and magnitude.
    IntLit(i64, Ty),
    /// Floating literal; `ty` is `F32` or `F64`.
    FloatLit(f64, Ty),
    /// Named variable reference.
    Ident(String),
    /// CUDA builtin variable (`threadIdx.x`, ...).
    Builtin(BuiltinVar),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment (an expression, as in C).
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// Pre/post increment/decrement.
    IncDec {
        /// `true` for `++`, `false` for `--`.
        inc: bool,
        /// `true` for the prefix form.
        pre: bool,
        /// The lvalue operand.
        target: Box<Expr>,
    },
    /// Conditional `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function or intrinsic call.
    Call(String, Vec<Expr>),
    /// Array/pointer subscript `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// C-style or `reinterpret_cast` cast.
    Cast(Ty, Box<Expr>),
    /// `&e`.
    AddrOf(Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a signed `int` literal.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v, Ty::I32)
    }

    /// Convenience constructor for an identifier expression.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Convenience constructor for a binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// True if the expression is a valid assignment target in the dialect.
    pub fn is_lvalue(&self) -> bool {
        matches!(self, Expr::Ident(_) | Expr::Index(..) | Expr::Deref(_))
    }
}

/// Storage qualifiers on a local declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeclQuals {
    /// `__shared__`
    pub shared: bool,
    /// `extern __shared__` (dynamically sized shared memory)
    pub extern_shared: bool,
}

/// A single-variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Element type (for arrays, the element type).
    pub ty: Ty,
    /// Storage qualifiers.
    pub quals: DeclQuals,
    /// Array length expression, if declared as an array. Must be a constant
    /// expression. `extern __shared__ T x[];` has `Some(None)` semantics —
    /// represented as `array_len: Some(None)` via [`ArrayLen`].
    pub array_len: Option<ArrayLen>,
    /// Optional initializer.
    pub init: Option<Expr>,
}

/// The declared length of an array variable.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayLen {
    /// Fixed length given by a constant expression.
    Fixed(Expr),
    /// `[]` — unsized `extern __shared__` array.
    Unsized,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local variable declaration.
    Decl(VarDecl),
    /// Expression statement.
    Expr(Expr),
    /// `if` with optional `else`.
    If(Expr, Block, Option<Block>),
    /// `for (init; cond; step) body`. The init is either a declaration or an
    /// expression statement.
    For {
        /// Loop initializer.
        init: Option<Box<Stmt>>,
        /// Loop condition (absent means `true`).
        cond: Option<Expr>,
        /// Loop step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) body`.
    While(Expr, Block),
    /// `do body while (cond);` — body runs at least once.
    DoWhile(Block, Expr),
    /// `switch (scrutinee) { case k: ... default: ... }` with C fallthrough
    /// semantics. Case labels must be integer constant expressions.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// Cases in source order: label (`None` = `default`) and the
        /// statements up to the next label.
        cases: Vec<SwitchCase>,
    },
    /// `return;` or `return expr;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested block.
    Block(Block),
    /// `__syncthreads();` — full block barrier.
    SyncThreads,
    /// Inline PTX partial barrier: `asm("bar.sync ID, COUNT;");`.
    BarSync {
        /// Barrier resource id (0–15).
        id: u32,
        /// Number of participating threads (must be a multiple of the warp
        /// size in real PTX).
        count: u32,
    },
    /// `goto label;` — in the dialect, only warp-uniform forward jumps are
    /// valid (this is all HFuse generates).
    Goto(String),
    /// `label:` — a goto target.
    Label(String),
}

/// One arm of a [`Stmt::Switch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The case value; `None` for `default:`.
    pub value: Option<i64>,
    /// Statements until the next label (C fallthrough applies).
    pub body: Vec<Stmt>,
}

/// A `{ ... }` statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Self { stmts }
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<I: IntoIterator<Item = Stmt>>(iter: I) -> Self {
        Block {
            stmts: iter.into_iter().collect(),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
}

/// A function definition (`__global__` kernel or `__device__` helper).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Ty,
    /// `true` for `__global__` kernels, `false` for `__device__` functions.
    pub is_kernel: bool,
    /// Function body.
    pub body: Block,
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// All function definitions in source order.
    pub functions: Vec<Function>,
}

impl TranslationUnit {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Constant-folds an integer constant expression (array sizes, barrier
/// counts). Supports literals, the arithmetic/bit operators, and unary minus.
///
/// Returns `None` for anything non-constant.
pub fn const_eval_int(expr: &Expr) -> Option<i64> {
    match expr {
        Expr::IntLit(v, _) => Some(*v),
        Expr::Unary(UnOp::Neg, e) => const_eval_int(e).map(|v| v.wrapping_neg()),
        Expr::Unary(UnOp::BitNot, e) => const_eval_int(e).map(|v| !v),
        Expr::Unary(UnOp::Not, e) => const_eval_int(e).map(|v| i64::from(v == 0)),
        Expr::Binary(op, a, b) => {
            let a = const_eval_int(a)?;
            let b = const_eval_int(b)?;
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::Shl => a.wrapping_shl(b as u32),
                BinOp::Shr => a.wrapping_shr(b as u32),
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::Eq => i64::from(a == b),
                BinOp::Ne => i64::from(a != b),
                BinOp::LogAnd => i64::from(a != 0 && b != 0),
                BinOp::LogOr => i64::from(a != 0 || b != 0),
            })
        }
        Expr::Ternary(c, t, e) => {
            if const_eval_int(c)? != 0 {
                const_eval_int(t)
            } else {
                const_eval_int(e)
            }
        }
        Expr::Cast(ty, e) if ty.is_integer() => const_eval_int(e),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::F64.size_bytes(), 8);
        assert_eq!(Ty::F32.ptr_to().size_bytes(), 8);
    }

    #[test]
    fn ty_display() {
        assert_eq!(Ty::U64.to_string(), "unsigned long long");
        assert_eq!(Ty::F32.ptr_to().to_string(), "float*");
        assert_eq!(Ty::F32.ptr_to().ptr_to().to_string(), "float**");
    }

    #[test]
    fn builtin_display() {
        assert_eq!(BuiltinVar::ThreadIdx(Axis::X).to_string(), "threadIdx.x");
        assert_eq!(BuiltinVar::GridDim(Axis::Z).to_string(), "gridDim.z");
    }

    #[test]
    fn const_eval_shared_array_size() {
        // 2 * 2 * WARP_SIZE + WARP_SIZE with WARP_SIZE already expanded to 32.
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(2)),
                Expr::int(32),
            ),
            Expr::int(32),
        );
        assert_eq!(const_eval_int(&e), Some(160));
    }

    #[test]
    fn const_eval_rejects_non_constant() {
        assert_eq!(const_eval_int(&Expr::ident("n")), None);
        assert_eq!(
            const_eval_int(&Expr::bin(BinOp::Div, Expr::int(1), Expr::int(0))),
            None
        );
    }

    #[test]
    fn const_eval_ternary_and_shift() {
        let e = Expr::Ternary(
            Box::new(Expr::int(1)),
            Box::new(Expr::bin(BinOp::Shl, Expr::int(1), Expr::int(4))),
            Box::new(Expr::int(0)),
        );
        assert_eq!(const_eval_int(&e), Some(16));
    }

    #[test]
    fn lvalue_classification() {
        assert!(Expr::ident("x").is_lvalue());
        assert!(Expr::Index(Box::new(Expr::ident("a")), Box::new(Expr::int(0))).is_lvalue());
        assert!(!Expr::int(3).is_lvalue());
    }
}
