//! Token-level preprocessing: `#define` macro expansion (object-like and
//! function-like, with recursive body expansion), `#undef`, and conditional
//! compilation via `#ifdef` / `#ifndef` / `#else` / `#endif`.
//! `#include` and other directives are ignored (the benchmark kernels are
//! self-contained). A recursion-depth limit guards against self-referential
//! macros.

use std::collections::HashMap;

use crate::error::FrontendError;
use crate::token::{Punct, Token, TokenKind};

const MAX_EXPANSION_DEPTH: u32 = 64;

#[derive(Debug, Clone)]
struct Macro {
    /// `None` for object-like macros; parameter names otherwise.
    params: Option<Vec<String>>,
    body: Vec<Token>,
}

/// Expands `#define` macros in a token stream, removing all directives.
///
/// # Errors
///
/// Returns [`FrontendError`] on malformed directives, arity mismatches in
/// function-like macro calls, or runaway recursive expansion.
pub fn expand_macros(tokens: Vec<Token>) -> Result<Vec<Token>, FrontendError> {
    let mut macros: HashMap<String, Macro> = HashMap::new();
    let mut out = Vec::with_capacity(tokens.len());
    // Conditional-compilation stack: each frame records whether the current
    // branch is active and whether any branch of this `#if` chain has
    // already been taken.
    let mut conds: Vec<CondFrame> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Hash {
            i = parse_directive(&tokens, i, &mut macros, &mut conds)?;
        } else if conds.iter().all(|c| c.active) {
            let consumed = expand_at(&tokens, i, &macros, &mut out, 0)?;
            i += consumed;
        } else {
            i += 1; // token inside an inactive conditional branch
        }
    }
    if let Some(frame) = conds.last() {
        return Err(FrontendError::at_line(
            "unterminated #ifdef/#ifndef",
            frame.line,
        ));
    }
    Ok(out)
}

#[derive(Debug)]
struct CondFrame {
    active: bool,
    taken: bool,
    line: u32,
}

/// True when any *enclosing* conditional (all frames but the innermost) is
/// inactive — an `#else` inside an inactive region must stay inactive.
fn suppressed_above(conds: &[CondFrame]) -> bool {
    conds[..conds.len().saturating_sub(1)]
        .iter()
        .any(|c| !c.active)
}

/// Parses one directive starting at the `#` token; returns the index just
/// past its `DirectiveEnd`.
fn parse_directive(
    tokens: &[Token],
    hash: usize,
    macros: &mut HashMap<String, Macro>,
    conds: &mut Vec<CondFrame>,
) -> Result<usize, FrontendError> {
    let line = tokens[hash].line;
    let mut i = hash + 1;
    let end = tokens[i..]
        .iter()
        .position(|t| t.kind == TokenKind::DirectiveEnd)
        .map(|p| i + p)
        .ok_or_else(|| FrontendError::at_line("unterminated directive", line))?;
    let name = match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => s.clone(),
        _ => {
            return Err(FrontendError::at_line(
                "expected directive name after `#`",
                line,
            ))
        }
    };
    i += 1;
    let suppressed = !conds.iter().all(|c| c.active);
    let cond_name = |i: usize| -> Result<String, FrontendError> {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) if i < end => Ok(s.clone()),
            _ => Err(FrontendError::at_line("expected macro name", line)),
        }
    };
    match name.as_str() {
        "ifdef" | "ifndef" => {
            let defined = !suppressed && macros.contains_key(&cond_name(i)?);
            let active = !suppressed && (defined == (name == "ifdef"));
            conds.push(CondFrame {
                active,
                taken: active,
                line,
            });
            return Ok(end + 1);
        }
        "else" => {
            if conds.is_empty() {
                return Err(FrontendError::at_line("#else without #ifdef", line));
            }
            let outer_suppressed = suppressed_above(conds);
            let frame = conds.last_mut().expect("checked non-empty");
            frame.active = !frame.taken && !outer_suppressed;
            if frame.active {
                frame.taken = true;
            }
            return Ok(end + 1);
        }
        "endif" => {
            conds
                .pop()
                .ok_or_else(|| FrontendError::at_line("#endif without #ifdef", line))?;
            return Ok(end + 1);
        }
        _ if suppressed => return Ok(end + 1),
        "undef" => {
            macros.remove(&cond_name(i)?);
            return Ok(end + 1);
        }
        _ => {}
    }
    // Everything but `#define` below this point (#include, #pragma, ...) is
    // ignored.
    if name == "define" {
        let mac_name = match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) if i < end => s.clone(),
            _ => return Err(FrontendError::at_line("expected macro name", line)),
        };
        i += 1;
        // Function-like only when `(` immediately follows (we do not track
        // whitespace between tokens, so any `(` right after the name is
        // treated as a parameter list — sufficient for the dialect).
        let params = if i < end && tokens[i].kind == TokenKind::Punct(Punct::LParen) {
            i += 1;
            let mut params = Vec::new();
            if i < end && tokens[i].kind != TokenKind::Punct(Punct::RParen) {
                loop {
                    match tokens.get(i).map(|t| &t.kind) {
                        Some(TokenKind::Ident(p)) if i < end => params.push(p.clone()),
                        _ => {
                            return Err(FrontendError::at_line(
                                "expected macro parameter name",
                                line,
                            ))
                        }
                    }
                    i += 1;
                    match tokens.get(i).map(|t| &t.kind) {
                        Some(TokenKind::Punct(Punct::Comma)) if i < end => i += 1,
                        Some(TokenKind::Punct(Punct::RParen)) if i < end => break,
                        _ => {
                            return Err(FrontendError::at_line(
                                "expected `,` or `)` in macro parameter list",
                                line,
                            ))
                        }
                    }
                }
            }
            i += 1; // consume `)`
            Some(params)
        } else {
            None
        };
        let body = tokens[i..end].to_vec();
        macros.insert(mac_name, Macro { params, body });
    }
    Ok(end + 1)
}

/// Expands whatever starts at `tokens[i]`, appending to `out`. Returns the
/// number of *input* tokens consumed.
fn expand_at(
    tokens: &[Token],
    i: usize,
    macros: &HashMap<String, Macro>,
    out: &mut Vec<Token>,
    depth: u32,
) -> Result<usize, FrontendError> {
    let tok = &tokens[i];
    if depth > MAX_EXPANSION_DEPTH {
        return Err(FrontendError::at_line(
            "macro expansion too deep (recursive macro?)",
            tok.line,
        ));
    }
    let name = match tok.kind.as_ident() {
        Some(n) => n.to_owned(),
        None => {
            out.push(tok.clone());
            return Ok(1);
        }
    };
    let Some(mac) = macros.get(&name) else {
        out.push(tok.clone());
        return Ok(1);
    };
    match &mac.params {
        None => {
            expand_tokens(&mac.body, macros, out, depth + 1)?;
            Ok(1)
        }
        Some(params) => {
            // Needs a call: `NAME ( args )`. Without one, emit verbatim.
            if tokens.get(i + 1).map(|t| &t.kind) != Some(&TokenKind::Punct(Punct::LParen)) {
                out.push(tok.clone());
                return Ok(1);
            }
            let (args, consumed) = collect_args(tokens, i + 1, tok.line)?;
            if args.len() != params.len() {
                return Err(FrontendError::at_line(
                    format!(
                        "macro `{name}` expects {} arguments, got {}",
                        params.len(),
                        args.len()
                    ),
                    tok.line,
                ));
            }
            // Pre-expand arguments, then substitute.
            let mut expanded_args = Vec::with_capacity(args.len());
            for arg in &args {
                let mut buf = Vec::new();
                expand_tokens(arg, macros, &mut buf, depth + 1)?;
                expanded_args.push(buf);
            }
            let mut substituted = Vec::new();
            for t in &mac.body {
                if let Some(param_idx) = t
                    .kind
                    .as_ident()
                    .and_then(|id| params.iter().position(|p| p == id))
                {
                    substituted.extend(expanded_args[param_idx].iter().cloned());
                } else {
                    substituted.push(t.clone());
                }
            }
            expand_tokens(&substituted, macros, out, depth + 1)?;
            Ok(1 + consumed)
        }
    }
}

/// Expands a complete token slice into `out`.
fn expand_tokens(
    tokens: &[Token],
    macros: &HashMap<String, Macro>,
    out: &mut Vec<Token>,
    depth: u32,
) -> Result<(), FrontendError> {
    let mut i = 0;
    while i < tokens.len() {
        i += expand_at(tokens, i, macros, out, depth)?;
    }
    Ok(())
}

/// Collects macro call arguments starting at the `(` token. Returns the
/// argument token slices and the number of tokens consumed (including both
/// parentheses).
fn collect_args(
    tokens: &[Token],
    lparen: usize,
    line: u32,
) -> Result<(Vec<Vec<Token>>, usize), FrontendError> {
    debug_assert_eq!(tokens[lparen].kind, TokenKind::Punct(Punct::LParen));
    let mut args: Vec<Vec<Token>> = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    let mut depth = 1u32;
    let mut i = lparen + 1;
    loop {
        let Some(t) = tokens.get(i) else {
            return Err(FrontendError::at_line("unterminated macro call", line));
        };
        match &t.kind {
            TokenKind::Punct(Punct::LParen) => {
                depth += 1;
                current.push(t.clone());
            }
            TokenKind::Punct(Punct::RParen) => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() || !args.is_empty() {
                        args.push(current);
                    }
                    return Ok((args, i - lparen + 1));
                }
                current.push(t.clone());
            }
            TokenKind::Punct(Punct::Comma) if depth == 1 => {
                args.push(std::mem::take(&mut current));
            }
            _ => current.push(t.clone()),
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn expand(src: &str) -> Vec<String> {
        expand_macros(lex(src).expect("lex"))
            .expect("expand")
            .into_iter()
            .map(|t| t.kind.to_string())
            .collect()
    }

    #[test]
    fn object_macro() {
        assert_eq!(expand("#define N 32\nx = N;"), vec!["x", "=", "32", ";"]);
    }

    #[test]
    fn object_macro_referencing_macro() {
        assert_eq!(
            expand("#define A 1\n#define B A + A\nB"),
            vec!["1", "+", "1"]
        );
    }

    #[test]
    fn function_macro() {
        assert_eq!(expand("#define SQ(x) x * x\nSQ(3)"), vec!["3", "*", "3"]);
    }

    #[test]
    fn function_macro_with_nested_parens_in_arg() {
        assert_eq!(
            expand("#define ID(x) x\nID(f(a, b))"),
            vec!["f", "(", "a", ",", "b", ")"]
        );
    }

    #[test]
    fn function_macro_multiple_params() {
        assert_eq!(
            expand("#define ADD(a, b) a + b\nADD(1, 2 * 3)"),
            vec!["1", "+", "2", "*", "3"]
        );
    }

    #[test]
    fn function_macro_without_call_is_verbatim() {
        assert_eq!(expand("#define F(x) x\nF ;"), vec!["F", ";"]);
    }

    #[test]
    fn recursive_macro_detected() {
        let toks = lex("#define A A\nA").expect("lex");
        assert!(expand_macros(toks).is_err());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let toks = lex("#define F(a, b) a\nF(1)").expect("lex");
        assert!(expand_macros(toks).is_err());
    }

    #[test]
    fn include_is_ignored() {
        assert_eq!(expand("#include \"foo.h\"\nx"), vec!["x"]);
    }

    #[test]
    fn ifdef_selects_defined_branch() {
        assert_eq!(
            expand(
                "#define FAST 1
#ifdef FAST
a
#else
b
#endif
c"
            ),
            vec!["a", "c"]
        );
        assert_eq!(
            expand(
                "#ifdef FAST
a
#else
b
#endif
c"
            ),
            vec!["b", "c"]
        );
    }

    #[test]
    fn ifndef_is_the_complement() {
        assert_eq!(
            expand(
                "#ifndef FAST
a
#endif"
            ),
            vec!["a"]
        );
        assert_eq!(
            expand(
                "#define FAST 1
#ifndef FAST
a
#endif
b"
            ),
            vec!["b"]
        );
    }

    #[test]
    fn nested_conditionals() {
        let src = "#define A 1
                   #ifdef A
#ifdef B
x
#else
y
#endif
#endif
z";
        assert_eq!(expand(src), vec!["y", "z"]);
        // Inner branches of an inactive outer region stay inactive.
        let src = "#ifdef A
#ifndef B
x
#else
y
#endif
#endif
z";
        assert_eq!(expand(src), vec!["z"]);
    }

    #[test]
    fn defines_inside_inactive_branch_are_skipped() {
        assert_eq!(
            expand(
                "#ifdef MISSING
#define N 9
#endif
N"
            ),
            vec!["N"],
            "N must stay an identifier, not expand to 9"
        );
    }

    #[test]
    fn undef_removes_macro() {
        assert_eq!(
            expand(
                "#define N 4
#undef N
N"
            ),
            vec!["N"]
        );
    }

    #[test]
    fn unterminated_ifdef_is_error() {
        let toks = lex("#ifdef A
x")
        .expect("lex");
        assert!(expand_macros(toks).is_err());
    }

    #[test]
    fn stray_else_and_endif_are_errors() {
        assert!(expand_macros(
            lex("#else
")
            .expect("lex")
        )
        .is_err());
        assert!(expand_macros(
            lex("#endif
")
            .expect("lex")
        )
        .is_err());
    }

    #[test]
    fn for_kernel_loop_macro() {
        // The pattern the histogram kernel uses.
        let got = expand(
            "#define FOR_KERNEL_LOOP(i, n) for (int i = blockIdx.x * blockDim.x + threadIdx.x; \\\n i < n; i += gridDim.x * blockDim.x)\nFOR_KERNEL_LOOP(li, total) { }",
        );
        assert_eq!(got[0], "for");
        assert!(got.contains(&"li".to_owned()));
        assert!(got.contains(&"total".to_owned()));
    }
}
