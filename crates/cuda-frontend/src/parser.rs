//! Recursive-descent parser for the CUDA-C dialect.
//!
//! Expressions use precedence climbing with the standard C precedence table.
//! All type names are keywords, so the declaration/expression ambiguity does
//! not arise.

use crate::ast::{
    ArrayLen, AssignOp, Axis, BinOp, Block, BuiltinVar, DeclQuals, Expr, Function, Param, Stmt,
    SwitchCase, TranslationUnit, Ty, UnOp, VarDecl,
};
use crate::diag::{Span, SpanTable};
use crate::error::FrontendError;
use crate::token::{Punct, Token, TokenKind};

/// Parses a macro-expanded token stream into a translation unit.
///
/// # Errors
///
/// Returns [`FrontendError`] on any syntax error.
pub fn parse(tokens: Vec<Token>) -> Result<TranslationUnit, FrontendError> {
    Ok(parse_with_spans(tokens)?.0)
}

/// Like [`parse`], but also returns one [`SpanTable`] per function, holding
/// the start position of every statement in the canonical pre-order defined
/// by [`crate::diag::preorder_stmts`].
///
/// # Errors
///
/// Returns [`FrontendError`] on any syntax error.
pub fn parse_with_spans(
    tokens: Vec<Token>,
) -> Result<(TranslationUnit, Vec<SpanTable>), FrontendError> {
    let mut p = Parser::new(tokens);
    let mut functions = Vec::new();
    let mut tables = Vec::new();
    while !p.at_end() {
        let start = p.spans.len();
        functions.push(p.parse_function()?);
        tables.push(SpanTable::new(p.spans.split_off(start)));
    }
    Ok((TranslationUnit { functions }, tables))
}

/// Parses a single expression from source text (used heavily in tests and by
/// the fusion pass to build guard expressions from snippets).
///
/// # Errors
///
/// Returns [`FrontendError`] if the text is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, FrontendError> {
    let tokens = crate::lexer::lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.error("trailing tokens after expression"));
    }
    Ok(e)
}

/// Parses a brace-delimited block of statements from source text.
///
/// # Errors
///
/// Returns [`FrontendError`] if the text is not exactly one `{ ... }` block.
pub fn parse_block(src: &str) -> Result<Block, FrontendError> {
    let tokens = crate::lexer::lex(src)?;
    let tokens = crate::preprocess::expand_macros(tokens)?;
    let mut p = Parser::new(tokens);
    let b = p.block()?;
    if !p.at_end() {
        return Err(p.error("trailing tokens after block"));
    }
    Ok(b)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Statement start positions, appended in the order statements begin
    /// parsing — which is exactly [`crate::diag::preorder_stmts`] order.
    spans: Vec<Span>,
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "bool", "int", "unsigned", "long", "float", "double", "signed",
];

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self {
            tokens,
            pos: 0,
            spans: Vec::new(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Records the current token's position as the start of the statement
    /// about to be parsed.
    fn record_span(&mut self) {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        self.spans.push(Span { line, col });
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_n(&self, n: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn error(&self, msg: impl Into<String>) -> FrontendError {
        let found = match self.peek() {
            Some(k) => format!(" (found `{k}`)"),
            None => " (found end of input)".to_owned(),
        };
        FrontendError::at_line(format!("{}{found}", msg.into()), self.line())
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&TokenKind::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), FrontendError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`")))
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.peek().and_then(|k| k.as_ident()) == Some(name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontendError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) if !is_keyword(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    /// True if the token at `self.pos + n` starts a type.
    fn is_type_start_at(&self, n: usize) -> bool {
        matches!(self.peek_n(n), Some(TokenKind::Ident(s)) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    /// True if the current `(` begins a C-style cast: `( type-keywords *... )`.
    /// Distinguishes `(float)x` (cast) from `(float(x))` (parenthesized
    /// functional cast).
    fn is_cast_start(&self) -> bool {
        debug_assert_eq!(self.peek(), Some(&TokenKind::Punct(Punct::LParen)));
        if !self.is_type_start_at(1) {
            return false;
        }
        let mut n = 1;
        while matches!(
            self.peek_n(n),
            Some(TokenKind::Ident(s)) if TYPE_KEYWORDS.contains(&s.as_str()) || s == "const"
        ) {
            n += 1;
        }
        while self.peek_n(n) == Some(&TokenKind::Punct(Punct::Star)) {
            n += 1;
        }
        self.peek_n(n) == Some(&TokenKind::Punct(Punct::RParen))
    }

    // ---- types ------------------------------------------------------------

    /// Parses a type: optional `const`, base keywords, then `*`s.
    fn parse_ty(&mut self) -> Result<Ty, FrontendError> {
        self.eat_ident("const");
        let mut words: Vec<String> = Vec::new();
        while let Some(TokenKind::Ident(s)) = self.peek() {
            if TYPE_KEYWORDS.contains(&s.as_str()) {
                words.push(s.clone());
                self.pos += 1;
            } else {
                break;
            }
        }
        if words.is_empty() {
            return Err(self.error("expected type"));
        }
        let base = base_ty_from_words(&words)
            .ok_or_else(|| self.error(format!("unsupported type `{}`", words.join(" "))))?;
        let mut ty = base;
        loop {
            self.eat_ident("const");
            if self.eat_punct(Punct::Star) {
                ty = ty.ptr_to();
            } else {
                break;
            }
        }
        Ok(ty)
    }

    // ---- functions ----------------------------------------------------------

    fn parse_function(&mut self) -> Result<Function, FrontendError> {
        let mut is_kernel = false;
        loop {
            if self.eat_ident("__global__") {
                is_kernel = true;
            } else if self.eat_ident("__device__")
                || self.eat_ident("static")
                || self.eat_ident("__forceinline__")
                || self.eat_ident("inline")
                || self.eat_ident("__launch_bounds__") && {
                    // consume the argument list of __launch_bounds__(...)
                    self.expect_punct(Punct::LParen)?;
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump() {
                            Some(TokenKind::Punct(Punct::LParen)) => depth += 1,
                            Some(TokenKind::Punct(Punct::RParen)) => depth -= 1,
                            Some(_) => {}
                            None => return Err(self.error("unterminated __launch_bounds__")),
                        }
                    }
                    true
                }
            {
                continue;
            } else {
                break;
            }
        }
        let ret = self.parse_ty()?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let ty = self.parse_ty()?;
                let pname = self.expect_ident()?;
                params.push(Param { name: pname, ty });
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            ret,
            is_kernel,
            body,
        })
    }

    // ---- statements ---------------------------------------------------------

    fn block(&mut self) -> Result<Block, FrontendError> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_end() {
                return Err(self.error("unterminated block"));
            }
            self.stmt_into(&mut stmts)?;
        }
        Ok(Block { stmts })
    }

    /// Parses one statement. A declaration with multiple declarators expands
    /// to several `Stmt::Decl`s, hence the out-parameter style.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), FrontendError> {
        // Empty statement.
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        // One span per produced statement; a multi-declarator declaration
        // records its extra declarators inside `parse_decl_into`, and a
        // `for` init statement records its own span in the `for` branch.
        self.record_span();
        // Label: `ident :` (but not `default:` etc. — no switch in dialect).
        if let (Some(TokenKind::Ident(name)), Some(TokenKind::Punct(Punct::Colon))) =
            (self.peek(), self.peek_n(1))
        {
            if !is_keyword(name) {
                let name = name.clone();
                self.pos += 2;
                out.push(Stmt::Label(name));
                return Ok(());
            }
        }
        match self.peek().and_then(|k| k.as_ident()) {
            Some("if") => {
                self.pos += 1;
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_b = self.stmt_as_block()?;
                let else_b = if self.eat_ident("else") {
                    Some(self.stmt_as_block()?)
                } else {
                    None
                };
                out.push(Stmt::If(cond, then_b, else_b));
            }
            Some("for") => {
                self.pos += 1;
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.is_decl_start() {
                    self.record_span();
                    let mut decls = Vec::new();
                    self.parse_decl_into(&mut decls)?;
                    if decls.len() != 1 {
                        return Err(self.error("multiple declarators in for-init not supported"));
                    }
                    Some(Box::new(decls.pop().expect("len checked")))
                } else {
                    self.record_span();
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == Some(&TokenKind::Punct(Punct::Semi)) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek() == Some(&TokenKind::Punct(Punct::RParen)) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.stmt_as_block()?;
                out.push(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                });
            }
            Some("while") => {
                self.pos += 1;
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.stmt_as_block()?;
                out.push(Stmt::While(cond, body));
            }
            Some("do") => {
                self.pos += 1;
                let body = self.stmt_as_block()?;
                if !self.eat_ident("while") {
                    return Err(self.error("expected `while` after do-body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                out.push(Stmt::DoWhile(body, cond));
            }
            Some("return") => {
                self.pos += 1;
                let e = if self.peek() == Some(&TokenKind::Punct(Punct::Semi)) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                out.push(Stmt::Return(e));
            }
            Some("break") => {
                self.pos += 1;
                self.expect_punct(Punct::Semi)?;
                out.push(Stmt::Break);
            }
            Some("continue") => {
                self.pos += 1;
                self.expect_punct(Punct::Semi)?;
                out.push(Stmt::Continue);
            }
            Some("goto") => {
                self.pos += 1;
                let label = self.expect_ident()?;
                self.expect_punct(Punct::Semi)?;
                out.push(Stmt::Goto(label));
            }
            Some("switch") => {
                self.pos += 1;
                out.push(self.parse_switch()?);
            }
            Some("asm") => {
                self.pos += 1;
                out.push(self.parse_asm()?);
            }
            _ if self.peek() == Some(&TokenKind::Punct(Punct::LBrace)) => {
                let b = self.block()?;
                out.push(Stmt::Block(b));
            }
            _ if self.is_decl_start() => {
                self.parse_decl_into(out)?;
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                // Canonicalize `__syncthreads()` calls into a dedicated node.
                if let Expr::Call(name, args) = &e {
                    if name == "__syncthreads" && args.is_empty() {
                        out.push(Stmt::SyncThreads);
                        return Ok(());
                    }
                }
                out.push(Stmt::Expr(e));
            }
        }
        Ok(())
    }

    /// Parses a single statement and wraps it in a block unless it already is
    /// one (used for `if`/`for`/`while` bodies).
    fn stmt_as_block(&mut self) -> Result<Block, FrontendError> {
        if self.peek() == Some(&TokenKind::Punct(Punct::LBrace)) {
            self.block()
        } else {
            let mut stmts = Vec::new();
            self.stmt_into(&mut stmts)?;
            Ok(Block { stmts })
        }
    }

    fn is_decl_start(&self) -> bool {
        match self.peek().and_then(|k| k.as_ident()) {
            Some("__shared__") | Some("extern") | Some("const") => true,
            Some(s) => TYPE_KEYWORDS.contains(&s),
            None => false,
        }
    }

    fn parse_decl_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), FrontendError> {
        let mut quals = DeclQuals::default();
        let mut is_extern = false;
        loop {
            if self.eat_ident("__shared__") {
                quals.shared = true;
            } else if self.eat_ident("extern") {
                is_extern = true;
            } else if self.eat_ident("const") || self.eat_ident("volatile") {
                // qualifiers are accepted and dropped
            } else {
                break;
            }
        }
        if is_extern {
            if !quals.shared {
                // allow `extern __shared__` in either order
                if self.eat_ident("__shared__") {
                    quals.shared = true;
                } else {
                    return Err(self.error("`extern` is only supported as `extern __shared__`"));
                }
            }
            quals.extern_shared = true;
        }
        let base_ty = self.parse_ty()?;
        let mut first = true;
        loop {
            // Each declarator becomes its own `Stmt::Decl`; the caller
            // recorded the span of the first, later ones start after a comma.
            if !first {
                self.record_span();
            }
            first = false;
            // Per-declarator extra pointers: `float *p, v;`
            let mut ty = base_ty.clone();
            while self.eat_punct(Punct::Star) {
                ty = ty.ptr_to();
            }
            let name = self.expect_ident()?;
            let array_len = if self.eat_punct(Punct::LBracket) {
                if self.eat_punct(Punct::RBracket) {
                    Some(ArrayLen::Unsized)
                } else {
                    let len = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    Some(ArrayLen::Fixed(len))
                }
            } else {
                None
            };
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.assign_expr()?)
            } else {
                None
            };
            out.push(Stmt::Decl(VarDecl {
                name,
                ty,
                quals,
                array_len,
                init,
            }));
            if self.eat_punct(Punct::Semi) {
                break;
            }
            self.expect_punct(Punct::Comma)?;
        }
        Ok(())
    }

    /// Parses `switch (expr) { case N: ... default: ... }`. Case labels
    /// must be integer constant expressions; statements belong to the most
    /// recent label (C fallthrough semantics are preserved by lowering).
    fn parse_switch(&mut self) -> Result<Stmt, FrontendError> {
        self.expect_punct(Punct::LParen)?;
        let scrutinee = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_end() {
                return Err(self.error("unterminated switch"));
            }
            if self.eat_ident("case") {
                let value_expr = self.ternary_expr()?;
                let value = crate::ast::const_eval_int(&value_expr)
                    .ok_or_else(|| self.error("case label must be a constant expression"))?;
                self.expect_punct(Punct::Colon)?;
                if cases.iter().any(|c| c.value == Some(value)) {
                    return Err(self.error(format!("duplicate case label {value}")));
                }
                cases.push(SwitchCase {
                    value: Some(value),
                    body: Vec::new(),
                });
            } else if self.eat_ident("default") {
                self.expect_punct(Punct::Colon)?;
                if cases.iter().any(|c| c.value.is_none()) {
                    return Err(self.error("duplicate default label"));
                }
                cases.push(SwitchCase {
                    value: None,
                    body: Vec::new(),
                });
            } else {
                let case = cases
                    .last_mut()
                    .ok_or_else(|| self.error("statement before first case label"))?;
                self.stmt_into(&mut case.body)?;
            }
        }
        Ok(Stmt::Switch { scrutinee, cases })
    }

    /// Parses `asm [volatile] ("...");` — only `bar.sync ID, COUNT;` strings
    /// are meaningful in the dialect.
    fn parse_asm(&mut self) -> Result<Stmt, FrontendError> {
        self.eat_ident("volatile");
        self.expect_punct(Punct::LParen)?;
        let text = match self.bump() {
            Some(TokenKind::StrLit(s)) => s,
            _ => return Err(self.error("expected string literal in asm()")),
        };
        // Ignore any constraint clauses (`:: "r"(x)` style) — not needed for
        // bar.sync, but skip to the closing paren robustly.
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                Some(TokenKind::Punct(Punct::LParen)) => depth += 1,
                Some(TokenKind::Punct(Punct::RParen)) => depth -= 1,
                Some(_) => {}
                None => return Err(self.error("unterminated asm()")),
            }
        }
        self.expect_punct(Punct::Semi)?;
        parse_bar_sync(&text).ok_or_else(|| {
            self.error(format!(
                "unsupported inline asm `{text}` (only `bar.sync id, count;`)"
            ))
        })
    }

    // ---- expressions ----------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            Some(TokenKind::Punct(Punct::Assign)) => Some(AssignOp::Assign),
            Some(TokenKind::Punct(Punct::PlusEq)) => Some(AssignOp::Compound(BinOp::Add)),
            Some(TokenKind::Punct(Punct::MinusEq)) => Some(AssignOp::Compound(BinOp::Sub)),
            Some(TokenKind::Punct(Punct::StarEq)) => Some(AssignOp::Compound(BinOp::Mul)),
            Some(TokenKind::Punct(Punct::SlashEq)) => Some(AssignOp::Compound(BinOp::Div)),
            Some(TokenKind::Punct(Punct::PercentEq)) => Some(AssignOp::Compound(BinOp::Rem)),
            Some(TokenKind::Punct(Punct::AmpEq)) => Some(AssignOp::Compound(BinOp::BitAnd)),
            Some(TokenKind::Punct(Punct::PipeEq)) => Some(AssignOp::Compound(BinOp::BitOr)),
            Some(TokenKind::Punct(Punct::CaretEq)) => Some(AssignOp::Compound(BinOp::BitXor)),
            Some(TokenKind::Punct(Punct::ShlEq)) => Some(AssignOp::Compound(BinOp::Shl)),
            Some(TokenKind::Punct(Punct::ShrEq)) => Some(AssignOp::Compound(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            if !lhs.is_lvalue() {
                return Err(self.error("left-hand side of assignment is not an lvalue"));
            }
            let rhs = self.assign_expr()?;
            Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ternary_expr(&mut self) -> Result<Expr, FrontendError> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then_e = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_e = self.ternary_expr()?;
            Ok(Expr::Ternary(
                Box::new(cond),
                Box::new(then_e),
                Box::new(else_e),
            ))
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        while let Some(TokenKind::Punct(p)) = self.peek() {
            let Some((op, prec)) = binop_of_punct(*p) else {
                break;
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        match self.peek() {
            Some(TokenKind::Punct(Punct::Minus)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            Some(TokenKind::Punct(Punct::Plus)) => {
                self.pos += 1;
                self.unary_expr()
            }
            Some(TokenKind::Punct(Punct::Bang)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            Some(TokenKind::Punct(Punct::Tilde)) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary_expr()?)))
            }
            Some(TokenKind::Punct(Punct::Star)) => {
                self.pos += 1;
                Ok(Expr::Deref(Box::new(self.unary_expr()?)))
            }
            Some(TokenKind::Punct(Punct::Amp)) => {
                self.pos += 1;
                Ok(Expr::AddrOf(Box::new(self.unary_expr()?)))
            }
            Some(TokenKind::Punct(Punct::PlusPlus)) => {
                self.pos += 1;
                let target = self.unary_expr()?;
                Ok(Expr::IncDec {
                    inc: true,
                    pre: true,
                    target: Box::new(target),
                })
            }
            Some(TokenKind::Punct(Punct::MinusMinus)) => {
                self.pos += 1;
                let target = self.unary_expr()?;
                Ok(Expr::IncDec {
                    inc: false,
                    pre: true,
                    target: Box::new(target),
                })
            }
            // C-style cast: `(` type ... `)` unary
            Some(TokenKind::Punct(Punct::LParen)) if self.is_cast_start() => {
                self.pos += 1;
                let ty = self.parse_ty()?;
                self.expect_punct(Punct::RParen)?;
                let operand = self.unary_expr()?;
                Ok(Expr::Cast(ty, Box::new(operand)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Some(TokenKind::Punct(Punct::LBracket)) => {
                    self.pos += 1;
                    let idx = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Some(TokenKind::Punct(Punct::PlusPlus)) => {
                    self.pos += 1;
                    e = Expr::IncDec {
                        inc: true,
                        pre: false,
                        target: Box::new(e),
                    };
                }
                Some(TokenKind::Punct(Punct::MinusMinus)) => {
                    self.pos += 1;
                    e = Expr::IncDec {
                        inc: false,
                        pre: false,
                        target: Box::new(e),
                    };
                }
                Some(TokenKind::Punct(Punct::Dot)) => {
                    return Err(self.error("`.` member access is only valid on builtin variables"));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, FrontendError> {
        match self.peek().cloned() {
            Some(TokenKind::IntLit {
                value,
                unsigned,
                long,
            }) => {
                self.pos += 1;
                let ty = match (unsigned, long) {
                    (false, false) => {
                        if value <= i32::MAX as u64 {
                            Ty::I32
                        } else {
                            Ty::I64
                        }
                    }
                    (true, false) => Ty::U32,
                    (false, true) => Ty::I64,
                    (true, true) => Ty::U64,
                };
                Ok(Expr::IntLit(value as i64, ty))
            }
            Some(TokenKind::FloatLit { value, single }) => {
                self.pos += 1;
                Ok(Expr::FloatLit(
                    value,
                    if single { Ty::F32 } else { Ty::F64 },
                ))
            }
            Some(TokenKind::Punct(Punct::LParen)) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                // Builtin dim3 variables.
                if let Some(builtin) = self.try_builtin(&name)? {
                    return Ok(builtin);
                }
                if name == "reinterpret_cast" || name == "static_cast" {
                    self.pos += 1;
                    self.expect_punct(Punct::Lt)?;
                    let ty = self.parse_ty()?;
                    self.expect_punct(Punct::Gt)?;
                    self.expect_punct(Punct::LParen)?;
                    let e = self.expr()?;
                    self.expect_punct(Punct::RParen)?;
                    return Ok(Expr::Cast(ty, Box::new(e)));
                }
                if name == "true" {
                    self.pos += 1;
                    return Ok(Expr::IntLit(1, Ty::Bool));
                }
                if name == "false" {
                    self.pos += 1;
                    return Ok(Expr::IntLit(0, Ty::Bool));
                }
                // `float(x)` style functional casts.
                if let Some(fn_ty) = functional_cast_ty(&name) {
                    if self.peek_n(1) == Some(&TokenKind::Punct(Punct::LParen)) {
                        self.pos += 2;
                        let e = self.expr()?;
                        self.expect_punct(Punct::RParen)?;
                        return Ok(Expr::Cast(fn_ty, Box::new(e)));
                    }
                }
                if is_keyword(&name) {
                    return Err(self.error(format!("unexpected keyword `{name}`")));
                }
                self.pos += 1;
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }

    /// If the current identifier is a builtin dim3 (`threadIdx` etc.), parses
    /// `name.axis` and returns the builtin expression.
    fn try_builtin(&mut self, name: &str) -> Result<Option<Expr>, FrontendError> {
        let ctor: fn(Axis) -> BuiltinVar = match name {
            "threadIdx" => BuiltinVar::ThreadIdx,
            "blockIdx" => BuiltinVar::BlockIdx,
            "blockDim" => BuiltinVar::BlockDim,
            "gridDim" => BuiltinVar::GridDim,
            _ => return Ok(None),
        };
        self.pos += 1;
        self.expect_punct(Punct::Dot)?;
        let axis_name = self.expect_ident()?;
        let axis = match axis_name.as_str() {
            "x" => Axis::X,
            "y" => Axis::Y,
            "z" => Axis::Z,
            other => return Err(self.error(format!("unknown dim3 axis `.{other}`"))),
        };
        Ok(Some(Expr::Builtin(ctor(axis))))
    }
}

/// Maps a punct to its binary operator and precedence (higher binds tighter).
fn binop_of_punct(p: Punct) -> Option<(BinOp, u8)> {
    Some(match p {
        Punct::Star => (BinOp::Mul, 100),
        Punct::Slash => (BinOp::Div, 100),
        Punct::Percent => (BinOp::Rem, 100),
        Punct::Plus => (BinOp::Add, 90),
        Punct::Minus => (BinOp::Sub, 90),
        Punct::Shl => (BinOp::Shl, 80),
        Punct::Shr => (BinOp::Shr, 80),
        Punct::Lt => (BinOp::Lt, 70),
        Punct::Le => (BinOp::Le, 70),
        Punct::Gt => (BinOp::Gt, 70),
        Punct::Ge => (BinOp::Ge, 70),
        Punct::EqEq => (BinOp::Eq, 60),
        Punct::Ne => (BinOp::Ne, 60),
        Punct::Amp => (BinOp::BitAnd, 50),
        Punct::Caret => (BinOp::BitXor, 45),
        Punct::Pipe => (BinOp::BitOr, 40),
        Punct::AmpAmp => (BinOp::LogAnd, 30),
        Punct::PipePipe => (BinOp::LogOr, 20),
        _ => return None,
    })
}

fn base_ty_from_words(words: &[String]) -> Option<Ty> {
    let joined = words.join(" ");
    Some(match joined.as_str() {
        "void" => Ty::Void,
        "bool" => Ty::Bool,
        "int" | "signed" | "signed int" => Ty::I32,
        "unsigned" | "unsigned int" => Ty::U32,
        "long" | "long int" | "long long" | "long long int" => Ty::I64,
        "unsigned long" | "unsigned long long" | "unsigned long long int" => Ty::U64,
        "float" => Ty::F32,
        "double" => Ty::F64,
        _ => return None,
    })
}

fn functional_cast_ty(name: &str) -> Option<Ty> {
    Some(match name {
        "float" => Ty::F32,
        "double" => Ty::F64,
        "int" => Ty::I32,
        "unsigned" => Ty::U32,
        "bool" => Ty::Bool,
        _ => return None,
    })
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "for"
            | "while"
            | "do"
            | "return"
            | "break"
            | "continue"
            | "goto"
            | "switch"
            | "case"
            | "default"
            | "asm"
            | "volatile"
            | "const"
            | "extern"
            | "static"
            | "true"
            | "false"
            | "reinterpret_cast"
            | "static_cast"
            | "__global__"
            | "__device__"
            | "__shared__"
            | "__forceinline__"
            | "inline"
    ) || TYPE_KEYWORDS.contains(&s)
}

/// Parses a `bar.sync ID, COUNT;` PTX string into a [`Stmt::BarSync`].
fn parse_bar_sync(text: &str) -> Option<Stmt> {
    let t = text.trim().trim_end_matches(';').trim();
    let rest = t.strip_prefix("bar.sync")?.trim();
    let mut parts = rest.split(',');
    let id: u32 = parts.next()?.trim().parse().ok()?;
    let count: u32 = parts.next()?.trim().parse().ok()?;
    if parts.next().is_some() || id > 15 {
        return None;
    }
    Some(Stmt::BarSync { id, count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_translation_unit;

    fn expr(src: &str) -> Expr {
        parse_expr(src).expect("parse_expr")
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(
            expr("1 + 2 * 3"),
            Expr::bin(
                BinOp::Add,
                Expr::int(1),
                Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(3))
            )
        );
    }

    #[test]
    fn shift_precedence_below_add() {
        assert_eq!(
            expr("1 << 2 + 3"),
            Expr::bin(
                BinOp::Shl,
                Expr::int(1),
                Expr::bin(BinOp::Add, Expr::int(2), Expr::int(3))
            )
        );
    }

    #[test]
    fn left_associativity() {
        assert_eq!(
            expr("1 - 2 - 3"),
            Expr::bin(
                BinOp::Sub,
                Expr::bin(BinOp::Sub, Expr::int(1), Expr::int(2)),
                Expr::int(3)
            )
        );
    }

    #[test]
    fn assignment_right_associative() {
        let e = expr("a = b = 1");
        match e {
            Expr::Assign(AssignOp::Assign, lhs, rhs) => {
                assert_eq!(*lhs, Expr::ident("a"));
                assert!(matches!(*rhs, Expr::Assign(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compound_assignment() {
        assert!(matches!(
            expr("x += 2"),
            Expr::Assign(AssignOp::Compound(BinOp::Add), ..)
        ));
        assert!(matches!(
            expr("x <<= 1"),
            Expr::Assign(AssignOp::Compound(BinOp::Shl), ..)
        ));
    }

    #[test]
    fn assignment_to_rvalue_rejected() {
        assert!(parse_expr("1 = 2").is_err());
    }

    #[test]
    fn builtin_variables() {
        assert_eq!(
            expr("threadIdx.x"),
            Expr::Builtin(BuiltinVar::ThreadIdx(Axis::X))
        );
        assert_eq!(
            expr("gridDim.y"),
            Expr::Builtin(BuiltinVar::GridDim(Axis::Y))
        );
        assert!(parse_expr("threadIdx.w").is_err());
    }

    #[test]
    fn cast_expressions() {
        assert_eq!(
            expr("(float)x"),
            Expr::Cast(Ty::F32, Box::new(Expr::ident("x")))
        );
        assert_eq!(
            expr("(float*)p"),
            Expr::Cast(Ty::F32.ptr_to(), Box::new(Expr::ident("p")))
        );
        assert_eq!(
            expr("reinterpret_cast<unsigned int*>(p)"),
            Expr::Cast(Ty::U32.ptr_to(), Box::new(Expr::ident("p")))
        );
        assert_eq!(
            expr("float(0)"),
            Expr::Cast(Ty::F32, Box::new(Expr::int(0)))
        );
    }

    #[test]
    fn ternary_and_comparison() {
        let e = expr("a < b ? a : b");
        assert!(matches!(e, Expr::Ternary(..)));
    }

    #[test]
    fn call_and_index() {
        assert_eq!(
            expr("f(a, 1)[2]"),
            Expr::Index(
                Box::new(Expr::Call("f".into(), vec![Expr::ident("a"), Expr::int(1)])),
                Box::new(Expr::int(2))
            )
        );
    }

    #[test]
    fn inc_dec_forms() {
        assert!(matches!(
            expr("i++"),
            Expr::IncDec {
                inc: true,
                pre: false,
                ..
            }
        ));
        assert!(matches!(
            expr("--i"),
            Expr::IncDec {
                inc: false,
                pre: true,
                ..
            }
        ));
    }

    #[test]
    fn addr_of_index() {
        let e = expr("&smem[bin]");
        assert!(matches!(e, Expr::AddrOf(_)));
    }

    fn parse_k(src: &str) -> Function {
        crate::parse_kernel(src).expect("parse_kernel")
    }

    #[test]
    fn parses_simple_kernel() {
        let f = parse_k(
            "__global__ void add(float* a, float* b, int n) {\
               int i = blockIdx.x * blockDim.x + threadIdx.x;\
               if (i < n) a[i] = a[i] + b[i];\
             }",
        );
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 3);
        assert!(f.is_kernel);
        assert_eq!(f.body.stmts.len(), 2);
    }

    #[test]
    fn parses_shared_decls() {
        let f = parse_k(
            "__global__ void k(int n) {\
               __shared__ int buf[2 * 32];\
               extern __shared__ float dyn[];\
               buf[0] = n; dyn[0] = 0.0f;\
             }",
        );
        match &f.body.stmts[0] {
            Stmt::Decl(d) => {
                assert!(d.quals.shared);
                assert!(!d.quals.extern_shared);
                assert!(matches!(d.array_len, Some(ArrayLen::Fixed(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &f.body.stmts[1] {
            Stmt::Decl(d) => {
                assert!(d.quals.shared && d.quals.extern_shared);
                assert!(matches!(d.array_len, Some(ArrayLen::Unsized)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_declarator() {
        let f = parse_k("__global__ void k(int n) { int a = 1, b, c = a; }");
        assert_eq!(f.body.stmts.len(), 3);
    }

    #[test]
    fn parses_syncthreads_as_dedicated_stmt() {
        let f = parse_k("__global__ void k(int n) { __syncthreads(); }");
        assert_eq!(f.body.stmts[0], Stmt::SyncThreads);
    }

    #[test]
    fn parses_bar_sync_asm() {
        let f = parse_k("__global__ void k(int n) { asm(\"bar.sync 1, 896;\"); }");
        assert_eq!(f.body.stmts[0], Stmt::BarSync { id: 1, count: 896 });
    }

    #[test]
    fn rejects_non_barrier_asm() {
        assert!(
            crate::parse_kernel("__global__ void k(int n) { asm(\"mov.u32 r, 0;\"); }").is_err()
        );
    }

    #[test]
    fn parses_goto_and_label() {
        let f = parse_k("__global__ void k(int n) { if (n < 0) goto end; n = n + 1; end: ; }");
        assert!(f
            .body
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::Label(l) if l == "end")));
    }

    #[test]
    fn parses_for_loop_with_decl_init() {
        let f =
            parse_k("__global__ void k(int n) { for (int i = 0; i < n; i += 1) { n = n - 1; } }");
        match &f.body.stmts[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_do_while() {
        let f = parse_k("__global__ void k(int n) { do { n = n - 1; } while (n > 0); }");
        match &f.body.stmts[0] {
            Stmt::DoWhile(body, cond) => {
                assert_eq!(body.stmts.len(), 1);
                assert!(matches!(cond, Expr::Binary(BinOp::Gt, ..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn do_while_requires_trailing_semicolon() {
        assert!(crate::parse_kernel(
            "__global__ void k(int n) { do { n = n - 1; } while (n > 0) }"
        )
        .is_err());
    }

    #[test]
    fn parses_switch_with_cases_and_default() {
        let f = parse_k(
            "__global__ void k(int n) {\
               switch (n % 3) {\
                 case 0: n = 10; break;\
                 case 1: n = 20;\
                 default: n = 30; break;\
               }\
             }",
        );
        match &f.body.stmts[0] {
            Stmt::Switch { cases, .. } => {
                assert_eq!(cases.len(), 3);
                assert_eq!(cases[0].value, Some(0));
                assert_eq!(cases[1].value, Some(1));
                assert_eq!(cases[2].value, None);
                assert_eq!(cases[0].body.len(), 2); // assignment + break
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn switch_rejects_duplicate_and_nonconstant_labels() {
        assert!(crate::parse_kernel(
            "__global__ void k(int n) { switch (n) { case 1: break; case 1: break; } }"
        )
        .is_err());
        assert!(
            crate::parse_kernel("__global__ void k(int n) { switch (n) { case n: break; } }")
                .is_err()
        );
        assert!(crate::parse_kernel("__global__ void k(int n) { switch (n) { n = 1; } }").is_err());
    }

    #[test]
    fn parses_unbraced_bodies() {
        let f =
            parse_k("__global__ void k(int n) { if (n) n = 0; else n = 1; while (n) n = n - 1; }");
        assert_eq!(f.body.stmts.len(), 2);
    }

    #[test]
    fn parses_device_function() {
        let tu = parse_translation_unit(
            "__device__ int sq(int x) { return x * x; } __global__ void k(int n) { n = sq(n); }",
        )
        .expect("parse");
        assert_eq!(tu.functions.len(), 2);
        assert!(!tu.functions[0].is_kernel);
        assert!(tu.functions[1].is_kernel);
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let f = parse_k("__global__ void k(int n) { if (n) if (n) n = 1; else n = 2; }");
        match &f.body.stmts[0] {
            Stmt::If(_, then_b, None) => match &then_b.stmts[0] {
                Stmt::If(_, _, Some(_)) => {}
                other => panic!("inner if lost its else: {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn logical_operator_precedence() {
        // a || b && c parses as a || (b && c)
        let e = expr("a || b && c");
        assert!(matches!(e, Expr::Binary(BinOp::LogOr, _, _)));
    }

    #[test]
    fn bitand_below_equality() {
        // `tid % 32 == 0 & mask` parses as `((tid % 32) == 0) & mask`
        let e = expr("a == 0 & b");
        assert!(matches!(e, Expr::Binary(BinOp::BitAnd, _, _)));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_translation_unit("__global__ void k(int n) {\n  n = ;\n}").unwrap_err();
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn spans_align_with_preorder_walk() {
        let src = "\
__global__ void k(int n) {
  int a = 1, b = 2;
  if (a < n) {
    b = 3;
  } else b = 4;
  for (int i = 0; i < n; i += 1) {
    a = a + i;
  }
  __syncthreads();
}";
        let (f, table) = crate::parse_kernel_with_spans(src).expect("parse");
        let mut kinds = Vec::new();
        crate::diag::preorder_stmts(&f, &mut |s| {
            kinds.push(std::mem::discriminant(s));
        });
        assert_eq!(kinds.len(), table.len(), "one span per statement");
        let mut positions = Vec::new();
        for i in 0..table.len() {
            let s = table.get(i).expect("span");
            positions.push((s.line, s.col));
        }
        assert_eq!(
            positions,
            vec![
                (2, 3),  // int a = 1
                (2, 14), // b = 2
                (3, 3),  // if
                (4, 5),  // b = 3
                (5, 10), // b = 4
                (6, 3),  // for
                (6, 8),  // int i = 0
                (7, 5),  // a = a + i
                (9, 3),  // __syncthreads()
            ]
        );
    }

    #[test]
    fn spans_cover_switch_and_labels() {
        let src = "\
__global__ void k(int n) {
  switch (n) {
    case 0: n = 1; break;
    default: n = 2;
  }
  end: ;
  goto end;
}";
        let (f, table) = crate::parse_kernel_with_spans(src).expect("parse");
        let mut count = 0;
        crate::diag::preorder_stmts(&f, &mut |_| count += 1);
        assert_eq!(count, table.len());
        // switch, n=1, break, n=2, label, goto
        assert_eq!(table.len(), 6);
        assert_eq!(
            (
                table.get(1).expect("span").line,
                table.get(1).expect("span").col
            ),
            (3, 13)
        );
    }
}
