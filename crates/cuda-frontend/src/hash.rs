//! Content hashing for the incremental compile pipeline.
//!
//! The query-based [`Session`](../../hfuse_core/db/index.html) layer keys
//! every memoized stage by a content hash of its inputs (kernel source
//! text, printed ASTs, device configurations). The workspace is
//! deliberately zero-dependency, so the hash is a hand-rolled 64-bit
//! FNV-1a — fast, deterministic across runs and platforms, and good
//! enough for cache keys that are compared for exact equality (a
//! collision can at worst cause a stale-but-plausible cache entry to be
//! fingerprint-checked and recomputed; fingerprints store the full hash,
//! so a collision must also match the 64-bit value to go unnoticed).
//!
//! Two entry points:
//!
//! * [`fnv1a_64`] — one-shot hash of a byte slice;
//! * [`Fnv64`] — a streaming hasher for mixing several fields into one
//!   fingerprint without intermediate allocation.

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with 64-bit FNV-1a.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// A streaming 64-bit FNV-1a hasher.
///
/// ```
/// use cuda_frontend::hash::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"kernel source");
/// h.write_u64(42);
/// let a = h.finish();
/// let mut g = Fnv64::new();
/// g.write(b"kernel source");
/// g.write_u64(42);
/// assert_eq!(a, g.finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a string.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn field_order_matters() {
        let mut a = Fnv64::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Fnv64::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
