//! Expression type inference and the intrinsic-function table.
//!
//! Lowering to the SIMT IR needs the static type of every expression (for
//! operation selection and pointer-arithmetic scaling). The rules are the
//! usual C rules, simplified to the dialect: integer ranks
//! `bool < int < unsigned < long long < unsigned long long`, floats dominate
//! integers, `double` dominates `float`, comparisons yield `int`.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Ty, UnOp};
use crate::error::FrontendError;

/// Recognized CUDA intrinsic functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `min(a, b)` — integer or float minimum by operand type.
    Min,
    /// `max(a, b)`.
    Max,
    /// `fminf(a, b)` — `float` minimum.
    FminF,
    /// `fmaxf(a, b)` — `float` maximum.
    FmaxF,
    /// `fabsf(x)`.
    FabsF,
    /// `sqrtf(x)`.
    SqrtF,
    /// `rsqrtf(x)` — reciprocal square root.
    RsqrtF,
    /// `expf(x)`.
    ExpF,
    /// `logf(x)`.
    LogF,
    /// `fmaf(a, b, c)` — `float` multiply-add `a * b + c`. On this
    /// simulator it lowers to a multiply followed by an add (two roundings),
    /// so CPU references mirror it as `a * b + c`, not `f32::mul_add`.
    FmaF,
    /// `__shfl_xor_sync(mask, var, laneMask, width)` or
    /// `__shfl_xor(var, laneMask[, width])` — lane-crossing register exchange.
    ShflXor,
    /// `__shfl_down_sync(mask, var, delta, width)` or `__shfl_down(...)`.
    ShflDown,
    /// `atomicAdd(ptr, val)` — returns the old value.
    AtomicAdd,
    /// `atomicMax(ptr, val)` — returns the old value (integer only).
    AtomicMax,
    /// `atomicExch(ptr, val)` — returns the old value.
    AtomicExch,
    /// `__popc(x)` — population count of a 32-bit value.
    Popc,
    /// `__clz(x)` — count of leading zeros of a 32-bit value.
    Clz,
    /// `__brev(x)` — bit reversal of a 32-bit value.
    Brev,
    /// `__ballot_sync(mask, pred)` — bitmask of lanes with a true predicate.
    Ballot,
    /// `__any_sync(mask, pred)` — 1 if any participating lane's predicate
    /// is true.
    Any,
    /// `__all_sync(mask, pred)` — 1 if every participating lane's predicate
    /// is true.
    All,
}

impl Intrinsic {
    /// Looks up an intrinsic by call name and argument count.
    pub fn lookup(name: &str, nargs: usize) -> Option<Intrinsic> {
        Some(match (name, nargs) {
            ("min", 2) => Intrinsic::Min,
            ("max", 2) => Intrinsic::Max,
            ("fminf", 2) | ("fmin", 2) => Intrinsic::FminF,
            ("fmaxf", 2) | ("fmax", 2) => Intrinsic::FmaxF,
            ("fabsf", 1) | ("fabs", 1) => Intrinsic::FabsF,
            ("sqrtf", 1) | ("sqrt", 1) => Intrinsic::SqrtF,
            ("rsqrtf", 1) | ("rsqrt", 1) => Intrinsic::RsqrtF,
            ("expf", 1) | ("exp", 1) => Intrinsic::ExpF,
            ("logf", 1) | ("log", 1) => Intrinsic::LogF,
            ("fmaf", 3) | ("fma", 3) => Intrinsic::FmaF,
            ("__shfl_xor_sync", 4) | ("__shfl_xor", 2) | ("__shfl_xor", 3) => Intrinsic::ShflXor,
            ("__shfl_down_sync", 4) | ("__shfl_down", 2) | ("__shfl_down", 3) => {
                Intrinsic::ShflDown
            }
            ("atomicAdd", 2) => Intrinsic::AtomicAdd,
            ("atomicMax", 2) => Intrinsic::AtomicMax,
            ("atomicExch", 2) => Intrinsic::AtomicExch,
            ("__popc", 1) => Intrinsic::Popc,
            ("__clz", 1) => Intrinsic::Clz,
            ("__brev", 1) => Intrinsic::Brev,
            ("__ballot_sync", 2) | ("__ballot", 1) => Intrinsic::Ballot,
            ("__any_sync", 2) | ("__any", 1) => Intrinsic::Any,
            ("__all_sync", 2) | ("__all", 1) => Intrinsic::All,
            _ => return None,
        })
    }

    /// Index of the "value" argument whose type determines the result type.
    fn value_arg(self, nargs: usize) -> usize {
        match self {
            // `_sync` variants put the value second, the legacy forms first.
            Intrinsic::ShflXor | Intrinsic::ShflDown => usize::from(nargs == 4),
            _ => 0,
        }
    }
}

/// A lexically scoped variable-type environment.
///
/// Scopes push on block entry and pop on exit; lookups scan inner-to-outer.
#[derive(Debug, Default)]
pub struct ScopeStack {
    scopes: Vec<HashMap<String, Ty>>,
}

impl ScopeStack {
    /// Creates an environment with one (outermost) scope.
    pub fn new() -> Self {
        Self {
            scopes: vec![HashMap::new()],
        }
    }

    /// Enters a nested scope.
    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if only the outermost scope remains.
    pub fn pop(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop outermost scope");
        self.scopes.pop();
    }

    /// Declares a variable in the innermost scope.
    pub fn declare(&mut self, name: impl Into<String>, ty: Ty) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.into(), ty);
    }

    /// Looks a variable up, innermost scope first.
    pub fn lookup(&self, name: &str) -> Option<&Ty> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }
}

/// Integer promotion rank; higher absorbs lower.
fn int_rank(ty: &Ty) -> u8 {
    match ty {
        Ty::Bool => 0,
        Ty::I32 => 1,
        Ty::U32 => 2,
        Ty::I64 => 3,
        Ty::U64 => 4,
        _ => unreachable!("int_rank on non-integer"),
    }
}

/// The usual arithmetic conversions, simplified.
pub fn promote(a: &Ty, b: &Ty) -> Ty {
    if *a == Ty::F64 || *b == Ty::F64 {
        Ty::F64
    } else if *a == Ty::F32 || *b == Ty::F32 {
        Ty::F32
    } else {
        let ranked = if int_rank(a) >= int_rank(b) { a } else { b };
        // bool promotes to int even alone.
        if *ranked == Ty::Bool {
            Ty::I32
        } else {
            ranked.clone()
        }
    }
}

/// Infers the type of `expr` under `env`.
///
/// # Errors
///
/// Returns [`FrontendError`] for undeclared variables, unknown calls, or
/// ill-typed operations (e.g. indexing a non-pointer).
pub fn expr_ty(expr: &Expr, env: &ScopeStack) -> Result<Ty, FrontendError> {
    match expr {
        Expr::IntLit(_, ty) | Expr::FloatLit(_, ty) => Ok(ty.clone()),
        Expr::Ident(name) => env
            .lookup(name)
            .cloned()
            .ok_or_else(|| FrontendError::new(format!("undeclared variable `{name}`"))),
        Expr::Builtin(_) => Ok(Ty::I32),
        Expr::Unary(op, inner) => {
            let t = expr_ty(inner, env)?;
            match op {
                UnOp::Not => Ok(Ty::I32),
                UnOp::Neg | UnOp::BitNot => Ok(promote(&t, &Ty::I32)),
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let lt = expr_ty(lhs, env)?;
            let rt = expr_ty(rhs, env)?;
            if op.is_comparison() || op.is_logical() {
                return Ok(Ty::I32);
            }
            match (*op, lt.is_pointer(), rt.is_pointer()) {
                (BinOp::Add, true, false) | (BinOp::Sub, true, false) => Ok(lt),
                (BinOp::Add, false, true) => Ok(rt),
                (BinOp::Sub, true, true) => Ok(Ty::I64),
                (BinOp::Shl | BinOp::Shr, false, false) => Ok(promote(&lt, &Ty::I32)),
                (_, false, false) => Ok(promote(&lt, &rt)),
                _ => Err(FrontendError::new(format!(
                    "invalid pointer arithmetic `{lt} {} {rt}`",
                    op.symbol()
                ))),
            }
        }
        Expr::Assign(_, lhs, _) => expr_ty(lhs, env),
        Expr::IncDec { target, .. } => expr_ty(target, env),
        Expr::Ternary(_, t, f) => {
            let tt = expr_ty(t, env)?;
            let ft = expr_ty(f, env)?;
            if tt.is_pointer() {
                Ok(tt)
            } else if ft.is_pointer() {
                Ok(ft)
            } else {
                Ok(promote(&tt, &ft))
            }
        }
        Expr::Call(name, args) => {
            let intrinsic = Intrinsic::lookup(name, args.len()).ok_or_else(|| {
                FrontendError::new(format!(
                    "unknown function `{name}` with {} args (device calls must be inlined first)",
                    args.len()
                ))
            })?;
            intrinsic_result_ty(intrinsic, args, env)
        }
        Expr::Index(base, _) => {
            let bt = expr_ty(base, env)?;
            bt.pointee().cloned().ok_or_else(|| {
                FrontendError::new(format!("cannot index non-pointer of type `{bt}`"))
            })
        }
        Expr::Cast(ty, _) => Ok(ty.clone()),
        Expr::AddrOf(inner) => Ok(expr_ty(inner, env)?.ptr_to()),
        Expr::Deref(inner) => {
            let t = expr_ty(inner, env)?;
            t.pointee().cloned().ok_or_else(|| {
                FrontendError::new(format!("cannot dereference non-pointer of type `{t}`"))
            })
        }
    }
}

/// Result type of an intrinsic call.
pub fn intrinsic_result_ty(
    intrinsic: Intrinsic,
    args: &[Expr],
    env: &ScopeStack,
) -> Result<Ty, FrontendError> {
    match intrinsic {
        Intrinsic::Min | Intrinsic::Max => {
            let a = expr_ty(&args[0], env)?;
            let b = expr_ty(&args[1], env)?;
            Ok(promote(&a, &b))
        }
        Intrinsic::FminF | Intrinsic::FmaxF | Intrinsic::FmaF => Ok(Ty::F32),
        Intrinsic::FabsF
        | Intrinsic::SqrtF
        | Intrinsic::RsqrtF
        | Intrinsic::ExpF
        | Intrinsic::LogF => Ok(Ty::F32),
        Intrinsic::ShflXor | Intrinsic::ShflDown => {
            expr_ty(&args[intrinsic.value_arg(args.len())], env)
        }
        Intrinsic::AtomicAdd | Intrinsic::AtomicMax | Intrinsic::AtomicExch => {
            let pt = expr_ty(&args[0], env)?;
            pt.pointee().cloned().ok_or_else(|| {
                FrontendError::new(format!("atomic operation on non-pointer `{pt}`"))
            })
        }
        Intrinsic::Popc | Intrinsic::Clz => Ok(Ty::I32),
        Intrinsic::Brev | Intrinsic::Ballot => Ok(Ty::U32),
        Intrinsic::Any | Intrinsic::All => Ok(Ty::I32),
    }
}

/// Index of the value-carrying argument of a shuffle intrinsic call, given
/// the argument count (the `_sync` forms carry the mask first).
pub fn shuffle_value_arg(nargs: usize) -> usize {
    usize::from(nargs == 4)
}

/// Rejects shadowed `__shared__` declarations in a kernel.
///
/// A `__shared__` array is a block-level resource: every thread sees the same
/// storage regardless of the scope the declaration appears in. Shadowing one
/// (re-declaring its name while it is visible, or declaring `__shared__`
/// under a name that is already bound) almost always means two textually
/// identical names silently refer to different storage — a bug in hand-written
/// kernels and a hazard for the fusion renamer. Two errors are reported:
///
/// * a `__shared__` declaration whose name is already visible, and
/// * any declaration whose name shadows a visible `__shared__` declaration.
///
/// Sibling scopes do not shadow each other; re-use of a name after the
/// earlier scope closes is accepted.
///
/// # Errors
///
/// Returns [`FrontendError`] naming the offending variable.
pub fn check_shared_shadowing(f: &crate::ast::Function) -> Result<(), FrontendError> {
    // Innermost scope last; each entry maps name -> declared __shared__?
    let mut scopes: Vec<HashMap<String, bool>> = vec![HashMap::new()];
    for p in &f.params {
        scopes[0].insert(p.name.clone(), false);
    }
    check_block_shadowing(&f.body, &mut scopes)
}

/// Recursive worker for [`check_shared_shadowing`]: walks one block in a
/// fresh scope.
fn check_block_shadowing(
    block: &crate::ast::Block,
    scopes: &mut Vec<HashMap<String, bool>>,
) -> Result<(), FrontendError> {
    use crate::ast::Stmt;

    scopes.push(HashMap::new());
    let mut result = Ok(());
    for stmt in &block.stmts {
        let r = match stmt {
            Stmt::Decl(d) => declare_checked(d, scopes),
            Stmt::If(_, then_b, else_b) => {
                check_block_shadowing(then_b, scopes).and_then(|()| match else_b {
                    Some(b) => check_block_shadowing(b, scopes),
                    None => Ok(()),
                })
            }
            Stmt::For { init, body, .. } => {
                // The loop variable scopes over the body, like `{ init; body }`.
                scopes.push(HashMap::new());
                let mut r = Ok(());
                if let Some(init) = init {
                    if let Stmt::Decl(d) = init.as_ref() {
                        r = declare_checked(d, scopes);
                    }
                }
                let r = r.and_then(|()| check_block_shadowing(body, scopes));
                scopes.pop();
                r
            }
            Stmt::While(_, body) => check_block_shadowing(body, scopes),
            Stmt::DoWhile(body, _) => check_block_shadowing(body, scopes),
            Stmt::Switch { cases, .. } => cases.iter().try_for_each(|case| {
                let b = crate::ast::Block::new(case.body.clone());
                check_block_shadowing(&b, scopes)
            }),
            Stmt::Block(b) => check_block_shadowing(b, scopes),
            _ => Ok(()),
        };
        if let Err(e) = r {
            result = Err(e);
            break;
        }
    }
    scopes.pop();
    result
}

/// Binds one declaration, erroring if it participates in `__shared__`
/// shadowing (either side).
fn declare_checked(
    d: &crate::ast::VarDecl,
    scopes: &mut [HashMap<String, bool>],
) -> Result<(), FrontendError> {
    let is_shared = d.quals.shared || d.quals.extern_shared;
    let shadowed = scopes.iter().rev().find_map(|s| s.get(&d.name).copied());
    match (is_shared, shadowed) {
        (true, Some(_)) => Err(FrontendError::new(format!(
            "__shared__ declaration `{}` shadows an earlier declaration",
            d.name
        ))),
        (false, Some(true)) => Err(FrontendError::new(format!(
            "declaration `{}` shadows a __shared__ declaration",
            d.name
        ))),
        _ => {
            scopes
                .last_mut()
                .expect("at least one scope")
                .insert(d.name.clone(), is_shared);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn env() -> ScopeStack {
        let mut e = ScopeStack::new();
        e.declare("i", Ty::I32);
        e.declare("u", Ty::U32);
        e.declare("f", Ty::F32);
        e.declare("d", Ty::F64);
        e.declare("p", Ty::F32.ptr_to());
        e.declare("ip", Ty::I32.ptr_to());
        e
    }

    fn ty(src: &str) -> Ty {
        expr_ty(&parse_expr(src).expect("parse"), &env()).expect("type")
    }

    #[test]
    fn promotion_rules() {
        assert_eq!(ty("i + i"), Ty::I32);
        assert_eq!(ty("i + u"), Ty::U32);
        assert_eq!(ty("i + f"), Ty::F32);
        assert_eq!(ty("f + d"), Ty::F64);
        assert_eq!(ty("i + 1ll"), Ty::I64);
    }

    #[test]
    fn comparisons_are_int() {
        assert_eq!(ty("f < d"), Ty::I32);
        assert_eq!(ty("i == u"), Ty::I32);
        assert_eq!(ty("i && f"), Ty::I32);
    }

    #[test]
    fn pointer_arithmetic() {
        assert_eq!(ty("p + i"), Ty::F32.ptr_to());
        assert_eq!(ty("i + p"), Ty::F32.ptr_to());
        assert_eq!(ty("p[i]"), Ty::F32);
        assert_eq!(ty("*ip"), Ty::I32);
        assert_eq!(ty("&p[i]"), Ty::F32.ptr_to());
    }

    #[test]
    fn shifts_take_left_type() {
        assert_eq!(ty("u << i"), Ty::U32);
        assert_eq!(ty("i >> 1"), Ty::I32);
    }

    #[test]
    fn builtin_and_cast() {
        assert_eq!(ty("threadIdx.x"), Ty::I32);
        assert_eq!(ty("(double)i"), Ty::F64);
        assert_eq!(ty("(unsigned int*)p"), Ty::U32.ptr_to());
    }

    #[test]
    fn intrinsic_types() {
        assert_eq!(ty("fmaxf(f, f)"), Ty::F32);
        assert_eq!(ty("min(i, u)"), Ty::U32);
        assert_eq!(ty("sqrtf(f)"), Ty::F32);
        assert_eq!(ty("fmaf(f, f, f)"), Ty::F32);
        assert_eq!(ty("fmaf(i, f, u)"), Ty::F32);
        assert_eq!(ty("atomicAdd(p, f)"), Ty::F32);
        assert_eq!(ty("atomicAdd(ip, i)"), Ty::I32);
        assert_eq!(ty("__shfl_xor_sync(0xffffffffu, f, 1, 32)"), Ty::F32);
        assert_eq!(ty("__shfl_xor(i, 1, 32)"), Ty::I32);
    }

    #[test]
    fn undeclared_variable_errors() {
        assert!(expr_ty(&parse_expr("zzz").expect("parse"), &env()).is_err());
    }

    #[test]
    fn unknown_call_errors() {
        assert!(expr_ty(&parse_expr("mystery(i)").expect("parse"), &env()).is_err());
    }

    #[test]
    fn scope_shadowing() {
        let mut e = env();
        e.push();
        e.declare("i", Ty::F64);
        assert_eq!(e.lookup("i"), Some(&Ty::F64));
        e.pop();
        assert_eq!(e.lookup("i"), Some(&Ty::I32));
    }

    #[test]
    fn ternary_with_pointer_arm() {
        assert_eq!(ty("i ? p : p"), Ty::F32.ptr_to());
        assert_eq!(ty("i ? f : i"), Ty::F32);
    }
}
