#![warn(missing_docs)]

//! A self-contained frontend for a CUDA-C dialect.
//!
//! This crate provides everything HFuse needs to manipulate CUDA kernels at
//! the source level without depending on Clang:
//!
//! * [`lexer`] — a hand-written lexer producing [`token::Token`]s,
//! * [`preprocess`] — token-level `#define` macro expansion,
//! * [`parser`] — a recursive-descent / Pratt parser producing the [`ast`],
//! * [`printer`] — a pretty-printer emitting compilable CUDA source,
//! * [`typeck`] — expression type inference over the AST,
//! * [`transform`] — the preprocessing passes the HFUSE paper describes
//!   (alpha-renaming, declaration lifting, function inlining).
//!
//! The dialect covers the constructs used by the paper's nine benchmark
//! kernels: scalar and pointer types, `__shared__` arrays (static and
//! `extern`), full expression syntax, `if`/`for`/`while`/`goto`, CUDA builtin
//! variables (`threadIdx` and friends), `__syncthreads()`, warp shuffles,
//! atomics, and inline PTX `bar.sync` barriers.
//!
//! # Example
//!
//! ```
//! use cuda_frontend::{parse_translation_unit, printer::print_function};
//!
//! let src = r#"
//! __global__ void scale(float* data, int n, float k) {
//!     int i = blockIdx.x * blockDim.x + threadIdx.x;
//!     if (i < n) { data[i] = data[i] * k; }
//! }
//! "#;
//! let tu = parse_translation_unit(src)?;
//! assert_eq!(tu.functions[0].name, "scale");
//! let pretty = print_function(&tu.functions[0]);
//! assert!(pretty.contains("__global__ void scale"));
//! # Ok::<(), cuda_frontend::FrontendError>(())
//! ```

pub mod ast;
pub mod diag;
pub mod hash;
pub mod lexer;
pub mod parser;
pub mod preprocess;
pub mod printer;
pub mod token;
pub mod transform;
pub mod typeck;

mod error;

pub use ast::{Block, Expr, Function, Param, Stmt, TranslationUnit, Ty, VarDecl};
pub use diag::{Diagnostic, Severity, Span, SpanTable};
pub use error::FrontendError;

/// Parses a full translation unit (macro definitions plus functions).
///
/// Runs the lexer, expands `#define` macros, and parses the resulting token
/// stream.
///
/// # Errors
///
/// Returns [`FrontendError`] on any lexical, preprocessing, or syntax error.
pub fn parse_translation_unit(src: &str) -> Result<TranslationUnit, FrontendError> {
    let tokens = lexer::lex(src)?;
    let tokens = preprocess::expand_macros(tokens)?;
    parser::parse(tokens)
}

/// Parses a source file expected to contain exactly one `__global__` kernel
/// and returns that kernel (after expanding macros).
///
/// # Errors
///
/// Returns [`FrontendError`] if parsing fails, if the source does not
/// contain exactly one kernel, or if the kernel shadows a `__shared__`
/// declaration (see [`typeck::check_shared_shadowing`]).
pub fn parse_kernel(src: &str) -> Result<Function, FrontendError> {
    Ok(parse_kernel_with_spans(src)?.0)
}

/// Like [`parse_translation_unit`], but also returns a per-function
/// [`SpanTable`] of statement start positions (see
/// [`diag::preorder_stmts`] for the statement ordering contract).
///
/// # Errors
///
/// Returns [`FrontendError`] on any lexical, preprocessing, or syntax error.
pub fn parse_with_spans(src: &str) -> Result<(TranslationUnit, Vec<SpanTable>), FrontendError> {
    let tokens = lexer::lex(src)?;
    let tokens = preprocess::expand_macros(tokens)?;
    parser::parse_with_spans(tokens)
}

/// Like [`parse_kernel`], but also returns the kernel's [`SpanTable`] so
/// analyses can report source positions.
///
/// # Errors
///
/// Returns [`FrontendError`] if parsing fails, if the source does not
/// contain exactly one kernel, or if the kernel shadows a `__shared__`
/// declaration.
pub fn parse_kernel_with_spans(src: &str) -> Result<(Function, SpanTable), FrontendError> {
    let (tu, tables) = parse_with_spans(src)?;
    let mut kernels: Vec<(Function, SpanTable)> = tu
        .functions
        .into_iter()
        .zip(tables)
        .filter(|(f, _)| f.is_kernel)
        .collect();
    match kernels.len() {
        1 => {
            let (kernel, table) = kernels.pop().expect("len checked");
            typeck::check_shared_shadowing(&kernel)?;
            Ok((kernel, table))
        }
        n => Err(FrontendError::new(format!(
            "expected exactly one __global__ kernel, found {n}"
        ))),
    }
}
