use std::fmt;

/// Error produced by the lexer, preprocessor, parser, type checker, or any
/// of the AST transformation passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    message: String,
    line: Option<u32>,
}

impl FrontendError {
    /// Creates an error without source-position information.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            line: None,
        }
    }

    /// Creates an error attached to a 1-based source line.
    pub fn at_line(message: impl Into<String>, line: u32) -> Self {
        Self {
            message: message.into(),
            line: Some(line),
        }
    }

    /// The human-readable message (without position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 1-based source line, if known.
    pub fn line(&self) -> Option<u32> {
        self.line
    }
}

impl FrontendError {
    /// Renders the error with the offending source line when the position
    /// is known — what the CLI shows for bad input files.
    pub fn render(&self, source: &str) -> String {
        match self.line {
            Some(line) => {
                let text = source.lines().nth(line as usize - 1).unwrap_or("");
                format!(
                    "error: {msg}
 --> line {line}
  |
{line:3} | {text}
  |",
                    msg = self.message
                )
            }
            None => format!("error: {}", self.message),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_present() {
        let e = FrontendError::at_line("unexpected token", 7);
        assert_eq!(e.to_string(), "line 7: unexpected token");
        assert_eq!(e.line(), Some(7));
    }

    #[test]
    fn render_shows_offending_line() {
        let src = "__global__ void k(int n) {\n  n = ;\n}";
        let e = FrontendError::at_line("expected expression", 2);
        let rendered = e.render(src);
        assert!(
            rendered.contains("error: expected expression"),
            "{rendered}"
        );
        assert!(rendered.contains("  2 |   n = ;"), "{rendered}");
    }

    #[test]
    fn render_without_line_is_plain() {
        assert_eq!(FrontendError::new("boom").render("x"), "error: boom");
    }

    #[test]
    fn display_without_line() {
        let e = FrontendError::new("oops");
        assert_eq!(e.to_string(), "oops");
        assert_eq!(e.line(), None);
    }
}
