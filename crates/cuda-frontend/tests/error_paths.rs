//! Error-path coverage for the frontend: malformed `bar.sync` inline asm,
//! unterminated / unmatched preprocessor conditionals, and shadowed
//! `__shared__` declarations.
//!
//! Every test asserts both that parsing fails *and* that the message names
//! the actual problem, so a future refactor can't silently swap one error
//! for a less specific one.

use cuda_frontend::parse_kernel;

/// Parses a kernel expected to fail and returns the error message.
fn err_of(src: &str) -> String {
    match parse_kernel(src) {
        Ok(f) => panic!("expected a frontend error, parsed `{}` fine", f.name),
        Err(e) => e.to_string(),
    }
}

fn kernel_with(body: &str) -> String {
    format!("__global__ void k(int* out, int n) {{ {body} }}")
}

// ---- malformed `bar.sync` operands ------------------------------------------

#[test]
fn bar_sync_without_operands_is_rejected() {
    let msg = err_of(&kernel_with(r#"asm("bar.sync;");"#));
    assert!(msg.contains("bar.sync"), "unhelpful message: {msg}");
}

#[test]
fn bar_sync_missing_count_is_rejected() {
    let msg = err_of(&kernel_with(r#"asm("bar.sync 1;");"#));
    assert!(msg.contains("bar.sync"), "unhelpful message: {msg}");
}

#[test]
fn bar_sync_non_numeric_operands_are_rejected() {
    let msg = err_of(&kernel_with(r#"asm("bar.sync a, b;");"#));
    assert!(msg.contains("bar.sync"), "unhelpful message: {msg}");
}

#[test]
fn bar_sync_id_above_15_is_rejected() {
    // PTX has 16 named barrier resources; id 16 does not exist.
    let msg = err_of(&kernel_with(r#"asm("bar.sync 16, 64;");"#));
    assert!(msg.contains("bar.sync"), "unhelpful message: {msg}");
}

#[test]
fn bar_sync_extra_operand_is_rejected() {
    let msg = err_of(&kernel_with(r#"asm("bar.sync 1, 64, 9;");"#));
    assert!(msg.contains("bar.sync"), "unhelpful message: {msg}");
}

#[test]
fn non_string_asm_body_is_rejected() {
    let msg = err_of(&kernel_with("asm(42);"));
    assert!(msg.contains("string literal"), "unhelpful message: {msg}");
}

#[test]
fn well_formed_bar_sync_still_parses() {
    let f = parse_kernel(&kernel_with(r#"asm("bar.sync 1, 64;");"#)).expect("valid bar.sync");
    assert_eq!(f.name, "k");
}

// ---- preprocessor conditionals ----------------------------------------------

#[test]
fn unterminated_ifdef_is_rejected() {
    let msg = err_of("#ifdef FAST\n__global__ void k(int n) { }\n");
    assert!(msg.contains("unterminated"), "unhelpful message: {msg}");
}

#[test]
fn unterminated_ifndef_is_rejected() {
    let msg = err_of("#ifndef FAST\n__global__ void k(int n) { }\n");
    assert!(msg.contains("unterminated"), "unhelpful message: {msg}");
}

#[test]
fn unterminated_nested_conditional_is_rejected() {
    let msg = err_of("#ifdef A\n#ifdef B\n#endif\n__global__ void k(int n) { }\n");
    assert!(msg.contains("unterminated"), "unhelpful message: {msg}");
}

#[test]
fn else_without_ifdef_is_rejected() {
    let msg = err_of("#else\n__global__ void k(int n) { }\n#endif\n");
    assert!(msg.contains("#else"), "unhelpful message: {msg}");
}

#[test]
fn endif_without_ifdef_is_rejected() {
    let msg = err_of("__global__ void k(int n) { }\n#endif\n");
    assert!(msg.contains("#endif"), "unhelpful message: {msg}");
}

// ---- shadowed __shared__ declarations ---------------------------------------

#[test]
fn redeclaring_shared_in_nested_block_is_rejected() {
    let msg = err_of(&kernel_with(
        "__shared__ int s[32]; { __shared__ int s[32]; s[0] = n; } out[0] = s[0];",
    ));
    assert!(
        msg.contains("__shared__") && msg.contains('s'),
        "unhelpful message: {msg}"
    );
}

#[test]
fn local_shadowing_a_shared_array_is_rejected() {
    let msg = err_of(&kernel_with(
        "__shared__ int s[32]; if (n > 0) { int s = n; out[0] = s; }",
    ));
    assert!(msg.contains("__shared__"), "unhelpful message: {msg}");
}

#[test]
fn shared_shadowing_a_param_is_rejected() {
    let msg = err_of(&kernel_with("__shared__ int n[32]; out[0] = n[0];"));
    assert!(msg.contains("__shared__"), "unhelpful message: {msg}");
    assert!(msg.contains("`n`"), "should name the variable: {msg}");
}

#[test]
fn shared_shadowing_a_pointer_param_is_rejected() {
    // Shadowing a *pointer* parameter is the dangerous case for the fusion
    // renamer: `data[i]` silently flips from global to shared storage.
    let msg = err_of(
        "__global__ void k(float* data, int n) { __shared__ float data[32]; data[0] = 1.0f; }",
    );
    assert!(msg.contains("__shared__"), "unhelpful message: {msg}");
    assert!(msg.contains("`data`"), "should name the variable: {msg}");
}

#[test]
fn shared_shadowing_a_param_in_nested_scope_is_rejected() {
    let msg = err_of(&kernel_with(
        "if (n > 0) { __shared__ int n[8]; out[0] = n[0]; }",
    ));
    assert!(msg.contains("__shared__"), "unhelpful message: {msg}");
}

#[test]
fn shared_shadowing_a_for_variable_is_rejected() {
    let msg = err_of(&kernel_with(
        "for (int i = 0; i < n; i = i + 1) { __shared__ int i[4]; out[0] = i[0]; }",
    ));
    assert!(msg.contains("__shared__"), "unhelpful message: {msg}");
}

#[test]
fn shared_shadowing_by_extern_shared_is_rejected() {
    let msg = err_of(&kernel_with(
        "int buf = 0; extern __shared__ int buf2[]; __shared__ int buf[16]; out[0] = buf[0] + buf2[0];",
    ));
    assert!(msg.contains("__shared__"), "unhelpful message: {msg}");
}

#[test]
fn sibling_scopes_may_reuse_a_name() {
    // The first `tmp` goes out of scope before the second is declared: no
    // shadowing, so this must keep parsing.
    let src = kernel_with(
        "{ int tmp = 1; out[0] = tmp; } { __shared__ int tmp[8]; tmp[0] = n; out[1] = tmp[0]; }",
    );
    parse_kernel(&src).expect("sibling-scope reuse is not shadowing");
}

#[test]
fn distinct_shared_arrays_still_parse() {
    let src = kernel_with(
        "__shared__ int a[32]; __shared__ int b[32]; a[0] = n; b[0] = a[0]; out[0] = b[0];",
    );
    parse_kernel(&src).expect("two distinct shared arrays are fine");
}

// ---- intrinsic arity gates ---------------------------------------------------

#[test]
fn fmaf_requires_exactly_three_args() {
    use cuda_frontend::typeck::Intrinsic;
    assert_eq!(Intrinsic::lookup("fmaf", 3), Some(Intrinsic::FmaF));
    assert_eq!(Intrinsic::lookup("fma", 3), Some(Intrinsic::FmaF));
    // Wrong arity must fall through to "unknown function", not silently
    // typecheck with a missing addend.
    assert_eq!(Intrinsic::lookup("fmaf", 2), None);
    assert_eq!(Intrinsic::lookup("fmaf", 4), None);
}

#[test]
fn fmaf_parses_inside_a_kernel() {
    let src = kernel_with("float a = 1.0f; out[0] = (int)fmaf(a, a, a);");
    parse_kernel(&src).expect("fmaf is a dialect intrinsic");
}
