//! Ablation: HFuse's partial barriers (`bar.sync id, count`) versus naive
//! full-block `__syncthreads()` in the fused kernel.
//!
//! The paper's Section II identifies barrier handling as the first
//! challenge of horizontal fusion. This ablation shows both failure modes
//! of the naive approach:
//!
//! 1. When the two kernels execute the *same number* of barriers per
//!    thread (Batchnorm + Hist: two each), the full-barrier version still
//!    terminates but couples the kernels' phases, losing performance.
//! 2. When the barrier counts differ (Batchnorm + Maxpool: two vs zero),
//!    the full-barrier version deadlocks — detected and reported by the
//!    simulator.

use gpu_sim::{GpuConfig, Launch};
use hfuse_bench::pairs::build_inputs;
use hfuse_core::fuse::{horizontal_fuse_with, FuseOptions};
use hfuse_kernels::AnyBenchmark;
use thread_ir::lower_kernel;

fn fused_cycles(
    cfg: &GpuConfig,
    a: &AnyBenchmark,
    b: &AnyBenchmark,
    full_barriers: bool,
) -> Result<u64, String> {
    let (gpu, in1, in2) = build_inputs(cfg, a, b);
    let dims = (512, 1, 1);
    let dims1 = match in1.shape {
        hfuse_core::BlockShape::Rows { y } => (512 / y, y, 1),
        hfuse_core::BlockShape::Linear => dims,
    };
    let fused = horizontal_fuse_with(
        &in1.kernel,
        dims1,
        &in2.kernel,
        dims,
        FuseOptions { full_barriers },
    )
    .map_err(|e| e.to_string())?;
    let mut args = in1.args.clone();
    args.extend(in2.args.iter().copied());
    let mut gpu = gpu;
    let launch = Launch {
        kernel: lower_kernel(&fused.function)
            .map_err(|e| e.to_string())?
            .into(),
        grid_dim: in1.grid_dim,
        block_dim: (1024, 1, 1),
        dynamic_shared_bytes: in1.dynamic_shared + in2.dynamic_shared,
        args,
    };
    gpu.run(&[launch])
        .map(|r| r.total_cycles)
        .map_err(|e| e.to_string())
}

fn main() {
    let cfg = GpuConfig::pascal_like();
    println!(
        "# Ablation — partial vs full-block barriers in the fused kernel ({})",
        cfg.name
    );

    // Case 1: equal barrier counts — coupling cost.
    let a = AnyBenchmark::by_name("Batchnorm").expect("benchmark exists");
    let b = AnyBenchmark::by_name("Hist").expect("benchmark exists");
    let partial = fused_cycles(&cfg, &a, &b, false).expect("partial barriers run");
    match fused_cycles(&cfg, &a, &b, true) {
        Ok(full) => println!(
            "Batchnorm+Hist     partial {partial} cycles, full {full} cycles ({:+.1}% from phase coupling)",
            100.0 * (full as f64 / partial as f64 - 1.0)
        ),
        Err(e) => println!("Batchnorm+Hist     partial {partial} cycles, full barriers FAILED: {e}"),
    }

    // Case 2: mismatched barrier counts — deadlock.
    let b = AnyBenchmark::by_name("Maxpool").expect("benchmark exists");
    let partial = fused_cycles(&cfg, &a, &b, false).expect("partial barriers run");
    match fused_cycles(&cfg, &a, &b, true) {
        Ok(full) => println!("Batchnorm+Maxpool  partial {partial} cycles, full {full} cycles (unexpectedly survived)"),
        Err(e) => println!(
            "Batchnorm+Maxpool  partial {partial} cycles, full barriers deadlock as predicted: {e}"
        ),
    }
}
