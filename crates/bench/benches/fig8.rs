//! Reproduces **Fig. 8** of the paper: metrics of the nine individual
//! kernels on both GPU configurations.
//!
//! Paper columns: Kernel Execution Time, Issue Slot Utilization (%),
//! MemInst Stall (%), Occupancy (%), each shown as `1080Ti / V100`. Our
//! execution time is in simulator kilocycles rather than milliseconds.

use hfuse_bench::pairs::{both_gpus, measure_one};
use hfuse_kernels::AnyBenchmark;

fn main() {
    let [pascal, volta] = both_gpus();
    println!(
        "# Fig. 8 — Metrics of individual kernels ({} / {})",
        pascal.name, volta.name
    );
    println!(
        "{:<10} {:>17} {:>19} {:>15} {:>15}",
        "Kernel", "Time (kcycles)", "IssueSlotUtil (%)", "MemInstStall(%)", "Occupancy (%)"
    );
    for b in AnyBenchmark::all() {
        let p = measure_one(&pascal, &b).expect("pascal run");
        let v = measure_one(&volta, &b).expect("volta run");
        println!(
            "{:<10} {:>8.1} / {:<6.1} {:>9.2} / {:<7.2} {:>7.1} / {:<5.1} {:>7.1} / {:<5.1}",
            b.name(),
            p.cycles as f64 / 1000.0,
            v.cycles as f64 / 1000.0,
            p.issue_util,
            v.issue_util,
            p.mem_stall,
            v.mem_stall,
            p.occupancy,
            v.occupancy,
        );
    }
}
