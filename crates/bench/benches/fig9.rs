//! Reproduces **Fig. 9** of the paper: metrics of the HFuse fused kernels
//! at the representative workload, for both register-bound variants.
//!
//! Paper columns per pair: Type (`N-RegCap` = compiled without a register
//! bound, `RegCap` = with the Fig. 6 bound), Speedup (%) over native,
//! Issue Slot Utilization of the fused kernel vs the cycle-weighted native
//! average, MemInst Stall (%), and Occupancy (%), each as `1080Ti / V100`.

use hfuse_bench::pairs::{both_gpus, measure_pair, FusedOutcome, PairMeasurement};
use hfuse_kernels::all_pairs;

struct Row {
    speedup: f64,
    util: f64,
    native_util: f64,
    mem_stall: f64,
    occupancy: f64,
}

fn row(m: &PairMeasurement, v: &FusedOutcome) -> Row {
    Row {
        speedup: m.speedup_pct(v.metrics.cycles),
        util: v.metrics.issue_util,
        native_util: m.native_avg_util,
        mem_stall: v.metrics.mem_stall,
        occupancy: v.metrics.occupancy,
    }
}

fn main() {
    let [pascal, volta] = both_gpus();
    println!(
        "# Fig. 9 — Metrics of HFUSE fused kernels ({} / {})",
        pascal.name, volta.name
    );
    println!(
        "{:<22} {:<8} {:>15} {:>17} {:>15} {:>13} {:>13}",
        "Pair",
        "Type",
        "Speedup (%)",
        "IssueUtil (%)",
        "NativeUtil (%)",
        "MemStall (%)",
        "Occup (%)"
    );
    for pair in all_pairs() {
        let (a, b) = pair.at_scale(1.0);
        let p = measure_pair(&pascal, &a, &b);
        let v = measure_pair(&volta, &a, &b);
        let (p, v) = match (p, v) {
            (Ok(p), Ok(v)) => (p, v),
            (e1, e2) => {
                println!("{:<22} failed: {:?} {:?}", pair.name(), e1.err(), e2.err());
                continue;
            }
        };
        for (ty, select) in [
            (
                "N-RegCap",
                &(|m: &PairMeasurement| m.hfuse_nocap)
                    as &dyn Fn(&PairMeasurement) -> Option<FusedOutcome>,
            ),
            ("RegCap", &|m: &PairMeasurement| m.hfuse_cap),
        ] {
            let (Some(rp), Some(rv)) = (select(&p), select(&v)) else {
                println!("{:<22} {:<8} (variant infeasible)", pair.name(), ty);
                continue;
            };
            let (rp, rv) = (row(&p, &rp), row(&v, &rv));
            println!(
                "{:<22} {:<8} {:>+6.1} / {:<+6.1} {:>7.2} / {:<7.2} {:>6.2} / {:<6.2} {:>5.1} / {:<5.1} {:>5.1} / {:<5.1}",
                pair.name(),
                ty,
                rp.speedup,
                rv.speedup,
                rp.util,
                rv.util,
                rp.native_util,
                rv.native_util,
                rp.mem_stall,
                rv.mem_stall,
                rp.occupancy,
                rv.occupancy,
            );
        }
    }
}
