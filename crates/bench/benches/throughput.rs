//! Criterion benches of the toolchain itself: how fast the frontend parses,
//! the fuser fuses, the lowerer + optimizer compile, and the simulator
//! executes instructions. These are the engineering-cost numbers a user of
//! the library cares about (the paper's search profiles dozens of fused
//! variants, so compile + simulate throughput bounds search time).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Gpu, GpuConfig, Launch, ParamValue};
use hfuse_core::horizontal_fuse;
use hfuse_kernels::{AnyBenchmark, Benchmark};
use thread_ir::lower_kernel;

fn bench_parse(c: &mut Criterion) {
    let src = AnyBenchmark::by_name("Batchnorm").expect("exists").benchmark().source();
    c.bench_function("parse_batchnorm", |b| {
        b.iter(|| cuda_frontend::parse_kernel(std::hint::black_box(&src)).expect("parse"))
    });
}

fn bench_fuse(c: &mut Criterion) {
    let k1 = AnyBenchmark::by_name("Batchnorm").expect("exists").benchmark().kernel();
    let k2 = AnyBenchmark::by_name("Hist").expect("exists").benchmark().kernel();
    c.bench_function("horizontal_fuse_batchnorm_hist", |b| {
        b.iter(|| {
            horizontal_fuse(
                std::hint::black_box(&k1),
                (56, 16, 1),
                std::hint::black_box(&k2),
                (128, 1, 1),
            )
            .expect("fuse")
        })
    });
}

fn bench_lower_optimize(c: &mut Criterion) {
    let k = AnyBenchmark::by_name("Blake256").expect("exists").benchmark().kernel();
    c.bench_function("lower_optimize_blake256", |b| {
        b.iter(|| lower_kernel(std::hint::black_box(&k)).expect("lower"))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let wl = hfuse_kernels::dl::maxpool::Maxpool { channels: 8, height: 32, width: 32 };
    let ir = lower_kernel(&wl.kernel()).expect("lower");
    let mut proto = Gpu::new(GpuConfig::pascal_like());
    let args = wl.setup(proto.memory_mut());
    c.bench_function("simulate_maxpool_8x32x32", |b| {
        b.iter(|| {
            let mut gpu = proto.clone();
            let launch = Launch {
                kernel: ir.clone(),
                grid_dim: 8,
                block_dim: (256, 1, 1),
                dynamic_shared_bytes: 0,
                args: args.clone(),
            };
            gpu.run(std::hint::black_box(&[launch])).expect("run")
        })
    });
    let _ = ParamValue::I32(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_fuse, bench_lower_optimize, bench_simulate
}
criterion_main!(benches);
