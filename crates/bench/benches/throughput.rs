//! Benches of the toolchain itself: how fast the frontend parses, the fuser
//! fuses, the lowerer + optimizer compile, and the simulator executes
//! instructions. These are the engineering-cost numbers a user of the
//! library cares about (the paper's search profiles dozens of fused
//! variants, so compile + simulate throughput bounds search time).
//!
//! Uses a plain `std::time::Instant` harness so the workspace builds with no
//! network access (no external bench framework).

use std::time::Instant;

use gpu_sim::{Gpu, GpuConfig, Launch};
use hfuse_core::horizontal_fuse;
use hfuse_kernels::{AnyBenchmark, Benchmark};
use thread_ir::lower_kernel;

/// Runs `f` repeatedly (after warmup) and reports the mean wall time.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    println!(
        "{name:<36} {:>12.1} µs/iter ({iters} iters)",
        total.as_secs_f64() * 1e6 / f64::from(iters)
    );
}

fn main() {
    let src = AnyBenchmark::by_name("Batchnorm")
        .expect("exists")
        .benchmark()
        .source();
    bench("parse_batchnorm", 200, || {
        cuda_frontend::parse_kernel(std::hint::black_box(&src)).expect("parse")
    });

    let k1 = AnyBenchmark::by_name("Batchnorm")
        .expect("exists")
        .benchmark()
        .kernel();
    let k2 = AnyBenchmark::by_name("Hist")
        .expect("exists")
        .benchmark()
        .kernel();
    bench("horizontal_fuse_batchnorm_hist", 100, || {
        horizontal_fuse(
            std::hint::black_box(&k1),
            (56, 16, 1),
            std::hint::black_box(&k2),
            (128, 1, 1),
        )
        .expect("fuse")
    });

    let k = AnyBenchmark::by_name("Blake256")
        .expect("exists")
        .benchmark()
        .kernel();
    bench("lower_optimize_blake256", 100, || {
        lower_kernel(std::hint::black_box(&k)).expect("lower")
    });

    let wl = hfuse_kernels::dl::maxpool::Maxpool {
        channels: 8,
        height: 32,
        width: 32,
    };
    let ir = std::sync::Arc::new(lower_kernel(&wl.kernel()).expect("lower"));
    let mut proto = Gpu::new(GpuConfig::pascal_like());
    let args = wl.setup(proto.memory_mut());
    bench("simulate_maxpool_8x32x32", 20, || {
        let mut gpu = proto.clone();
        let launch = Launch {
            kernel: ir.clone(),
            grid_dim: 8,
            block_dim: (256, 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run(std::hint::black_box(&[launch])).expect("run")
    });
}
