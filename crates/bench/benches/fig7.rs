//! Reproduces **Fig. 7** of the paper: kernel execution-time speedup of the
//! fused kernels over native co-execution, as a function of the execution
//! time ratio of the two kernels.
//!
//! For each of the sixteen pairs, the starred kernel's input size is swept
//! (the paper varies input sizes; we scale the starred workload by the
//! factors in `sweep_scales`). Four series are reported per pair and GPU:
//! `HFuse` (profiled search), `VFuse` (vertical fusion), and `Naive`
//! (even-partition horizontal fusion without profiling, deep-learning pairs
//! only — for crypto pairs the native block sizes are the only partition,
//! so Naive coincides with HFuse, as in the paper). The per-pair average
//! speedup across ratios — the horizontal lines of the paper's subplots —
//! closes each block.

use hfuse_bench::pairs::{both_gpus, measure_pair, sweep_scales};
use hfuse_kernels::all_pairs;

fn main() {
    let scales = sweep_scales();
    println!("# Fig. 7 — Speedup vs execution-time ratio (positive = faster than native)");
    for cfg in both_gpus() {
        println!("\n## GPU: {}", cfg.name);
        for pair in all_pairs() {
            println!("\n{} [{}]", pair.name(), cfg.name);
            println!(
                "{:>6} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "scale", "ratio", "HFuse(%)", "VFuse(%)", "Naive(%)", "d1/bound"
            );
            let mut sums = [0.0f64; 3];
            let mut counts = [0usize; 3];
            for &scale in &scales {
                let (a, b) = pair.at_scale(scale);
                let m = match measure_pair(&cfg, &a, &b) {
                    Ok(m) => m,
                    Err(e) => {
                        println!("{scale:>6.2} measurement failed: {e}");
                        continue;
                    }
                };
                let hf = m.speedup_pct(m.hfuse.metrics.cycles);
                let vf = m.vfuse_cycles.map(|c| m.speedup_pct(c));
                let nv = m.naive_cycles.map(|c| m.speedup_pct(c));
                sums[0] += hf;
                counts[0] += 1;
                if let Some(v) = vf {
                    sums[1] += v;
                    counts[1] += 1;
                }
                if let Some(n) = nv {
                    sums[2] += n;
                    counts[2] += 1;
                }
                println!(
                    "{:>6.2} {:>7.2} {:>+10.1} {:>10} {:>10} {:>6}/{}",
                    scale,
                    m.ratio,
                    hf,
                    vf.map(|v| format!("{v:+.1}")).unwrap_or_else(|| "-".into()),
                    nv.map(|v| format!("{v:+.1}")).unwrap_or_else(|| "-".into()),
                    m.hfuse.d1,
                    m.hfuse
                        .reg_bound
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
            let avg = |i: usize| {
                if counts[i] == 0 {
                    "-".to_owned()
                } else {
                    format!("{:+.1}", sums[i] / counts[i] as f64)
                }
            };
            println!(
                "  avg: HFuse {} | VFuse {} | Naive {}",
                avg(0),
                avg(1),
                avg(2)
            );
        }
    }
}
