//! Ablation: the IR optimizer's effect on code size, register pressure,
//! and simulated execution time for every benchmark kernel.
//!
//! Without these passes, a naively lowered kernel issues far more
//! instructions than real SASS would, which distorts the issue-utilization
//! balance that the fusion study depends on (DESIGN.md §4.5).

use gpu_sim::{Gpu, GpuConfig, Launch};
use hfuse_core::BlockShape;
use hfuse_kernels::AnyBenchmark;
use thread_ir::{lower_kernel, lower_kernel_unoptimized, KernelIr};

fn run(cfg: &GpuConfig, b: &AnyBenchmark, ir: KernelIr) -> u64 {
    let bench = b.benchmark();
    let mut gpu = Gpu::new(cfg.clone());
    let args = bench.setup(gpu.memory_mut());
    let dims = match bench.shape() {
        BlockShape::Rows { y } => (bench.default_threads() / y, y, 1),
        BlockShape::Linear => (bench.default_threads(), 1, 1),
    };
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: bench.grid_dim(),
        block_dim: dims,
        dynamic_shared_bytes: bench.dynamic_shared(),
        args,
    };
    gpu.run(&[launch]).expect("run").total_cycles
}

fn main() {
    let cfg = GpuConfig::pascal_like();
    println!(
        "# Ablation — IR optimizer (const-fold + peephole + CSE + LICM + DCE), {}",
        cfg.name
    );
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>18}",
        "Kernel", "insts raw→opt", "press raw→opt", "cycles raw", "cycles opt (Δ%)"
    );
    for b in AnyBenchmark::all()
        .into_iter()
        .chain(AnyBenchmark::extensions())
    {
        let k = b.benchmark().kernel();
        let raw = lower_kernel_unoptimized(&k).expect("lower raw");
        let opt = lower_kernel(&k).expect("lower opt");
        let t_raw = run(&cfg, &b, raw.clone());
        let t_opt = run(&cfg, &b, opt.clone());
        println!(
            "{:<10} {:>6}→{:<7} {:>6}→{:<7} {:>16} {:>10} ({:+.1}%)",
            b.name(),
            raw.insts.len(),
            opt.insts.len(),
            raw.reg_pressure(),
            opt.reg_pressure(),
            t_raw,
            t_opt,
            100.0 * (t_opt as f64 / t_raw as f64 - 1.0),
        );
    }
}
