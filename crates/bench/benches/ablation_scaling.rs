//! Ablation: sensitivity of the fusion conclusions to the simulator's SM
//! count.
//!
//! The GPU configs scale the real parts' SM counts down (28 → 4 for the
//! 1080Ti-like preset) to keep profiling fast. This ablation sweeps the SM
//! count (with DRAM bandwidth scaled proportionally) on one winning pair
//! and one losing pair to show that *who wins* does not depend on the
//! scale chosen.

use gpu_sim::GpuConfig;
use hfuse_bench::pairs::measure_pair;
use hfuse_kernels::{crypto_pairs, dl_pairs};

fn scaled_config(base: &GpuConfig, num_sms: u32) -> GpuConfig {
    let mut cfg = base.clone();
    // Keep per-SM bandwidth constant while scaling the SM count.
    cfg.dram_transactions_per_cycle = (base.dram_transactions_per_cycle * num_sms)
        .div_ceil(base.num_sms)
        .max(1);
    cfg.num_sms = num_sms;
    cfg.name = format!("{}@{}SM", base.name, num_sms);
    cfg
}

fn main() {
    let base = GpuConfig::pascal_like();
    println!("# Ablation — SM-count sensitivity (per-SM resources fixed, DRAM scaled)");
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>12}",
        "Pair", "SMs", "native", "hfuse", "speedup(%)"
    );
    let pairs = [
        dl_pairs().remove(5),     // Hist+*Maxpool* — a winner in the paper
        crypto_pairs().remove(1), // Blake256+*Ethash* — a winner
        crypto_pairs().remove(3), // *Blake256*+Blake2B — a loser
    ];
    for pair in &pairs {
        let (a, b) = pair.at_scale(1.0);
        for sms in [2u32, 4, 8] {
            let cfg = scaled_config(&base, sms);
            match measure_pair(&cfg, &a, &b) {
                Ok(m) => println!(
                    "{:<22} {:>6} {:>10} {:>10} {:>+12.1}",
                    pair.name(),
                    sms,
                    m.native_cycles,
                    m.hfuse.metrics.cycles,
                    m.speedup_pct(m.hfuse.metrics.cycles),
                ),
                Err(e) => println!("{:<22} {:>6} failed: {e}", pair.name(), sms),
            }
        }
    }
}
