//! Ablation: thread-space partition search granularity.
//!
//! The paper's Fig. 6 steps the partition `d1` at a granularity of 128
//! "because using an irregular block dimension often breaks memory access
//! patterns". This ablation sweeps the granularity to show the trade-off:
//! finer steps search more candidates (more profiling runs) for marginal
//! gains; coarser steps can miss the best partition.

use gpu_sim::GpuConfig;
use hfuse_bench::pairs::build_inputs;
use hfuse_core::{search_fusion_config, SearchOptions};
use hfuse_kernels::dl_pairs;

fn main() {
    let cfg = GpuConfig::pascal_like();
    println!("# Ablation — search granularity (d0 = 1024, {})", cfg.name);
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>8} {:>8}",
        "Pair", "gran", "profiles", "best d1", "bound", "cycles"
    );
    // Representative pairs: one winner, one loser in the paper.
    for pair in [&dl_pairs()[1], &dl_pairs()[5], &dl_pairs()[9]] {
        let (a, b) = pair.at_scale(1.0);
        for granularity in [64u32, 128, 256, 512] {
            let (gpu, in1, in2) = build_inputs(&cfg, &a, &b);
            let opts = SearchOptions {
                d0: 1024,
                granularity,
                ..SearchOptions::default()
            };
            match search_fusion_config(&gpu, &in1, &in2, opts) {
                Ok(report) => {
                    let best = report.best();
                    println!(
                        "{:<22} {:>6} {:>10} {:>10} {:>8} {:>8}",
                        pair.name(),
                        granularity,
                        report.candidates.len(),
                        best.d1,
                        best.reg_bound
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "-".into()),
                        best.cycles,
                    );
                }
                Err(e) => println!("{:<22} {:>6} failed: {e}", pair.name(), granularity),
            }
        }
    }
}
