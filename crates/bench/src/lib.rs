//! Experiment harness regenerating every table and figure of the HFUSE
//! paper's evaluation. The runnable benches live in `benches/`:
//!
//! | Bench | Reproduces |
//! |---|---|
//! | `fig7` | Fig. 7: speedup vs execution-time ratio, 16 pairs × 2 GPUs |
//! | `fig8` | Fig. 8: per-kernel metrics table |
//! | `fig9` | Fig. 9: fused-kernel metrics, RegCap / N-RegCap |
//! | `ablation_barrier` | partial vs full-block barriers |
//! | `ablation_granularity` | thread-partition search granularity |
//! | `throughput` | compiler + simulator throughput (Criterion-style timing) |
//!
//! Run them with `cargo bench`, or a single one with e.g.
//! `cargo bench -p hfuse-bench --bench fig8`. Set `HFUSE_FAST=1` for a
//! trimmed smoke run.

pub mod pairs;
