//! Pair-experiment plumbing shared by the figure benches: measure native
//! co-execution, the HFuse search (best overall, best without register
//! bound, best with it), vertical fusion, and naive even-partition fusion
//! for any benchmark pair on any GPU configuration.

use gpu_sim::{Gpu, GpuConfig};
use hfuse_core::{
    measure_naive_horizontal, measure_vertical, FusionInput, HfuseError, SearchCandidate, Session,
};
use hfuse_kernels::AnyBenchmark;

/// Metrics of one measured variant.
#[derive(Debug, Clone, Copy)]
pub struct VariantMetrics {
    /// Execution cycles.
    pub cycles: u64,
    /// Issue-slot utilization (%).
    pub issue_util: f64,
    /// Memory-instruction stall (%).
    pub mem_stall: f64,
    /// Achieved occupancy (%).
    pub occupancy: f64,
}

impl VariantMetrics {
    fn from_run(r: &gpu_sim::RunResult) -> Self {
        VariantMetrics {
            cycles: r.total_cycles,
            issue_util: r.metrics.issue_slot_utilization(),
            mem_stall: r.metrics.mem_stall_pct(),
            occupancy: r.metrics.occupancy_pct(),
        }
    }

    fn from_candidate(c: &SearchCandidate) -> Self {
        VariantMetrics {
            cycles: c.cycles,
            issue_util: c.issue_util,
            mem_stall: c.mem_stall,
            occupancy: c.occupancy,
        }
    }
}

/// A fused variant plus its configuration.
#[derive(Debug, Clone, Copy)]
pub struct FusedOutcome {
    /// Measured metrics.
    pub metrics: VariantMetrics,
    /// Winning partition (threads for the first kernel).
    pub d1: u32,
    /// Register bound applied, if any.
    pub reg_bound: Option<u32>,
}

/// Everything measured for one pair at one workload point.
#[derive(Debug, Clone)]
pub struct PairMeasurement {
    /// Execution-time ratio `t1 / t2` of the kernels run alone.
    pub ratio: f64,
    /// Per-kernel standalone metrics.
    pub single: [VariantMetrics; 2],
    /// Native co-execution (two launches on parallel streams).
    pub native_cycles: u64,
    /// Cycle-weighted average issue-slot utilization of the natives
    /// (the paper's `I_{k1+k2}` formula).
    pub native_avg_util: f64,
    /// Best fused configuration overall.
    pub hfuse: FusedOutcome,
    /// Best configuration without a register bound (Fig. 9's `N-RegCap`).
    pub hfuse_nocap: Option<FusedOutcome>,
    /// Best configuration with the register bound (Fig. 9's `RegCap`).
    pub hfuse_cap: Option<FusedOutcome>,
    /// Vertical fusion, when the pair admits it.
    pub vfuse_cycles: Option<u64>,
    /// Naive even-partition horizontal fusion without profiling.
    pub naive_cycles: Option<u64>,
}

impl PairMeasurement {
    /// Speedup (%) of a fused variant against native co-execution.
    pub fn speedup_pct(&self, fused_cycles: u64) -> f64 {
        100.0 * (self.native_cycles as f64 / fused_cycles as f64 - 1.0)
    }
}

/// Builds the fusion inputs of a pair on a fresh GPU.
pub fn build_inputs(
    cfg: &GpuConfig,
    a: &AnyBenchmark,
    b: &AnyBenchmark,
) -> (Gpu, FusionInput, FusionInput) {
    let mut gpu = Gpu::new(cfg.clone());
    let in1 = a.benchmark().fusion_input(gpu.memory_mut());
    let in2 = b.benchmark().fusion_input(gpu.memory_mut());
    (gpu, in1, in2)
}

/// Measures every variant of a pair at its current workload.
///
/// Runs through one [`Session`], so the singles, the native baseline, and
/// the search share the memoized parses (the vertical and naive variants
/// stay on the free functions — they are one-shot by construction).
///
/// # Errors
///
/// Returns [`HfuseError`] when the pair cannot be fused or a simulation
/// fails. VFuse / naive variants are individually optional (`None` when
/// infeasible).
pub fn measure_pair(
    cfg: &GpuConfig,
    a: &AnyBenchmark,
    b: &AnyBenchmark,
) -> Result<PairMeasurement, HfuseError> {
    let (gpu, in1, in2) = build_inputs(cfg, a, b);

    let mut session = Session::with_gpu(gpu.clone());
    let ka = session.add_fusion_input(&in1);
    let kb = session.add_fusion_input(&in2);
    let s1 = session.single(ka)?;
    let s2 = session.single(kb)?;
    let native = session.native(ka, kb)?;
    let report = session.search_winner(ka, kb)?;

    let best = |bound: bool| -> Option<FusedOutcome> {
        report
            .candidates
            .iter()
            .filter(|c| c.reg_bound.is_some() == bound)
            .min_by_key(|c| c.cycles)
            .map(|c| FusedOutcome {
                metrics: VariantMetrics::from_candidate(c),
                d1: c.d1,
                reg_bound: c.reg_bound,
            })
    };
    let overall = report.best();
    let hfuse = FusedOutcome {
        metrics: VariantMetrics::from_candidate(overall),
        d1: overall.d1,
        reg_bound: overall.reg_bound,
    };

    let c1 = s1.total_cycles as f64;
    let c2 = s2.total_cycles as f64;
    let u1 = s1.metrics.issue_slot_utilization();
    let u2 = s2.metrics.issue_slot_utilization();

    Ok(PairMeasurement {
        ratio: c1 / c2,
        single: [
            VariantMetrics::from_run(s1.as_ref()),
            VariantMetrics::from_run(s2.as_ref()),
        ],
        native_cycles: native.total_cycles,
        native_avg_util: (u1 * c1 + u2 * c2) / (c1 + c2),
        hfuse,
        hfuse_nocap: best(false),
        hfuse_cap: best(true),
        vfuse_cycles: measure_vertical(&gpu, &in1, &in2)
            .ok()
            .map(|r| r.total_cycles),
        naive_cycles: measure_naive_horizontal(&gpu, &in1, &in2, 1024)
            .ok()
            .map(|r| r.total_cycles),
    })
}

/// Measures one benchmark standalone (for Fig. 8).
///
/// # Errors
///
/// Returns [`HfuseError`] on simulation failure.
pub fn measure_one(cfg: &GpuConfig, b: &AnyBenchmark) -> Result<VariantMetrics, HfuseError> {
    let mut gpu = Gpu::new(cfg.clone());
    let input = b.benchmark().fusion_input(gpu.memory_mut());
    let mut session = Session::with_gpu(gpu);
    let k = session.add_fusion_input(&input);
    let r = session.single(k)?;
    Ok(VariantMetrics::from_run(r.as_ref()))
}

/// The new-family pairs (BLAS × image × attention crosses) measured
/// alongside the paper's sixteen. Delegates to
/// [`hfuse_kernels::family_pairs`] so the figure benches and the search
/// benchmark share one list.
pub fn family_pair_specs() -> Vec<hfuse_kernels::PairSpec> {
    hfuse_kernels::family_pairs()
}

/// The GPU configurations of the evaluation, in paper order
/// (1080Ti-like Pascal, V100-like Volta).
pub fn both_gpus() -> [GpuConfig; 2] {
    [GpuConfig::pascal_like(), GpuConfig::volta_like()]
}

/// Workload scale factors for the Fig. 7 ratio sweeps. `HFUSE_FAST=1`
/// trims the sweep for smoke runs.
pub fn sweep_scales() -> Vec<f64> {
    if gpu_sim::env::fast() {
        vec![0.5, 1.0, 2.0]
    } else {
        vec![0.33, 0.5, 1.0, 2.0, 3.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_pairs_measure_end_to_end() {
        // The whole measurement pipeline (singles, native co-execution,
        // search, vertical, naive) must handle the new families, not just
        // the paper's sets.
        let specs = family_pair_specs();
        assert!(specs.len() >= 3, "at least three family pairs");
        let spec = &specs[0];
        let (a, b) = (spec.first.scaled(0.25), spec.second.scaled(0.25));
        let m = measure_pair(&GpuConfig::test_tiny(), &a, &b)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        assert!(m.hfuse.metrics.cycles > 0);
        assert!(m.native_cycles > 0);
        assert!(m.hfuse.d1 > 0);
    }
}
