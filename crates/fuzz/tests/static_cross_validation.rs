//! Cross-validation of the static race/barrier analyzer against the dynamic
//! sanitizer over the committed fuzz corpus.
//!
//! The corpus is race-free by construction and the corpus tests prove the
//! sanitizer stays silent on it; the static lints claim only *definite*
//! violations, so they must be silent here too (static-flagged ⊆
//! sanitizer-caught). The `unsafe_fixtures` test is the other inclusion
//! direction: kernels the sanitizer catches are flagged statically.

use std::collections::BTreeMap;
use std::sync::Arc;

use cuda_frontend::parse_kernel_with_spans;
use hfuse_analysis::{analyze_kernel, AnalysisOptions};
use hfuse_core::fuse::horizontal_fuse;
use hfuse_fuzz::gen::KernelSpec;

const CORPUS_SEEDS: [u64; 8] = [0, 7, 42, 0xdead, 0xbeef, 2024, 0x0b0e, 4242];

fn assert_clean(label: &str, src: &str, threads: u32, extents: Option<&KernelSpec>) {
    let (f, spans) = parse_kernel_with_spans(src).unwrap_or_else(|e| panic!("{label}: {e}\n{src}"));
    // The generated kernels' real buffer lengths: `out` gets one slot per
    // thread plus the atomic region, `in` has `n` ints. With these extents
    // the global-out-of-bounds lint is armed, so cleanliness here means it
    // holds no false positives over the corpus, not just that it abstained.
    let global_extents = extents.map(|k| {
        Arc::new(BTreeMap::from([
            ("out".to_owned(), i64::from(k.out_len())),
            ("in".to_owned(), i64::from(k.n)),
        ]))
    });
    let diags = analyze_kernel(
        &f,
        Some(&spans),
        &AnalysisOptions {
            block_threads: Some(threads),
            global_extents,
        },
    );
    assert!(
        diags.is_empty(),
        "{label}: static analyzer flagged a sanitizer-clean kernel:\n{}\nsource:\n{src}",
        diags
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn corpus_kernels_and_fused_outputs_analyze_clean() {
    for seed in CORPUS_SEEDS {
        for case in 0..40 {
            let (pair, _) = hfuse_fuzz::case_streams(seed, case);
            let src1 = pair.k1.render();
            let src2 = pair.k2.render();
            assert_clean(
                &format!("seed {seed} case {case} k1"),
                &src1,
                pair.k1.threads,
                Some(&pair.k1),
            );
            assert_clean(
                &format!("seed {seed} case {case} k2"),
                &src2,
                pair.k2.threads,
                Some(&pair.k2),
            );

            // The fused kernel re-analyzed from its printed source, so the
            // exact text the gate blessed is what the analyzer sees.
            let f1 = cuda_frontend::parse_kernel(&src1).expect("parse k1");
            let f2 = cuda_frontend::parse_kernel(&src2).expect("parse k2");
            let fused = horizontal_fuse(&f1, (pair.k1.threads, 1, 1), &f2, (pair.k2.threads, 1, 1))
                .unwrap_or_else(|e| panic!("seed {seed} case {case}: corpus pair must fuse: {e}"));
            // Fused parameter names are renamed apart, so no extents here.
            assert_clean(
                &format!("seed {seed} case {case} fused"),
                &fused.to_source(),
                fused.block_threads(),
                None,
            );
        }
    }
}
