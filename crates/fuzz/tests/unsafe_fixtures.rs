//! The hand-written unsafe fixtures ([`Segment::RacyExchange`],
//! [`Segment::DivergentBarrier`], [`Segment::OobShared`], and
//! [`Segment::OobGlobal`]) must be caught by BOTH detectors — the
//! static analyzer at compile time and the dynamic sanitizer / deadlock
//! detector at run time — and the fusion gate must refuse to fuse them.
//! Together with the clean-corpus cross-validation this pins the intended
//! inclusion: everything the static race lint flags, the dynamic side
//! catches too (the lint claims *definite* races only).

use std::collections::BTreeMap;
use std::sync::Arc;

use cuda_frontend::parse_kernel_with_spans;
use gpu_sim::{Gpu, GpuConfig, Launch, ParamValue};
use hfuse_analysis::{
    analyze_kernel, AnalysisOptions, CODE_BARRIER_DIVERGENCE, CODE_GLOBAL_OOB, CODE_SHARED_OOB,
    CODE_SHARED_RACE,
};
use hfuse_core::fuse::horizontal_fuse;
use hfuse_fuzz::gen::{CasePair, KernelSpec, Segment};
use hfuse_fuzz::rng::Rng;
use thread_ir::lower_kernel;

fn fixture(name: &str, segments: Vec<Segment>) -> KernelSpec {
    KernelSpec {
        name: name.to_owned(),
        threads: 64,
        grid: 1,
        n: 64,
        init: 3,
        segments,
    }
}

fn analyze(spec: &KernelSpec) -> Vec<cuda_frontend::Diagnostic> {
    let src = spec.render();
    let (f, spans) = parse_kernel_with_spans(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    analyze_kernel(
        &f,
        Some(&spans),
        &AnalysisOptions {
            block_threads: Some(spec.threads),
            ..AnalysisOptions::default()
        },
    )
}

/// Launches `spec` once on the functional simulator with the sanitizer on
/// and returns (run result message if any, sanitizer reports).
fn simulate(spec: &KernelSpec) -> (Result<(), String>, Vec<String>) {
    let src = spec.render();
    let f = cuda_frontend::parse_kernel(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let ir = lower_kernel(&f).expect("lower fixture");
    let input = CasePair::input_data(&mut Rng::new(9), spec.n);

    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    gpu.enable_sanitizer();
    let out = gpu.memory_mut().alloc_u32(spec.out_len() as usize);
    let inb = gpu.memory_mut().alloc_from_u32(&input);
    let launch = Launch::new(ir, spec.grid, (spec.threads, 1, 1))
        .arg(ParamValue::Ptr(out))
        .arg(ParamValue::Ptr(inb))
        .arg(ParamValue::I32(spec.n as i32));
    let run = gpu.run_functional(&[launch]).map_err(|e| e.to_string());
    let reports = gpu
        .take_sanitizer_reports()
        .iter()
        .map(ToString::to_string)
        .collect();
    (run, reports)
}

#[test]
fn racy_exchange_is_flagged_statically() {
    let diags = analyze(&fixture("racy", vec![Segment::RacyExchange]));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_SHARED_RACE);
}

#[test]
fn racy_exchange_is_caught_by_the_sanitizer() {
    let (run, reports) = simulate(&fixture("racy", vec![Segment::RacyExchange]));
    run.expect("the racy kernel still runs to completion");
    assert!(
        reports.iter().any(|r| r.contains("race")),
        "sanitizer must report the cross-warp exchange, got: {reports:?}"
    );
}

#[test]
fn divergent_barrier_is_flagged_statically() {
    let diags = analyze(&fixture("divb", vec![Segment::DivergentBarrier]));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_BARRIER_DIVERGENCE);
}

#[test]
fn divergent_barrier_deadlocks_dynamically() {
    let (run, _) = simulate(&fixture("divb", vec![Segment::DivergentBarrier]));
    let err = run.expect_err("half the block skips the barrier");
    assert!(err.contains("deadlock"), "{err}");
}

/// Like [`analyze`] but with the fixture's real buffer lengths supplied as
/// global extents, so the `global-out-of-bounds` lint can fire.
fn analyze_with_extents(spec: &KernelSpec) -> Vec<cuda_frontend::Diagnostic> {
    let src = spec.render();
    let (f, spans) = parse_kernel_with_spans(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let extents: BTreeMap<String, i64> = [
        ("out".to_owned(), i64::from(spec.out_len())),
        ("in".to_owned(), i64::from(spec.n)),
    ]
    .into();
    analyze_kernel(
        &f,
        Some(&spans),
        &AnalysisOptions {
            block_threads: Some(spec.threads),
            global_extents: Some(Arc::new(extents)),
        },
    )
}

#[test]
fn oob_shared_is_flagged_statically() {
    let diags = analyze(&fixture("oobs", vec![Segment::OobShared]));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_SHARED_OOB);
}

#[test]
fn oob_shared_is_caught_by_the_sanitizer() {
    // The faulting store aborts the run, but only after the sanitizer has
    // recorded the report.
    let (run, reports) = simulate(&fixture("oobs", vec![Segment::OobShared]));
    assert!(run.is_err(), "one-past-the-end store faults");
    assert!(
        reports.iter().any(|r| r.contains("out-of-bounds")),
        "sanitizer must report the shared overrun, got: {reports:?}"
    );
}

#[test]
fn oob_global_is_flagged_statically() {
    let spec = fixture("oobg", vec![Segment::OobGlobal]);
    assert!(
        analyze(&spec).is_empty(),
        "without extents the analyzer cannot claim a global overrun"
    );
    let diags = analyze_with_extents(&spec);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_GLOBAL_OOB);
}

#[test]
fn oob_global_is_caught_by_the_sanitizer() {
    let (run, reports) = simulate(&fixture("oobg", vec![Segment::OobGlobal]));
    assert!(run.is_err(), "the store past `out` faults");
    assert!(
        reports.iter().any(|r| r.contains("out-of-bounds")),
        "sanitizer must report the global overrun, got: {reports:?}"
    );
}

/// The clamped boundary read is in bounds — but only guard narrowing can
/// prove it. Both detectors must stay silent, with or without extents.
#[test]
fn clamped_index_is_clean_on_both_detectors() {
    let spec = fixture("clamp", vec![Segment::ClampedIndex { offset: 63 }]);
    assert!(analyze(&spec).is_empty(), "lint must trust the clamp");
    assert!(analyze_with_extents(&spec).is_empty());
    let (run, reports) = simulate(&spec);
    run.expect("clamped read stays in bounds");
    assert!(
        reports.is_empty(),
        "sanitizer must stay silent: {reports:?}"
    );
}

#[test]
fn fusion_gate_rejects_both_fixtures() {
    let clean = fixture(
        "ok",
        vec![Segment::ComputeLoop {
            trips: 2,
            mul: 3,
            add: 1,
            stride: 1,
        }],
    );
    let fc = cuda_frontend::parse_kernel(&clean.render()).expect("parse clean");
    for bad_seg in [Segment::RacyExchange, Segment::DivergentBarrier] {
        let bad = fixture("bad", vec![bad_seg.clone()]);
        let fb = cuda_frontend::parse_kernel(&bad.render()).expect("parse fixture");
        let err = horizontal_fuse(&fb, (64, 1, 1), &fc, (64, 1, 1))
            .err()
            .unwrap_or_else(|| panic!("{bad_seg:?} must not fuse"));
        assert!(
            err.to_string().contains("static safety"),
            "{bad_seg:?}: {err}"
        );
    }
}
