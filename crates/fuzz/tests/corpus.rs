//! The committed seed corpus: deterministic campaigns that every future
//! change to the frontend, fusion, or simulator must keep green.
//!
//! The first exploration of this corpus (seeds below, plus wider sweeps of
//! 300–500 cases per seed) surfaced no parser/printer round-trip or typeck
//! divergences — these tests pin that down as a regression net. If one
//! fails, the shrunk reproducer printed in the panic message is the place
//! to start.

/// Seeds committed as the regression corpus. Chosen arbitrarily but fixed
/// forever: changing them silently would invalidate the regression net.
/// `0xdead`/`0xbeef`/`2024` were added together with the reduction /
/// 2-D-index / accumulator-loop segments; `0x0b0e` and `4242` with the
/// clamped boundary-index segment and range-proven barrier elimination, so
/// the corpus keeps dedicated coverage of both.
const CORPUS_SEEDS: [u64; 8] = [0, 7, 42, 0xdead, 0xbeef, 2024, 0x0b0e, 4242];

fn assert_clean(seed: u64, cases: u64) {
    let result = hfuse_fuzz::run_campaign(seed, cases);
    if let Some(f) = result.failures.first() {
        panic!(
            "seed {seed} case {}: {}\nshrunk k1:\n{}\nshrunk k2:\n{}",
            f.case,
            f.shrunk_failure,
            f.shrunk.k1.render(),
            f.shrunk.k2.render(),
        );
    }
}

#[test]
fn corpus_seed_0_is_clean() {
    assert_clean(CORPUS_SEEDS[0], 120);
}

#[test]
fn corpus_seed_7_is_clean() {
    assert_clean(CORPUS_SEEDS[1], 120);
}

#[test]
fn corpus_seed_42_is_clean() {
    assert_clean(CORPUS_SEEDS[2], 120);
}

#[test]
fn corpus_seed_dead_is_clean() {
    assert_clean(CORPUS_SEEDS[3], 120);
}

#[test]
fn corpus_seed_beef_is_clean() {
    assert_clean(CORPUS_SEEDS[4], 120);
}

#[test]
fn corpus_seed_2024_is_clean() {
    assert_clean(CORPUS_SEEDS[5], 120);
}

#[test]
fn corpus_seed_0b0e_is_clean() {
    assert_clean(CORPUS_SEEDS[6], 120);
}

#[test]
fn corpus_seed_4242_is_clean() {
    assert_clean(CORPUS_SEEDS[7], 120);
}

/// The seeds added with the boundary-index work must actually generate
/// [`ClampedIndex`] segments, so the corpus keeps exercising the sanitizer
/// bounds check and the lint's guard narrowing on every run.
///
/// [`ClampedIndex`]: hfuse_fuzz::gen::Segment::ClampedIndex
#[test]
fn new_seeds_cover_the_clamped_boundary_segment() {
    use hfuse_fuzz::gen::Segment;

    for seed in [CORPUS_SEEDS[6], CORPUS_SEEDS[7]] {
        let mut clamped = 0usize;
        for case in 0..120 {
            let (pair, _) = hfuse_fuzz::case_streams(seed, case);
            for k in [&pair.k1, &pair.k2] {
                clamped += k
                    .segments
                    .iter()
                    .filter(|s| matches!(s, Segment::ClampedIndex { .. }))
                    .count();
            }
        }
        assert!(clamped > 0, "seed {seed} never generated ClampedIndex");
    }
}

/// The printer/parser round-trip holds for every corpus kernel *and* for
/// the printed fused kernel (goto guards, labels, `bar.sync id, n`).
#[test]
fn fused_sources_round_trip() {
    use cuda_frontend::{parse_kernel, printer::print_function};
    use hfuse_core::fuse::horizontal_fuse;

    for case in 0..40 {
        let (pair, _) = hfuse_fuzz::case_streams(1234, case);
        let f1 = parse_kernel(&pair.k1.render()).expect("parse k1");
        let f2 = parse_kernel(&pair.k2.render()).expect("parse k2");
        let fused = horizontal_fuse(&f1, (pair.k1.threads, 1, 1), &f2, (pair.k2.threads, 1, 1))
            .expect("fuse");
        let printed = fused.to_source();
        let reparsed = parse_kernel(&printed)
            .unwrap_or_else(|e| panic!("case {case}: fused source reparse: {e}\n{printed}"));
        assert_eq!(
            print_function(&reparsed),
            printed,
            "case {case}: printing is not a fixpoint on the fused kernel"
        );
    }
}
