//! CLI driver: `hfuse-fuzz --seed N --cases N`.
//!
//! Exits non-zero if any case fails the differential oracle, printing the
//! shrunk reproducer (both kernels' CUDA source) for each failure.

use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: hfuse-fuzz [--seed N] [--cases N] [--no-sanitize]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut seed: u64 = 0;
    let mut cases: u64 = 100;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parse = |v: Option<String>| -> u64 {
            v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--seed" => seed = parse(args.next()),
            "--cases" => cases = parse(args.next()),
            // The oracle reads the env var, so the flag and the variable
            // are the same switch; the sanitizer is on by default.
            "--no-sanitize" => std::env::set_var("HFUSE_FUZZ_NO_SANITIZE", "1"),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    println!("fuzzing {cases} case(s) from seed {seed} ...");
    let result = hfuse_fuzz::run_campaign(seed, cases);
    if result.ok() {
        println!("ok: {} case(s), zero equivalence failures", result.cases);
        return ExitCode::SUCCESS;
    }
    for f in &result.failures {
        println!("--- case {} FAILED: {}", f.case, f.failure);
        println!("shrunk failure: {}", f.shrunk_failure);
        println!(
            "shrunk k1 ({} threads, grid {}, n {}):",
            f.shrunk.k1.threads, f.shrunk.k1.grid, f.shrunk.k1.n
        );
        println!("{}", f.shrunk.k1.render());
        println!(
            "shrunk k2 ({} threads, grid {}, n {}):",
            f.shrunk.k2.threads, f.shrunk.k2.grid, f.shrunk.k2.n
        );
        println!("{}", f.shrunk.k2.render());
    }
    println!(
        "FAILED: {} of {} case(s) diverged",
        result.failures.len(),
        result.cases
    );
    ExitCode::FAILURE
}
