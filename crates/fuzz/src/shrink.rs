//! Greedy spec-level test-case shrinking.
//!
//! Shrinking operates on [`KernelSpec`]s, not source text, so every
//! candidate is well-formed by construction. The reducers, tried in order
//! of expected payoff:
//!
//! 1. **segment deletion** — drop one body phase of either kernel;
//! 2. **loop deflation** — cut a `ComputeLoop`'s trip count to 1;
//! 3. **geometry reduction** — shrink to one block / 32 threads / minimal
//!    input length;
//! 4. **constant minimization** — drive multipliers to 1 and additive /
//!    xor / offset constants toward 0 or 1.
//!
//! Each accepted candidate (one the oracle still fails) restarts the scan;
//! the loop stops at a fixpoint or after [`MAX_ATTEMPTS`] oracle calls.

use crate::gen::{CasePair, KernelSpec, Segment};

/// Upper bound on oracle invocations during one shrink.
pub const MAX_ATTEMPTS: usize = 400;

/// All single-step reductions of `spec`.
fn spec_candidates(spec: &KernelSpec) -> Vec<KernelSpec> {
    let mut out = Vec::new();
    // Segment deletion (keep at least an empty body — that's still valid).
    for i in 0..spec.segments.len() {
        let mut s = spec.clone();
        s.segments.remove(i);
        out.push(s);
    }
    // Geometry.
    if spec.grid > 1 {
        let mut s = spec.clone();
        s.grid = 1;
        s.n = s.n.min(s.grid * s.threads.max(32) + 1).max(s.threads);
        out.push(s);
    }
    if spec.threads > 32 {
        let mut s = spec.clone();
        s.threads = 32;
        out.push(s);
    }
    if spec.n > spec.grid * spec.threads {
        let mut s = spec.clone();
        s.n = s.grid * s.threads;
        out.push(s);
    }
    if spec.init != 0 {
        let mut s = spec.clone();
        s.init = 0;
        out.push(s);
    }
    // Per-segment simplifications.
    for i in 0..spec.segments.len() {
        for seg in segment_candidates(&spec.segments[i]) {
            let mut s = spec.clone();
            s.segments[i] = seg;
            out.push(s);
        }
    }
    out
}

fn segment_candidates(seg: &Segment) -> Vec<Segment> {
    let mut out = Vec::new();
    match *seg {
        Segment::ComputeLoop {
            trips,
            mul,
            add,
            stride,
        } => {
            if trips > 1 {
                out.push(Segment::ComputeLoop {
                    trips: 1,
                    mul,
                    add,
                    stride,
                });
            }
            if mul != 1 {
                out.push(Segment::ComputeLoop {
                    trips,
                    mul: 1,
                    add,
                    stride,
                });
            }
            if add != 0 {
                out.push(Segment::ComputeLoop {
                    trips,
                    mul,
                    add: 0,
                    stride,
                });
            }
            if stride != 0 {
                out.push(Segment::ComputeLoop {
                    trips,
                    mul,
                    add,
                    stride: 0,
                });
            }
        }
        Segment::Branch { modulus, mul, xor } => {
            if modulus != 1 {
                out.push(Segment::Branch {
                    modulus: 1,
                    mul,
                    xor,
                });
            }
            if xor != 1 {
                out.push(Segment::Branch {
                    modulus,
                    mul,
                    xor: 1,
                });
            }
            // A branch often reduces to plain arithmetic.
            out.push(Segment::ComputeLoop {
                trips: 1,
                mul,
                add: 1,
                stride: 0,
            });
        }
        Segment::SharedExchange { offset } => {
            if offset != 1 {
                out.push(Segment::SharedExchange { offset: 1 });
            }
        }
        Segment::Shuffle { xor, offset } => {
            if offset != 1 {
                out.push(Segment::Shuffle { xor, offset: 1 });
            }
        }
        Segment::Atomic { add, slot } => {
            // Shrink to the op's canonical slot, preserving the
            // slots-partitioned-by-op invariant of the generator.
            let canon = if add { 0 } else { crate::gen::ATOMIC_SLOTS / 2 };
            if slot != canon {
                out.push(Segment::Atomic { add, slot: canon });
            }
        }
        Segment::AccumLoop { trips, mul, stride } => {
            if trips > 1 {
                out.push(Segment::AccumLoop {
                    trips: 1,
                    mul,
                    stride,
                });
            }
            if stride != 1 {
                out.push(Segment::AccumLoop {
                    trips,
                    mul,
                    stride: 1,
                });
            }
        }
        Segment::Index2D { w } => {
            if w != 1 {
                out.push(Segment::Index2D { w: 1 });
            }
        }
        Segment::ClampedIndex { offset } => {
            if offset != 1 {
                out.push(Segment::ClampedIndex { offset: 1 });
            }
        }
        // The reduction and the hand-written fixtures carry no parameters
        // to reduce; segment deletion still applies.
        Segment::TreeReduce
        | Segment::RacyExchange
        | Segment::DivergentBarrier
        | Segment::OobShared
        | Segment::OobGlobal => {}
    }
    out
}

/// All single-step reductions of a case pair.
fn candidates(pair: &CasePair) -> Vec<CasePair> {
    let mut out = Vec::new();
    for k1 in spec_candidates(&pair.k1) {
        out.push(CasePair {
            k1,
            k2: pair.k2.clone(),
        });
    }
    for k2 in spec_candidates(&pair.k2) {
        out.push(CasePair {
            k1: pair.k1.clone(),
            k2,
        });
    }
    out
}

/// Greedily shrinks `pair`, keeping any candidate for which `still_fails`
/// returns true. Returns the smallest failing pair found.
pub fn shrink(pair: &CasePair, mut still_fails: impl FnMut(&CasePair) -> bool) -> CasePair {
    let mut current = pair.clone();
    let mut attempts = 0;
    'outer: loop {
        for cand in candidates(&current) {
            if attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            attempts += 1;
            if still_fails(&cand) {
                current = cand;
                continue 'outer; // restart the scan from the smaller case
            }
        }
        break; // fixpoint: no candidate still fails
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Synthetic predicate: "fails" whenever k1 contains an Atomic segment.
    /// The shrinker must reduce everything else away.
    #[test]
    fn shrinks_to_the_triggering_segment() {
        let mut rng = Rng::new(11);
        let mut pair = CasePair::generate(&mut rng);
        pair.k1
            .segments
            .push(Segment::Atomic { add: true, slot: 3 });
        let has_atomic = |p: &CasePair| {
            p.k1.segments
                .iter()
                .any(|s| matches!(s, Segment::Atomic { .. }))
        };
        assert!(has_atomic(&pair));
        let small = shrink(&pair, has_atomic);
        assert_eq!(small.k1.segments.len(), 1, "{:?}", small.k1.segments);
        assert!(matches!(
            small.k1.segments[0],
            Segment::Atomic { slot: 0, .. }
        ));
        assert!(small.k2.segments.is_empty(), "{:?}", small.k2.segments);
        assert_eq!(small.k1.threads, 32);
        assert_eq!(small.k1.grid, 1);
        assert_eq!(small.k1.init, 0);
    }

    /// Shrinking a passing case returns it unchanged.
    #[test]
    fn fixpoint_on_non_failing_case() {
        let pair = CasePair::generate(&mut Rng::new(5));
        let same = shrink(&pair, |_| false);
        assert_eq!(same, pair);
    }
}
