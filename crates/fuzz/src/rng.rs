//! In-tree seeded RNG (SplitMix64) — the workspace is deliberately
//! dependency-free, and reproducibility matters more than statistical
//! quality here: every generated kernel is a pure function of the seed.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Derives an independent stream for sub-task `index` (e.g. one fuzz
    /// case of a campaign) without consuming this generator.
    pub fn derive(&self, index: u64) -> Rng {
        Rng(self
            .0
            .wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let base = Rng::new(0);
        assert_ne!(base.derive(0).next_u64(), base.derive(1).next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.range(5, 12);
            assert!((5..12).contains(&v));
        }
    }
}
