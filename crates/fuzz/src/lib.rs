#![warn(missing_docs)]

//! `hfuse-fuzz`: a seeded fusion-equivalence fuzzer for the HFuse pipeline.
//!
//! The fuzzer generates random kernel *pairs* over the supported CUDA
//! dialect ([`gen`]), runs each pair through a differential oracle
//! ([`oracle`]) — unfused (two launches) versus horizontally fused via
//! `hfuse_core::fuse` on the `gpu-sim` functional simulator, with the
//! race/barrier sanitizer enabled on both schedules — and shrinks any
//! failure to a minimal reproducer ([`shrink`]).
//!
//! Everything is a pure function of the seed: re-running with the same
//! `--seed`/`--cases` reproduces the same kernels, inputs, and verdicts.

pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

use gen::CasePair;
use oracle::Failure;
use rng::Rng;

/// One failed (and shrunk) fuzz case.
#[derive(Debug)]
pub struct FailedCase {
    /// Index of the case within the campaign.
    pub case: u64,
    /// The original failure.
    pub failure: Failure,
    /// The shrunk reproducer.
    pub shrunk: CasePair,
    /// The shrunk pair's failure (stage may differ after shrinking).
    pub shrunk_failure: Failure,
}

/// Summary of a fuzz campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// Cases executed.
    pub cases: u64,
    /// Failures, each with a shrunk reproducer.
    pub failures: Vec<FailedCase>,
}

impl CampaignResult {
    /// True when every case passed the oracle.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Generates the pair and input stream for campaign case `case` of `seed`.
/// Exposed so external tests (e.g. the simulator's differential suite) can
/// reuse the exact corpus the campaign would run.
pub fn case_streams(seed: u64, case: u64) -> (CasePair, Rng) {
    let base = Rng::new(seed);
    let mut gen_rng = base.derive(case * 2);
    let input_rng = base.derive(case * 2 + 1);
    (CasePair::generate(&mut gen_rng), input_rng)
}

/// Runs `cases` seeded cases through the differential oracle, shrinking
/// every failure. Deterministic in `seed`.
pub fn run_campaign(seed: u64, cases: u64) -> CampaignResult {
    let mut failures = Vec::new();
    for case in 0..cases {
        let (pair, input_rng) = case_streams(seed, case);
        if let Err(failure) = oracle::run_case(&pair, &mut input_rng.clone()) {
            let shrunk = shrink::shrink(&pair, |cand| {
                oracle::run_case(cand, &mut input_rng.clone()).is_err()
            });
            let shrunk_failure = oracle::run_case(&shrunk, &mut input_rng.clone())
                .expect_err("shrink preserves failure");
            failures.push(FailedCase {
                case,
                failure,
                shrunk,
                shrunk_failure,
            });
        }
    }
    CampaignResult { cases, failures }
}
