//! The differential oracle: a generated pair must survive the whole
//! pipeline — parse, print/re-parse round-trip, lowering, horizontal
//! fusion, and simulation — with the fused kernel producing *bitwise*
//! identical device memory to the two unfused launches, and the race
//! sanitizer staying silent on both schedules.

use cuda_frontend::ast::Function;
use cuda_frontend::{parse_kernel, printer::print_function};
use gpu_sim::{Gpu, GpuConfig, Launch, ParamValue};
use hfuse_core::fuse::horizontal_fuse;
use thread_ir::lower_kernel;

use crate::gen::CasePair;
use crate::rng::Rng;

/// Why a case failed the oracle.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Pipeline stage that failed (`parse`, `round-trip`, `lower`, `fuse`,
    /// `sim-unfused`, `sim-fused`, `memory-diff`, `sanitizer-…`).
    pub stage: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

fn fail(stage: &'static str, detail: impl Into<String>) -> Failure {
    Failure {
        stage,
        detail: detail.into(),
    }
}

/// True when `HFUSE_FUZZ_NO_SANITIZE` (any value but `0`) opts the fuzz
/// oracle out of the race/barrier sanitizer. The sanitizer is **on by
/// default**: every case runs both schedules under it and any report is an
/// oracle failure. The opt-out exists for timing comparisons and for
/// reproducing a memory-diff failure without the sanitizer aborting first.
pub fn sanitizer_disabled_by_env() -> bool {
    gpu_sim::env::fuzz_no_sanitize()
}

/// Parses `src` and checks the printer/parser round-trip: printing the AST
/// and re-parsing it must reproduce the AST exactly.
fn parse_round_trip(src: &str) -> Result<Function, Failure> {
    let f = parse_kernel(src).map_err(|e| fail("parse", format!("{e}\nsource:\n{src}")))?;
    let printed = print_function(&f);
    let f2 = parse_kernel(&printed).map_err(|e| {
        fail(
            "round-trip",
            format!("reparse failed: {e}\nprinted:\n{printed}"),
        )
    })?;
    if f != f2 {
        return Err(fail(
            "round-trip",
            format!("print→parse changed the AST\nprinted:\n{printed}"),
        ));
    }
    Ok(f)
}

/// Runs one generated case through the full differential oracle.
///
/// `input_rng` supplies the (deterministic) buffer contents; both schedules
/// see identical inputs.
///
/// # Errors
///
/// Returns a [`Failure`] naming the first pipeline stage that diverged.
pub fn run_case(pair: &CasePair, input_rng: &mut Rng) -> Result<(), Failure> {
    run_case_sanitized(pair, input_rng, !sanitizer_disabled_by_env())
}

/// [`run_case`] with the sanitizer choice made explicit instead of read
/// from the environment.
///
/// # Errors
///
/// Returns a [`Failure`] naming the first pipeline stage that diverged.
pub fn run_case_sanitized(
    pair: &CasePair,
    input_rng: &mut Rng,
    sanitize: bool,
) -> Result<(), Failure> {
    let src1 = pair.k1.render();
    let src2 = pair.k2.render();
    let f1 = parse_round_trip(&src1)?;
    let f2 = parse_round_trip(&src2)?;

    let ir1 = lower_kernel(&f1).map_err(|e| fail("lower", format!("k1: {e}\n{src1}")))?;
    let ir2 = lower_kernel(&f2).map_err(|e| fail("lower", format!("k2: {e}\n{src2}")))?;

    let in1 = CasePair::input_data(input_rng, pair.k1.n);
    let in2 = CasePair::input_data(input_rng, pair.k2.n);

    // Unfused reference: two launches, back to back.
    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    if sanitize {
        gpu.enable_sanitizer();
    }
    let out1 = gpu.memory_mut().alloc_u32(pair.k1.out_len() as usize);
    let in1b = gpu.memory_mut().alloc_from_u32(&in1);
    let out2 = gpu.memory_mut().alloc_u32(pair.k2.out_len() as usize);
    let in2b = gpu.memory_mut().alloc_from_u32(&in2);
    let l1 = Launch::new(ir1, pair.k1.grid, (pair.k1.threads, 1, 1))
        .arg(ParamValue::Ptr(out1))
        .arg(ParamValue::Ptr(in1b))
        .arg(ParamValue::I32(pair.k1.n as i32));
    let l2 = Launch::new(ir2, pair.k2.grid, (pair.k2.threads, 1, 1))
        .arg(ParamValue::Ptr(out2))
        .arg(ParamValue::Ptr(in2b))
        .arg(ParamValue::I32(pair.k2.n as i32));
    gpu.run_functional(&[l1, l2])
        .map_err(|e| fail("sim-unfused", format!("{e}\nk1:\n{src1}\nk2:\n{src2}")))?;
    let reports = gpu.take_sanitizer_reports();
    if !reports.is_empty() {
        return Err(fail(
            "sanitizer-unfused",
            format!("{}\nk1:\n{src1}\nk2:\n{src2}", reports[0]),
        ));
    }
    let ref1 = gpu.memory().bytes(out1).to_vec();
    let ref2 = gpu.memory().bytes(out2).to_vec();

    // Fused: one launch through core::fuse, via printed source so the
    // goto/label/bar.sync printer and parser paths are exercised too.
    let fused = horizontal_fuse(&f1, (pair.k1.threads, 1, 1), &f2, (pair.k2.threads, 1, 1))
        .map_err(|e| fail("fuse", format!("{e}\nk1:\n{src1}\nk2:\n{src2}")))?;
    let fused_src = fused.to_source();
    let fused_fn = parse_kernel(&fused_src)
        .map_err(|e| fail("round-trip", format!("fused reparse: {e}\n{fused_src}")))?;
    let fused_ir =
        lower_kernel(&fused_fn).map_err(|e| fail("lower", format!("fused: {e}\n{fused_src}")))?;

    let mut gpu = Gpu::new(GpuConfig::test_tiny());
    if sanitize {
        gpu.enable_sanitizer();
    }
    let fout1 = gpu.memory_mut().alloc_u32(pair.k1.out_len() as usize);
    let fin1 = gpu.memory_mut().alloc_from_u32(&in1);
    let fout2 = gpu.memory_mut().alloc_u32(pair.k2.out_len() as usize);
    let fin2 = gpu.memory_mut().alloc_from_u32(&in2);
    let launch = Launch::new(fused_ir, pair.k1.grid, (fused.block_threads(), 1, 1))
        .arg(ParamValue::Ptr(fout1))
        .arg(ParamValue::Ptr(fin1))
        .arg(ParamValue::I32(pair.k1.n as i32))
        .arg(ParamValue::Ptr(fout2))
        .arg(ParamValue::Ptr(fin2))
        .arg(ParamValue::I32(pair.k2.n as i32));
    gpu.run_functional(&[launch])
        .map_err(|e| fail("sim-fused", format!("{e}\n{fused_src}")))?;
    let reports = gpu.take_sanitizer_reports();
    if !reports.is_empty() {
        return Err(fail(
            "sanitizer-fused",
            format!("{}\n{fused_src}", reports[0]),
        ));
    }

    if gpu.memory().bytes(fout1) != ref1.as_slice() {
        return Err(fail(
            "memory-diff",
            format!(
                "k1 output differs after fusion (first diff at int {})\n{fused_src}",
                first_diff(&ref1, gpu.memory().bytes(fout1))
            ),
        ));
    }
    if gpu.memory().bytes(fout2) != ref2.as_slice() {
        return Err(fail(
            "memory-diff",
            format!(
                "k2 output differs after fusion (first diff at int {})\n{fused_src}",
                first_diff(&ref2, gpu.memory().bytes(fout2))
            ),
        ));
    }
    Ok(())
}

fn first_diff(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).position(|(x, y)| x != y).unwrap_or(0) / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{KernelSpec, Segment};

    fn spec(name: &str, segments: Vec<Segment>) -> KernelSpec {
        KernelSpec {
            name: name.to_owned(),
            threads: 64,
            grid: 2,
            n: 130,
            init: 3,
            segments,
        }
    }

    #[test]
    fn hand_built_pair_passes() {
        let pair = CasePair {
            k1: spec(
                "ka",
                vec![
                    Segment::SharedExchange { offset: 5 },
                    Segment::Shuffle {
                        xor: true,
                        offset: 4,
                    },
                ],
            ),
            k2: spec(
                "kb",
                vec![
                    Segment::ComputeLoop {
                        trips: 3,
                        mul: 5,
                        add: 2,
                        stride: 1,
                    },
                    Segment::Atomic { add: true, slot: 0 },
                ],
            ),
        };
        run_case(&pair, &mut Rng::new(1)).expect("oracle");
    }
}
