//! Spec-driven random kernel generation over the supported CUDA dialect.
//!
//! A [`KernelSpec`] is a small, shrinkable description of one kernel:
//! structured control flow (counted loops, tid-dependent branches),
//! `__shared__` exchange phases, warp shuffles, integer atomics, and
//! `__syncthreads()`. Specs render to CUDA *source text* — the oracle then
//! parses, prints, re-parses, lowers, fuses, and simulates them, so the
//! whole frontend pipeline is exercised, not just the AST constructors.
//!
//! Generated kernels are **race-free and deterministic by construction**:
//!
//! * every thread writes only its own `out[g]` slot and its own `s[t]`
//!   shared slot; cross-thread shared reads happen strictly between
//!   `__syncthreads()` pairs;
//! * atomics are commutative integer ops (`atomicAdd`/`atomicMax`) on
//!   reserved slots past the per-thread output region, with slots
//!   partitioned per op so no slot ever sees an add/max mix: any
//!   execution order yields the same bits;
//! * thread counts are warp multiples, so fusion's `d1 % 32 == 0`
//!   precondition holds and shuffle lanes survive fusion unchanged;
//! * all arithmetic is `int` (wrapping, bit-exact on the simulator).
//!
//! Any divergence between the unfused pair and the fused kernel is
//! therefore a genuine bug in the frontend, fusion, or simulator.

use std::fmt::Write as _;

use crate::rng::Rng;

/// Reserved atomic slots appended after the `grid * threads` per-thread
/// output region of the `out` buffer.
pub const ATOMIC_SLOTS: u32 = 4;

/// One phase of a generated kernel body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// `for (i = 0; i < trips; i++) acc = acc * mul + in[(g + i*stride) % n] + add;`
    ComputeLoop {
        /// Loop trip count (≥ 1).
        trips: u32,
        /// Multiplier constant.
        mul: i32,
        /// Additive constant.
        add: i32,
        /// Input stride per iteration.
        stride: u32,
    },
    /// `if (t % modulus == 0) acc = acc * mul + 1; else acc = acc ^ xor;`
    Branch {
        /// Branch modulus (≥ 1); 1 makes the branch warp-uniform.
        modulus: u32,
        /// Then-side multiplier.
        mul: i32,
        /// Else-side xor mask.
        xor: i32,
    },
    /// `s[t] = acc; __syncthreads(); acc += s[(t+offset) % T]; __syncthreads();`
    SharedExchange {
        /// Read offset (mod the block size).
        offset: u32,
    },
    /// `acc += __shfl_xor_sync(...)` or `__shfl_down_sync(...)`.
    Shuffle {
        /// True for `xor`, false for `down`.
        xor: bool,
        /// Lane operand (1..=16).
        offset: u32,
    },
    /// `atomicAdd(&out[NT+slot], acc)` or `atomicMax(...)`. Generated
    /// slots are partitioned by op (adds in the low half, maxes in the
    /// high half of the reserved region): each op commutes with itself
    /// but an add/max mix on one slot would be order-sensitive.
    Atomic {
        /// True for `atomicAdd`, false for `atomicMax`.
        add: bool,
        /// Reserved slot index (< [`ATOMIC_SLOTS`]).
        slot: u32,
    },
    /// Shared-memory tree reduction over the whole block, like the BLAS
    /// `Dot` kernel: `s[t] = acc;` then halving strides with a barrier per
    /// round, then every thread folds `s[0]` into `acc`. Barriers sit
    /// outside the `t < r` guard, so the block always converges.
    TreeReduce,
    /// 2-D re-indexing read over a `w`-wide image layout, like the stencil
    /// family: `x = g % w; y = g / w; acc += in[(y*w + (w-1-x)) % n];`.
    Index2D {
        /// Row width (≥ 1).
        w: u32,
    },
    /// A separate loop-carried accumulator folded into `acc` at the end,
    /// like `Gemv`'s row loop:
    /// `a = acc; for (i < trips) a = a * mul + in[(g*stride + i) % n]; acc += a;`
    AccumLoop {
        /// Loop trip count (≥ 1).
        trips: u32,
        /// Multiplier constant.
        mul: i32,
        /// Per-thread row stride.
        stride: u32,
    },
    /// A boundary-clamped shared read, off-by-one-prone by design:
    /// `s[t] = acc; __syncthreads();` then `c = t + offset` clamped to
    /// `threads - 1` before indexing `s[c]`. The clamp keeps it in bounds
    /// (the static OOB lint and the sanitizer must both stay silent), but
    /// only the guard narrowing in the range analysis can prove it.
    ClampedIndex {
        /// Raw offset before clamping (≥ 1).
        offset: u32,
    },
    /// **Fixture only — never generated randomly.** An unsynchronised
    /// cross-warp shared exchange: `s[t] = acc;` immediately followed by a
    /// guarded read of `s[t + 32]` with no barrier in between. A definite
    /// read/write race that both the static race lint and the dynamic
    /// sanitizer must report.
    RacyExchange,
    /// **Fixture only — never generated randomly.** A barrier under a
    /// tid-dependent guard: `if (t % 2 == 0) __syncthreads();`. Flagged
    /// statically as barrier divergence and deadlocks dynamically.
    DivergentBarrier,
    /// **Fixture only — never generated randomly.** A one-past-the-end
    /// shared store: `s[t + 1] = acc;` with no clamp, so the last thread
    /// writes `s[threads]`. Must be caught by the static
    /// `shared-out-of-bounds` lint and by the dynamic sanitizer.
    OobShared,
    /// **Fixture only — never generated randomly.** A global store one
    /// past the `out` buffer: `if (t == 0) out[out_len] = acc;`. Must be
    /// caught by the static `global-out-of-bounds` lint (given the buffer
    /// extent) and by the dynamic sanitizer.
    OobGlobal,
}

/// A complete generated kernel: geometry plus body phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel name.
    pub name: String,
    /// Threads per block (multiple of 32, ≤ 128).
    pub threads: u32,
    /// Grid size in blocks.
    pub grid: u32,
    /// Input buffer length in `int`s (≥ `grid * threads`).
    pub n: u32,
    /// Initial accumulator constant.
    pub init: i32,
    /// Body phases, in order.
    pub segments: Vec<Segment>,
}

impl KernelSpec {
    /// Generates a random spec named `name`. `grid` and `threads_choices`
    /// are imposed by the caller so a *pair* of kernels shares a grid.
    pub fn generate(rng: &mut Rng, name: &str, grid: u32) -> Self {
        let threads = 32 * rng.range(1, 5) as u32; // 32, 64, 96, 128
        let nt = grid * threads;
        let n = nt + rng.range(0, 17) as u32;
        let n_segments = rng.range(1, 6);
        let mut segments = Vec::new();
        for _ in 0..n_segments {
            segments.push(Self::gen_segment(rng));
        }
        KernelSpec {
            name: name.to_owned(),
            threads,
            grid,
            n,
            init: rng.range(0, 100) as i32,
            segments,
        }
    }

    fn gen_segment(rng: &mut Rng) -> Segment {
        match rng.range(0, 14) {
            0..=3 => Segment::ComputeLoop {
                trips: rng.range(1, 9) as u32,
                mul: *rng.pick(&[1, 3, 5, 7, 31]),
                add: rng.range(0, 16) as i32,
                stride: rng.range(0, 8) as u32,
            },
            4 | 5 => Segment::Branch {
                modulus: *rng.pick(&[1, 2, 3, 4, 32]),
                mul: *rng.pick(&[3, 5, 9]),
                xor: rng.range(1, 256) as i32,
            },
            6 | 7 => Segment::SharedExchange {
                offset: rng.range(1, 32) as u32,
            },
            8 => Segment::Shuffle {
                xor: rng.chance(1, 2),
                offset: *rng.pick(&[1, 2, 4, 8, 16]),
            },
            9 => {
                // Slots are partitioned by op: adds commute with adds and
                // maxes with maxes, but an add/max mix on one slot is
                // order-sensitive and would break the determinism oracle.
                let add = rng.chance(1, 2);
                let half = ATOMIC_SLOTS / 2;
                let slot = rng.range(0, u64::from(half)) as u32 + if add { 0 } else { half };
                Segment::Atomic { add, slot }
            }
            10 => Segment::TreeReduce,
            11 => Segment::Index2D {
                w: *rng.pick(&[3, 5, 8, 16]),
            },
            12 => Segment::AccumLoop {
                trips: rng.range(1, 9) as u32,
                mul: *rng.pick(&[3, 5, 17]),
                stride: rng.range(1, 8) as u32,
            },
            _ => Segment::ClampedIndex {
                offset: rng.range(1, 48) as u32,
            },
        }
    }

    /// Length of the `out` buffer in `int`s: one slot per thread plus the
    /// reserved atomic slots.
    pub fn out_len(&self) -> u32 {
        self.grid * self.threads + ATOMIC_SLOTS
    }

    /// True if any phase touches the `__shared__` array.
    pub fn uses_shared(&self) -> bool {
        self.segments.iter().any(|s| {
            matches!(
                s,
                Segment::SharedExchange { .. }
                    | Segment::TreeReduce
                    | Segment::ClampedIndex { .. }
                    | Segment::RacyExchange
                    | Segment::OobShared
            )
        })
    }

    /// Renders the spec as CUDA source.
    pub fn render(&self) -> String {
        let mut src = String::new();
        let _ = writeln!(
            src,
            "__global__ void {}(int* out, int* in, int n) {{",
            self.name
        );
        if self.uses_shared() {
            let _ = writeln!(src, "  __shared__ int s[{}];", self.threads);
        }
        src.push_str("  int t = threadIdx.x;\n");
        src.push_str("  int b = blockIdx.x;\n");
        src.push_str("  int g = b * blockDim.x + t;\n");
        let _ = writeln!(src, "  int acc = in[g % n] + {};", self.init);
        for (i, seg) in self.segments.iter().enumerate() {
            match seg {
                Segment::ComputeLoop {
                    trips,
                    mul,
                    add,
                    stride,
                } => {
                    let _ = writeln!(src, "  for (int i{i} = 0; i{i} < {trips}; i{i}++) {{");
                    let _ = writeln!(
                        src,
                        "    acc = acc * {mul} + in[(g + i{i} * {stride}) % n] + {add};"
                    );
                    src.push_str("  }\n");
                }
                Segment::Branch { modulus, mul, xor } => {
                    let _ = writeln!(
                        src,
                        "  if (t % {modulus} == 0) {{ acc = acc * {mul} + 1; }} \
                         else {{ acc = acc ^ {xor}; }}"
                    );
                }
                Segment::SharedExchange { offset } => {
                    src.push_str("  s[t] = acc;\n");
                    src.push_str("  __syncthreads();\n");
                    let _ = writeln!(src, "  acc = acc + s[(t + {offset}) % {}];", self.threads);
                    src.push_str("  __syncthreads();\n");
                }
                Segment::Shuffle { xor, offset } => {
                    let f = if *xor {
                        "__shfl_xor_sync"
                    } else {
                        "__shfl_down_sync"
                    };
                    let _ = writeln!(src, "  acc = acc + {f}(0xffffffffu, acc, {offset}, 32);");
                }
                Segment::Atomic { add, slot } => {
                    let f = if *add { "atomicAdd" } else { "atomicMax" };
                    let idx = self.grid * self.threads + slot;
                    let _ = writeln!(src, "  {f}(&out[{idx}], acc);");
                }
                Segment::TreeReduce => {
                    src.push_str("  s[t] = acc;\n");
                    src.push_str("  __syncthreads();\n");
                    let _ = writeln!(
                        src,
                        "  for (int r{i} = {}; r{i} > 0; r{i} = r{i} / 2) {{",
                        self.threads / 2
                    );
                    let _ = writeln!(src, "    if (t < r{i}) {{ s[t] = s[t] + s[t + r{i}]; }}");
                    src.push_str("    __syncthreads();\n");
                    src.push_str("  }\n");
                    // Every thread reads the root; the trailing barrier
                    // orders later segments' writes to s[t] after it.
                    src.push_str("  acc = acc + s[0];\n");
                    src.push_str("  __syncthreads();\n");
                }
                Segment::Index2D { w } => {
                    let _ = writeln!(src, "  int x{i} = g % {w};");
                    let _ = writeln!(src, "  int y{i} = g / {w};");
                    let _ = writeln!(
                        src,
                        "  acc = acc + in[(y{i} * {w} + ({} - x{i})) % n];",
                        w - 1
                    );
                }
                Segment::AccumLoop { trips, mul, stride } => {
                    let _ = writeln!(src, "  int a{i} = acc;");
                    let _ = writeln!(src, "  for (int i{i} = 0; i{i} < {trips}; i{i}++) {{");
                    let _ = writeln!(
                        src,
                        "    a{i} = a{i} * {mul} + in[(g * {stride} + i{i}) % n];"
                    );
                    src.push_str("  }\n");
                    let _ = writeln!(src, "  acc = acc + a{i};");
                }
                Segment::ClampedIndex { offset } => {
                    src.push_str("  s[t] = acc;\n");
                    src.push_str("  __syncthreads();\n");
                    let _ = writeln!(src, "  int c{i} = t + {offset};");
                    let t = self.threads;
                    let _ = writeln!(src, "  if (c{i} >= {t}) {{ c{i} = {}; }}", t - 1);
                    let _ = writeln!(src, "  acc = acc + s[c{i}];");
                    src.push_str("  __syncthreads();\n");
                }
                Segment::RacyExchange => {
                    src.push_str("  s[t] = acc;\n");
                    let _ = writeln!(
                        src,
                        "  if (t < {}) {{ acc = acc + s[t + 32]; }}",
                        self.threads - 32
                    );
                }
                Segment::DivergentBarrier => {
                    src.push_str("  if (t % 2 == 0) { __syncthreads(); }\n");
                }
                Segment::OobShared => {
                    src.push_str("  s[t + 1] = acc;\n");
                }
                Segment::OobGlobal => {
                    let _ = writeln!(src, "  if (t == 0) {{ out[{}] = acc; }}", self.out_len());
                }
            }
        }
        src.push_str("  out[g] = acc;\n");
        src.push_str("}\n");
        src
    }
}

/// A generated fuzz case: two kernels sharing one grid, fused as (k1, k2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasePair {
    /// First kernel (fusion partition `d1`).
    pub k1: KernelSpec,
    /// Second kernel (fusion partition `d2`).
    pub k2: KernelSpec,
}

impl CasePair {
    /// Generates a case pair from the given stream.
    pub fn generate(rng: &mut Rng) -> Self {
        let grid = rng.range(1, 3) as u32;
        CasePair {
            k1: KernelSpec::generate(rng, "fz_a", grid),
            k2: KernelSpec::generate(rng, "fz_b", grid),
        }
    }

    /// Deterministic input data for a kernel of this case.
    pub fn input_data(rng: &mut Rng, len: u32) -> Vec<u32> {
        (0..len).map(|_| rng.range(0, 256) as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = CasePair::generate(&mut Rng::new(42));
        let b = CasePair::generate(&mut Rng::new(42));
        assert_eq!(a, b);
        assert_eq!(a.k1.render(), b.k1.render());
    }

    #[test]
    fn geometry_invariants_hold() {
        for seed in 0..200 {
            let p = CasePair::generate(&mut Rng::new(seed));
            for k in [&p.k1, &p.k2] {
                assert_eq!(k.threads % 32, 0, "warp-multiple block");
                assert!(k.threads >= 32 && k.threads <= 128);
                assert!(k.n >= k.grid * k.threads, "inputs cover every thread");
                assert!(!k.segments.is_empty());
            }
            assert_eq!(p.k1.grid, p.k2.grid, "pair shares a grid");
        }
    }

    #[test]
    fn new_segments_render_and_parse() {
        let spec = KernelSpec {
            name: "nz".to_owned(),
            threads: 96, // non-power-of-two: the reduction must still halve
            grid: 2,
            n: 200,
            init: 3,
            segments: vec![
                Segment::Index2D { w: 5 },
                Segment::TreeReduce,
                Segment::AccumLoop {
                    trips: 4,
                    mul: 17,
                    stride: 2,
                },
                Segment::ClampedIndex { offset: 40 },
            ],
        };
        assert!(spec.uses_shared(), "TreeReduce uses the shared array");
        let src = spec.render();
        assert!(
            src.contains("r1 = 48"),
            "reduction starts at threads/2:\n{src}"
        );
        assert!(
            src.contains("if (c3 >= 96) { c3 = 95; }"),
            "clamped index renders its guard:\n{src}"
        );
        cuda_frontend::parse_kernel(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    }

    #[test]
    fn oob_fixture_segments_render_and_parse() {
        let spec = KernelSpec {
            name: "oob".to_owned(),
            threads: 64,
            grid: 1,
            n: 64,
            init: 0,
            segments: vec![Segment::OobShared, Segment::OobGlobal],
        };
        assert!(spec.uses_shared(), "OobShared uses the shared array");
        let src = spec.render();
        assert!(src.contains("s[t + 1] = acc;"), "{src}");
        assert!(
            src.contains(&format!("out[{}] = acc;", spec.out_len())),
            "{src}"
        );
        cuda_frontend::parse_kernel(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    }

    #[test]
    fn generator_emits_every_segment_kind() {
        // The widened segment space must actually be reachable.
        let mut seen = [false; 9];
        for seed in 0..200 {
            let p = CasePair::generate(&mut Rng::new(seed));
            for k in [&p.k1, &p.k2] {
                for s in &k.segments {
                    seen[match s {
                        Segment::ComputeLoop { .. } => 0,
                        Segment::Branch { .. } => 1,
                        Segment::SharedExchange { .. } => 2,
                        Segment::Shuffle { .. } => 3,
                        Segment::Atomic { .. } => 4,
                        Segment::TreeReduce => 5,
                        Segment::Index2D { .. } => 6,
                        Segment::AccumLoop { .. } => 7,
                        Segment::ClampedIndex { .. } => 8,
                        Segment::RacyExchange
                        | Segment::DivergentBarrier
                        | Segment::OobShared
                        | Segment::OobGlobal => continue,
                    }] = true;
                }
            }
        }
        assert_eq!(seen, [true; 9], "some segment kind never generated");
    }

    #[test]
    fn rendered_source_parses() {
        for seed in 0..50 {
            let p = CasePair::generate(&mut Rng::new(seed));
            for k in [&p.k1, &p.k2] {
                cuda_frontend::parse_kernel(&k.render())
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", k.render()));
            }
        }
    }
}
