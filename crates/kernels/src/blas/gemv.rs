//! Dense matrix-vector product, one output row per thread: a loop-carried
//! fused-multiply-add accumulator over the row's columns. Compute-heavier
//! than `axpy` but with the same per-output independence, so the CPU mirror
//! matches bitwise.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Gemv workload: `rows × cols` matrix times a `cols` vector.
#[derive(Debug, Clone)]
pub struct Gemv {
    /// Matrix rows (output length).
    pub rows: u32,
    /// Matrix columns (vector length).
    pub cols: u32,
}

impl Default for Gemv {
    fn default() -> Self {
        Self {
            rows: 2048,
            cols: 64,
        }
    }
}

impl Gemv {
    /// Scales the row count by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rows: ((f64::from(self.rows) * factor).round() as u32).max(64),
            cols: self.cols,
        }
    }

    fn matrix_data(&self) -> Vec<f32> {
        (0..(self.rows * self.cols) as usize)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    fn vector_data(&self) -> Vec<f32> {
        (0..self.cols as usize)
            .map(|i| {
                let h = (i as u32).wrapping_mul(747796405).wrapping_add(2891336453);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// CPU reference, mirroring the kernel's accumulation order exactly
    /// (`acc = a*x + acc` per column, mul-then-add like the lowered `fmaf`).
    pub fn reference(&self, a: &[f32], x: &[f32]) -> Vec<f32> {
        let (m, n) = (self.rows as usize, self.cols as usize);
        (0..m)
            .map(|r| {
                let mut acc = 0.0f32;
                for c in 0..n {
                    #[allow(clippy::assign_op_pattern)]
                    {
                        acc = a[r * n + c] * x[c] + acc;
                    }
                }
                acc
            })
            .collect()
    }
}

impl Benchmark for Gemv {
    fn name(&self) -> &'static str {
        "Gemv"
    }

    fn source(&self) -> String {
        r#"
__global__ void gemv(float* y, float* a, float* x, int M, int N) {
    for (int r = blockIdx.x * blockDim.x + threadIdx.x; r < M;
         r += gridDim.x * blockDim.x) {
        float acc = 0.0f;
        for (int c = 0; c < N; c = c + 1) {
            acc = fmaf(a[r * N + c], x[c], acc);
        }
        y[r] = acc;
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let y_buf = mem.alloc_f32(self.rows as usize);
        let a_buf = mem.alloc_from_f32(&self.matrix_data());
        let x_buf = mem.alloc_from_f32(&self.vector_data());
        vec![
            ParamValue::Ptr(y_buf),
            ParamValue::Ptr(a_buf),
            ParamValue::Ptr(x_buf),
            ParamValue::I32(self.rows as i32),
            ParamValue::I32(self.cols as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.matrix_data(), &self.vector_data());
        // Each row is reduced sequentially by one thread: exact match.
        compare_f32(&got, &want, 0.0, "gemv")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference_bitwise() {
        let wl = Gemv {
            rows: 512,
            cols: 32,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (wl.default_threads(), 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn reference_accumulates_in_column_order() {
        let wl = Gemv { rows: 2, cols: 2 };
        let y = wl.reference(&[1.0, 2.0, 3.0, 4.0], &[10.0, 100.0]);
        assert_eq!(y, vec![210.0, 430.0]);
    }
}
