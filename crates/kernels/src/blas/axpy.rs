//! `y = a*x + y` (SAXPY): one fused multiply-add per element, two loads and
//! one store — the purest memory-bound streaming kernel in the suite.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Axpy workload: vectors of `n` elements, scalar multiplier `a`.
#[derive(Debug, Clone)]
pub struct Axpy {
    /// Vector length.
    pub n: u32,
    /// Scalar multiplier.
    pub a: f32,
}

impl Default for Axpy {
    fn default() -> Self {
        Self {
            n: 1 << 16,
            a: 0.75,
        }
    }
}

impl Axpy {
    /// Scales the vector length by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            n: ((f64::from(self.n) * factor).round() as u32).max(1024),
            a: self.a,
        }
    }

    fn x_data(&self) -> Vec<f32> {
        (0..self.n as usize)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    fn y_data(&self) -> Vec<f32> {
        (0..self.n as usize)
            .map(|i| {
                let h = (i as u32).wrapping_mul(40503).wrapping_add(2463534242);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// CPU reference. `fmaf` lowers to a multiply then an add on the
    /// simulator (two roundings), so the mirror is `a * x + y`, not
    /// `f32::mul_add` — the results match bitwise.
    pub fn reference(&self, x: &[f32], y: &[f32]) -> Vec<f32> {
        x.iter().zip(y).map(|(xi, yi)| self.a * xi + yi).collect()
    }
}

impl Benchmark for Axpy {
    fn name(&self) -> &'static str {
        "Axpy"
    }

    fn source(&self) -> String {
        r#"
__global__ void axpy(float* y, float* x, float a, int n) {
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;
         i += gridDim.x * blockDim.x) {
        y[i] = fmaf(a, x[i], y[i]);
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let y_buf = mem.alloc_from_f32(&self.y_data());
        let x_buf = mem.alloc_from_f32(&self.x_data());
        vec![
            ParamValue::Ptr(y_buf),
            ParamValue::Ptr(x_buf),
            ParamValue::F32(self.a),
            ParamValue::I32(self.n as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.x_data(), &self.y_data());
        // Per-element work is geometry-independent: exact match required.
        compare_f32(&got, &want, 0.0, "axpy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference_bitwise() {
        let wl = Axpy {
            n: 4096,
            ..Axpy::default()
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (wl.default_threads(), 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn reference_is_mul_then_add() {
        let wl = Axpy { n: 1, a: 3.0 };
        let out = wl.reference(&[2.0], &[1.0]);
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn scaled_keeps_a_floor() {
        assert!(Axpy::default().scaled(0.001).n >= 1024);
    }
}
