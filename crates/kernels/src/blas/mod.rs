//! BLAS-shaped benchmark kernels (the fusion-set space mapped by
//! Filipovič et al., arXiv:1305.1183): `axpy`, a block-partial `dot` with a
//! shared-memory tree reduction, and a row-per-thread `gemv`.
//!
//! These stress dialect corners the paper kernels never touch: fused
//! multiply-add (`fmaf`), a tree reduction that must stay correct for the
//! non-power-of-two block sizes the fusion search produces, and loop-carried
//! accumulators.

pub mod axpy;
pub mod dot;
pub mod gemv;
