//! Block-partial dot product: a grid-stride fused-multiply-add accumulation
//! followed by a shared-memory tree reduction, one partial sum per block.
//!
//! The reduction descends from the next power of two above `blockDim.x` with
//! a guarded add, so it stays correct for the non-power-of-two block sizes
//! (e.g. 384) the fusion search assigns to thread-space partitions. The
//! barrier sits outside the thread guard: its trip count depends only on
//! `blockDim.x`, which keeps it block-uniform.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{ptr_arg, Benchmark};

/// Maximum block threads a fused partition can assign; sizes the dynamic
/// shared scratch so any partition fits.
const MAX_BLOCK_THREADS: u32 = 1024;

/// Dot workload: two vectors of `n` elements, one partial sum per block.
#[derive(Debug, Clone)]
pub struct Dot {
    /// Vector length.
    pub n: u32,
}

impl Default for Dot {
    fn default() -> Self {
        Self { n: 1 << 16 }
    }
}

impl Dot {
    /// Scales the vector length by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            n: ((f64::from(self.n) * factor).round() as u32).max(1024),
        }
    }

    fn x_data(&self) -> Vec<f32> {
        (0..self.n as usize)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    fn y_data(&self) -> Vec<f32> {
        (0..self.n as usize)
            .map(|i| {
                let h = (i as u32).wrapping_mul(1597334677).wrapping_add(88675123);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// CPU reference in `f64`: the order the GPU sums its partials in
    /// depends on the launch geometry, so the check compares the *sum* of
    /// the partials against this with a relative tolerance instead of
    /// demanding bitwise agreement.
    pub fn reference(&self, x: &[f32], y: &[f32]) -> f64 {
        x.iter()
            .zip(y)
            .map(|(a, b)| f64::from(*a) * f64::from(*b))
            .sum()
    }
}

impl Benchmark for Dot {
    fn name(&self) -> &'static str {
        "Dot"
    }

    fn source(&self) -> String {
        r#"
__global__ void dot(float* out, float* x, float* y, int n) {
    extern __shared__ float s[];
    int t = threadIdx.x;
    float acc = 0.0f;
    for (int i = blockIdx.x * blockDim.x + t; i < n;
         i += gridDim.x * blockDim.x) {
        acc = fmaf(x[i], y[i], acc);
    }
    s[t] = acc;
    __syncthreads();
    int r = 1;
    while (r < blockDim.x) {
        r = r * 2;
    }
    for (r = r / 2; r > 0; r = r / 2) {
        if (t < r && t + r < blockDim.x) {
            s[t] = s[t] + s[t + r];
        }
        __syncthreads();
    }
    if (t == 0) {
        out[blockIdx.x] = s[0];
    }
}
"#
        .to_owned()
    }

    fn dynamic_shared(&self) -> u32 {
        MAX_BLOCK_THREADS * 4
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let out_buf = mem.alloc_f32(self.grid_dim() as usize);
        let x_buf = mem.alloc_from_f32(&self.x_data());
        let y_buf = mem.alloc_from_f32(&self.y_data());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(x_buf),
            ParamValue::Ptr(y_buf),
            ParamValue::I32(self.n as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let partials = mem.read_f32s(ptr_arg(args, 0));
        let got: f64 = partials.iter().map(|p| f64::from(*p)).sum();
        let want = self.reference(&self.x_data(), &self.y_data());
        let scale = want.abs().max(1.0);
        if (got - want).abs() > 1e-3 * scale {
            return Err(format!("dot: got {got}, want {want}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    fn run_with_block(wl: &Dot, block: u32) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (block, 1, 1),
            dynamic_shared_bytes: wl.dynamic_shared(),
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn gpu_matches_reference() {
        run_with_block(&Dot { n: 8192 }, 256);
    }

    #[test]
    fn tree_reduction_survives_non_power_of_two_blocks() {
        // The fusion search hands out partitions like 96 or 384 threads.
        for block in [32, 96, 160, 384] {
            run_with_block(&Dot { n: 4096 }, block);
        }
    }

    #[test]
    fn reference_is_exact_in_f64() {
        let wl = Dot { n: 3 };
        let r = wl.reference(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(r, 32.0);
    }
}
