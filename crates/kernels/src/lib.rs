#![warn(missing_docs)]

//! The paper's nine benchmark kernels, written in the CUDA dialect, with
//! workload generators and CPU reference implementations.
//!
//! Five deep-learning kernels (extracted from PyTorch in the paper) and four
//! cryptography kernels (from ethminer / ccminer):
//!
//! | Kernel    | Character | Tunable block dim |
//! |-----------|-----------|-------------------|
//! | Maxpool   | memory-bound (4 loads / 1 store, trivial compute) | yes |
//! | Batchnorm | shuffles + shared memory + 2 barriers | yes (y = 16) |
//! | Upsample  | bilinear interpolation, memory-heavy | yes |
//! | Im2Col    | index-arithmetic heavy, mixed | yes |
//! | Hist      | shared-memory atomics (`extern __shared__`) | yes |
//! | Ethash    | dependent pseudo-random DAG loads (synthetic DAG) | no |
//! | SHA256    | unrolled 64-round compression, pure ALU | no |
//! | Blake256  | unrolled 14-round BLAKE-256, pure ALU | no |
//! | Blake2B   | unrolled 12-round BLAKE2b, 64-bit ALU | no |
//!
//! Two *extension* kernels beyond the paper's set (excluded from the
//! replication figures): Softmax (special-function-unit bound) and a tiled
//! Transpose (pure data movement through shared memory).
//!
//! Three *family* sets beyond the paper's workloads, opening the scenario
//! space (ROADMAP item 4):
//!
//! | Kernel     | Family | Character | CPU-reference agreement |
//! |------------|--------|-----------|-------------------------|
//! | Axpy       | BLAS   | streaming `fmaf`, memory-bound | bitwise |
//! | Dot        | BLAS   | grid-stride MAC + shared-memory tree reduction | partial-sum tolerance |
//! | Gemv       | BLAS   | row-per-thread loop-carried accumulator | bitwise |
//! | Blur       | image  | separable 3×3 stencil, clamped edges, 2-D index | bitwise |
//! | Downsample | image  | 2× box filter, 2-D index | bitwise |
//! | Attention  | attn   | tiled QKᵀ + online softmax + ×V, shared tiles in a loop | bitwise |
//!
//! Every benchmark implements [`Benchmark`]: it can upload its inputs to a
//! simulated GPU, produce a [`hfuse_core::FusionInput`] for the fusion
//! search, and check the GPU results against a CPU reference.

pub mod any;
pub mod attn;
pub mod blas;
pub mod crypto;
pub mod dl;
pub mod image;

pub use any::{all_pairs, crypto_pairs, dl_pairs, family_pairs, AnyBenchmark, PairSpec};

use cuda_frontend::ast::Function;
use cuda_frontend::parse_kernel;
use gpu_sim::{GpuMemory, ParamValue};
use hfuse_core::{BlockShape, FusionInput};

/// Grid dimension of the deep-learning benchmarks. Any two benchmarks of
/// the same domain share a grid so they can be fused (a fused kernel runs
/// with one grid).
pub const DEFAULT_GRID: u32 = 64;

/// Grid dimension of the cryptography benchmarks (their per-thread work is
/// much larger, so a smaller grid keeps simulation time reasonable).
pub const CRYPTO_GRID: u32 = 32;

/// A benchmark kernel: source, launch geometry, inputs, and a result check.
pub trait Benchmark {
    /// Display name, matching the paper (e.g. `"Batchnorm"`).
    fn name(&self) -> &'static str;

    /// CUDA source of the kernel.
    fn source(&self) -> String;

    /// Whether the block dimension is tunable (deep-learning kernels are,
    /// crypto kernels are not — Section IV-A).
    fn tunable(&self) -> bool {
        true
    }

    /// Block threads used for native runs.
    fn default_threads(&self) -> u32 {
        256
    }

    /// Thread-shape rule mapping a thread count to 3-D block dims.
    fn shape(&self) -> BlockShape {
        BlockShape::Linear
    }

    /// Grid dimension.
    fn grid_dim(&self) -> u32 {
        DEFAULT_GRID
    }

    /// Dynamic `extern __shared__` bytes required.
    fn dynamic_shared(&self) -> u32 {
        0
    }

    /// Allocates and fills the kernel's buffers; returns its argument list.
    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue>;

    /// Verifies the kernel's outputs against the CPU reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String>;

    /// Parses the kernel source.
    ///
    /// # Panics
    ///
    /// Panics if the source does not parse — benchmark sources are fixed at
    /// build time, so this is a bug, not an input error.
    fn kernel(&self) -> Function {
        parse_kernel(&self.source())
            .unwrap_or_else(|e| panic!("benchmark `{}` source must parse: {e}", self.name()))
    }

    /// Builds the [`FusionInput`] for this benchmark, uploading its inputs
    /// into `mem`.
    fn fusion_input(&self, mem: &mut GpuMemory) -> FusionInput {
        let args = self.setup(mem);
        FusionInput {
            kernel: self.kernel(),
            args,
            grid_dim: self.grid_dim(),
            dynamic_shared: self.dynamic_shared(),
            default_threads: self.default_threads(),
            tunable: self.tunable(),
            shape: self.shape(),
        }
    }
}

/// Returns pointer argument `i` or panics (test helper used across modules).
pub(crate) fn ptr_arg(args: &[ParamValue], i: usize) -> gpu_sim::BufferId {
    match args[i] {
        ParamValue::Ptr(b) => b,
        other => panic!("argument {i} expected to be a pointer, got {other:?}"),
    }
}

/// Compares two `f32` slices with a relative tolerance, reporting the first
/// mismatch.
pub(crate) fn compare_f32(got: &[f32], want: &[f32], tol: f32, what: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{what}: length {} != {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > tol * scale {
            return Err(format!("{what}[{i}]: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// The five deep-learning benchmarks with paper-default workloads.
pub fn dl_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(dl::maxpool::Maxpool::default()),
        Box::new(dl::batchnorm::Batchnorm::default()),
        Box::new(dl::upsample::Upsample::default()),
        Box::new(dl::im2col::Im2Col::default()),
        Box::new(dl::hist::Hist::default()),
    ]
}

/// The four cryptography benchmarks with paper-default workloads.
pub fn crypto_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(crypto::ethash::Ethash::default()),
        Box::new(crypto::sha256::Sha256::default()),
        Box::new(crypto::blake256::Blake256::default()),
        Box::new(crypto::blake2b::Blake2b::default()),
    ]
}

/// The six family benchmarks (BLAS, image stencil, attention) with default
/// workloads.
pub fn family_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(blas::axpy::Axpy::default()),
        Box::new(blas::dot::Dot::default()),
        Box::new(blas::gemv::Gemv::default()),
        Box::new(image::blur::Blur::default()),
        Box::new(image::downsample::Downsample::default()),
        Box::new(attn::attention::Attention::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmark_sources_parse() {
        for b in dl_benchmarks()
            .iter()
            .chain(crypto_benchmarks().iter())
            .chain(family_benchmarks().iter())
        {
            let k = b.kernel();
            assert!(k.is_kernel, "{} must be __global__", b.name());
        }
    }

    #[test]
    fn all_benchmarks_lower_to_ir() {
        for b in dl_benchmarks()
            .iter()
            .chain(crypto_benchmarks().iter())
            .chain(family_benchmarks().iter())
        {
            let ir = thread_ir::lower_kernel(&b.kernel())
                .unwrap_or_else(|e| panic!("{} must lower: {e}", b.name()));
            assert!(ir.insts.len() > 5, "{}", b.name());
            let p = ir.reg_pressure();
            assert!(p <= 200, "{}: implausible pressure {p}", b.name());
        }
    }

    #[test]
    fn crypto_benchmarks_are_not_tunable() {
        for b in crypto_benchmarks() {
            assert!(!b.tunable(), "{}", b.name());
        }
        for b in dl_benchmarks() {
            assert!(b.tunable(), "{}", b.name());
        }
    }

    #[test]
    fn compare_f32_reports_mismatch_index() {
        let err = compare_f32(&[1.0, 2.0], &[1.0, 3.0], 1e-5, "t").unwrap_err();
        assert!(err.contains("t[1]"), "{err}");
        assert!(compare_f32(&[1.0], &[1.0 + 1e-7], 1e-5, "t").is_ok());
    }
}
