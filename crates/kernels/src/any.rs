//! Uniform handle over the nine benchmarks and the sixteen evaluation pairs
//! of the paper (ten deep-learning pairs, six crypto pairs), plus the
//! extension kernels and the BLAS / image-stencil / attention families.

use crate::attn::attention::Attention;
use crate::blas::{axpy::Axpy, dot::Dot, gemv::Gemv};
use crate::crypto::{blake256::Blake256, blake2b::Blake2b, ethash::Ethash, sha256::Sha256};
use crate::dl::{
    batchnorm::Batchnorm, hist::Hist, im2col::Im2Col, maxpool::Maxpool, softmax::Softmax,
    transpose::Transpose, upsample::Upsample,
};
use crate::image::{blur::Blur, downsample::Downsample};
use crate::Benchmark;

/// Any of the nine benchmark kernels, with its workload parameters.
#[derive(Debug, Clone)]
pub enum AnyBenchmark {
    /// 2-D max pooling.
    Maxpool(Maxpool),
    /// Batch-norm statistics (the paper's Fig. 2 kernel).
    Batchnorm(Batchnorm),
    /// Bilinear upsampling.
    Upsample(Upsample),
    /// Image-to-column rearrangement.
    Im2Col(Im2Col),
    /// Histogram (the paper's Fig. 3 kernel).
    Hist(Hist),
    /// Ethash proof-of-work (synthetic DAG).
    Ethash(Ethash),
    /// SHA-256 proof-of-work.
    Sha256(Sha256),
    /// BLAKE-256 proof-of-work.
    Blake256(Blake256),
    /// BLAKE2b proof-of-work.
    Blake2b(Blake2b),
    /// Row-wise softmax (extension kernel, not in the paper's evaluation).
    Softmax(Softmax),
    /// Tiled matrix transpose (extension kernel, not in the paper's
    /// evaluation).
    Transpose(Transpose),
    /// SAXPY `y = a*x + y` (BLAS family).
    Axpy(Axpy),
    /// Block-partial dot product with shared-memory tree reduction (BLAS
    /// family).
    Dot(Dot),
    /// Row-per-thread matrix-vector product (BLAS family).
    Gemv(Gemv),
    /// Separable 3×3 binomial blur (image family).
    Blur(Blur),
    /// 2× box-filter downsample (image family).
    Downsample(Downsample),
    /// Tiled online-softmax attention (attention family).
    Attention(Attention),
}

impl AnyBenchmark {
    /// Borrows the underlying [`Benchmark`].
    pub fn benchmark(&self) -> &dyn Benchmark {
        match self {
            AnyBenchmark::Maxpool(b) => b,
            AnyBenchmark::Batchnorm(b) => b,
            AnyBenchmark::Upsample(b) => b,
            AnyBenchmark::Im2Col(b) => b,
            AnyBenchmark::Hist(b) => b,
            AnyBenchmark::Ethash(b) => b,
            AnyBenchmark::Sha256(b) => b,
            AnyBenchmark::Blake256(b) => b,
            AnyBenchmark::Blake2b(b) => b,
            AnyBenchmark::Softmax(b) => b,
            AnyBenchmark::Transpose(b) => b,
            AnyBenchmark::Axpy(b) => b,
            AnyBenchmark::Dot(b) => b,
            AnyBenchmark::Gemv(b) => b,
            AnyBenchmark::Blur(b) => b,
            AnyBenchmark::Downsample(b) => b,
            AnyBenchmark::Attention(b) => b,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.benchmark().name()
    }

    /// Returns the same benchmark with its workload scaled by `factor`
    /// (the Fig. 7 execution-time-ratio sweeps scale the starred kernel).
    pub fn scaled(&self, factor: f64) -> AnyBenchmark {
        match self {
            AnyBenchmark::Maxpool(b) => AnyBenchmark::Maxpool(b.scaled(factor)),
            AnyBenchmark::Batchnorm(b) => AnyBenchmark::Batchnorm(b.scaled(factor)),
            AnyBenchmark::Upsample(b) => AnyBenchmark::Upsample(b.scaled(factor)),
            AnyBenchmark::Im2Col(b) => AnyBenchmark::Im2Col(b.scaled(factor)),
            AnyBenchmark::Hist(b) => AnyBenchmark::Hist(b.scaled(factor)),
            AnyBenchmark::Ethash(b) => AnyBenchmark::Ethash(b.scaled(factor)),
            AnyBenchmark::Sha256(b) => AnyBenchmark::Sha256(b.scaled(factor)),
            AnyBenchmark::Blake256(b) => AnyBenchmark::Blake256(b.scaled(factor)),
            AnyBenchmark::Blake2b(b) => AnyBenchmark::Blake2b(b.scaled(factor)),
            AnyBenchmark::Softmax(b) => AnyBenchmark::Softmax(b.scaled(factor)),
            AnyBenchmark::Transpose(b) => AnyBenchmark::Transpose(b.scaled(factor)),
            AnyBenchmark::Axpy(b) => AnyBenchmark::Axpy(b.scaled(factor)),
            AnyBenchmark::Dot(b) => AnyBenchmark::Dot(b.scaled(factor)),
            AnyBenchmark::Gemv(b) => AnyBenchmark::Gemv(b.scaled(factor)),
            AnyBenchmark::Blur(b) => AnyBenchmark::Blur(b.scaled(factor)),
            AnyBenchmark::Downsample(b) => AnyBenchmark::Downsample(b.scaled(factor)),
            AnyBenchmark::Attention(b) => AnyBenchmark::Attention(b.scaled(factor)),
        }
    }

    /// All nine benchmarks with default workloads, in the paper's order.
    pub fn all() -> Vec<AnyBenchmark> {
        vec![
            AnyBenchmark::Maxpool(Maxpool::default()),
            AnyBenchmark::Batchnorm(Batchnorm::default()),
            AnyBenchmark::Upsample(Upsample::default()),
            AnyBenchmark::Im2Col(Im2Col::default()),
            AnyBenchmark::Hist(Hist::default()),
            AnyBenchmark::Ethash(Ethash::default()),
            AnyBenchmark::Sha256(Sha256::default()),
            AnyBenchmark::Blake256(Blake256::default()),
            AnyBenchmark::Blake2b(Blake2b::default()),
        ]
    }

    /// Extension kernels beyond the paper's evaluation set.
    pub fn extensions() -> Vec<AnyBenchmark> {
        vec![
            AnyBenchmark::Softmax(Softmax::default()),
            AnyBenchmark::Transpose(Transpose::default()),
        ]
    }

    /// The six family kernels (BLAS, image stencil, attention) beyond the
    /// paper's workload set.
    pub fn families() -> Vec<AnyBenchmark> {
        vec![
            AnyBenchmark::Axpy(Axpy::default()),
            AnyBenchmark::Dot(Dot::default()),
            AnyBenchmark::Gemv(Gemv::default()),
            AnyBenchmark::Blur(Blur::default()),
            AnyBenchmark::Downsample(Downsample::default()),
            AnyBenchmark::Attention(Attention::default()),
        ]
    }

    /// Looks a benchmark up by its display name (paper set, extensions, and
    /// families).
    pub fn by_name(name: &str) -> Option<AnyBenchmark> {
        Self::all()
            .into_iter()
            .chain(Self::extensions())
            .chain(Self::families())
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }
}

/// One evaluation pair. The *starred* member is the one whose input size the
/// ratio sweep varies (marked `*K*` in the paper's Fig. 7 subplot titles).
#[derive(Debug, Clone)]
pub struct PairSpec {
    /// First kernel (receives the `[0, d1)` thread interval).
    pub first: AnyBenchmark,
    /// Second kernel (receives the `[d1, d0)` interval).
    pub second: AnyBenchmark,
    /// Which member is starred: 0 = first, 1 = second.
    pub starred: usize,
}

impl PairSpec {
    fn new(first: AnyBenchmark, second: AnyBenchmark, starred: usize) -> Self {
        Self {
            first,
            second,
            starred,
        }
    }

    /// The pair's display name with the starred member marked, e.g.
    /// `*Batchnorm*+Hist`.
    pub fn name(&self) -> String {
        let (a, b) = (self.first.name(), self.second.name());
        if self.starred == 0 {
            format!("*{a}*+{b}")
        } else {
            format!("{a}+*{b}*")
        }
    }

    /// Returns the pair with the starred member's workload scaled.
    pub fn at_scale(&self, factor: f64) -> (AnyBenchmark, AnyBenchmark) {
        if self.starred == 0 {
            (self.first.scaled(factor), self.second.clone())
        } else {
            (self.first.clone(), self.second.scaled(factor))
        }
    }
}

/// The ten deep-learning pairs, in the order of the paper's Fig. 9.
pub fn dl_pairs() -> Vec<PairSpec> {
    use AnyBenchmark as B;
    vec![
        PairSpec::new(
            B::Batchnorm(Batchnorm::default()),
            B::Upsample(Upsample::default()),
            1,
        ),
        PairSpec::new(
            B::Batchnorm(Batchnorm::default()),
            B::Hist(Hist::default()),
            0,
        ),
        PairSpec::new(
            B::Batchnorm(Batchnorm::default()),
            B::Im2Col(Im2Col::default()),
            0,
        ),
        PairSpec::new(
            B::Batchnorm(Batchnorm::default()),
            B::Maxpool(Maxpool::default()),
            0,
        ),
        PairSpec::new(B::Hist(Hist::default()), B::Im2Col(Im2Col::default()), 1),
        PairSpec::new(B::Hist(Hist::default()), B::Maxpool(Maxpool::default()), 1),
        PairSpec::new(
            B::Hist(Hist::default()),
            B::Upsample(Upsample::default()),
            1,
        ),
        PairSpec::new(
            B::Im2Col(Im2Col::default()),
            B::Maxpool(Maxpool::default()),
            0,
        ),
        PairSpec::new(
            B::Im2Col(Im2Col::default()),
            B::Upsample(Upsample::default()),
            1,
        ),
        PairSpec::new(
            B::Maxpool(Maxpool::default()),
            B::Upsample(Upsample::default()),
            1,
        ),
    ]
}

/// The six cryptography pairs, in the order of the paper's Fig. 9.
pub fn crypto_pairs() -> Vec<PairSpec> {
    use AnyBenchmark as B;
    vec![
        PairSpec::new(
            B::Blake2b(Blake2b::default()),
            B::Ethash(Ethash::default()),
            1,
        ),
        PairSpec::new(
            B::Blake256(Blake256::default()),
            B::Ethash(Ethash::default()),
            1,
        ),
        PairSpec::new(
            B::Ethash(Ethash::default()),
            B::Sha256(Sha256::default()),
            0,
        ),
        PairSpec::new(
            B::Blake256(Blake256::default()),
            B::Blake2b(Blake2b::default()),
            0,
        ),
        PairSpec::new(
            B::Blake256(Blake256::default()),
            B::Sha256(Sha256::default()),
            0,
        ),
        PairSpec::new(
            B::Blake2b(Blake2b::default()),
            B::Sha256(Sha256::default()),
            0,
        ),
    ]
}

/// All sixteen evaluation pairs.
pub fn all_pairs() -> Vec<PairSpec> {
    let mut v = dl_pairs();
    v.extend(crypto_pairs());
    v
}

/// Four pairs drawn from the BLAS / image / attention families (beyond the
/// paper's evaluation set): a streaming+stencil mix, a reduction+stencil
/// mix, and two compute-heavy combinations.
pub fn family_pairs() -> Vec<PairSpec> {
    use AnyBenchmark as B;
    vec![
        PairSpec::new(B::Axpy(Axpy::default()), B::Blur(Blur::default()), 1),
        PairSpec::new(
            B::Dot(Dot::default()),
            B::Downsample(Downsample::default()),
            0,
        ),
        PairSpec::new(
            B::Gemv(Gemv::default()),
            B::Attention(Attention::default()),
            1,
        ),
        PairSpec::new(
            B::Attention(Attention::default()),
            B::Softmax(Softmax::default()),
            0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_pairs_total() {
        assert_eq!(dl_pairs().len(), 10);
        assert_eq!(crypto_pairs().len(), 6);
        assert_eq!(all_pairs().len(), 16);
    }

    #[test]
    fn pair_names_mark_the_starred_member() {
        let pairs = dl_pairs();
        assert_eq!(pairs[1].name(), "*Batchnorm*+Hist");
        assert_eq!(pairs[0].name(), "Batchnorm+*Upsample*");
    }

    #[test]
    fn scaling_affects_only_the_starred_member() {
        let pair = &dl_pairs()[1]; // *Batchnorm*+Hist
        let (a, b) = pair.at_scale(2.0);
        let AnyBenchmark::Batchnorm(bn) = &a else {
            panic!("first is batchnorm")
        };
        assert_eq!(bn.width, Batchnorm::default().width * 2);
        let AnyBenchmark::Hist(h) = &b else {
            panic!("second is hist")
        };
        assert_eq!(h.total, Hist::default().total);
    }

    #[test]
    fn extensions_are_not_in_the_paper_set() {
        let paper: Vec<&str> = AnyBenchmark::all().iter().map(|b| b.name()).collect();
        for e in AnyBenchmark::extensions() {
            assert!(!paper.contains(&e.name()), "{}", e.name());
        }
        assert_eq!(AnyBenchmark::all().len(), 9);
        assert_eq!(AnyBenchmark::extensions().len(), 2);
    }

    #[test]
    fn families_are_disjoint_from_paper_set_and_tunable() {
        let paper: Vec<&str> = AnyBenchmark::all().iter().map(|b| b.name()).collect();
        for f in AnyBenchmark::families() {
            assert!(!paper.contains(&f.name()), "{}", f.name());
            assert!(f.benchmark().tunable(), "{}", f.name());
            assert_eq!(
                f.benchmark().grid_dim(),
                crate::DEFAULT_GRID,
                "{}",
                f.name()
            );
        }
        assert_eq!(AnyBenchmark::families().len(), 6);
        assert_eq!(family_pairs().len(), 4);
    }

    #[test]
    fn by_name_round_trips() {
        for b in AnyBenchmark::all()
            .into_iter()
            .chain(AnyBenchmark::extensions())
            .chain(AnyBenchmark::families())
        {
            let found = AnyBenchmark::by_name(b.name()).expect("find by name");
            assert_eq!(found.name(), b.name());
        }
        assert!(AnyBenchmark::by_name("nope").is_none());
    }

    #[test]
    fn crypto_pairs_are_fixed_block_dl_tunable() {
        for p in crypto_pairs() {
            assert!(!p.first.benchmark().tunable());
            assert!(!p.second.benchmark().tunable());
        }
        for p in dl_pairs() {
            assert!(p.first.benchmark().tunable());
        }
    }
}
