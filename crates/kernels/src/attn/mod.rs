//! Attention-style benchmark kernel: a tiled QKᵀ score computation with an
//! online-softmax accumulation into ×V, the core loop shape of
//! FlashAttention-style kernels. Stresses shared-memory tiling inside a
//! data-sized loop, block-uniform barrier conditions, and a per-thread
//! local accumulator array.

pub mod attention;
