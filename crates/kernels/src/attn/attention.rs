//! Tiled single-head attention, one query row per thread.
//!
//! Keys and values stream through `__shared__` tiles of 16 rows; each
//! thread keeps a running online-softmax state (`m`, `l`) and a 16-wide
//! local accumulator, so no second pass over the scores is needed.
//!
//! The outer loop iterates a block-uniform row *base* (`row0`, no
//! `threadIdx.x` term) and derives each thread's row inside the body, so
//! the `__syncthreads()` around the cooperative tile loads are reached by
//! all threads of a block or none — which keeps the kernel legal under the
//! barrier-divergence lint and fusable as either partition.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Head dimension, fixed in the kernel source (also the K/V tile rows).
pub const HEAD_DIM: usize = 16;

/// Attention workload: `rows` query rows over `keys` key/value rows, head
/// dimension fixed at [`HEAD_DIM`].
#[derive(Debug, Clone)]
pub struct Attention {
    /// Query rows.
    pub rows: u32,
    /// Key/value rows (multiple of 16).
    pub keys: u32,
    /// Score scale (1/√d for real attention).
    pub scale: f32,
}

impl Default for Attention {
    fn default() -> Self {
        Self {
            rows: 2048,
            keys: 64,
            scale: 0.25,
        }
    }
}

impl Attention {
    /// Scales the query-row count by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rows: ((f64::from(self.rows) * factor).round() as u32).max(64),
            keys: self.keys,
            scale: self.scale,
        }
    }

    fn data(&self, len: usize, mult: u32, add: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(mult).wrapping_add(add);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    fn q_data(&self) -> Vec<f32> {
        self.data(self.rows as usize * HEAD_DIM, 2654435761, 0)
    }

    fn k_data(&self) -> Vec<f32> {
        self.data(self.keys as usize * HEAD_DIM, 1597334677, 362437)
    }

    fn v_data(&self) -> Vec<f32> {
        self.data(self.keys as usize * HEAD_DIM, 747796405, 2891336453)
    }

    /// CPU reference, mirroring the kernel's key order and rounding exactly
    /// (`fmaf` is mul-then-add on the simulator; `expf` is `f32::exp`).
    pub fn reference(&self, q: &[f32], k: &[f32], v: &[f32]) -> Vec<f32> {
        let (rows, keys) = (self.rows as usize, self.keys as usize);
        let mut out = vec![0.0f32; rows * HEAD_DIM];
        for r in 0..rows {
            let mut m = -1.0e30f32;
            let mut l = 0.0f32;
            let mut acc = [0.0f32; HEAD_DIM];
            for t in 0..keys {
                let mut s = 0.0f32;
                for d in 0..HEAD_DIM {
                    // Mirrors the kernel's `fmaf` lowering (mul-then-add
                    // operand order) for bitwise agreement.
                    #[allow(clippy::assign_op_pattern)]
                    {
                        s = q[r * HEAD_DIM + d] * k[t * HEAD_DIM + d] + s;
                    }
                }
                s *= self.scale;
                let mn = m.max(s);
                let corr = (m - mn).exp();
                let p = (s - mn).exp();
                l = l * corr + p;
                for d in 0..HEAD_DIM {
                    acc[d] = acc[d] * corr + p * v[t * HEAD_DIM + d];
                }
                m = mn;
            }
            for d in 0..HEAD_DIM {
                out[r * HEAD_DIM + d] = acc[d] / l;
            }
        }
        out
    }
}

impl Benchmark for Attention {
    fn name(&self) -> &'static str {
        "Attention"
    }

    fn source(&self) -> String {
        r#"
__global__ void attention(float* out, float* q, float* k, float* v,
                          float scale, int M, int N) {
    __shared__ float kt[256];
    __shared__ float vt[256];
    for (int row0 = blockIdx.x * blockDim.x; row0 < M;
         row0 += gridDim.x * blockDim.x) {
        int row = row0 + threadIdx.x;
        float acc[16];
        float m = -1.0e30f;
        float l = 0.0f;
        for (int d = 0; d < 16; d = d + 1) {
            acc[d] = 0.0f;
        }
        for (int t0 = 0; t0 < N; t0 += 16) {
            __syncthreads();
            for (int j = threadIdx.x; j < 256; j += blockDim.x) {
                kt[j] = k[t0 * 16 + j];
                vt[j] = v[t0 * 16 + j];
            }
            __syncthreads();
            if (row < M) {
                for (int t = 0; t < 16; t = t + 1) {
                    float s = 0.0f;
                    for (int d = 0; d < 16; d = d + 1) {
                        s = fmaf(q[row * 16 + d], kt[t * 16 + d], s);
                    }
                    s = s * scale;
                    float mn = fmaxf(m, s);
                    float corr = expf(m - mn);
                    float p = expf(s - mn);
                    l = l * corr + p;
                    for (int d = 0; d < 16; d = d + 1) {
                        acc[d] = acc[d] * corr + p * vt[t * 16 + d];
                    }
                    m = mn;
                }
            }
        }
        if (row < M) {
            for (int d = 0; d < 16; d = d + 1) {
                out[row * 16 + d] = acc[d] / l;
            }
        }
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let out_buf = mem.alloc_f32(self.rows as usize * HEAD_DIM);
        let q_buf = mem.alloc_from_f32(&self.q_data());
        let k_buf = mem.alloc_from_f32(&self.k_data());
        let v_buf = mem.alloc_from_f32(&self.v_data());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(q_buf),
            ParamValue::Ptr(k_buf),
            ParamValue::Ptr(v_buf),
            ParamValue::F32(self.scale),
            ParamValue::I32(self.rows as i32),
            ParamValue::I32(self.keys as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.q_data(), &self.k_data(), &self.v_data());
        // Keys are visited in the same order on every geometry: exact match.
        compare_f32(&got, &want, 0.0, "attention")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    fn run_with_block(wl: &Attention, block: u32) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (block, 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn gpu_matches_reference_bitwise() {
        run_with_block(
            &Attention {
                rows: 256,
                keys: 32,
                scale: 0.25,
            },
            256,
        );
    }

    #[test]
    fn partial_tail_blocks_are_handled() {
        // rows not a multiple of the thread count exercises the `row < M`
        // guard while the block still reaches every barrier.
        for block in [96, 256] {
            run_with_block(
                &Attention {
                    rows: 100,
                    keys: 16,
                    scale: 0.25,
                },
                block,
            );
        }
    }

    #[test]
    fn softmax_weights_sum_to_one() {
        // With V = all-ones, attention output is exactly the softmax
        // weights dotted with ones = 1 (up to rounding).
        let wl = Attention {
            rows: 4,
            keys: 16,
            scale: 0.25,
        };
        let q = wl.q_data();
        let k = wl.k_data();
        let v = vec![1.0f32; wl.keys as usize * HEAD_DIM];
        let out = wl.reference(&q, &k, &v);
        for o in out {
            assert!((o - 1.0).abs() < 1e-5, "{o}");
        }
    }
}
