//! Cryptography benchmark kernels (from ethminer / ccminer in the paper).
//!
//! The hash kernels are *generated* CUDA source: their round functions are
//! fully unrolled into scalar registers, exactly like the hand-unrolled
//! miners the paper extracted, which keeps them compute-bound (a local
//! message-schedule array would bounce through local memory instead).

pub mod blake256;
pub mod blake2b;
pub mod ethash;
pub mod sha256;

/// The BLAKE/BLAKE2 message-permutation table (rounds beyond 10 reuse rows
/// modulo 10).
pub(crate) const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];
