//! Ethash-style proof-of-work kernel (synthetic DAG).
//!
//! Real Ethash walks a multi-gigabyte DAG with data-dependent FNV-mixed
//! indices; its performance is entirely bound by random global-memory
//! latency (the paper measures 96% memory stall and 11% issue-slot
//! utilization). We keep exactly that behaviour with a synthetic in-memory
//! DAG: each access round FNV-mixes the running state and fetches four
//! consecutive words from a pseudo-random DAG line, so consecutive lanes
//! touch unrelated cache lines (fully uncoalesced dependent loads).

use gpu_sim::{GpuMemory, ParamValue};

use crate::{ptr_arg, Benchmark};

const FNV_PRIME: u32 = 0x0100_0193;

/// Ethash workload parameters.
#[derive(Debug, Clone)]
pub struct Ethash {
    /// Words in the synthetic DAG (multiple of 4).
    pub dag_words: u32,
    /// Data-dependent DAG accesses per hash (64 in real Ethash).
    pub accesses: u32,
    /// Nonce-space seed.
    pub seed: u32,
}

impl Default for Ethash {
    fn default() -> Self {
        Self {
            dag_words: 64 * 1024,
            accesses: 4,
            seed: 0x5eed_0001,
        }
    }
}

impl Ethash {
    /// Scales the per-hash access count by `factor` (the crypto kernels
    /// scale work by iterating, Section IV-A).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            accesses: ((f64::from(self.accesses) * factor).round() as u32).max(4),
            ..*self
        }
    }

    fn dag_data(&self) -> Vec<u32> {
        (0..self.dag_words)
            .map(|i| i.wrapping_mul(0x9e37_79b9).wrapping_add(0x7f4a_7c15) ^ self.seed)
            .collect()
    }

    fn threads_total(&self) -> usize {
        (self.grid_dim() * self.default_threads()) as usize
    }

    /// CPU reference for one thread id.
    pub fn reference_one(&self, dag: &[u32], gid: u32) -> u32 {
        let mut mix = [
            (gid ^ self.seed)
                .wrapping_mul(FNV_PRIME)
                .wrapping_add(0x9e37_79b9),
            0u32,
            0u32,
            0u32,
        ];
        mix[1] = mix[0] ^ 0x85eb_ca6b;
        mix[2] = mix[1].wrapping_mul(0xc2b2_ae35).wrapping_add(gid);
        mix[3] = mix[2] ^ self.seed;
        let lines = self.dag_words / 4;
        for i in 0..self.accesses {
            let idx = ((mix[0] ^ i).wrapping_mul(FNV_PRIME) % lines) * 4;
            for k in 0..4 {
                mix[k] = mix[k].wrapping_mul(FNV_PRIME) ^ dag[(idx + k as u32) as usize];
            }
        }
        mix[0] ^ mix[1] ^ mix[2] ^ mix[3]
    }
}

impl Benchmark for Ethash {
    fn name(&self) -> &'static str {
        "Ethash"
    }

    fn source(&self) -> String {
        // Constants are formatted from the same Rust values the reference
        // uses, so the two cannot drift apart.
        format!(
            r#"
__global__ void ethash(unsigned int* dag, unsigned int* out,
                       int dagWords, int accesses, unsigned int seed) {{
    unsigned int gid = blockIdx.x * blockDim.x + threadIdx.x;
    unsigned int mix0 = (gid ^ seed) * {fnv}u + {c1}u;
    unsigned int mix1 = mix0 ^ {c2}u;
    unsigned int mix2 = mix1 * {c3}u + gid;
    unsigned int mix3 = mix2 ^ seed;
    unsigned int lines = (unsigned int)dagWords / 4u;
    for (int i = 0; i < accesses; i++) {{
        unsigned int idx = (mix0 ^ (unsigned int)i) * {fnv}u % lines * 4u;
        mix0 = mix0 * {fnv}u ^ dag[idx];
        mix1 = mix1 * {fnv}u ^ dag[idx + 1u];
        mix2 = mix2 * {fnv}u ^ dag[idx + 2u];
        mix3 = mix3 * {fnv}u ^ dag[idx + 3u];
    }}
    out[gid] = mix0 ^ mix1 ^ mix2 ^ mix3;
}}
"#,
            fnv = FNV_PRIME,
            c1 = 0x9e37_79b9u32,
            c2 = 0x85eb_ca6bu32,
            c3 = 0xc2b2_ae35u32,
        )
    }

    fn tunable(&self) -> bool {
        false
    }

    fn grid_dim(&self) -> u32 {
        crate::CRYPTO_GRID
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let dag = mem.alloc_from_u32(&self.dag_data());
        let out = mem.alloc_u32(self.threads_total());
        vec![
            ParamValue::Ptr(dag),
            ParamValue::Ptr(out),
            ParamValue::I32(self.dag_words as i32),
            ParamValue::I32(self.accesses as i32),
            ParamValue::U32(self.seed),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_u32s(ptr_arg(args, 1));
        let dag = self.dag_data();
        for gid in 0..self.threads_total() as u32 {
            let want = self.reference_one(&dag, gid);
            if got[gid as usize] != want {
                return Err(format!(
                    "ethash[{gid}]: got {:#010x}, want {want:#010x}",
                    got[gid as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference() {
        let wl = Ethash {
            dag_words: 1024,
            accesses: 8,
            seed: 7,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (wl.default_threads(), 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn kernel_is_memory_bound_on_simulator() {
        let wl = Ethash {
            dag_words: 16 * 1024,
            accesses: 16,
            seed: 3,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (wl.default_threads(), 1, 1),
            dynamic_shared_bytes: 0,
            args,
        };
        let res = gpu.run(&[launch]).expect("run");
        assert!(
            res.metrics.mem_stall_pct() > 60.0,
            "ethash must be memory-bound: {}",
            res.metrics.mem_stall_pct()
        );
    }

    #[test]
    fn reference_depends_on_gid_and_seed() {
        let wl = Ethash {
            dag_words: 256,
            accesses: 4,
            seed: 1,
        };
        let dag = wl.dag_data();
        assert_ne!(wl.reference_one(&dag, 0), wl.reference_one(&dag, 1));
        let wl2 = Ethash {
            seed: 2,
            ..wl.clone()
        };
        // note: different seed also changes the DAG contents
        assert_ne!(
            wl.reference_one(&dag, 0),
            wl2.reference_one(&wl2.dag_data(), 0)
        );
    }
}
