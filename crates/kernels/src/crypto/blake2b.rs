//! BLAKE2b proof-of-work style kernel (compute-bound, 64-bit ALU).
//!
//! Each thread runs `iters` 12-round BLAKE2b compressions. Like the real
//! ccminer kernel the G functions are fully unrolled; unlike SHA-256 and
//! BLAKE-256 the datapath is 64-bit, so it exercises the wide-integer side
//! of the ALU model.

use std::fmt::Write as _;

use gpu_sim::{GpuMemory, ParamValue};

use super::SIGMA;
use crate::{ptr_arg, Benchmark};

const IV: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

const G_POS: [[usize; 4]; 8] = [
    [0, 4, 8, 12],
    [1, 5, 9, 13],
    [2, 6, 10, 14],
    [3, 7, 11, 15],
    [0, 5, 10, 15],
    [1, 6, 11, 12],
    [2, 7, 8, 13],
    [3, 4, 9, 14],
];

const ROUNDS: usize = 12;
const MSG_A: u64 = 0x9e37_79b9_7f4a_7c15;
const MSG_B: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// BLAKE2b workload.
#[derive(Debug, Clone)]
pub struct Blake2b {
    /// Compressions per thread.
    pub iters: u32,
    /// Message seed.
    pub seed: u64,
}

impl Default for Blake2b {
    fn default() -> Self {
        Self {
            iters: 1,
            seed: 0xb1a2_b000_0000_0001,
        }
    }
}

impl Blake2b {
    /// Scales the per-thread iteration count.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            iters: ((f64::from(self.iters) * factor).round() as u32).max(1),
            ..*self
        }
    }

    fn threads_total(&self) -> usize {
        (self.grid_dim() * self.default_threads()) as usize
    }

    fn message_word(&self, gid: u32, it: u32, j: u32) -> u64 {
        self.seed
            ^ u64::from(gid)
                .wrapping_mul(MSG_A)
                .wrapping_add(u64::from(it * 16 + j).wrapping_mul(MSG_B))
    }

    /// CPU reference for one thread.
    pub fn reference_one(&self, gid: u32) -> u64 {
        let mut h = IV;
        for it in 0..self.iters {
            let mut m = [0u64; 16];
            for (j, slot) in m.iter_mut().enumerate() {
                *slot = self.message_word(gid, it, j as u32);
            }
            let mut v = [0u64; 16];
            v[..8].copy_from_slice(&h);
            v[8..].copy_from_slice(&IV);
            // Single synthetic block: t = 0, final-block flag set.
            v[14] = !v[14];
            for r in 0..ROUNDS {
                let s = &SIGMA[r % 10];
                for (i, pos) in G_POS.iter().enumerate() {
                    let [pa, pb, pc, pd] = *pos;
                    let (mut a, mut b, mut c, mut d) = (v[pa], v[pb], v[pc], v[pd]);
                    a = a.wrapping_add(b).wrapping_add(m[s[2 * i]]);
                    d = (d ^ a).rotate_right(32);
                    c = c.wrapping_add(d);
                    b = (b ^ c).rotate_right(24);
                    a = a.wrapping_add(b).wrapping_add(m[s[2 * i + 1]]);
                    d = (d ^ a).rotate_right(16);
                    c = c.wrapping_add(d);
                    b = (b ^ c).rotate_right(63);
                    v[pa] = a;
                    v[pb] = b;
                    v[pc] = c;
                    v[pd] = d;
                }
            }
            for i in 0..8 {
                h[i] ^= v[i] ^ v[i + 8];
            }
        }
        h.iter().fold(0, |acc, x| acc ^ x)
    }
}

impl Benchmark for Blake2b {
    fn name(&self) -> &'static str {
        "Blake2B"
    }

    fn source(&self) -> String {
        let mut s = String::new();
        s.push_str("#define ROTR64(x, n) ((x >> n) | (x << (64 - n)))\n");
        s.push_str(
            "__global__ void blake2b(unsigned long long* out, int iters, unsigned long long seed) {\n",
        );
        s.push_str("    unsigned int gid = blockIdx.x * blockDim.x + threadIdx.x;\n");
        s.push_str("    unsigned long long gid64 = (unsigned long long)gid;\n");
        for (i, iv) in IV.iter().enumerate() {
            let _ = writeln!(s, "    unsigned long long h{i} = {iv}ull;");
        }
        for i in 0..16 {
            let _ = writeln!(s, "    unsigned long long v{i};");
        }
        for i in 0..16 {
            let _ = writeln!(s, "    unsigned long long m{i};");
        }
        s.push_str("    for (int it = 0; it < iters; it++) {\n");
        for j in 0..16u64 {
            let _ = writeln!(
                s,
                "        m{j} = seed ^ (gid64 * {MSG_A}ull + \
                 ((unsigned long long)it * 16ull + {j}ull) * {MSG_B}ull);"
            );
        }
        for i in 0..8 {
            let _ = writeln!(s, "        v{i} = h{i};");
        }
        for i in 8..16 {
            let _ = writeln!(s, "        v{i} = {}ull;", IV[i - 8]);
        }
        let _ = writeln!(s, "        v14 = ~v14;");
        for r in 0..ROUNDS {
            let sg = &SIGMA[r % 10];
            for (i, pos) in G_POS.iter().enumerate() {
                let [a, b, c, d] = pos.map(|p| format!("v{p}"));
                let m1 = format!("m{}", sg[2 * i]);
                let m2 = format!("m{}", sg[2 * i + 1]);
                let _ = writeln!(s, "        {a} = {a} + {b} + {m1};");
                let _ = writeln!(s, "        {d} = ROTR64(({d} ^ {a}), 32);");
                let _ = writeln!(s, "        {c} = {c} + {d};");
                let _ = writeln!(s, "        {b} = ROTR64(({b} ^ {c}), 24);");
                let _ = writeln!(s, "        {a} = {a} + {b} + {m2};");
                let _ = writeln!(s, "        {d} = ROTR64(({d} ^ {a}), 16);");
                let _ = writeln!(s, "        {c} = {c} + {d};");
                let _ = writeln!(s, "        {b} = ROTR64(({b} ^ {c}), 63);");
            }
        }
        for i in 0..8 {
            let _ = writeln!(s, "        h{i} ^= v{i} ^ v{};", i + 8);
        }
        s.push_str("    }\n");
        s.push_str("    out[gid] = h0 ^ h1 ^ h2 ^ h3 ^ h4 ^ h5 ^ h6 ^ h7;\n}\n");
        s
    }

    fn tunable(&self) -> bool {
        false
    }

    fn grid_dim(&self) -> u32 {
        crate::CRYPTO_GRID
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let out = mem.alloc_u64(self.threads_total());
        vec![
            ParamValue::Ptr(out),
            ParamValue::I32(self.iters as i32),
            ParamValue::U64(self.seed),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_u64s(ptr_arg(args, 0));
        for gid in 0..self.threads_total() as u32 {
            let want = self.reference_one(gid);
            if got[gid as usize] != want {
                return Err(format!(
                    "blake2b[{gid}]: got {:#018x}, want {want:#018x}",
                    got[gid as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn source_parses_and_lowers_register_only() {
        let wl = Blake2b::default();
        let ir = lower_kernel(&wl.kernel()).expect("lower");
        assert!(ir.insts.len() > 1000);
        assert_eq!(ir.local_bytes, 0);
    }

    #[test]
    fn gpu_matches_reference() {
        let wl = Blake2b { iters: 1, seed: 99 };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let out = gpu.memory_mut().alloc_u64(64);
        let args = vec![
            ParamValue::Ptr(out),
            ParamValue::I32(1),
            ParamValue::U64(99),
        ];
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 2,
            block_dim: (32, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        };
        gpu.run_functional(&[launch]).expect("run");
        let got = gpu.memory().read_u64s(out);
        for gid in 0..64u32 {
            assert_eq!(got[gid as usize], wl.reference_one(gid), "gid {gid}");
        }
    }

    #[test]
    fn digests_vary_with_iterations() {
        let one = Blake2b { iters: 1, seed: 7 };
        let two = Blake2b { iters: 2, seed: 7 };
        assert_ne!(one.reference_one(0), two.reference_one(0));
    }
}
