//! BLAKE-256 proof-of-work style kernel (compute-bound).
//!
//! Each thread runs `iters` 14-round BLAKE-256 compressions over a message
//! derived from its global id. Like the real ccminer kernel, every G call is
//! fully unrolled into scalar registers (the CUDA source is generated). The
//! paper measures 91% issue-slot utilization for Blake256 on the 1080Ti —
//! it is the archetypal compute-bound kernel.

use std::fmt::Write as _;

use gpu_sim::{GpuMemory, ParamValue};

use super::SIGMA;
use crate::{ptr_arg, Benchmark};

const IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The BLAKE-256 constants (digits of π).
const C: [u32; 16] = [
    0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344, 0xa4093822, 0x299f31d0, 0x082efa98, 0xec4e6c89,
    0x452821e6, 0x38d01377, 0xbe5466cf, 0x34e90c6c, 0xc0ac29b7, 0xc97c50dd, 0x3f84d5b5, 0xb5470917,
];

/// G-call operand columns/diagonals per round position.
const G_POS: [[usize; 4]; 8] = [
    [0, 4, 8, 12],
    [1, 5, 9, 13],
    [2, 6, 10, 14],
    [3, 7, 11, 15],
    [0, 5, 10, 15],
    [1, 6, 11, 12],
    [2, 7, 8, 13],
    [3, 4, 9, 14],
];

const ROUNDS: usize = 14;
const MSG_A: u32 = 0x9e37_79b9;
const MSG_B: u32 = 0xc2b2_ae35;

/// BLAKE-256 workload.
#[derive(Debug, Clone)]
pub struct Blake256 {
    /// Compressions per thread.
    pub iters: u32,
    /// Message seed.
    pub seed: u32,
}

impl Default for Blake256 {
    fn default() -> Self {
        Self {
            iters: 1,
            seed: 0xb1ae_0001,
        }
    }
}

impl Blake256 {
    /// Scales the per-thread iteration count.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            iters: ((f64::from(self.iters) * factor).round() as u32).max(1),
            ..*self
        }
    }

    fn threads_total(&self) -> usize {
        (self.grid_dim() * self.default_threads()) as usize
    }

    fn message_word(&self, gid: u32, it: u32, j: u32) -> u32 {
        self.seed
            ^ gid
                .wrapping_mul(MSG_A)
                .wrapping_add((it * 16 + j).wrapping_mul(MSG_B))
    }

    /// CPU reference for one thread.
    pub fn reference_one(&self, gid: u32) -> u32 {
        let mut h = IV;
        for it in 0..self.iters {
            let mut m = [0u32; 16];
            for (j, slot) in m.iter_mut().enumerate() {
                *slot = self.message_word(gid, it, j as u32);
            }
            let mut v = [0u32; 16];
            v[..8].copy_from_slice(&h);
            v[8..].copy_from_slice(&C[..8]);
            // t0 = t1 = 0 (single synthetic block), so v12..v15 are plain
            // constants.
            for r in 0..ROUNDS {
                let s = &SIGMA[r % 10];
                for (i, pos) in G_POS.iter().enumerate() {
                    let [pa, pb, pc, pd] = *pos;
                    let (mut a, mut b, mut c, mut d) = (v[pa], v[pb], v[pc], v[pd]);
                    a = a
                        .wrapping_add(b)
                        .wrapping_add(m[s[2 * i]] ^ C[s[2 * i + 1]]);
                    d = (d ^ a).rotate_right(16);
                    c = c.wrapping_add(d);
                    b = (b ^ c).rotate_right(12);
                    a = a
                        .wrapping_add(b)
                        .wrapping_add(m[s[2 * i + 1]] ^ C[s[2 * i]]);
                    d = (d ^ a).rotate_right(8);
                    c = c.wrapping_add(d);
                    b = (b ^ c).rotate_right(7);
                    v[pa] = a;
                    v[pb] = b;
                    v[pc] = c;
                    v[pd] = d;
                }
            }
            for i in 0..8 {
                h[i] ^= v[i] ^ v[i + 8];
            }
        }
        h.iter().fold(0, |acc, x| acc ^ x)
    }
}

impl Benchmark for Blake256 {
    fn name(&self) -> &'static str {
        "Blake256"
    }

    fn source(&self) -> String {
        let mut s = String::new();
        s.push_str("#define ROTR(x, n) ((x >> n) | (x << (32 - n)))\n");
        s.push_str("__global__ void blake256(unsigned int* out, int iters, unsigned int seed) {\n");
        s.push_str("    unsigned int gid = blockIdx.x * blockDim.x + threadIdx.x;\n");
        for (i, iv) in IV.iter().enumerate() {
            let _ = writeln!(s, "    unsigned int h{i} = {iv}u;");
        }
        for i in 0..16 {
            let _ = writeln!(s, "    unsigned int v{i};");
        }
        for i in 0..16 {
            let _ = writeln!(s, "    unsigned int m{i};");
        }
        s.push_str("    for (int it = 0; it < iters; it++) {\n");
        for j in 0..16u32 {
            let _ = writeln!(
                s,
                "        m{j} = seed ^ (gid * {MSG_A}u + ((unsigned int)it * 16u + {j}u) * {MSG_B}u);"
            );
        }
        for i in 0..8 {
            let _ = writeln!(s, "        v{i} = h{i};");
        }
        for i in 8..16 {
            let _ = writeln!(s, "        v{i} = {}u;", C[i - 8]);
        }
        for r in 0..ROUNDS {
            let sg = &SIGMA[r % 10];
            for (i, pos) in G_POS.iter().enumerate() {
                let [a, b, c, d] = pos.map(|p| format!("v{p}"));
                let m1 = format!("m{}", sg[2 * i]);
                let k1 = C[sg[2 * i + 1]];
                let m2 = format!("m{}", sg[2 * i + 1]);
                let k2 = C[sg[2 * i]];
                let _ = writeln!(s, "        {a} = {a} + {b} + ({m1} ^ {k1}u);");
                let _ = writeln!(s, "        {d} = ROTR(({d} ^ {a}), 16);");
                let _ = writeln!(s, "        {c} = {c} + {d};");
                let _ = writeln!(s, "        {b} = ROTR(({b} ^ {c}), 12);");
                let _ = writeln!(s, "        {a} = {a} + {b} + ({m2} ^ {k2}u);");
                let _ = writeln!(s, "        {d} = ROTR(({d} ^ {a}), 8);");
                let _ = writeln!(s, "        {c} = {c} + {d};");
                let _ = writeln!(s, "        {b} = ROTR(({b} ^ {c}), 7);");
            }
        }
        for i in 0..8 {
            let _ = writeln!(s, "        h{i} ^= v{i} ^ v{};", i + 8);
        }
        s.push_str("    }\n");
        s.push_str("    out[gid] = h0 ^ h1 ^ h2 ^ h3 ^ h4 ^ h5 ^ h6 ^ h7;\n}\n");
        s
    }

    fn tunable(&self) -> bool {
        false
    }

    fn grid_dim(&self) -> u32 {
        crate::CRYPTO_GRID
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let out = mem.alloc_u32(self.threads_total());
        vec![
            ParamValue::Ptr(out),
            ParamValue::I32(self.iters as i32),
            ParamValue::U32(self.seed),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_u32s(ptr_arg(args, 0));
        for gid in 0..self.threads_total() as u32 {
            let want = self.reference_one(gid);
            if got[gid as usize] != want {
                return Err(format!(
                    "blake256[{gid}]: got {:#010x}, want {want:#010x}",
                    got[gid as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn source_parses_and_lowers_register_only() {
        let wl = Blake256::default();
        let ir = lower_kernel(&wl.kernel()).expect("lower");
        assert!(ir.insts.len() > 1000);
        assert_eq!(ir.local_bytes, 0);
        assert_eq!(ir.shared_static_bytes, 0);
    }

    #[test]
    fn gpu_matches_reference() {
        let wl = Blake256 { iters: 1, seed: 5 };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let out = gpu.memory_mut().alloc_u32(64);
        let args = vec![ParamValue::Ptr(out), ParamValue::I32(1), ParamValue::U32(5)];
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 2,
            block_dim: (32, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        };
        gpu.run_functional(&[launch]).expect("run");
        let got = gpu.memory().read_u32s(out);
        for gid in 0..64u32 {
            assert_eq!(got[gid as usize], wl.reference_one(gid), "gid {gid}");
        }
    }

    #[test]
    fn digests_vary_with_inputs() {
        let wl = Blake256 { iters: 1, seed: 1 };
        assert_ne!(wl.reference_one(10), wl.reference_one(11));
        let wl2 = Blake256 { iters: 1, seed: 2 };
        assert_ne!(wl.reference_one(10), wl2.reference_one(10));
    }
}
