//! SHA-256 proof-of-work style kernel (compute-bound).
//!
//! Each thread runs `iters` full 64-round SHA-256 compressions over a
//! message derived from its global id, exactly like a nonce-scanning miner.
//! The CUDA source is *generated* with the message schedule fully unrolled
//! into sixteen rolling scalar registers — the same shape the hand-unrolled
//! ccminer kernels have — so the hot loop is pure 32-bit ALU work.

use std::fmt::Write as _;

use gpu_sim::{GpuMemory, ParamValue};

use crate::{ptr_arg, Benchmark};

/// The SHA-256 round constants.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const MSG_A: u32 = 0x9e37_79b9;
const MSG_B: u32 = 0x85eb_ca6b;

/// SHA-256 workload.
#[derive(Debug, Clone)]
pub struct Sha256 {
    /// Compressions per thread.
    pub iters: u32,
    /// Message seed.
    pub seed: u32,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self {
            iters: 1,
            seed: 0x5a5a_0001,
        }
    }
}

impl Sha256 {
    /// Scales the per-thread iteration count by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            iters: ((f64::from(self.iters) * factor).round() as u32).max(1),
            ..*self
        }
    }

    fn threads_total(&self) -> usize {
        (self.grid_dim() * self.default_threads()) as usize
    }

    fn message_word(&self, gid: u32, it: u32, t: u32) -> u32 {
        self.seed
            ^ gid
                .wrapping_mul(MSG_A)
                .wrapping_add((it * 16 + t).wrapping_mul(MSG_B))
    }

    /// CPU reference for one thread.
    pub fn reference_one(&self, gid: u32) -> u32 {
        let mut h = IV;
        for it in 0..self.iters {
            let mut w = [0u32; 16];
            for (t, slot) in w.iter_mut().enumerate() {
                *slot = self.message_word(gid, it, t as u32);
            }
            let (mut a, mut b, mut c, mut d) = (h[0], h[1], h[2], h[3]);
            let (mut e, mut f, mut g, mut hh) = (h[4], h[5], h[6], h[7]);
            for t in 0..64 {
                if t >= 16 {
                    let s0 = w[(t + 1) % 16].rotate_right(7)
                        ^ w[(t + 1) % 16].rotate_right(18)
                        ^ (w[(t + 1) % 16] >> 3);
                    let s1 = w[(t + 14) % 16].rotate_right(17)
                        ^ w[(t + 14) % 16].rotate_right(19)
                        ^ (w[(t + 14) % 16] >> 10);
                    w[t % 16] = s1
                        .wrapping_add(w[(t + 9) % 16])
                        .wrapping_add(s0)
                        .wrapping_add(w[t % 16]);
                }
                let ch = (e & f) ^ (!e & g);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let bsig1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let bsig0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let t1 = hh
                    .wrapping_add(bsig1)
                    .wrapping_add(ch)
                    .wrapping_add(K[t])
                    .wrapping_add(w[t % 16]);
                let t2 = bsig0.wrapping_add(maj);
                hh = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            h[0] = h[0].wrapping_add(a);
            h[1] = h[1].wrapping_add(b);
            h[2] = h[2].wrapping_add(c);
            h[3] = h[3].wrapping_add(d);
            h[4] = h[4].wrapping_add(e);
            h[5] = h[5].wrapping_add(f);
            h[6] = h[6].wrapping_add(g);
            h[7] = h[7].wrapping_add(hh);
        }
        h.iter().fold(0, |acc, x| acc ^ x)
    }
}

impl Benchmark for Sha256 {
    fn name(&self) -> &'static str {
        "SHA256"
    }

    fn source(&self) -> String {
        let mut s = String::new();
        s.push_str("#define ROTR(x, n) ((x >> n) | (x << (32 - n)))\n");
        s.push_str("__global__ void sha256(unsigned int* out, int iters, unsigned int seed) {\n");
        s.push_str("    unsigned int gid = blockIdx.x * blockDim.x + threadIdx.x;\n");
        for (i, iv) in IV.iter().enumerate() {
            let _ = writeln!(s, "    unsigned int h{i} = {iv}u;");
        }
        s.push_str("    unsigned int t1;\n    unsigned int t2;\n");
        for i in 0..16 {
            let _ = writeln!(s, "    unsigned int w{i};");
        }
        s.push_str(
            "    unsigned int a; unsigned int b; unsigned int c; unsigned int d;\n\
             \u{20}   unsigned int e; unsigned int f; unsigned int g; unsigned int h;\n",
        );
        s.push_str("    for (int it = 0; it < iters; it++) {\n");
        for t in 0..16u32 {
            let _ = writeln!(
                s,
                "        w{t} = seed ^ (gid * {MSG_A}u + ((unsigned int)it * 16u + {t}u) * {MSG_B}u);"
            );
        }
        s.push_str("        a = h0; b = h1; c = h2; d = h3; e = h4; f = h5; g = h6; h = h7;\n");
        for (t, &kt) in K.iter().enumerate() {
            if t >= 16 {
                let _ = writeln!(
                    s,
                    "        w{cur} = (ROTR(w{p14}, 17) ^ ROTR(w{p14}, 19) ^ (w{p14} >> 10)) \
                     + w{p9} + (ROTR(w{p1}, 7) ^ ROTR(w{p1}, 18) ^ (w{p1} >> 3)) + w{cur};",
                    cur = t % 16,
                    p14 = (t + 14) % 16,
                    p9 = (t + 9) % 16,
                    p1 = (t + 1) % 16,
                );
            }
            let _ = writeln!(
                s,
                "        t1 = h + (ROTR(e, 6) ^ ROTR(e, 11) ^ ROTR(e, 25)) \
                 + ((e & f) ^ (~e & g)) + {k}u + w{cur};",
                k = kt,
                cur = t % 16,
            );
            s.push_str(
                "        t2 = (ROTR(a, 2) ^ ROTR(a, 13) ^ ROTR(a, 22)) \
                 + ((a & b) ^ (a & c) ^ (b & c));\n",
            );
            s.push_str(
                "        h = g; g = f; f = e; e = d + t1; d = c; c = b; b = a; a = t1 + t2;\n",
            );
        }
        s.push_str(
            "        h0 += a; h1 += b; h2 += c; h3 += d; h4 += e; h5 += f; h6 += g; h7 += h;\n",
        );
        s.push_str("    }\n");
        s.push_str("    out[gid] = h0 ^ h1 ^ h2 ^ h3 ^ h4 ^ h5 ^ h6 ^ h7;\n}\n");
        s
    }

    fn tunable(&self) -> bool {
        false
    }

    fn grid_dim(&self) -> u32 {
        crate::CRYPTO_GRID
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let out = mem.alloc_u32(self.threads_total());
        vec![
            ParamValue::Ptr(out),
            ParamValue::I32(self.iters as i32),
            ParamValue::U32(self.seed),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_u32s(ptr_arg(args, 0));
        for gid in 0..self.threads_total() as u32 {
            let want = self.reference_one(gid);
            if got[gid as usize] != want {
                return Err(format!(
                    "sha256[{gid}]: got {:#010x}, want {want:#010x}",
                    got[gid as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn source_parses_and_lowers() {
        let wl = Sha256::default();
        let ir = lower_kernel(&wl.kernel()).expect("lower");
        // The unrolled rounds produce a long, branch-light body.
        assert!(ir.insts.len() > 1000, "{}", ir.insts.len());
        assert_eq!(ir.local_bytes, 0, "schedule must live in registers");
    }

    #[test]
    fn gpu_matches_reference() {
        let wl = Sha256 { iters: 1, seed: 42 };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        // Small geometry for the functional check.
        let out = gpu.memory_mut().alloc_u32(64);
        let args = vec![
            ParamValue::Ptr(out),
            ParamValue::I32(1),
            ParamValue::U32(42),
        ];
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 2,
            block_dim: (32, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        };
        gpu.run_functional(&[launch]).expect("run");
        let got = gpu.memory().read_u32s(out);
        for gid in 0..64u32 {
            assert_eq!(got[gid as usize], wl.reference_one(gid), "gid {gid}");
        }
    }

    #[test]
    fn reference_matches_known_vector_shape() {
        // Different gids and iteration counts give different digests.
        let wl = Sha256 { iters: 1, seed: 0 };
        assert_ne!(wl.reference_one(0), wl.reference_one(1));
        let wl2 = Sha256 { iters: 2, seed: 0 };
        assert_ne!(wl.reference_one(0), wl2.reference_one(0));
    }

    #[test]
    fn kernel_is_compute_bound_on_simulator() {
        let wl = Sha256 { iters: 1, seed: 9 };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let out = gpu.memory_mut().alloc_u32(512);
        let args = vec![ParamValue::Ptr(out), ParamValue::I32(1), ParamValue::U32(9)];
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 4,
            block_dim: (128, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        };
        let res = gpu.run(&[launch]).expect("run");
        // Memory stalls must be a negligible share of all issue slots (the
        // percentage-of-stalls metric is noisy when almost nothing stalls).
        let m = res.metrics;
        let mem_share = m.stall_mem as f64 / m.total_slots as f64;
        assert!(
            mem_share < 0.2,
            "sha256 must not stall on memory: {mem_share}"
        );
    }
}
