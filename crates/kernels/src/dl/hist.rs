//! `kernelHistogram1D` — the paper's Fig. 3 kernel.
//!
//! Builds a histogram of an input tensor using an `extern __shared__` bin
//! array: initialize the shared counters, atomically increment them over a
//! grid-stride loop, then merge into the global histogram — with a block
//! barrier between each phase. Shared-memory atomics dominate, so the paper
//! measures a *low* memory-stall percentage (1.4%) despite all the traffic.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{ptr_arg, Benchmark};

/// Histogram workload.
#[derive(Debug, Clone)]
pub struct Hist {
    /// Number of bins (fits comfortably in shared memory).
    pub nbins: u32,
    /// Input elements.
    pub total: u32,
    /// Histogram range minimum.
    pub min_value: f32,
    /// Histogram range maximum.
    pub max_value: f32,
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            nbins: 64,
            total: 256 * 1024,
            min_value: -1.0,
            max_value: 1.0,
        }
    }
}

impl Hist {
    /// Scales the input size by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            total: ((f64::from(self.total) * factor).round() as u32).max(1024),
            ..*self
        }
    }

    fn input_data(&self) -> Vec<f32> {
        // Bell-shaped values (sum of four uniforms), like the activation
        // tensors the paper's histogram kernel consumes. The concentration
        // around the central bins is what makes shared-memory atomics
        // contend. Tails reach past [-1, 1] so the range check matters.
        (0..self.total as usize)
            .map(|i| {
                let mut x = (i as u32).wrapping_mul(2654435761).wrapping_add(40503);
                let mut acc = 0.0f32;
                for _ in 0..4 {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    acc += (x >> 8) as f32 / (1u32 << 24) as f32; // [0, 1)
                }
                (acc / 4.0) * 2.5 - 1.25
            })
            .collect()
    }

    /// CPU reference histogram.
    pub fn reference(&self, input: &[f32]) -> Vec<u32> {
        let mut bins = vec![0u32; self.nbins as usize];
        for &v in input {
            if v >= self.min_value && v <= self.max_value {
                let scaled =
                    (v - self.min_value) / (self.max_value - self.min_value) * self.nbins as f32;
                let bin = (scaled as u32).min(self.nbins - 1);
                bins[bin as usize] += 1;
            }
        }
        bins
    }
}

impl Benchmark for Hist {
    fn name(&self) -> &'static str {
        "Hist"
    }

    fn source(&self) -> String {
        r#"
__global__ void kernelHistogram1D(
        unsigned int* out, float* in,
        int nbins, float minvalue, float maxvalue, int totalElements) {
    extern __shared__ unsigned int smem[];

    // PART A: initialize shared memory counters.
    for (int i = threadIdx.x; i < nbins; i += blockDim.x) {
        smem[i] = 0u;
    }
    __syncthreads();

    // PART B: walk the input, incrementing shared counters.
    for (int li = blockIdx.x * blockDim.x + threadIdx.x; li < totalElements;
         li += gridDim.x * blockDim.x) {
        float bVal = in[li];
        if (bVal >= minvalue && bVal <= maxvalue) {
            int bin = (int)((bVal - minvalue) / (maxvalue - minvalue) * nbins);
            bin = min(bin, nbins - 1);
            atomicAdd(&smem[bin], 1u);
        }
    }
    __syncthreads();

    // PART C: merge the shared counters into the global histogram.
    for (int i = threadIdx.x; i < nbins; i += blockDim.x) {
        atomicAdd(&out[i], smem[i]);
    }
}
"#
        .to_owned()
    }

    fn dynamic_shared(&self) -> u32 {
        self.nbins * 4
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let input = self.input_data();
        let in_buf = mem.alloc_from_f32(&input);
        let out_buf = mem.alloc_u32(self.nbins as usize);
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.nbins as i32),
            ParamValue::F32(self.min_value),
            ParamValue::F32(self.max_value),
            ParamValue::I32(self.total as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_u32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        if got != want {
            let idx = got.iter().zip(&want).position(|(g, w)| g != w).unwrap_or(0);
            return Err(format!(
                "hist[{idx}]: got {}, want {} (totals {} vs {})",
                got[idx],
                want[idx],
                got.iter().sum::<u32>(),
                want.iter().sum::<u32>()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference() {
        let wl = Hist {
            nbins: 16,
            total: 4096,
            min_value: -1.0,
            max_value: 1.0,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 4,
            block_dim: (128, 1, 1),
            dynamic_shared_bytes: wl.dynamic_shared(),
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn timed_run_counts_every_in_range_element() {
        let wl = Hist {
            nbins: 8,
            total: 2048,
            min_value: -1.0,
            max_value: 1.0,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 2,
            block_dim: (64, 1, 1),
            dynamic_shared_bytes: wl.dynamic_shared(),
            args: args.clone(),
        };
        gpu.run(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn reference_respects_range() {
        let wl = Hist {
            nbins: 4,
            total: 0,
            min_value: 0.0,
            max_value: 1.0,
        };
        let bins = wl.reference(&[-0.5, 0.1, 0.99, 1.5, 1.0]);
        assert_eq!(bins.iter().sum::<u32>(), 3); // -0.5 and 1.5 excluded
        assert_eq!(bins[3], 2); // 0.99 and the inclusive max fall in the top bin
    }

    #[test]
    fn uses_dynamic_shared_memory() {
        let wl = Hist::default();
        let ir = lower_kernel(&wl.kernel()).expect("lower");
        assert!(ir.uses_dynamic_shared);
        assert_eq!(wl.dynamic_shared(), wl.nbins * 4);
    }
}
