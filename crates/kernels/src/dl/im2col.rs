//! `im2col` — rearranges 3×3 image patches (pad 1, stride 1) into columns.
//!
//! One load and one store per output element, surrounded by a large amount
//! of integer index arithmetic and boundary tests: mixed compute/memory (the
//! paper measures 87% issue-slot utilization with 27% memory stall on the
//! 1080Ti — the busiest of the five DL kernels).

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

const K: usize = 3; // kernel size, pad = 1, stride = 1

/// Im2col workload over a `(channels, height, width)` image.
#[derive(Debug, Clone)]
pub struct Im2Col {
    /// Channels.
    pub channels: u32,
    /// Image height.
    pub height: u32,
    /// Image width.
    pub width: u32,
}

impl Default for Im2Col {
    fn default() -> Self {
        Self {
            channels: 8,
            height: 32,
            width: 32,
        }
    }
}

impl Im2Col {
    fn in_len(&self) -> usize {
        (self.channels * self.height * self.width) as usize
    }

    fn out_len(&self) -> usize {
        self.in_len() * K * K
    }

    /// Scales the image height by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            channels: self.channels,
            height: ((f64::from(self.height) * factor).round() as u32).max(4),
            width: self.width,
        }
    }

    fn input_data(&self) -> Vec<f32> {
        (0..self.in_len())
            .map(|i| {
                let x = (i as u32).wrapping_mul(2246822519).wrapping_add(374761393);
                (x % 512) as f32 / 256.0 - 1.0
            })
            .collect()
    }

    /// CPU reference: output layout `(c, kh, kw, h, w)`.
    pub fn reference(&self, input: &[f32]) -> Vec<f32> {
        let (c, h, w) = (
            self.channels as usize,
            self.height as usize,
            self.width as usize,
        );
        let mut out = vec![0.0f32; self.out_len()];
        for ci in 0..c {
            for kh in 0..K {
                for kw in 0..K {
                    for y in 0..h {
                        for x in 0..w {
                            let iy = y as isize + kh as isize - 1;
                            let ix = x as isize + kw as isize - 1;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                input[(ci * h + iy as usize) * w + ix as usize]
                            } else {
                                0.0
                            };
                            out[((((ci * K + kh) * K + kw) * h) + y) * w + x] = v;
                        }
                    }
                }
            }
        }
        out
    }
}

impl Benchmark for Im2Col {
    fn name(&self) -> &'static str {
        "Im2Col"
    }

    fn source(&self) -> String {
        r#"
__global__ void im2col(float* out, float* in, int C, int H, int W) {
    int total = C * 9 * H * W;
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < total;
         i += gridDim.x * blockDim.x) {
        int x = i % W;
        int y = (i / W) % H;
        int rest = i / (W * H);
        int kw = rest % 3;
        int kh = (rest / 3) % 3;
        int c = rest / 9;
        int iy = y + kh - 1;
        int ix = x + kw - 1;
        float v = 0.0f;
        if (iy >= 0 && iy < H && ix >= 0 && ix < W) {
            v = in[(c * H + iy) * W + ix];
        }
        out[i] = v;
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let input = self.input_data();
        let in_buf = mem.alloc_from_f32(&input);
        let out_buf = mem.alloc_f32(self.out_len());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.channels as i32),
            ParamValue::I32(self.height as i32),
            ParamValue::I32(self.width as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        compare_f32(&got, &want, 0.0, "im2col")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference() {
        let wl = Im2Col {
            channels: 2,
            height: 8,
            width: 8,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 4,
            block_dim: (128, 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn center_tap_is_identity() {
        let wl = Im2Col {
            channels: 1,
            height: 4,
            width: 4,
        };
        let input: Vec<f32> = (0..16).map(|i| i as f32 + 1.0).collect();
        let out = wl.reference(&input);
        // kh = kw = 1 is the center tap: exact copy of the image.
        let center = &out[(K + 1) * 16..(K + 2) * 16];
        assert_eq!(center, &input[..]);
    }

    #[test]
    fn borders_are_zero_padded() {
        let wl = Im2Col {
            channels: 1,
            height: 4,
            width: 4,
        };
        let input = vec![1.0f32; 16];
        let out = wl.reference(&input);
        // kh = kw = 0 shifts up-left: the first row/column read the pad.
        assert_eq!(out[0], 0.0);
        assert_eq!(out[5], 1.0);
    }
}
