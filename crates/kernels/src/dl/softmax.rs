//! Row-wise softmax — an *extension* kernel (not part of the paper's nine).
//!
//! One block per row: a shared-memory max-reduction for numerical
//! stability, an `expf` pass (special-function-unit heavy — a resource none
//! of the paper's kernels saturates), a sum-reduction, and a normalization
//! pass, with block barriers between phases. Interesting fusion partner
//! because its bottleneck (SFU + barriers) differs from both the
//! memory-bound and the integer-ALU-bound benchmark kernels.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Softmax workload: `rows` independent rows of width `cols`.
#[derive(Debug, Clone)]
pub struct Softmax {
    /// Number of rows (= grid dimension).
    pub rows: u32,
    /// Row width.
    pub cols: u32,
}

impl Default for Softmax {
    fn default() -> Self {
        Self {
            rows: crate::DEFAULT_GRID,
            cols: 2048,
        }
    }
}

impl Softmax {
    fn len(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    /// Scales the row width by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rows: self.rows,
            cols: ((f64::from(self.cols) * factor).round() as u32).max(64),
        }
    }

    fn input_data(&self) -> Vec<f32> {
        (0..self.len())
            .map(|i| {
                let x = (i as u32).wrapping_mul(2891336453).wrapping_add(747796405);
                (x % 2000) as f32 / 250.0 - 4.0 // logits in [-4, 4)
            })
            .collect()
    }

    /// CPU reference (numerically stable row softmax).
    pub fn reference(&self, input: &[f32]) -> Vec<f32> {
        let (r, c) = (self.rows as usize, self.cols as usize);
        let mut out = vec![0.0f32; r * c];
        for row in 0..r {
            let slice = &input[row * c..(row + 1) * c];
            let max = slice.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let sum: f32 = slice.iter().map(|v| (v - max).exp()).sum();
            for (o, v) in out[row * c..(row + 1) * c].iter_mut().zip(slice) {
                *o = (v - max).exp() / sum;
            }
        }
        out
    }
}

impl Benchmark for Softmax {
    fn name(&self) -> &'static str {
        "Softmax"
    }

    fn source(&self) -> String {
        r#"
__global__ void softmax_rows(float* out, float* in, int cols) {
    __shared__ float red[32];
    int row = blockIdx.x;
    int t = threadIdx.x;

    // Phase 1: per-thread max, warp-reduced then block-reduced.
    float m = -3.0e38f;
    for (int i = t; i < cols; i += blockDim.x) {
        m = fmaxf(m, in[row * cols + i]);
    }
    for (int s = 16; s > 0; s = s / 2) {
        m = fmaxf(m, __shfl_xor_sync(0xffffffffu, m, s, 32));
    }
    if (t % 32 == 0) { red[t / 32] = m; }
    __syncthreads();
    if (t < 32) {
        m = (t < blockDim.x / 32 ? red[t] : -3.0e38f);
        for (int s = 16; s > 0; s = s / 2) {
            m = fmaxf(m, __shfl_xor_sync(0xffffffffu, m, s, 32));
        }
        if (t == 0) { red[0] = m; }
    }
    __syncthreads();
    float row_max = red[0];
    __syncthreads();

    // Phase 2: exponentials and per-thread partial sums.
    float sum = 0.0f;
    for (int i = t; i < cols; i += blockDim.x) {
        float e = expf(in[row * cols + i] - row_max);
        out[row * cols + i] = e;
        sum += e;
    }
    for (int s = 16; s > 0; s = s / 2) {
        sum += __shfl_xor_sync(0xffffffffu, sum, s, 32);
    }
    if (t % 32 == 0) { red[t / 32] = sum; }
    __syncthreads();
    if (t < 32) {
        sum = (t < blockDim.x / 32 ? red[t] : 0.0f);
        for (int s = 16; s > 0; s = s / 2) {
            sum += __shfl_xor_sync(0xffffffffu, sum, s, 32);
        }
        if (t == 0) { red[0] = sum; }
    }
    __syncthreads();
    float row_sum = red[0];

    // Phase 3: normalize.
    for (int i = t; i < cols; i += blockDim.x) {
        out[row * cols + i] = out[row * cols + i] / row_sum;
    }
}
"#
        .to_owned()
    }

    fn grid_dim(&self) -> u32 {
        self.rows
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let input = self.input_data();
        let in_buf = mem.alloc_from_f32(&input);
        let out_buf = mem.alloc_f32(self.len());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.cols as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        compare_f32(&got, &want, 3e-3, "softmax")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    fn run_and_check(wl: &Softmax, threads: u32) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (threads, 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn gpu_matches_reference() {
        run_and_check(&Softmax { rows: 2, cols: 300 }, 128);
    }

    #[test]
    fn works_at_other_block_sizes() {
        run_and_check(&Softmax { rows: 2, cols: 200 }, 256);
        run_and_check(&Softmax { rows: 3, cols: 97 }, 64);
    }

    #[test]
    fn rows_sum_to_one() {
        let wl = Softmax { rows: 2, cols: 64 };
        let out = wl.reference(&wl.input_data());
        for row in 0..2 {
            let s: f32 = out[row * 64..(row + 1) * 64].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {row} sums to {s}");
        }
    }

    #[test]
    fn uses_special_function_unit() {
        let ir = lower_kernel(&Softmax::default().kernel()).expect("lower");
        assert!(ir.insts.iter().any(|i| matches!(
            i,
            thread_ir::Inst::Un {
                op: thread_ir::ir::UnIr::Exp,
                ..
            }
        )));
    }
}
