//! `batch_norm_collect_statistics` — the paper's Fig. 2 kernel.
//!
//! Computes per-plane mean and (unnormalized) variance of an `(N, C, W)`
//! tensor using Welford accumulation, intra-warp shuffle reductions, a
//! shared-memory staging area, and two block barriers. One block per plane
//! (`blockIdx.x` is the channel). The block is two-dimensional with 16 rows
//! (`blockDim.y == 16`), like the PyTorch original.

use gpu_sim::{GpuMemory, ParamValue};
use hfuse_core::BlockShape;

use crate::{compare_f32, ptr_arg, Benchmark};

/// Batchnorm workload over an `(N, C, W)` tensor; `C` equals the grid size.
#[derive(Debug, Clone)]
pub struct Batchnorm {
    /// Batch size `N`.
    pub batch: u32,
    /// Channels `C` (one block per channel).
    pub channels: u32,
    /// Row width `W`.
    pub width: u32,
}

impl Default for Batchnorm {
    fn default() -> Self {
        Self {
            batch: 8,
            channels: crate::DEFAULT_GRID,
            width: 512,
        }
    }
}

impl Batchnorm {
    fn in_len(&self) -> usize {
        (self.batch * self.channels * self.width) as usize
    }

    /// Scales the row width by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            batch: self.batch,
            channels: self.channels,
            width: ((f64::from(self.width) * factor).round() as u32).max(32),
        }
    }

    fn input_data(&self) -> Vec<f32> {
        (0..self.in_len())
            .map(|i| {
                let x = (i as u32).wrapping_mul(1103515245).wrapping_add(12345);
                (x % 2048) as f32 / 1024.0 - 1.0
            })
            .collect()
    }

    /// CPU reference: per-channel `(mean, var_n)` where `var_n` is the sum
    /// of squared deviations (what the kernel's Welford merge produces).
    pub fn reference(&self, input: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let (n, c, w) = (
            self.batch as usize,
            self.channels as usize,
            self.width as usize,
        );
        let mut means = vec![0.0f32; c];
        let mut vars = vec![0.0f32; c];
        for ci in 0..c {
            // f64 accumulation: the GPU's tree-shaped merge is more accurate
            // than naive f32 streaming, so compare against a stable value.
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for b in 0..n {
                for x in 0..w {
                    sum += f64::from(input[(b * c + ci) * w + x]);
                    count += 1;
                }
            }
            let mean = sum / count as f64;
            let mut m2 = 0.0f64;
            for b in 0..n {
                for x in 0..w {
                    let d = f64::from(input[(b * c + ci) * w + x]) - mean;
                    m2 += d * d;
                }
            }
            means[ci] = mean as f32;
            vars[ci] = m2 as f32;
        }
        (means, vars)
    }
}

impl Benchmark for Batchnorm {
    fn name(&self) -> &'static str {
        "Batchnorm"
    }

    fn source(&self) -> String {
        r#"
#define WARP_SIZE 32
#define MSB_WARP 5

__global__ void batch_norm_collect_statistics(
        float* input, float* out_mean, float* out_var,
        int N, int C, int W) {
    __shared__ int shared_n[2 * 2 * WARP_SIZE + WARP_SIZE];

    float* shared_avg_var = (float*) &shared_n[WARP_SIZE];
    int plane = blockIdx.x;
    int tid = threadIdx.x + threadIdx.y * blockDim.x;
    float avg = 0.0f;
    float var_n = 0.0f;
    int n = 0;

    // PART A: each thread accumulates its strided slice (Welford).
    for (int batch = threadIdx.y; batch < N; batch += blockDim.y) {
        for (int x = threadIdx.x; x < W; x += blockDim.x) {
            float v = input[(batch * C + plane) * W + x];
            float d1 = v - avg;
            n++;
            avg += d1 / n;
            var_n += d1 * (v - avg);
        }
    }
    // Intra-warp merge via shuffles.
    for (int i = 0; i < MSB_WARP; ++i) {
        float o_avg = __shfl_xor_sync(0xffffffffu, avg, 1 << i, WARP_SIZE);
        int o_n = __shfl_xor_sync(0xffffffffu, n, 1 << i, WARP_SIZE);
        float factor = 1.0f / fmaxf(1.0f, (float)(n + o_n));
        var_n += __shfl_xor_sync(0xffffffffu, var_n, 1 << i, WARP_SIZE) +
                 (avg - o_avg) * (avg - o_avg) * n * o_n * factor;
        avg = (n * avg + o_n * o_avg) * factor;
        n += o_n;
    }
    __syncthreads();

    // PART B: warp leaders stage partials in shared memory.
    if (tid % WARP_SIZE == 0) {
        shared_n[tid / WARP_SIZE] = n;
        shared_avg_var[tid / WARP_SIZE * 2] = avg;
        shared_avg_var[tid / WARP_SIZE * 2 + 1] = var_n;
    }
    __syncthreads();

    // PART C: first warp merges the staged partials.
    if (tid < WARP_SIZE) {
        n = (tid < blockDim.x * blockDim.y / WARP_SIZE ? shared_n[tid] : 0);
        avg = (tid < blockDim.x * blockDim.y / WARP_SIZE ?
               shared_avg_var[2 * tid] : 0.0f);
        var_n = (tid < blockDim.x * blockDim.y / WARP_SIZE ?
                 shared_avg_var[2 * tid + 1] : 0.0f);
    }
    for (int i = 0; i < MSB_WARP; ++i) {
        float o_avg = __shfl_xor_sync(0xffffffffu, avg, 1 << i, WARP_SIZE);
        int o_n = __shfl_xor_sync(0xffffffffu, n, 1 << i, WARP_SIZE);
        float factor = 1.0f / fmaxf(1.0f, (float)(n + o_n));
        var_n += __shfl_xor_sync(0xffffffffu, var_n, 1 << i, WARP_SIZE) +
                 (avg - o_avg) * (avg - o_avg) * n * o_n * factor;
        avg = (n * avg + o_n * o_avg) * factor;
        n += o_n;
    }
    if (tid == 0) {
        out_mean[plane] = avg;
        out_var[plane] = var_n;
    }
}
"#
        .to_owned()
    }

    fn default_threads(&self) -> u32 {
        512
    }

    fn shape(&self) -> BlockShape {
        BlockShape::Rows { y: 16 }
    }

    fn grid_dim(&self) -> u32 {
        self.channels
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let input = self.input_data();
        let in_buf = mem.alloc_from_f32(&input);
        let mean_buf = mem.alloc_f32(self.channels as usize);
        let var_buf = mem.alloc_f32(self.channels as usize);
        vec![
            ParamValue::Ptr(in_buf),
            ParamValue::Ptr(mean_buf),
            ParamValue::Ptr(var_buf),
            ParamValue::I32(self.batch as i32),
            ParamValue::I32(self.channels as i32),
            ParamValue::I32(self.width as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got_mean = mem.read_f32s(ptr_arg(args, 1));
        let got_var = mem.read_f32s(ptr_arg(args, 2));
        let (want_mean, want_var) = self.reference(&self.input_data());
        compare_f32(&got_mean, &want_mean, 2e-3, "batchnorm mean")?;
        compare_f32(&got_var, &want_var, 2e-2, "batchnorm var")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    fn run_and_check(wl: &Batchnorm, block: (u32, u32, u32)) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: block,
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn gpu_matches_reference_default_block() {
        let wl = Batchnorm {
            batch: 4,
            channels: 2,
            width: 96,
        };
        run_and_check(&wl, (32, 16, 1));
    }

    #[test]
    fn gpu_matches_reference_alternate_blocks() {
        // The kernel must be correct for every tunable block size the
        // search may try.
        let wl = Batchnorm {
            batch: 3,
            channels: 2,
            width: 64,
        };
        run_and_check(&wl, (8, 16, 1)); // 128 threads
        run_and_check(&wl, (24, 16, 1)); // 384 threads
    }

    #[test]
    fn kernel_has_two_barriers_and_shuffles() {
        let wl = Batchnorm::default();
        let ir = lower_kernel(&wl.kernel()).expect("lower");
        let bars = ir
            .insts
            .iter()
            .filter(|i| matches!(i, thread_ir::Inst::Bar { .. }))
            .count();
        assert_eq!(bars, 2);
        assert!(ir
            .insts
            .iter()
            .any(|i| matches!(i, thread_ir::Inst::Shfl { .. })));
        assert_eq!(ir.shared_static_bytes, 160 * 4);
    }

    #[test]
    fn reference_statistics_are_correct() {
        let wl = Batchnorm {
            batch: 1,
            channels: 1,
            width: 4,
        };
        let (m, v) = wl.reference(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m[0] - 2.5).abs() < 1e-6);
        assert!((v[0] - 5.0).abs() < 1e-5); // sum of squared deviations
    }
}
