//! 2-D max-pooling (2×2 window, stride 2) over a CHW tensor.
//!
//! Four strided loads and one store per output element with almost no
//! arithmetic: strongly memory-bound (the paper measures 95% memory-stall
//! and 8% issue-slot utilization for it on the 1080Ti).

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Maxpool workload: input `(channels, height, width)`, output
/// `(channels, height/2, width/2)`.
#[derive(Debug, Clone)]
pub struct Maxpool {
    /// Channels.
    pub channels: u32,
    /// Input height (even).
    pub height: u32,
    /// Input width (even).
    pub width: u32,
}

impl Default for Maxpool {
    fn default() -> Self {
        Self {
            channels: 64,
            height: 64,
            width: 64,
        }
    }
}

impl Maxpool {
    /// Output elements.
    pub fn out_len(&self) -> usize {
        (self.channels * (self.height / 2) * (self.width / 2)) as usize
    }

    /// Input elements.
    pub fn in_len(&self) -> usize {
        (self.channels * self.height * self.width) as usize
    }

    /// Scales the spatial size by `factor` (used for the Fig. 7 ratio
    /// sweeps). Width is kept a multiple of 2.
    pub fn scaled(&self, factor: f64) -> Self {
        let h = (((f64::from(self.height) * factor).round() as u32).max(4) + 1) & !1;
        Self {
            channels: self.channels,
            height: h,
            width: self.width,
        }
    }

    fn input_data(&self) -> Vec<f32> {
        // Deterministic pseudo-random values.
        (0..self.in_len())
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761);
                (x % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// CPU reference.
    pub fn reference(&self, input: &[f32]) -> Vec<f32> {
        let (c, h, w) = (
            self.channels as usize,
            self.height as usize,
            self.width as usize,
        );
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; c * oh * ow];
        for ci in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let base = (ci * h + y * 2) * w + x * 2;
                    let m = input[base]
                        .max(input[base + 1])
                        .max(input[base + w])
                        .max(input[base + w + 1]);
                    out[(ci * oh + y) * ow + x] = m;
                }
            }
        }
        out
    }
}

impl Benchmark for Maxpool {
    fn name(&self) -> &'static str {
        "Maxpool"
    }

    fn source(&self) -> String {
        r#"
__global__ void maxpool(float* out, float* in, int C, int H, int W) {
    int OH = H / 2;
    int OW = W / 2;
    int total = C * OH * OW;
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < total;
         i += gridDim.x * blockDim.x) {
        int ox = i % OW;
        int oy = (i / OW) % OH;
        int c = i / (OW * OH);
        int base = (c * H + oy * 2) * W + ox * 2;
        float m = in[base];
        m = fmaxf(m, in[base + 1]);
        m = fmaxf(m, in[base + W]);
        m = fmaxf(m, in[base + W + 1]);
        out[i] = m;
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let input = self.input_data();
        let in_buf = mem.alloc_from_f32(&input);
        let out_buf = mem.alloc_f32(self.out_len());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.channels as i32),
            ParamValue::I32(self.height as i32),
            ParamValue::I32(self.width as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        compare_f32(&got, &want, 1e-6, "maxpool")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference() {
        let wl = Maxpool {
            channels: 4,
            height: 16,
            width: 16,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (wl.default_threads(), 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn timed_run_matches_reference_too() {
        let wl = Maxpool {
            channels: 2,
            height: 8,
            width: 8,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 2,
            block_dim: (64, 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn scaled_keeps_even_height() {
        let wl = Maxpool::default();
        for f in [0.3, 0.77, 1.5, 2.0] {
            assert_eq!(wl.scaled(f).height % 2, 0);
        }
    }

    #[test]
    fn reference_picks_window_max() {
        let wl = Maxpool {
            channels: 1,
            height: 2,
            width: 2,
        };
        let out = wl.reference(&[1.0, 5.0, 3.0, 2.0]);
        assert_eq!(out, vec![5.0]);
    }
}
