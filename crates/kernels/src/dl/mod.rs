//! Deep-learning benchmark kernels (extracted from PyTorch in the paper),
//! plus the extension kernels (`softmax`, `transpose`) that are not part of
//! the paper's evaluation set.

pub mod batchnorm;
pub mod hist;
pub mod im2col;
pub mod maxpool;
pub mod softmax;
pub mod transpose;
pub mod upsample;
