//! 2-D bilinear upsampling (×2) over a CHW tensor, following PyTorch's
//! `upsample_bilinear2d` with `align_corners = true`.
//!
//! Four gathered loads plus interpolation arithmetic per output element:
//! memory-heavy with moderate floating-point work (the paper measures ~78%
//! memory stall for it).

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Upsample workload: input `(channels, height, width)`, output scaled ×2.
#[derive(Debug, Clone)]
pub struct Upsample {
    /// Channels.
    pub channels: u32,
    /// Input height (≥ 2).
    pub height: u32,
    /// Input width (≥ 2).
    pub width: u32,
}

impl Default for Upsample {
    fn default() -> Self {
        Self {
            channels: 16,
            height: 32,
            width: 64,
        }
    }
}

impl Upsample {
    fn in_len(&self) -> usize {
        (self.channels * self.height * self.width) as usize
    }

    fn out_len(&self) -> usize {
        (self.channels * self.height * 2 * self.width * 2) as usize
    }

    /// Scales the input height by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            channels: self.channels,
            height: ((f64::from(self.height) * factor).round() as u32).max(2),
            width: self.width,
        }
    }

    fn input_data(&self) -> Vec<f32> {
        (0..self.in_len())
            .map(|i| {
                let x = (i as u32).wrapping_mul(747796405).wrapping_add(2891336453);
                (x % 4096) as f32 / 2048.0 - 1.0
            })
            .collect()
    }

    /// CPU reference (bilinear, align_corners = true).
    pub fn reference(&self, input: &[f32]) -> Vec<f32> {
        let (c, h, w) = (
            self.channels as usize,
            self.height as usize,
            self.width as usize,
        );
        let (oh, ow) = (h * 2, w * 2);
        let rh = if oh > 1 {
            (h - 1) as f32 / (oh - 1) as f32
        } else {
            0.0
        };
        let rw = if ow > 1 {
            (w - 1) as f32 / (ow - 1) as f32
        } else {
            0.0
        };
        let mut out = vec![0.0f32; c * oh * ow];
        for ci in 0..c {
            for oy in 0..oh {
                let fy = rh * oy as f32;
                let y0 = fy as usize;
                let y1 = if y0 + 1 < h { y0 + 1 } else { y0 };
                let ly = fy - y0 as f32;
                for ox in 0..ow {
                    let fx = rw * ox as f32;
                    let x0 = fx as usize;
                    let x1 = if x0 + 1 < w { x0 + 1 } else { x0 };
                    let lx = fx - x0 as f32;
                    let v00 = input[(ci * h + y0) * w + x0];
                    let v01 = input[(ci * h + y0) * w + x1];
                    let v10 = input[(ci * h + y1) * w + x0];
                    let v11 = input[(ci * h + y1) * w + x1];
                    let top = v00 + (v01 - v00) * lx;
                    let bot = v10 + (v11 - v10) * lx;
                    out[(ci * oh + oy) * ow + ox] = top + (bot - top) * ly;
                }
            }
        }
        out
    }
}

impl Benchmark for Upsample {
    fn name(&self) -> &'static str {
        "Upsample"
    }

    fn source(&self) -> String {
        r#"
__global__ void upsample_bilinear2d(float* out, float* in, int C, int H, int W) {
    int OH = H * 2;
    int OW = W * 2;
    float rh = OH > 1 ? (float)(H - 1) / (OH - 1) : 0.0f;
    float rw = OW > 1 ? (float)(W - 1) / (OW - 1) : 0.0f;
    int total = C * OH * OW;
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < total;
         i += gridDim.x * blockDim.x) {
        int ox = i % OW;
        int oy = (i / OW) % OH;
        int c = i / (OW * OH);
        float fy = rh * oy;
        int y0 = (int)fy;
        int y1 = y0 + 1 < H ? y0 + 1 : y0;
        float ly = fy - y0;
        float fx = rw * ox;
        int x0 = (int)fx;
        int x1 = x0 + 1 < W ? x0 + 1 : x0;
        float lx = fx - x0;
        float v00 = in[(c * H + y0) * W + x0];
        float v01 = in[(c * H + y0) * W + x1];
        float v10 = in[(c * H + y1) * W + x0];
        float v11 = in[(c * H + y1) * W + x1];
        float top = v00 + (v01 - v00) * lx;
        float bot = v10 + (v11 - v10) * lx;
        out[i] = top + (bot - top) * ly;
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let input = self.input_data();
        let in_buf = mem.alloc_from_f32(&input);
        let out_buf = mem.alloc_f32(self.out_len());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.channels as i32),
            ParamValue::I32(self.height as i32),
            ParamValue::I32(self.width as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        compare_f32(&got, &want, 1e-4, "upsample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference() {
        let wl = Upsample {
            channels: 2,
            height: 8,
            width: 8,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: 4,
            block_dim: (64, 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn corners_are_exact() {
        // align_corners = true: corner outputs equal corner inputs.
        let wl = Upsample {
            channels: 1,
            height: 4,
            width: 4,
        };
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let out = wl.reference(&input);
        assert_eq!(out[0], input[0]);
        assert_eq!(out[7], input[3]);
        assert_eq!(out[8 * 7], input[4 * 3]);
        assert_eq!(out[8 * 8 - 1], input[15]);
    }
}
