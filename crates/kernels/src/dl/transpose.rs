//! Tiled matrix transpose — an *extension* kernel (not part of the paper's
//! nine).
//!
//! The classic 32×8 thread-block tile through shared memory: coalesced
//! global reads, a barrier, coalesced global writes of the transposed tile.
//! Pure data movement — every issue is a load, store, or address
//! calculation — so it exercises both memory pipes at once, a different
//! profile from all nine paper kernels.

use gpu_sim::{GpuMemory, ParamValue};
use hfuse_core::BlockShape;

use crate::{compare_f32, ptr_arg, Benchmark};

const TILE: u32 = 32;
const ROWS_PER_BLOCK: u32 = 8;

/// Transpose workload over a `size × size` matrix (`size` a multiple of the
/// 32-wide tile). The grid is linearized over tiles.
#[derive(Debug, Clone)]
pub struct Transpose {
    /// Matrix dimension.
    pub size: u32,
}

impl Default for Transpose {
    fn default() -> Self {
        // 16 × 16 tiles = 256 tiles, walked by DEFAULT_GRID blocks.
        Self { size: 512 }
    }
}

impl Transpose {
    fn len(&self) -> usize {
        (self.size * self.size) as usize
    }

    /// Scales the matrix dimension by `sqrt(factor)` (so the total work
    /// scales by roughly `factor`), keeping it tile-aligned.
    pub fn scaled(&self, factor: f64) -> Self {
        let dim = (f64::from(self.size) * factor.sqrt()).round() as u32;
        Self {
            size: dim.max(TILE).div_ceil(TILE) * TILE,
        }
    }

    fn input_data(&self) -> Vec<f32> {
        (0..self.len())
            .map(|i| {
                let x = (i as u32).wrapping_mul(374761393).wrapping_add(2246822519);
                (x % 8192) as f32 / 4096.0 - 1.0
            })
            .collect()
    }

    /// CPU reference.
    pub fn reference(&self, input: &[f32]) -> Vec<f32> {
        let n = self.size as usize;
        let mut out = vec![0.0f32; n * n];
        for r in 0..n {
            for c in 0..n {
                out[c * n + r] = input[r * n + c];
            }
        }
        out
    }
}

impl Benchmark for Transpose {
    fn name(&self) -> &'static str {
        "Transpose"
    }

    fn source(&self) -> String {
        // 33-wide rows in shared memory avoid bank conflicts on real
        // hardware; kept for fidelity even though the simulator does not
        // model banks.
        r#"
__global__ void transpose_tiled(float* out, float* in, int n) {
    __shared__ float tile[33 * 32];
    int tilesPerSide = n / 32;
    int totalTiles = tilesPerSide * tilesPerSide;
    for (int t = blockIdx.x; t < totalTiles; t += gridDim.x) {
        int tileX = t % tilesPerSide;
        int tileY = t / tilesPerSide;
        int x = tileX * 32 + threadIdx.x;
        int yBase = tileY * 32;
        for (int r = threadIdx.y; r < 32; r += blockDim.y) {
            tile[r * 33 + threadIdx.x] = in[(yBase + r) * n + x];
        }
        __syncthreads();
        int ox = tileY * 32 + threadIdx.x;
        int oyBase = tileX * 32;
        for (int r = threadIdx.y; r < 32; r += blockDim.y) {
            out[(oyBase + r) * n + ox] = tile[threadIdx.x * 33 + r];
        }
        __syncthreads();
    }
}
"#
        .to_owned()
    }

    fn default_threads(&self) -> u32 {
        TILE * ROWS_PER_BLOCK
    }

    fn shape(&self) -> BlockShape {
        BlockShape::Rows { y: ROWS_PER_BLOCK }
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let input = self.input_data();
        let in_buf = mem.alloc_from_f32(&input);
        let out_buf = mem.alloc_f32(self.len());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.size as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        compare_f32(&got, &want, 0.0, "transpose")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    fn run_and_check(wl: &Transpose, grid: u32, block: (u32, u32, u32)) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: grid,
            block_dim: block,
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn gpu_matches_reference() {
        run_and_check(&Transpose { size: 64 }, 2, (32, 8, 1));
    }

    #[test]
    fn works_with_fewer_rows_per_block() {
        run_and_check(&Transpose { size: 64 }, 3, (32, 4, 1));
    }

    #[test]
    fn reference_is_involution() {
        let wl = Transpose { size: 32 };
        let input = wl.input_data();
        assert_eq!(wl.reference(&wl.reference(&input)), input);
    }

    #[test]
    fn scaled_keeps_tile_alignment() {
        let wl = Transpose::default();
        for f in [0.3, 0.5, 1.7, 3.0] {
            assert_eq!(wl.scaled(f).size % TILE, 0, "factor {f}");
        }
    }
}
