//! Image-stencil benchmark kernels (the pipeline-chain shapes motivating the
//! Fused Kernel Library, arXiv:2508.07071): a separable 3×3 binomial blur
//! and a 2× box-filter downsample. Both are 2-D-indexed, clamped-edge,
//! per-output-independent stencils, so their CPU mirrors match bitwise.

pub mod blur;
pub mod downsample;
