//! Separable 3×3 binomial blur (weights ¼ ½ ¼ per axis): three 3-tap row
//! sums combined vertically per output pixel, with clamped edges. Nine
//! loads and one store per pixel — memory-bound with index-heavy 2-D
//! addressing.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Blur workload: a `height × width` single-channel image.
#[derive(Debug, Clone)]
pub struct Blur {
    /// Image height.
    pub height: u32,
    /// Image width.
    pub width: u32,
}

impl Default for Blur {
    fn default() -> Self {
        Self {
            height: 128,
            width: 128,
        }
    }
}

impl Blur {
    /// Pixels.
    pub fn len(&self) -> usize {
        (self.height * self.width) as usize
    }

    /// True when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scales the image height by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            height: ((f64::from(self.height) * factor).round() as u32).max(8),
            width: self.width,
        }
    }

    fn input_data(&self) -> Vec<f32> {
        (0..self.len())
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// CPU reference, mirroring the kernel's tap order: each of the three
    /// row sums is `¼·left + ½·center + ¼·right` (left-to-right adds), the
    /// rows are then combined `¼·up + ½·mid + ¼·down`.
    pub fn reference(&self, input: &[f32]) -> Vec<f32> {
        let (h, w) = (self.height as usize, self.width as usize);
        let row = |y: usize, x: usize| -> f32 {
            let xl = x.saturating_sub(1);
            let xr = (x + 1).min(w - 1);
            0.25 * input[y * w + xl] + 0.5 * input[y * w + x] + 0.25 * input[y * w + xr]
        };
        let mut out = vec![0.0f32; h * w];
        for y in 0..h {
            for x in 0..w {
                let yu = y.saturating_sub(1);
                let yd = (y + 1).min(h - 1);
                out[y * w + x] = 0.25 * row(yu, x) + 0.5 * row(y, x) + 0.25 * row(yd, x);
            }
        }
        out
    }
}

impl Benchmark for Blur {
    fn name(&self) -> &'static str {
        "Blur"
    }

    fn source(&self) -> String {
        r#"
__global__ void blur(float* out, float* in, int H, int W) {
    int total = H * W;
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < total;
         i += gridDim.x * blockDim.x) {
        int x = i % W;
        int y = i / W;
        int xl = max(x - 1, 0);
        int xr = min(x + 1, W - 1);
        int yu = max(y - 1, 0);
        int yd = min(y + 1, H - 1);
        float r0 = 0.25f * in[yu * W + xl] + 0.5f * in[yu * W + x]
                 + 0.25f * in[yu * W + xr];
        float r1 = 0.25f * in[y * W + xl] + 0.5f * in[y * W + x]
                 + 0.25f * in[y * W + xr];
        float r2 = 0.25f * in[yd * W + xl] + 0.5f * in[yd * W + x]
                 + 0.25f * in[yd * W + xr];
        out[i] = 0.25f * r0 + 0.5f * r1 + 0.25f * r2;
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let out_buf = mem.alloc_f32(self.len());
        let in_buf = mem.alloc_from_f32(&self.input_data());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.height as i32),
            ParamValue::I32(self.width as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        compare_f32(&got, &want, 0.0, "blur")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference_bitwise() {
        let wl = Blur {
            height: 32,
            width: 48,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (wl.default_threads(), 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn uniform_image_stays_uniform() {
        // Binomial weights sum to 1 along each axis, so a constant image is
        // a fixed point (up to rounding, exact for powers of two).
        let wl = Blur {
            height: 4,
            width: 4,
        };
        let out = wl.reference(&[2.0; 16]);
        assert!(out.iter().all(|v| *v == 2.0), "{out:?}");
    }
}
