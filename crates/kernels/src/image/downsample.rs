//! 2× box-filter downsample: each output pixel averages a 2×2 input window
//! (`0.25·(((a+b)+c)+d)`). The inverse data-movement shape of `Upsample`
//! and the second stage of a blur→resize image pipeline.

use gpu_sim::{GpuMemory, ParamValue};

use crate::{compare_f32, ptr_arg, Benchmark};

/// Downsample workload: input `height × width` (both even), output halved
/// along each axis.
#[derive(Debug, Clone)]
pub struct Downsample {
    /// Input height (even).
    pub height: u32,
    /// Input width (even).
    pub width: u32,
}

impl Default for Downsample {
    fn default() -> Self {
        Self {
            height: 256,
            width: 256,
        }
    }
}

impl Downsample {
    /// Input elements.
    pub fn in_len(&self) -> usize {
        (self.height * self.width) as usize
    }

    /// Output elements.
    pub fn out_len(&self) -> usize {
        ((self.height / 2) * (self.width / 2)) as usize
    }

    /// Scales the input height by `factor`, keeping it even.
    pub fn scaled(&self, factor: f64) -> Self {
        let h = (((f64::from(self.height) * factor).round() as u32).max(4) + 1) & !1;
        Self {
            height: h,
            width: self.width,
        }
    }

    fn input_data(&self) -> Vec<f32> {
        (0..self.in_len())
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761);
                (h % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// CPU reference, mirroring the kernel's addition order exactly.
    pub fn reference(&self, input: &[f32]) -> Vec<f32> {
        let (h, w) = (self.height as usize, self.width as usize);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; oh * ow];
        for y in 0..oh {
            for x in 0..ow {
                let base = (y * 2) * w + x * 2;
                out[y * ow + x] = 0.25
                    * (((input[base] + input[base + 1]) + input[base + w]) + input[base + w + 1]);
            }
        }
        out
    }
}

impl Benchmark for Downsample {
    fn name(&self) -> &'static str {
        "Downsample"
    }

    fn source(&self) -> String {
        r#"
__global__ void downsample(float* out, float* in, int H, int W) {
    int OH = H / 2;
    int OW = W / 2;
    int total = OH * OW;
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < total;
         i += gridDim.x * blockDim.x) {
        int ox = i % OW;
        int oy = i / OW;
        int base = (oy * 2) * W + ox * 2;
        out[i] = 0.25f * (((in[base] + in[base + 1]) + in[base + W])
                          + in[base + W + 1]);
    }
}
"#
        .to_owned()
    }

    fn setup(&self, mem: &mut GpuMemory) -> Vec<ParamValue> {
        let out_buf = mem.alloc_f32(self.out_len());
        let in_buf = mem.alloc_from_f32(&self.input_data());
        vec![
            ParamValue::Ptr(out_buf),
            ParamValue::Ptr(in_buf),
            ParamValue::I32(self.height as i32),
            ParamValue::I32(self.width as i32),
        ]
    }

    fn check(&self, mem: &GpuMemory, args: &[ParamValue]) -> Result<(), String> {
        let got = mem.read_f32s(ptr_arg(args, 0));
        let want = self.reference(&self.input_data());
        compare_f32(&got, &want, 0.0, "downsample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Gpu, GpuConfig, Launch};
    use thread_ir::lower_kernel;

    #[test]
    fn gpu_matches_reference_bitwise() {
        let wl = Downsample {
            height: 32,
            width: 32,
        };
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let args = wl.setup(gpu.memory_mut());
        let launch = Launch {
            kernel: lower_kernel(&wl.kernel()).expect("lower").into(),
            grid_dim: wl.grid_dim(),
            block_dim: (wl.default_threads(), 1, 1),
            dynamic_shared_bytes: 0,
            args: args.clone(),
        };
        gpu.run_functional(&[launch]).expect("run");
        wl.check(gpu.memory(), &args).expect("check");
    }

    #[test]
    fn scaled_keeps_even_height() {
        let wl = Downsample::default();
        for f in [0.3, 0.77, 1.5, 2.0] {
            assert_eq!(wl.scaled(f).height % 2, 0);
        }
    }

    #[test]
    fn reference_averages_the_window() {
        let wl = Downsample {
            height: 2,
            width: 2,
        };
        assert_eq!(wl.reference(&[1.0, 2.0, 3.0, 6.0]), vec![3.0]);
    }
}
