//! Prologue generation: remapping a fused kernel's linear thread id back to
//! an original kernel's `threadIdx.{x,y,z}` / `blockDim.{x,y,z}`.
//!
//! Shared by horizontal fusion (Fig. 4's prologue) and by the generalized
//! vertical fusion (which must remap when the two kernels use different
//! block shapes).

use cuda_frontend::ast::{BinOp, Expr, Stmt, Ty, VarDecl};
use cuda_frontend::transform::BuiltinSubst;

/// Prologue variables remapping a linear thread id expression to one
/// kernel's original 3-D thread indices.
#[derive(Debug, Clone)]
pub struct ThreadRemap {
    tid_names: [String; 3],
    dim_names: [String; 3],
    ltid: Expr,
    dims: (u32, u32, u32),
}

impl ThreadRemap {
    /// Creates a remap with fresh variable names under `prefix` for a
    /// kernel whose original block shape is `dims`; `ltid` is the kernel's
    /// local linear thread id within the fused block.
    pub fn new(prefix: &str, dims: (u32, u32, u32), ltid: Expr) -> Self {
        ThreadRemap {
            tid_names: [
                format!("{prefix}_tid_x"),
                format!("{prefix}_tid_y"),
                format!("{prefix}_tid_z"),
            ],
            dim_names: [
                format!("{prefix}_dim_x"),
                format!("{prefix}_dim_y"),
                format!("{prefix}_dim_z"),
            ],
            ltid,
            dims,
        }
    }

    /// The prologue declarations computing the remapped indices.
    pub fn decls(&self) -> Vec<Stmt> {
        let (dx, dy, _dz) = self.dims;
        let lt = self.ltid.clone();
        vec![
            decl_i32(&self.dim_names[0], Some(Expr::int(i64::from(dx)))),
            decl_i32(&self.dim_names[1], Some(Expr::int(i64::from(self.dims.1)))),
            decl_i32(&self.dim_names[2], Some(Expr::int(i64::from(self.dims.2)))),
            // tid_x = ltid % dx
            decl_i32(
                &self.tid_names[0],
                Some(Expr::bin(BinOp::Rem, lt.clone(), Expr::int(i64::from(dx)))),
            ),
            // tid_y = ltid / dx % dy
            decl_i32(
                &self.tid_names[1],
                Some(Expr::bin(
                    BinOp::Rem,
                    Expr::bin(BinOp::Div, lt.clone(), Expr::int(i64::from(dx))),
                    Expr::int(i64::from(dy)),
                )),
            ),
            // tid_z = ltid / (dx*dy)
            decl_i32(
                &self.tid_names[2],
                Some(Expr::bin(BinOp::Div, lt, Expr::int(i64::from(dx * dy)))),
            ),
        ]
    }

    /// The builtin substitution retargeting `threadIdx` / `blockDim` to the
    /// prologue variables.
    pub fn subst(&self) -> BuiltinSubst {
        BuiltinSubst::new().thread_remap(
            [&self.tid_names[0], &self.tid_names[1], &self.tid_names[2]],
            [&self.dim_names[0], &self.dim_names[1], &self.dim_names[2]],
        )
    }
}

pub(crate) fn decl_i32(name: &str, init: Option<Expr>) -> Stmt {
    Stmt::Decl(VarDecl {
        name: name.to_owned(),
        ty: Ty::I32,
        quals: Default::default(),
        array_len: None,
        init,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::printer::print_stmt;

    #[test]
    fn decls_compute_xyz_from_linear_id() {
        let r = ThreadRemap::new("__t", (56, 16, 1), Expr::ident("lt"));
        let printed: String = r.decls().iter().map(print_stmt).collect();
        assert!(printed.contains("int __t_tid_x = lt % 56;"), "{printed}");
        assert!(
            printed.contains("int __t_tid_y = lt / 56 % 16;"),
            "{printed}"
        );
        assert!(printed.contains("int __t_tid_z = lt / 896;"), "{printed}");
        assert!(printed.contains("int __t_dim_x = 56;"), "{printed}");
    }
}
