//! The profiling-driven fusion-configuration search (Fig. 6 of the paper),
//! plus the measurement helpers the evaluation harness uses (native
//! co-execution, vertical fusion, naive even-partition horizontal fusion).
//!
//! For each candidate thread-space partition `d1` (stepped at a granularity
//! of 128, because irregular block shapes break memory-access patterns), the
//! search profiles the fused kernel twice on the simulator: once as
//! compiled, and once with a register bound
//! `r0 = SMNRegs / (b0 * d0)` where
//! `b0 = min(b1, b2, SMShMem/ShMem(F), SMNThreads/d0)` — i.e. capped so the
//! fused kernel can keep as many resident blocks as the originals.

use std::fmt;
use std::sync::Arc;

use cuda_frontend::ast::Function;
use cuda_frontend::FrontendError;
use gpu_sim::{Gpu, GpuConfig, Launch, ParamValue, SimError};
use thread_ir::ir::KernelIr;
use thread_ir::lower_kernel;
use thread_ir::spill::apply_register_bound;

use crate::fuse::{horizontal_fuse, FusedKernel};

/// Errors from fusing or profiling.
#[derive(Debug, Clone, PartialEq)]
pub enum HfuseError {
    /// Frontend/lowering failure.
    Frontend(FrontendError),
    /// Simulator failure.
    Sim(SimError),
    /// Invalid search input (mismatched grids, no viable partition, ...).
    Config(String),
}

impl fmt::Display for HfuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HfuseError::Frontend(e) => write!(f, "frontend: {e}"),
            HfuseError::Sim(e) => write!(f, "{e}"),
            HfuseError::Config(m) => write!(f, "configuration: {m}"),
        }
    }
}

impl std::error::Error for HfuseError {}

impl From<FrontendError> for HfuseError {
    fn from(e: FrontendError) -> Self {
        HfuseError::Frontend(e)
    }
}

impl From<SimError> for HfuseError {
    fn from(e: SimError) -> Self {
        HfuseError::Sim(e)
    }
}

/// How a kernel's block dimension maps to a 3-D shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockShape {
    /// `(d, 1, 1)`.
    Linear,
    /// `(d / y, y, 1)` — e.g. the paper's batch-norm kernel uses 16 rows.
    Rows {
        /// Fixed `blockDim.y`.
        y: u32,
    },
}

impl BlockShape {
    /// The 3-D dims for a total thread count, or `None` when `threads` is
    /// incompatible with the shape.
    pub fn dims(self, threads: u32) -> Option<(u32, u32, u32)> {
        match self {
            BlockShape::Linear => Some((threads, 1, 1)),
            BlockShape::Rows { y } => {
                if threads.is_multiple_of(y) && threads >= y {
                    Some((threads / y, y, 1))
                } else {
                    None
                }
            }
        }
    }
}

/// One kernel's contribution to a fusion experiment: source, launch
/// geometry, and pre-allocated arguments.
#[derive(Debug, Clone)]
pub struct FusionInput {
    /// The parsed kernel.
    pub kernel: Function,
    /// Arguments (buffers already allocated in the base memory snapshot).
    pub args: Vec<ParamValue>,
    /// Grid dimension the kernel runs with.
    pub grid_dim: u32,
    /// Dynamic shared memory bytes.
    pub dynamic_shared: u32,
    /// Block threads used when the kernel runs natively.
    pub default_threads: u32,
    /// Whether the block dimension is tunable (deep-learning kernels) or
    /// fixed (crypto kernels).
    pub tunable: bool,
    /// Thread-shape rule.
    pub shape: BlockShape,
}

impl FusionInput {
    fn dims(&self, threads: u32) -> Option<(u32, u32, u32)> {
        self.shape.dims(threads)
    }
}

/// Search options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Desired fused block dimension `d0` for tunable pairs.
    pub d0: u32,
    /// Partition step (the paper uses 128).
    pub granularity: u32,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            d0: 1024,
            granularity: 128,
        }
    }
}

/// One profiled fusion configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCandidate {
    /// Threads given to the first kernel.
    pub d1: u32,
    /// Threads given to the second kernel.
    pub d2: u32,
    /// Register bound applied (`None` = unbounded compile).
    pub reg_bound: Option<u32>,
    /// Profiled execution cycles.
    pub cycles: u64,
    /// Issue-slot utilization (%).
    pub issue_util: f64,
    /// Memory-stall percentage.
    pub mem_stall: f64,
    /// Achieved occupancy (%).
    pub occupancy: f64,
}

/// The search result: every profiled candidate plus the winner.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// All profiled configurations, in search order.
    pub candidates: Vec<SearchCandidate>,
    /// Index of the fastest candidate.
    pub best_idx: usize,
    /// The fused function of the best candidate.
    pub best_function: Function,
    /// The compiled best kernel (with the winning register bound applied).
    pub best_kernel: KernelIr,
    /// Fused block dimension.
    pub d0: u32,
}

impl SearchReport {
    /// The winning configuration.
    pub fn best(&self) -> &SearchCandidate {
        &self.candidates[self.best_idx]
    }
}

/// Compiles a fused kernel, optionally applying a register bound.
fn compile_fused(fused: &FusedKernel, bound: Option<u32>) -> Result<KernelIr, HfuseError> {
    let mut ir = lower_kernel(&fused.function)?;
    if let Some(b) = bound {
        apply_register_bound(&mut ir, b);
    }
    Ok(ir)
}

/// Profiles a compiled fused kernel on a fresh copy of the base device
/// state. The argument list, grid, and shared-memory size are precomputed
/// once by the caller; cloning the base device only bumps buffer refcounts
/// (copy-on-write), and `ir` is shared, so each profile is cheap to set up.
fn profile_fused(
    base: &Gpu,
    ir: &Arc<KernelIr>,
    args: &[ParamValue],
    grid_dim: u32,
    dynamic_shared_bytes: u32,
    d0: u32,
) -> Result<SearchCandidate, HfuseError> {
    let mut gpu = base.clone();
    let launch = Launch {
        kernel: Arc::clone(ir),
        grid_dim,
        block_dim: (d0, 1, 1),
        dynamic_shared_bytes,
        args: args.to_vec(),
    };
    let res = gpu.run(&[launch])?;
    Ok(SearchCandidate {
        d1: 0,
        d2: 0,
        reg_bound: None,
        cycles: res.total_cycles,
        issue_util: res.metrics.issue_slot_utilization(),
        mem_stall: res.metrics.mem_stall_pct(),
        occupancy: res.metrics.occupancy_pct(),
    })
}

/// The register bound of Fig. 6 lines 13–16.
///
/// `nregs1`/`nregs2` are the register pressures of the original kernels;
/// `shmem_fused` the fused kernel's total shared bytes per block.
pub fn register_bound(
    cfg: &GpuConfig,
    d1: u32,
    nregs1: u32,
    d2: u32,
    nregs2: u32,
    shmem_fused: u32,
    d0: u32,
) -> u32 {
    let b1 = cfg.regs_per_sm / (d1 * nregs1).max(1);
    let b2 = cfg.regs_per_sm / (d2 * nregs2).max(1);
    let b_sh = cfg
        .shared_per_sm
        .checked_div(shmem_fused)
        .unwrap_or(u32::MAX);
    let b_th = cfg.max_threads_per_sm / d0.max(1);
    let b0 = b1.min(b2).min(b_sh).min(b_th).max(1);
    (cfg.regs_per_sm / (b0 * d0).max(1)).max(1)
}

/// Runs the full Fig. 6 search: sweep partitions, profile each candidate
/// with and without the register bound, and return the fastest.
///
/// Both inputs must use the same grid dimension. For non-tunable kernels
/// (crypto), the single candidate is the kernels' native block sizes.
///
/// # Errors
///
/// Returns [`HfuseError`] if no candidate partition is feasible or a
/// profile run fails.
pub fn search_fusion_config(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    opts: SearchOptions,
) -> Result<SearchReport, HfuseError> {
    let cfg = base.config().clone();
    if in1.grid_dim != in2.grid_dim {
        return Err(HfuseError::Config(format!(
            "grid dimensions must match for fusion ({} vs {})",
            in1.grid_dim, in2.grid_dim
        )));
    }
    let nregs1 = lower_kernel(&in1.kernel)?.reg_pressure();
    let nregs2 = lower_kernel(&in2.kernel)?.reg_pressure();

    let partitions: Vec<(u32, u32)> = if in1.tunable && in2.tunable {
        let mut v = Vec::new();
        let mut d1 = opts.granularity;
        while d1 < opts.d0 {
            v.push((d1, opts.d0 - d1));
            d1 += opts.granularity;
        }
        v
    } else {
        vec![(in1.default_threads, in2.default_threads)]
    };

    // Compile every candidate first (cheap), then profile them in parallel:
    // each profile runs on its own clone of the device state, so candidates
    // are fully independent and the result is deterministic regardless of
    // thread scheduling.
    struct Candidate {
        d1: u32,
        d2: u32,
        bound: Option<u32>,
        fused: FusedKernel,
        ir: Arc<KernelIr>,
    }
    let mut compiled: Vec<Candidate> = Vec::new();
    for (d1, d2) in partitions {
        let (Some(dims1), Some(dims2)) = (in1.dims(d1), in2.dims(d2)) else {
            continue;
        };
        let Ok(fused) = horizontal_fuse(&in1.kernel, dims1, &in2.kernel, dims2) else {
            continue;
        };
        let d0 = d1 + d2;
        let ir = Arc::new(compile_fused(&fused, None)?);
        let shmem_fused = ir.shared_bytes(in1.dynamic_shared + in2.dynamic_shared);
        let r0 = register_bound(&cfg, d1, nregs1, d2, nregs2, shmem_fused, d0);
        let ir_capped = Arc::new(compile_fused(&fused, Some(r0))?);
        compiled.push(Candidate {
            d1,
            d2,
            bound: None,
            fused: fused.clone(),
            ir,
        });
        compiled.push(Candidate {
            d1,
            d2,
            bound: Some(r0),
            fused,
            ir: ir_capped,
        });
    }

    // Shared profile inputs, computed once for the whole sweep.
    debug_assert_eq!(&cfg, base.config());
    let fused_args: Vec<ParamValue> = in1.args.iter().chain(in2.args.iter()).copied().collect();
    let fused_grid = in1.grid_dim.max(in2.grid_dim);
    let fused_dyn_shared = in1.dynamic_shared + in2.dynamic_shared;

    // `HFUSE_SEARCH_THREADS` overrides the worker count (useful both to
    // force the parallel path on single-core CI and to cap it on shared
    // machines).
    let threads = std::env::var("HFUSE_SEARCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(8);
    let results: Vec<Result<SearchCandidate, HfuseError>> = if threads <= 1 || compiled.len() <= 1 {
        compiled
            .iter()
            .map(|c| {
                profile_fused(
                    base,
                    &c.ir,
                    &fused_args,
                    fused_grid,
                    fused_dyn_shared,
                    c.d1 + c.d2,
                )
            })
            .collect()
    } else {
        let mut slots: Vec<Option<Result<SearchCandidate, HfuseError>>> =
            (0..compiled.len()).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots_mutex = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(compiled.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(cand) = compiled.get(i) else { break };
                    let r = profile_fused(
                        base,
                        &cand.ir,
                        &fused_args,
                        fused_grid,
                        fused_dyn_shared,
                        cand.d1 + cand.d2,
                    );
                    slots_mutex.lock().expect("no panics while profiling")[i] = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every candidate profiled"))
            .collect()
    };

    let mut candidates = Vec::new();
    let mut best: Option<(u64, usize, Function, Arc<KernelIr>)> = None;
    for (cand, result) in compiled.into_iter().zip(results) {
        match result {
            Ok(mut c) => {
                c.d1 = cand.d1;
                c.d2 = cand.d2;
                c.reg_bound = cand.bound;
                let idx = candidates.len();
                if best.as_ref().is_none_or(|(cyc, ..)| c.cycles < *cyc) {
                    best = Some((c.cycles, idx, cand.fused.function, cand.ir));
                }
                candidates.push(c);
            }
            // Unschedulable configuration (e.g. shared memory over budget);
            // skip it, like a failed compile in the paper.
            Err(HfuseError::Sim(_)) => continue,
            Err(e) => return Err(e),
        }
    }

    let (_, best_idx, best_function, best_kernel) = best
        .ok_or_else(|| HfuseError::Config("no feasible fusion configuration found".to_owned()))?;
    let best_kernel = Arc::try_unwrap(best_kernel).unwrap_or_else(|shared| (*shared).clone());
    Ok(SearchReport {
        candidates,
        best_idx,
        best_function,
        best_kernel,
        d0: opts.d0,
    })
}

/// Measures native co-execution of the two kernels (two launches on
/// parallel streams; the simulator's leftover block-dispatch policy).
///
/// # Errors
///
/// Returns [`HfuseError`] if a launch is invalid or faults.
pub fn measure_native(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
) -> Result<gpu_sim::RunResult, HfuseError> {
    let mut gpu = base.clone();
    let mk = |inp: &FusionInput| -> Result<Launch, HfuseError> {
        let dims = inp
            .dims(inp.default_threads)
            .ok_or_else(|| HfuseError::Config("bad default block shape".to_owned()))?;
        Ok(Launch {
            kernel: lower_kernel(&inp.kernel)?.into(),
            grid_dim: inp.grid_dim,
            block_dim: dims,
            dynamic_shared_bytes: inp.dynamic_shared,
            args: inp.args.clone(),
        })
    };
    let launches = [mk(in1)?, mk(in2)?];
    Ok(gpu.run(&launches)?)
}

/// Measures one kernel alone (for Fig. 8's per-kernel metrics).
///
/// # Errors
///
/// Returns [`HfuseError`] if the launch is invalid or faults.
pub fn measure_single(base: &Gpu, inp: &FusionInput) -> Result<gpu_sim::RunResult, HfuseError> {
    let mut gpu = base.clone();
    let dims = inp
        .dims(inp.default_threads)
        .ok_or_else(|| HfuseError::Config("bad default block shape".to_owned()))?;
    let launch = Launch {
        kernel: lower_kernel(&inp.kernel)?.into(),
        grid_dim: inp.grid_dim,
        block_dim: dims,
        dynamic_shared_bytes: inp.dynamic_shared,
        args: inp.args.clone(),
    };
    Ok(gpu.run(&[launch])?)
}

/// Measures the vertically fused kernel. Requires matching block and grid
/// dimensions.
///
/// # Errors
///
/// Returns [`HfuseError`] on mismatched geometry or simulation failure.
pub fn measure_vertical(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
) -> Result<gpu_sim::RunResult, HfuseError> {
    if in1.grid_dim != in2.grid_dim {
        return Err(HfuseError::Config(
            "vertical fusion requires equal grids".to_owned(),
        ));
    }
    let threads = in1.default_threads.max(in2.default_threads);
    let dims1 = in1
        .dims(threads)
        .ok_or_else(|| HfuseError::Config("bad block shape for vertical fusion".to_owned()))?;
    let dims2 = in2
        .dims(threads)
        .ok_or_else(|| HfuseError::Config("bad block shape for vertical fusion".to_owned()))?;
    let v = crate::vertical::vertical_fuse_shaped(&in1.kernel, dims1, &in2.kernel, dims2)?;
    let mut gpu = base.clone();
    let mut args = in1.args.clone();
    args.extend(in2.args.iter().copied());
    let launch = Launch {
        kernel: lower_kernel(&v.function)?.into(),
        grid_dim: in1.grid_dim,
        block_dim: (v.block_threads, 1, 1),
        dynamic_shared_bytes: in1.dynamic_shared + in2.dynamic_shared,
        args,
    };
    Ok(gpu.run(&[launch])?)
}

/// Measures the *naive* horizontal fusion: even thread-space partition, no
/// profiling, no register bound (the `Naive` series in Fig. 7).
///
/// # Errors
///
/// Returns [`HfuseError`] on infeasible shapes or simulation failure.
pub fn measure_naive_horizontal(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    d0: u32,
) -> Result<gpu_sim::RunResult, HfuseError> {
    let (d1, d2) = if in1.tunable && in2.tunable {
        (d0 / 2, d0 / 2)
    } else {
        (in1.default_threads, in2.default_threads)
    };
    let dims1 = in1
        .dims(d1)
        .ok_or_else(|| HfuseError::Config("even partition incompatible with shape".to_owned()))?;
    let dims2 = in2
        .dims(d2)
        .ok_or_else(|| HfuseError::Config("even partition incompatible with shape".to_owned()))?;
    let fused = horizontal_fuse(&in1.kernel, dims1, &in2.kernel, dims2)?;
    let ir = lower_kernel(&fused.function)?;
    let mut gpu = base.clone();
    let mut args = in1.args.clone();
    args.extend(in2.args.iter().copied());
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: in1.grid_dim.max(in2.grid_dim),
        block_dim: (d1 + d2, 1, 1),
        dynamic_shared_bytes: in1.dynamic_shared + in2.dynamic_shared,
        args,
    };
    Ok(gpu.run(&[launch])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;
    use gpu_sim::GpuConfig;

    fn mk_gpu() -> (Gpu, FusionInput, FusionInput) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let n = 2048usize;
        let x = gpu.memory_mut().alloc_f32(n);
        let y = gpu.memory_mut().alloc_f32(n);
        let k1 = parse_kernel(
            "__global__ void writer(float* x, int n) {\
               for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;\
                    i += gridDim.x * blockDim.x) { x[i] = i * 2.0f; }\
             }",
        )
        .expect("parse");
        let k2 = parse_kernel(
            "__global__ void summer(float* y, int n) {\
               for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;\
                    i += gridDim.x * blockDim.x) {\
                 float acc = 0.0f;\
                 for (int j = 0; j < 8; j++) { acc += j * 1.5f; }\
                 y[i] = acc;\
               }\
             }",
        )
        .expect("parse");
        let in1 = FusionInput {
            kernel: k1,
            args: vec![ParamValue::Ptr(x), ParamValue::I32(n as i32)],
            grid_dim: 4,
            dynamic_shared: 0,
            default_threads: 256,
            tunable: true,
            shape: BlockShape::Linear,
        };
        let in2 = FusionInput {
            kernel: k2,
            args: vec![ParamValue::Ptr(y), ParamValue::I32(n as i32)],
            grid_dim: 4,
            dynamic_shared: 0,
            default_threads: 256,
            tunable: true,
            shape: BlockShape::Linear,
        };
        (gpu, in1, in2)
    }

    #[test]
    fn block_shape_dims() {
        assert_eq!(BlockShape::Linear.dims(256), Some((256, 1, 1)));
        assert_eq!(BlockShape::Rows { y: 16 }.dims(896), Some((56, 16, 1)));
        assert_eq!(BlockShape::Rows { y: 16 }.dims(100), None);
    }

    #[test]
    fn register_bound_matches_paper_formula() {
        let cfg = GpuConfig::pascal_like();
        // d1 = 896, 32 regs → b1 = 65536/28672 = 2; d2 = 128, 16 regs →
        // b2 = 32; shmem 24K → 4; threads → 2; b0 = 2 → r0 = 65536/2048 = 32.
        let r0 = register_bound(&cfg, 896, 32, 128, 16, 24 * 1024, 1024);
        assert_eq!(r0, 32);
    }

    #[test]
    fn register_bound_handles_zero_shmem() {
        let cfg = GpuConfig::pascal_like();
        let r0 = register_bound(&cfg, 512, 16, 512, 16, 0, 1024);
        // b1 = b2 = 8, threads limit = 2 → b0 = 2 → r0 = 32.
        assert_eq!(r0, 32);
    }

    #[test]
    fn search_finds_a_best_candidate() {
        let (gpu, in1, in2) = mk_gpu();
        let report = search_fusion_config(
            &gpu,
            &in1,
            &in2,
            SearchOptions {
                d0: 512,
                granularity: 128,
            },
        )
        .expect("search");
        // 3 partitions × 2 register variants.
        assert_eq!(report.candidates.len(), 6);
        let best = report.best();
        assert!(report.candidates.iter().all(|c| c.cycles >= best.cycles));
        assert_eq!(best.d1 + best.d2, 512);
        assert!(report.best_kernel.insts.len() > 10);
    }

    #[test]
    fn search_rejects_mismatched_grids() {
        let (gpu, in1, mut in2) = mk_gpu();
        in2.grid_dim = 8;
        assert!(matches!(
            search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()),
            Err(HfuseError::Config(_))
        ));
    }

    #[test]
    fn non_tunable_pair_uses_native_partition() {
        let (gpu, mut in1, mut in2) = mk_gpu();
        in1.tunable = false;
        in2.tunable = false;
        in1.default_threads = 128;
        in2.default_threads = 128;
        let report =
            search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search");
        assert_eq!(report.candidates.len(), 2); // one partition, two variants
        assert_eq!(report.best().d1, 128);
        assert_eq!(report.best().d2, 128);
    }

    #[test]
    fn measurement_helpers_run() {
        let (gpu, in1, in2) = mk_gpu();
        let native = measure_native(&gpu, &in1, &in2).expect("native");
        assert!(native.total_cycles > 0);
        let single = measure_single(&gpu, &in1).expect("single");
        assert!(single.total_cycles > 0);
        assert!(single.total_cycles <= native.total_cycles);
        let vertical = measure_vertical(&gpu, &in1, &in2).expect("vertical");
        assert!(vertical.total_cycles > 0);
        let naive = measure_naive_horizontal(&gpu, &in1, &in2, 512).expect("naive");
        assert!(naive.total_cycles > 0);
    }

    #[test]
    fn fused_results_match_native_memory_state() {
        // Run native and fused functionally and compare output buffers.
        let (gpu, in1, in2) = mk_gpu();
        let mut native = gpu.clone();
        native
            .run_functional(&[
                Launch {
                    kernel: lower_kernel(&in1.kernel).expect("lower").into(),
                    grid_dim: 4,
                    block_dim: (256, 1, 1),
                    dynamic_shared_bytes: 0,
                    args: in1.args.clone(),
                },
                Launch {
                    kernel: lower_kernel(&in2.kernel).expect("lower").into(),
                    grid_dim: 4,
                    block_dim: (256, 1, 1),
                    dynamic_shared_bytes: 0,
                    args: in2.args.clone(),
                },
            ])
            .expect("native run");

        let fused =
            horizontal_fuse(&in1.kernel, (256, 1, 1), &in2.kernel, (256, 1, 1)).expect("fuse");
        let mut gpu2 = gpu.clone();
        let mut args = in1.args.clone();
        args.extend(in2.args.iter().copied());
        gpu2.run_functional(&[Launch {
            kernel: lower_kernel(&fused.function).expect("lower").into(),
            grid_dim: 4,
            block_dim: (512, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        }])
        .expect("fused run");

        let (ParamValue::Ptr(x), ParamValue::Ptr(y)) = (in1.args[0], in2.args[0]) else {
            panic!("pointer args expected");
        };
        assert_eq!(native.memory().read_f32s(x), gpu2.memory().read_f32s(x));
        assert_eq!(native.memory().read_f32s(y), gpu2.memory().read_f32s(y));
    }
}
