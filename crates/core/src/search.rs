//! The profiling-driven fusion-configuration search (Fig. 6 of the paper),
//! plus the measurement helpers the evaluation harness uses (native
//! co-execution, vertical fusion, naive even-partition horizontal fusion).
//!
//! For each candidate thread-space partition `d1` (stepped at a granularity
//! of 128, because irregular block shapes break memory-access patterns), the
//! search profiles the fused kernel twice on the simulator: once as
//! compiled, and once with a register bound
//! `r0 = SMNRegs / (b0 * d0)` where
//! `b0 = min(b1, b2, SMShMem/ShMem(F), SMNThreads/d0)` — i.e. capped so the
//! fused kernel can keep as many resident blocks as the originals.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cuda_frontend::ast::Function;
use gpu_sim::{BudgetedRun, Gpu, GpuConfig, Launch, ParamValue};
use thread_ir::ir::{BinIr, Inst, KernelIr, UnIr};
use thread_ir::lower_kernel;
use thread_ir::spill::apply_register_bound;

use crate::fuse::{horizontal_fuse, FusedKernel};

pub use crate::error::HfuseError;

/// How a kernel's block dimension maps to a 3-D shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockShape {
    /// `(d, 1, 1)`.
    Linear,
    /// `(d / y, y, 1)` — e.g. the paper's batch-norm kernel uses 16 rows.
    Rows {
        /// Fixed `blockDim.y`.
        y: u32,
    },
}

impl BlockShape {
    /// The 3-D dims for a total thread count, or `None` when `threads` is
    /// incompatible with the shape.
    pub fn dims(self, threads: u32) -> Option<(u32, u32, u32)> {
        match self {
            BlockShape::Linear => Some((threads, 1, 1)),
            BlockShape::Rows { y } => {
                if threads.is_multiple_of(y) && threads >= y {
                    Some((threads / y, y, 1))
                } else {
                    None
                }
            }
        }
    }
}

/// One kernel's contribution to a fusion experiment: source, launch
/// geometry, and pre-allocated arguments.
#[derive(Debug, Clone)]
pub struct FusionInput {
    /// The parsed kernel.
    pub kernel: Function,
    /// Arguments (buffers already allocated in the base memory snapshot).
    pub args: Vec<ParamValue>,
    /// Grid dimension the kernel runs with.
    pub grid_dim: u32,
    /// Dynamic shared memory bytes.
    pub dynamic_shared: u32,
    /// Block threads used when the kernel runs natively.
    pub default_threads: u32,
    /// Whether the block dimension is tunable (deep-learning kernels) or
    /// fixed (crypto kernels).
    pub tunable: bool,
    /// Thread-shape rule.
    pub shape: BlockShape,
}

impl FusionInput {
    fn dims(&self, threads: u32) -> Option<(u32, u32, u32)> {
        self.shape.dims(threads)
    }
}

/// Search options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Desired fused block dimension `d0` for tunable pairs.
    pub d0: u32,
    /// Partition step (the paper uses 128).
    pub granularity: u32,
    /// Branch-and-bound pruning: profile candidates best-first (ordered by
    /// the analytic cost estimate) under a shared cycle budget, so losing
    /// candidates abort as soon as they exceed the best cycle count seen
    /// so far. The chosen best candidate, its cycles, and the cycles of
    /// every *surviving* (non-pruned) candidate are identical to the
    /// exhaustive search; only which losers get cut short — and at what
    /// clock — can vary with thread timing. `HFUSE_SEARCH_NO_PRUNE=1`
    /// forces exhaustive profiling regardless of this flag.
    pub prune: bool,
    /// Calibrated analytic pre-filter: rank candidates with the
    /// per-latency-class model ([`gpu_sim::model_estimate`]) instead of the
    /// single-weight cost estimate, profile the model's top candidates (and
    /// every near-tie the model cannot separate within a confidence margin)
    /// without a budget, and let the rest budget-abort against the best
    /// completed cycle count. Because an abort requires the simulated clock
    /// to strictly exceed a *completed* run's cycles, the winner and every
    /// surviving candidate stay bit-identical to the exhaustive search
    /// regardless of model quality — the model only decides how early
    /// losers stop burning simulator cycles. `HFUSE_SEARCH_NO_MODEL=1` (or
    /// the CLI's `--no-model-filter`) restores the legacy cost-estimate
    /// ordering.
    pub model_filter: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            d0: 1024,
            granularity: 128,
            prune: true,
            model_filter: true,
        }
    }
}

/// One profiled fusion configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCandidate {
    /// Threads given to the first kernel.
    pub d1: u32,
    /// Threads given to the second kernel.
    pub d2: u32,
    /// Register bound applied (`None` = unbounded compile).
    pub reg_bound: Option<u32>,
    /// Profiled execution cycles. For a pruned candidate this is the clock
    /// at the abort point — a lower bound on its true cycle count, always
    /// past the winning candidate's cycles.
    pub cycles: u64,
    /// Issue-slot utilization (%). Zero for pruned candidates.
    pub issue_util: f64,
    /// Memory-stall percentage. Zero for pruned candidates.
    pub mem_stall: f64,
    /// Achieved occupancy (%). Zero for pruned candidates.
    pub occupancy: f64,
    /// `Some(clock)` when the profile run was budget-aborted at that
    /// simulated cycle (branch-and-bound pruning); `None` when the
    /// candidate was profiled to completion.
    pub pruned_at: Option<u64>,
    /// Static ranking score this candidate was ordered by: the calibrated
    /// analytic model estimate when model filtering is active, the legacy
    /// single-weight cost estimate otherwise. Pure and deterministic, so it
    /// is identical across pruned/exhaustive arms of the same mode.
    pub model_score: u64,
    /// Issued warp-group instructions per latency class (indexed by
    /// [`gpu_sim::IssueKind::index`]) from the profile run — the "where did
    /// the cycles go" explanation for reports. All zeros for pruned
    /// candidates.
    pub class_issues: [u64; gpu_sim::IssueKind::COUNT],
}

/// The search result: every profiled candidate plus the winner.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// All profiled configurations, in search order.
    pub candidates: Vec<SearchCandidate>,
    /// Index of the fastest candidate.
    pub best_idx: usize,
    /// The fused function of the best candidate.
    pub best_function: Function,
    /// The compiled best kernel (with the winning register bound applied).
    pub best_kernel: KernelIr,
    /// Fused block dimension.
    pub d0: u32,
    /// Wall-clock milliseconds spent compiling candidates.
    pub compile_ms: f64,
    /// Wall-clock milliseconds spent profiling candidates.
    pub profile_ms: f64,
}

impl SearchReport {
    /// The winning configuration.
    pub fn best(&self) -> &SearchCandidate {
        &self.candidates[self.best_idx]
    }

    /// How many candidates were budget-aborted by branch-and-bound pruning.
    pub fn pruned_count(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| c.pruned_at.is_some())
            .count()
    }

    /// The winner's static-model rank among all candidates (1 = the model
    /// ranked it best). A rank of 1 means the analytic pre-filter alone
    /// would have picked the same configuration.
    pub fn best_model_rank(&self) -> usize {
        let best = self.best();
        1 + self
            .candidates
            .iter()
            .enumerate()
            .filter(|&(i, c)| (c.model_score, i) < (best.model_score, self.best_idx))
            .count()
    }

    /// True when the winner lies in the model-exempt front — the analytic
    /// pre-filter's top-[`MODEL_TOP_K`] candidates plus every near-tie
    /// within [`MODEL_MARGIN`] of the best score. Candidates in the front
    /// profile without a budget, so when this holds the winner is found at
    /// full simulation speed *and* establishes the tightest possible abort
    /// budget for everything behind it. Correctness never depends on this
    /// predicate, but the search's speedup does; the model-front smoke test
    /// keeps it true on every paper pair.
    pub fn best_in_model_front(&self) -> bool {
        let Some(best_score) = self.candidates.iter().map(|c| c.model_score).min() else {
            return false;
        };
        self.best_model_rank() <= MODEL_TOP_K
            || (self.best().model_score as f64) <= best_score as f64 * MODEL_MARGIN
    }

    /// A one-paragraph human-readable explanation of *why* the winner won:
    /// its model rank and its issue histogram (densest latency classes
    /// first), so reports can show where the cycles went.
    pub fn explain_best(&self) -> String {
        let best = self.best();
        let total: u64 = best.class_issues.iter().sum();
        let mut s = format!(
            "winner d1={} d2={} (reg bound {}): model rank {}/{}",
            best.d1,
            best.d2,
            best.reg_bound
                .map_or_else(|| "none".to_owned(), |b| b.to_string()),
            self.best_model_rank(),
            self.candidates.len(),
        );
        if total > 0 {
            let mut rows: Vec<(gpu_sim::IssueKind, u64)> = gpu_sim::IssueKind::ALL
                .iter()
                .map(|&k| (k, best.class_issues[k.index()]))
                .filter(|&(_, n)| n > 0)
                .collect();
            rows.sort_by_key(|&(k, n)| (std::cmp::Reverse(n), k.index()));
            s.push_str("; issue mix ");
            for (i, (k, n)) in rows.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{} {:.0}%",
                    k.name(),
                    100.0 * *n as f64 / total as f64
                ));
            }
        }
        s
    }
}

/// Compiles a fused kernel, optionally applying a register bound.
fn compile_fused(fused: &FusedKernel, bound: Option<u32>) -> Result<KernelIr, HfuseError> {
    let mut ir = lower_kernel(&fused.function)?;
    if let Some(b) = bound {
        apply_register_bound(&mut ir, b);
    }
    Ok(ir)
}

/// Profiles a compiled fused kernel on a fresh copy of the base device
/// state, stopping early once the simulated clock exceeds `budget`. The
/// argument list, grid, and shared-memory size are precomputed once by the
/// caller; cloning the base device only bumps buffer refcounts
/// (copy-on-write), and `ir` is shared, so each profile is cheap to set up.
/// A budget-aborted run returns a candidate with `pruned_at` set and zeroed
/// metrics; the partially-mutated clone is simply discarded.
fn profile_fused(
    base: &Gpu,
    ir: &Arc<KernelIr>,
    args: &[ParamValue],
    grid_dim: u32,
    dynamic_shared_bytes: u32,
    d0: u32,
    budget: u64,
) -> Result<SearchCandidate, HfuseError> {
    let mut gpu = base.clone();
    let launch = Launch {
        kernel: Arc::clone(ir),
        grid_dim,
        block_dim: (d0, 1, 1),
        dynamic_shared_bytes,
        args: args.to_vec(),
    };
    match gpu.run_with_budget(&[launch], budget)? {
        BudgetedRun::Completed(res) => Ok(SearchCandidate {
            d1: 0,
            d2: 0,
            reg_bound: None,
            cycles: res.total_cycles,
            issue_util: res.metrics.issue_slot_utilization(),
            mem_stall: res.metrics.mem_stall_pct(),
            occupancy: res.metrics.occupancy_pct(),
            pruned_at: None,
            model_score: 0,
            class_issues: res.metrics.class_issues,
        }),
        BudgetedRun::Aborted { cycles_so_far } => Ok(SearchCandidate {
            d1: 0,
            d2: 0,
            reg_bound: None,
            cycles: cycles_so_far,
            issue_util: 0.0,
            mem_stall: 0.0,
            occupancy: 0.0,
            pruned_at: Some(cycles_so_far),
            model_score: 0,
            class_issues: [0; gpu_sim::IssueKind::COUNT],
        }),
    }
}

/// Static per-thread instruction weight used by the analytic cost estimate:
/// memory and atomic operations count 8, divides 4, transcendental unaries
/// 2, everything else 1, plus 8 per spilled register (each spill adds
/// local-memory traffic on every touch).
pub(crate) fn weighted_inst_cost(ir: &KernelIr) -> u64 {
    let mut w = 0u64;
    for inst in &ir.insts {
        w += match inst {
            Inst::Ld { .. } | Inst::St { .. } | Inst::Atom { .. } => 8,
            Inst::Bin {
                op: BinIr::Div | BinIr::Rem,
                ..
            } => 4,
            Inst::Un {
                op: UnIr::Sqrt | UnIr::Rsqrt | UnIr::Exp | UnIr::Log,
                ..
            } => 2,
            _ => 1,
        };
    }
    w + 8 * ir.spilled_regs.len() as u64
}

/// `HFUSE_SEARCH_NO_PRUNE` (set to anything but `0`) forces exhaustive
/// profiling regardless of [`SearchOptions::prune`] — the escape hatch for
/// byte-identical reproductions of the unpruned search.
pub(crate) fn no_prune_by_env() -> bool {
    gpu_sim::env::search_no_prune()
}

/// `HFUSE_SEARCH_NO_MODEL` disables the calibrated analytic pre-filter
/// regardless of [`SearchOptions::model_filter`].
pub(crate) fn no_model_by_env() -> bool {
    gpu_sim::env::search_no_model()
}

/// Resolves the profiling worker count from the `HFUSE_SEARCH_THREADS`
/// value (parsed centrally by [`gpu_sim::env::search_threads`]). An
/// explicit numeric override is honored as-is (with a floor of one worker)
/// — only the auto-detected default is capped at 8 to avoid
/// oversubscribing shared machines.
fn worker_threads(explicit: Option<usize>) -> usize {
    match explicit {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(8),
    }
}

/// One compiled configuration ready to profile.
pub(crate) struct ProfileJob {
    /// The compiled kernel.
    pub(crate) ir: Arc<KernelIr>,
    /// Fused block threads.
    pub(crate) d0: u32,
}

/// Confidence margin of the analytic pre-filter: candidates whose model
/// score is within this factor of the best score are "near-ties" the model
/// cannot separate, and are profiled without a budget.
pub const MODEL_MARGIN: f64 = 1.10;

/// Minimum number of top-ranked candidates the pre-filter always profiles
/// without a budget, regardless of margin (the winner and its register-bound
/// sibling in the common case).
pub const MODEL_TOP_K: usize = 2;

/// The legacy single-weight ranking scores ([`gpu_sim::cost_estimate`]) for
/// a job list — the profiling order when the model filter is off.
pub(crate) fn legacy_scores(
    cfg: &GpuConfig,
    jobs: &[ProfileJob],
    grid_dim: u32,
    dynamic_shared_bytes: u32,
) -> Vec<u64> {
    jobs.iter()
        .map(|j| {
            gpu_sim::cost_estimate(
                cfg,
                j.ir.reg_pressure(),
                j.d0,
                j.ir.shared_bytes(dynamic_shared_bytes),
                grid_dim,
                weighted_inst_cost(&j.ir),
            )
        })
        .collect()
}

/// Profiles every job, best-first with branch-and-bound pruning when
/// `prune` is set, and returns outcomes aligned with the input order.
///
/// Jobs are profiled in ascending `scores` order — the calibrated analytic
/// model ([`gpu_sim::model_estimate`]) when the caller runs with the model
/// filter, the legacy [`legacy_scores`] otherwise. The best completed cycle
/// count is shared across workers through an `AtomicU64` and used as the
/// abort budget for every subsequent run. With `model_filter` set, the
/// model's top-[`MODEL_TOP_K`] candidates — plus every near-tie within
/// [`MODEL_MARGIN`] of the best score — are *exempt* and profile with an
/// infinite budget. Because a run whose true cycle count is at most the
/// budget always completes with its exact unbudgeted result, and the
/// budget is only ever lowered to a completed run's cycle count, the
/// minimum — and therefore the winner and every surviving candidate's
/// cycles — is independent of profiling order, thread timing, and model
/// quality; only *which* losers get cut short can vary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn profile_jobs(
    base: &Gpu,
    jobs: &[ProfileJob],
    args: &[ParamValue],
    grid_dim: u32,
    dynamic_shared_bytes: u32,
    prune: bool,
    model_filter: bool,
    scores: &[u64],
) -> Vec<Result<SearchCandidate, HfuseError>> {
    debug_assert_eq!(scores.len(), jobs.len());

    // Identical compiled programs simulate to identical results, so each
    // unique `(ir, d0)` is profiled once and the result is shared. This
    // fires on every partition whose register-bound variant is a no-op
    // (the cap at or above the unbounded pressure compiles to the same
    // instruction stream), which halves the profile work on the paper's
    // DL pairs.
    let mut canon: Vec<usize> = (0..jobs.len()).collect();
    for i in 0..jobs.len() {
        for j in 0..i {
            if canon[j] == j
                && jobs[j].d0 == jobs[i].d0
                && (Arc::ptr_eq(&jobs[j].ir, &jobs[i].ir) || *jobs[j].ir == *jobs[i].ir)
            {
                canon[i] = j;
                break;
            }
        }
    }
    let mut order: Vec<usize> = (0..jobs.len()).filter(|&i| canon[i] == i).collect();
    order.sort_by_key(|&i| (scores[i], i));

    // Model-exempt candidates: profiled with an infinite budget, so their
    // results are exactly the exhaustive ones, and (being scheduled first)
    // they establish a tight budget for everyone else. Ranks are over
    // unique programs, so the top-k are k *distinct* candidates.
    let mut exempt = vec![false; jobs.len()];
    if prune && model_filter && !order.is_empty() {
        let best_score = scores[order[0]];
        for (rank, &i) in order.iter().enumerate() {
            let near_tie =
                best_score != u64::MAX && (scores[i] as f64) <= best_score as f64 * MODEL_MARGIN;
            if rank < MODEL_TOP_K || near_tie {
                exempt[i] = true;
            }
        }
    }

    // `HFUSE_SEARCH_THREADS` overrides the worker count (useful both to
    // force the parallel path on single-core CI and to raise or cap it on
    // shared machines).
    let threads = worker_threads(gpu_sim::env::search_threads());
    let mut slots: Vec<Option<Result<SearchCandidate, HfuseError>>> =
        (0..jobs.len()).map(|_| None).collect();
    if threads <= 1 || jobs.len() <= 1 {
        let mut best = u64::MAX;
        for &i in &order {
            let job = &jobs[i];
            let budget = if !prune || exempt[i] { u64::MAX } else { best };
            let r = profile_fused(
                base,
                &job.ir,
                args,
                grid_dim,
                dynamic_shared_bytes,
                job.d0,
                budget,
            );
            if let Ok(c) = &r {
                if c.pruned_at.is_none() {
                    best = best.min(c.cycles);
                }
            }
            slots[i] = Some(r);
        }
    } else {
        let next = AtomicUsize::new(0);
        let best = AtomicU64::new(u64::MAX);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(jobs.len()) {
                let tx = tx.clone();
                let (order, next, best, exempt) = (&order, &next, &best, &exempt);
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = order.get(k) else { break };
                    let job = &jobs[i];
                    let budget = if !prune || exempt[i] {
                        u64::MAX
                    } else {
                        best.load(Ordering::Relaxed)
                    };
                    let r = profile_fused(
                        base,
                        &job.ir,
                        args,
                        grid_dim,
                        dynamic_shared_bytes,
                        job.d0,
                        budget,
                    );
                    if let Ok(c) = &r {
                        if c.pruned_at.is_none() {
                            best.fetch_min(c.cycles, Ordering::Relaxed);
                        }
                    }
                    // Contention-free result collection: each outcome is
                    // sent exactly once; no shared vector behind a lock.
                    tx.send((i, r)).expect("receiver outlives the scope");
                });
            }
            drop(tx);
            for (i, r) in rx {
                slots[i] = Some(r);
            }
        });
    }
    // Duplicates share their canonical program's result verbatim.
    for i in 0..jobs.len() {
        if canon[i] != i {
            slots[i] = slots[canon[i]].clone();
        }
    }
    slots
        .into_iter()
        .zip(scores)
        .map(|(r, &score)| {
            let mut r = r.expect("every candidate profiled");
            if let Ok(c) = &mut r {
                c.model_score = score;
            }
            r
        })
        .collect()
}

/// One compiled pairwise candidate: a `(d1, d2)` partition with or without
/// the register bound applied.
struct Candidate {
    d1: u32,
    d2: u32,
    bound: Option<u32>,
    fused: FusedKernel,
    ir: Arc<KernelIr>,
}

/// Compiles both register variants of every feasible partition, in sweep
/// order (infeasible shapes and failed fusions are skipped, like failed
/// compiles in the paper).
fn compile_candidates(
    cfg: &GpuConfig,
    in1: &FusionInput,
    in2: &FusionInput,
    partitions: &[(u32, u32)],
    nregs1: u32,
    nregs2: u32,
) -> Result<Vec<Candidate>, HfuseError> {
    let mut compiled: Vec<Candidate> = Vec::new();
    for &(d1, d2) in partitions {
        let (Some(dims1), Some(dims2)) = (in1.dims(d1), in2.dims(d2)) else {
            continue;
        };
        let Ok(fused) = horizontal_fuse(&in1.kernel, dims1, &in2.kernel, dims2) else {
            continue;
        };
        let d0 = d1 + d2;
        let ir = Arc::new(compile_fused(&fused, None)?);
        let shmem_fused = ir.shared_bytes(in1.dynamic_shared + in2.dynamic_shared);
        let r0 = register_bound(cfg, d1, nregs1, d2, nregs2, shmem_fused, d0);
        let ir_capped = Arc::new(compile_fused(&fused, Some(r0))?);
        compiled.push(Candidate {
            d1,
            d2,
            bound: None,
            fused: fused.clone(),
            ir,
        });
        compiled.push(Candidate {
            d1,
            d2,
            bound: Some(r0),
            fused,
            ir: ir_capped,
        });
    }
    Ok(compiled)
}

/// The candidate partitions the Fig. 6 sweep visits for a pair: every
/// multiple of the granularity below `d0` when both kernels are tunable,
/// the native block sizes otherwise.
fn sweep_partitions(in1: &FusionInput, in2: &FusionInput, opts: SearchOptions) -> Vec<(u32, u32)> {
    if in1.tunable && in2.tunable {
        let mut v = Vec::new();
        let mut d1 = opts.granularity;
        while d1 < opts.d0 {
            v.push((d1, opts.d0 - d1));
            d1 += opts.granularity;
        }
        v
    } else {
        vec![(in1.default_threads, in2.default_threads)]
    }
}

/// Calibrated model scores for every pairwise candidate: measures each
/// original kernel natively **once** to obtain its per-class issue
/// histogram, then scores each candidate with the occupancy-aware
/// per-latency-class model over the candidate's `I1/d1 + I2/d2` dynamic
/// mix. Pure given the measurements, so scores are identical across
/// pruned/exhaustive arms.
fn model_scores(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    compiled: &[Candidate],
    grid_dim: u32,
    dynamic_shared_bytes: u32,
) -> Result<Vec<u64>, HfuseError> {
    let cfg = base.config();
    let i1 = measure_single_impl(base, in1)?.metrics.class_issues;
    let i2 = measure_single_impl(base, in2)?.metrics.class_issues;
    Ok(compiled
        .iter()
        .map(|c| {
            let s = gpu_sim::static_class_mix(&c.ir);
            let mix = gpu_sim::fused_dyn_mix(cfg, &[(i1, c.d1), (i2, c.d2)], s.spills, s.total());
            gpu_sim::model_estimate(
                cfg,
                c.ir.reg_pressure(),
                c.d1 + c.d2,
                c.ir.shared_bytes(dynamic_shared_bytes),
                grid_dim,
                &mix,
            )
        })
        .collect())
}

/// Builds calibration observations for `hfuse bench --calibrate`: compiles
/// exactly the candidates [`search_fusion_config`] would for this pair,
/// profiles every one to completion (no pruning, no model filter), and
/// pairs each candidate's static model features with its simulated cycle
/// count. Unschedulable candidates are skipped.
///
/// # Errors
///
/// Returns [`HfuseError`] on mismatched grids or a non-scheduling profile
/// failure.
pub fn calibration_rows(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    opts: SearchOptions,
) -> Result<Vec<gpu_sim::model::CalibrationRow>, HfuseError> {
    let cfg = base.config().clone();
    if in1.grid_dim != in2.grid_dim {
        return Err(HfuseError::Config(format!(
            "grid dimensions must match for fusion ({} vs {})",
            in1.grid_dim, in2.grid_dim
        )));
    }
    let nregs1 = lower_kernel(&in1.kernel)?.reg_pressure();
    let nregs2 = lower_kernel(&in2.kernel)?.reg_pressure();
    let partitions = sweep_partitions(in1, in2, opts);
    let compiled = compile_candidates(&cfg, in1, in2, &partitions, nregs1, nregs2)?;

    let fused_args: Vec<ParamValue> = in1.args.iter().chain(in2.args.iter()).copied().collect();
    let fused_grid = in1.grid_dim.max(in2.grid_dim);
    let fused_dyn_shared = in1.dynamic_shared + in2.dynamic_shared;
    let jobs: Vec<ProfileJob> = compiled
        .iter()
        .map(|c| ProfileJob {
            ir: Arc::clone(&c.ir),
            d0: c.d1 + c.d2,
        })
        .collect();
    let scores = legacy_scores(&cfg, &jobs, fused_grid, fused_dyn_shared);
    let results = profile_jobs(
        base,
        &jobs,
        &fused_args,
        fused_grid,
        fused_dyn_shared,
        false,
        false,
        &scores,
    );

    let i1 = measure_single_impl(base, in1)?.metrics.class_issues;
    let i2 = measure_single_impl(base, in2)?.metrics.class_issues;
    let mut rows = Vec::new();
    for (cand, result) in compiled.iter().zip(results) {
        let c = match result {
            Ok(c) => c,
            Err(HfuseError::Sim(_)) => continue,
            Err(e) => return Err(e),
        };
        let s = gpu_sim::static_class_mix(&cand.ir);
        let mix =
            gpu_sim::fused_dyn_mix(&cfg, &[(i1, cand.d1), (i2, cand.d2)], s.spills, s.total());
        if let Some(row) = gpu_sim::model::CalibrationRow::new(
            &cfg,
            cand.ir.reg_pressure(),
            cand.d1 + cand.d2,
            cand.ir.shared_bytes(fused_dyn_shared),
            fused_grid,
            &mix,
            c.cycles,
        ) {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// The register bound of Fig. 6 lines 13–16.
///
/// `nregs1`/`nregs2` are the register pressures of the original kernels;
/// `shmem_fused` the fused kernel's total shared bytes per block.
pub fn register_bound(
    cfg: &GpuConfig,
    d1: u32,
    nregs1: u32,
    d2: u32,
    nregs2: u32,
    shmem_fused: u32,
    d0: u32,
) -> u32 {
    let b1 = cfg.regs_per_sm / (d1 * nregs1).max(1);
    let b2 = cfg.regs_per_sm / (d2 * nregs2).max(1);
    let b_sh = cfg
        .shared_per_sm
        .checked_div(shmem_fused)
        .unwrap_or(u32::MAX);
    let b_th = cfg.max_threads_per_sm / d0.max(1);
    let b0 = b1.min(b2).min(b_sh).min(b_th).max(1);
    (cfg.regs_per_sm / (b0 * d0).max(1)).max(1)
}

/// Runs the full Fig. 6 search: sweep partitions, profile each candidate
/// with and without the register bound, and return the fastest.
///
/// Both inputs must use the same grid dimension. For non-tunable kernels
/// (crypto), the single candidate is the kernels' native block sizes.
///
/// A thin wrapper over a throwaway [`Session`](crate::db::Session); callers
/// that search repeatedly or incrementally should hold a `Session` and use
/// [`search_winner`](crate::db::Session::search_winner), which memoizes.
///
/// # Errors
///
/// Returns [`HfuseError`] if no candidate partition is feasible or a
/// profile run fails.
pub fn search_fusion_config(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    opts: SearchOptions,
) -> Result<SearchReport, HfuseError> {
    let mut s = crate::db::Session::with_gpu(base.clone());
    s.set_search_options(opts);
    let a = s.add_fusion_input(in1);
    let b = s.add_fusion_input(in2);
    let report = s.search_winner(a, b)?;
    Ok(Arc::try_unwrap(report).unwrap_or_else(|shared| (*shared).clone()))
}

/// The actual Fig. 6 search body; [`Session::search_winner`]
/// (crate::db::Session::search_winner) calls this on cache misses.
pub(crate) fn search_fusion_config_impl(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    opts: SearchOptions,
) -> Result<SearchReport, HfuseError> {
    let cfg = base.config().clone();
    if in1.grid_dim != in2.grid_dim {
        return Err(HfuseError::Config(format!(
            "grid dimensions must match for fusion ({} vs {})",
            in1.grid_dim, in2.grid_dim
        )));
    }
    let prune = opts.prune && !no_prune_by_env();
    let model_filter = opts.model_filter && !no_model_by_env();
    let compile_start = Instant::now();
    let nregs1 = lower_kernel(&in1.kernel)?.reg_pressure();
    let nregs2 = lower_kernel(&in2.kernel)?.reg_pressure();

    let partitions = sweep_partitions(in1, in2, opts);

    // Compile every candidate first (cheap), then profile them in parallel:
    // each profile runs on its own clone of the device state, so candidates
    // are fully independent and the result is deterministic regardless of
    // thread scheduling.
    let compiled = compile_candidates(&cfg, in1, in2, &partitions, nregs1, nregs2)?;

    // Shared profile inputs, computed once for the whole sweep.
    debug_assert_eq!(&cfg, base.config());
    let fused_args: Vec<ParamValue> = in1.args.iter().chain(in2.args.iter()).copied().collect();
    let fused_grid = in1.grid_dim.max(in2.grid_dim);
    let fused_dyn_shared = in1.dynamic_shared + in2.dynamic_shared;
    let compile_ms = compile_start.elapsed().as_secs_f64() * 1e3;

    let jobs: Vec<ProfileJob> = compiled
        .iter()
        .map(|c| ProfileJob {
            ir: Arc::clone(&c.ir),
            d0: c.d1 + c.d2,
        })
        .collect();
    let profile_start = Instant::now();
    let scores = if model_filter {
        model_scores(base, in1, in2, &compiled, fused_grid, fused_dyn_shared)?
    } else {
        legacy_scores(&cfg, &jobs, fused_grid, fused_dyn_shared)
    };
    let results = profile_jobs(
        base,
        &jobs,
        &fused_args,
        fused_grid,
        fused_dyn_shared,
        prune,
        model_filter,
        &scores,
    );
    let profile_ms = profile_start.elapsed().as_secs_f64() * 1e3;

    let mut candidates = Vec::new();
    let mut best: Option<(u64, usize, Function, Arc<KernelIr>)> = None;
    for (cand, result) in compiled.into_iter().zip(results) {
        match result {
            Ok(mut c) => {
                c.d1 = cand.d1;
                c.d2 = cand.d2;
                c.reg_bound = cand.bound;
                let idx = candidates.len();
                // A pruned candidate's clock already exceeded some
                // completed candidate's cycles, so it can never be the
                // minimum — skip it explicitly.
                if c.pruned_at.is_none() && best.as_ref().is_none_or(|(cyc, ..)| c.cycles < *cyc) {
                    best = Some((c.cycles, idx, cand.fused.function, cand.ir));
                }
                candidates.push(c);
            }
            // Unschedulable configuration (e.g. shared memory over budget);
            // skip it, like a failed compile in the paper.
            Err(HfuseError::Sim(_)) => continue,
            Err(e) => return Err(e),
        }
    }

    let (_, best_idx, best_function, best_kernel) = best
        .ok_or_else(|| HfuseError::Config("no feasible fusion configuration found".to_owned()))?;
    let best_kernel = Arc::try_unwrap(best_kernel).unwrap_or_else(|shared| (*shared).clone());
    Ok(SearchReport {
        candidates,
        best_idx,
        best_function,
        best_kernel,
        d0: opts.d0,
        compile_ms,
        profile_ms,
    })
}

/// Measures native co-execution of the two kernels (two launches on
/// parallel streams; the simulator's leftover block-dispatch policy).
///
/// A thin wrapper over a throwaway [`Session`](crate::db::Session); see
/// [`Session::native`](crate::db::Session::native) for the memoized form.
///
/// # Errors
///
/// Returns [`HfuseError`] if a launch is invalid or faults.
pub fn measure_native(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
) -> Result<gpu_sim::RunResult, HfuseError> {
    let mut s = crate::db::Session::with_gpu(base.clone());
    let a = s.add_fusion_input(in1);
    let b = s.add_fusion_input(in2);
    let r = s.native(a, b)?;
    Ok(Arc::try_unwrap(r).unwrap_or_else(|shared| (*shared).clone()))
}

/// The body of [`measure_native`]; `Session::native` calls this on misses.
pub(crate) fn measure_native_impl(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
) -> Result<gpu_sim::RunResult, HfuseError> {
    let mut gpu = base.clone();
    let mk = |inp: &FusionInput| -> Result<Launch, HfuseError> {
        let dims = inp
            .dims(inp.default_threads)
            .ok_or_else(|| HfuseError::Config("bad default block shape".to_owned()))?;
        Ok(Launch {
            kernel: lower_kernel(&inp.kernel)?.into(),
            grid_dim: inp.grid_dim,
            block_dim: dims,
            dynamic_shared_bytes: inp.dynamic_shared,
            args: inp.args.clone(),
        })
    };
    let launches = [mk(in1)?, mk(in2)?];
    Ok(gpu.run(&launches)?)
}

/// Measures one kernel alone (for Fig. 8's per-kernel metrics).
///
/// A thin wrapper over a throwaway [`Session`](crate::db::Session); see
/// [`Session::single`](crate::db::Session::single) for the memoized form.
///
/// # Errors
///
/// Returns [`HfuseError`] if the launch is invalid or faults.
pub fn measure_single(base: &Gpu, inp: &FusionInput) -> Result<gpu_sim::RunResult, HfuseError> {
    let mut s = crate::db::Session::with_gpu(base.clone());
    let k = s.add_fusion_input(inp);
    let r = s.single(k)?;
    Ok(Arc::try_unwrap(r).unwrap_or_else(|shared| (*shared).clone()))
}

/// The body of [`measure_single`]; `Session::single` calls this on misses.
pub(crate) fn measure_single_impl(
    base: &Gpu,
    inp: &FusionInput,
) -> Result<gpu_sim::RunResult, HfuseError> {
    let mut gpu = base.clone();
    let dims = inp
        .dims(inp.default_threads)
        .ok_or_else(|| HfuseError::Config("bad default block shape".to_owned()))?;
    let launch = Launch {
        kernel: lower_kernel(&inp.kernel)?.into(),
        grid_dim: inp.grid_dim,
        block_dim: dims,
        dynamic_shared_bytes: inp.dynamic_shared,
        args: inp.args.clone(),
    };
    Ok(gpu.run(&[launch])?)
}

/// Measures the vertically fused kernel. Requires matching block and grid
/// dimensions.
///
/// # Errors
///
/// Returns [`HfuseError`] on mismatched geometry or simulation failure.
pub fn measure_vertical(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
) -> Result<gpu_sim::RunResult, HfuseError> {
    if in1.grid_dim != in2.grid_dim {
        return Err(HfuseError::Config(
            "vertical fusion requires equal grids".to_owned(),
        ));
    }
    let threads = in1.default_threads.max(in2.default_threads);
    let dims1 = in1
        .dims(threads)
        .ok_or_else(|| HfuseError::Config("bad block shape for vertical fusion".to_owned()))?;
    let dims2 = in2
        .dims(threads)
        .ok_or_else(|| HfuseError::Config("bad block shape for vertical fusion".to_owned()))?;
    let v = crate::vertical::vertical_fuse_shaped(&in1.kernel, dims1, &in2.kernel, dims2)?;
    let mut gpu = base.clone();
    let mut args = in1.args.clone();
    args.extend(in2.args.iter().copied());
    let launch = Launch {
        kernel: lower_kernel(&v.function)?.into(),
        grid_dim: in1.grid_dim,
        block_dim: (v.block_threads, 1, 1),
        dynamic_shared_bytes: in1.dynamic_shared + in2.dynamic_shared,
        args,
    };
    Ok(gpu.run(&[launch])?)
}

/// Measures the *naive* horizontal fusion: even thread-space partition, no
/// profiling, no register bound (the `Naive` series in Fig. 7).
///
/// # Errors
///
/// Returns [`HfuseError`] on infeasible shapes or simulation failure.
pub fn measure_naive_horizontal(
    base: &Gpu,
    in1: &FusionInput,
    in2: &FusionInput,
    d0: u32,
) -> Result<gpu_sim::RunResult, HfuseError> {
    let (d1, d2) = if in1.tunable && in2.tunable {
        (d0 / 2, d0 / 2)
    } else {
        (in1.default_threads, in2.default_threads)
    };
    let dims1 = in1
        .dims(d1)
        .ok_or_else(|| HfuseError::Config("even partition incompatible with shape".to_owned()))?;
    let dims2 = in2
        .dims(d2)
        .ok_or_else(|| HfuseError::Config("even partition incompatible with shape".to_owned()))?;
    let fused = horizontal_fuse(&in1.kernel, dims1, &in2.kernel, dims2)?;
    let ir = lower_kernel(&fused.function)?;
    let mut gpu = base.clone();
    let mut args = in1.args.clone();
    args.extend(in2.args.iter().copied());
    let launch = Launch {
        kernel: ir.into(),
        grid_dim: in1.grid_dim.max(in2.grid_dim),
        block_dim: (d1 + d2, 1, 1),
        dynamic_shared_bytes: in1.dynamic_shared + in2.dynamic_shared,
        args,
    };
    Ok(gpu.run(&[launch])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;
    use gpu_sim::GpuConfig;

    fn mk_gpu() -> (Gpu, FusionInput, FusionInput) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let n = 2048usize;
        let x = gpu.memory_mut().alloc_f32(n);
        let y = gpu.memory_mut().alloc_f32(n);
        let k1 = parse_kernel(
            "__global__ void writer(float* x, int n) {\
               for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;\
                    i += gridDim.x * blockDim.x) { x[i] = i * 2.0f; }\
             }",
        )
        .expect("parse");
        let k2 = parse_kernel(
            "__global__ void summer(float* y, int n) {\
               for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;\
                    i += gridDim.x * blockDim.x) {\
                 float acc = 0.0f;\
                 for (int j = 0; j < 8; j++) { acc += j * 1.5f; }\
                 y[i] = acc;\
               }\
             }",
        )
        .expect("parse");
        let in1 = FusionInput {
            kernel: k1,
            args: vec![ParamValue::Ptr(x), ParamValue::I32(n as i32)],
            grid_dim: 4,
            dynamic_shared: 0,
            default_threads: 256,
            tunable: true,
            shape: BlockShape::Linear,
        };
        let in2 = FusionInput {
            kernel: k2,
            args: vec![ParamValue::Ptr(y), ParamValue::I32(n as i32)],
            grid_dim: 4,
            dynamic_shared: 0,
            default_threads: 256,
            tunable: true,
            shape: BlockShape::Linear,
        };
        (gpu, in1, in2)
    }

    #[test]
    fn block_shape_dims() {
        assert_eq!(BlockShape::Linear.dims(256), Some((256, 1, 1)));
        assert_eq!(BlockShape::Rows { y: 16 }.dims(896), Some((56, 16, 1)));
        assert_eq!(BlockShape::Rows { y: 16 }.dims(100), None);
    }

    #[test]
    fn register_bound_matches_paper_formula() {
        let cfg = GpuConfig::pascal_like();
        // d1 = 896, 32 regs → b1 = 65536/28672 = 2; d2 = 128, 16 regs →
        // b2 = 32; shmem 24K → 4; threads → 2; b0 = 2 → r0 = 65536/2048 = 32.
        let r0 = register_bound(&cfg, 896, 32, 128, 16, 24 * 1024, 1024);
        assert_eq!(r0, 32);
    }

    #[test]
    fn register_bound_handles_zero_shmem() {
        let cfg = GpuConfig::pascal_like();
        let r0 = register_bound(&cfg, 512, 16, 512, 16, 0, 1024);
        // b1 = b2 = 8, threads limit = 2 → b0 = 2 → r0 = 32.
        assert_eq!(r0, 32);
    }

    #[test]
    fn search_finds_a_best_candidate() {
        let (gpu, in1, in2) = mk_gpu();
        let report = search_fusion_config(
            &gpu,
            &in1,
            &in2,
            SearchOptions {
                d0: 512,
                granularity: 128,
                ..SearchOptions::default()
            },
        )
        .expect("search");
        // 3 partitions × 2 register variants.
        assert_eq!(report.candidates.len(), 6);
        let best = report.best();
        assert!(report.candidates.iter().all(|c| c.cycles >= best.cycles));
        assert_eq!(best.d1 + best.d2, 512);
        assert!(report.best_kernel.insts.len() > 10);
    }

    #[test]
    fn pruned_search_matches_exhaustive_best_and_survivors() {
        let (gpu, in1, in2) = mk_gpu();
        let opts = SearchOptions {
            d0: 512,
            granularity: 128,
            ..SearchOptions::default()
        };
        let pruned = search_fusion_config(&gpu, &in1, &in2, opts).expect("pruned search");
        let exhaustive = search_fusion_config(
            &gpu,
            &in1,
            &in2,
            SearchOptions {
                prune: false,
                ..opts
            },
        )
        .expect("exhaustive search");
        assert!(exhaustive.pruned_count() == 0);
        assert_eq!(pruned.candidates.len(), exhaustive.candidates.len());
        assert_eq!(pruned.best_idx, exhaustive.best_idx);
        assert_eq!(pruned.best().cycles, exhaustive.best().cycles);
        assert_eq!(pruned.best_kernel, exhaustive.best_kernel);
        for (p, e) in pruned.candidates.iter().zip(&exhaustive.candidates) {
            assert_eq!((p.d1, p.d2, p.reg_bound), (e.d1, e.d2, e.reg_bound));
            if p.pruned_at.is_none() {
                // Survivors report the exact exhaustive cycle count.
                assert_eq!(p.cycles, e.cycles);
            } else {
                // Pruned candidates report the abort clock, which is a
                // lower bound on the true count and past the winner.
                assert_eq!(p.pruned_at, Some(p.cycles));
                assert!(p.cycles <= e.cycles);
                assert!(p.cycles > pruned.best().cycles);
            }
        }
    }

    #[test]
    fn worker_threads_honors_explicit_override_above_cap() {
        assert_eq!(worker_threads(Some(12)), 12);
        assert_eq!(worker_threads(Some(3)), 3);
        assert_eq!(worker_threads(Some(0)), 1);
        // Unset (or unparseable, which gpu_sim::env maps to None) falls
        // back to the capped auto-detected default.
        assert!(worker_threads(None) >= 1);
        assert!(worker_threads(None) <= 8);
    }

    #[test]
    fn model_filtered_search_matches_unfiltered_winner() {
        let (gpu, in1, in2) = mk_gpu();
        let opts = SearchOptions {
            d0: 512,
            granularity: 128,
            ..SearchOptions::default()
        };
        assert!(opts.model_filter, "model filter is on by default");
        let filtered = search_fusion_config(&gpu, &in1, &in2, opts).expect("filtered");
        let unfiltered = search_fusion_config(
            &gpu,
            &in1,
            &in2,
            SearchOptions {
                model_filter: false,
                ..opts
            },
        )
        .expect("unfiltered");
        let exhaustive = search_fusion_config(
            &gpu,
            &in1,
            &in2,
            SearchOptions {
                prune: false,
                ..opts
            },
        )
        .expect("exhaustive");
        // Winner identity holds across all three arms.
        for arm in [&unfiltered, &exhaustive] {
            assert_eq!(filtered.best_idx, arm.best_idx);
            assert_eq!(filtered.best().cycles, arm.best().cycles);
            assert_eq!(filtered.best_kernel, arm.best_kernel);
        }
        // Model scores are pure statics: identical between the filtered and
        // (unpruned) exhaustive arm, which both use the model ordering.
        for (f, e) in filtered.candidates.iter().zip(&exhaustive.candidates) {
            assert_eq!(f.model_score, e.model_score);
        }
        // The winner completed, so its issue histogram is populated and the
        // report can explain it.
        assert!(filtered.best().class_issues.iter().sum::<u64>() > 0);
        assert!(filtered.best_model_rank() >= 1);
        let text = filtered.explain_best();
        assert!(text.contains("model rank"), "{text}");
        assert!(text.contains("issue mix"), "{text}");
    }

    #[test]
    fn weighted_inst_cost_ranks_memory_heavier_than_alu() {
        let (_, in1, in2) = mk_gpu();
        let mem_ir = lower_kernel(&in1.kernel).expect("lower");
        let alu_ir = lower_kernel(&in2.kernel).expect("lower");
        assert!(weighted_inst_cost(&mem_ir) > mem_ir.insts.len() as u64);
        assert!(weighted_inst_cost(&alu_ir) >= alu_ir.insts.len() as u64);
    }

    #[test]
    fn search_rejects_mismatched_grids() {
        let (gpu, in1, mut in2) = mk_gpu();
        in2.grid_dim = 8;
        assert!(matches!(
            search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()),
            Err(HfuseError::Config(_))
        ));
    }

    #[test]
    fn non_tunable_pair_uses_native_partition() {
        let (gpu, mut in1, mut in2) = mk_gpu();
        in1.tunable = false;
        in2.tunable = false;
        in1.default_threads = 128;
        in2.default_threads = 128;
        let report =
            search_fusion_config(&gpu, &in1, &in2, SearchOptions::default()).expect("search");
        assert_eq!(report.candidates.len(), 2); // one partition, two variants
        assert_eq!(report.best().d1, 128);
        assert_eq!(report.best().d2, 128);
    }

    #[test]
    fn measurement_helpers_run() {
        let (gpu, in1, in2) = mk_gpu();
        let native = measure_native(&gpu, &in1, &in2).expect("native");
        assert!(native.total_cycles > 0);
        let single = measure_single(&gpu, &in1).expect("single");
        assert!(single.total_cycles > 0);
        assert!(single.total_cycles <= native.total_cycles);
        let vertical = measure_vertical(&gpu, &in1, &in2).expect("vertical");
        assert!(vertical.total_cycles > 0);
        let naive = measure_naive_horizontal(&gpu, &in1, &in2, 512).expect("naive");
        assert!(naive.total_cycles > 0);
    }

    #[test]
    fn fused_results_match_native_memory_state() {
        // Run native and fused functionally and compare output buffers.
        let (gpu, in1, in2) = mk_gpu();
        let mut native = gpu.clone();
        native
            .run_functional(&[
                Launch {
                    kernel: lower_kernel(&in1.kernel).expect("lower").into(),
                    grid_dim: 4,
                    block_dim: (256, 1, 1),
                    dynamic_shared_bytes: 0,
                    args: in1.args.clone(),
                },
                Launch {
                    kernel: lower_kernel(&in2.kernel).expect("lower").into(),
                    grid_dim: 4,
                    block_dim: (256, 1, 1),
                    dynamic_shared_bytes: 0,
                    args: in2.args.clone(),
                },
            ])
            .expect("native run");

        let fused =
            horizontal_fuse(&in1.kernel, (256, 1, 1), &in2.kernel, (256, 1, 1)).expect("fuse");
        let mut gpu2 = gpu.clone();
        let mut args = in1.args.clone();
        args.extend(in2.args.iter().copied());
        gpu2.run_functional(&[Launch {
            kernel: lower_kernel(&fused.function).expect("lower").into(),
            grid_dim: 4,
            block_dim: (512, 1, 1),
            dynamic_shared_bytes: 0,
            args,
        }])
        .expect("fused run");

        let (ParamValue::Ptr(x), ParamValue::Ptr(y)) = (in1.args[0], in2.args[0]) else {
            panic!("pointer args expected");
        };
        assert_eq!(native.memory().read_f32s(x), gpu2.memory().read_f32s(x));
        assert_eq!(native.memory().read_f32s(y), gpu2.memory().read_f32s(y));
    }
}
