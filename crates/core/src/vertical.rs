//! The standard vertical-fusion baseline.
//!
//! Vertical fusion concatenates the two kernels' statements so that every
//! thread of the fused kernel executes the work of its counterpart in *both*
//! originals (middle of Fig. 1 in the paper). The kernels' own
//! `__syncthreads()` barriers are preserved — in the vertically fused kernel
//! they synchronize all threads, which is exactly the original semantics
//! because every thread runs both halves. Since both kernels' shared arrays
//! get disjoint allocations after renaming, no extra barrier between the
//! halves is required for independent kernels.
//!
//! [`vertical_fuse_shaped`] generalizes to kernels with different block
//! *shapes* (e.g. a 2-D batch-norm block fused with a 1-D histogram block):
//! the fused kernel is launched with a linear block and a prologue remaps
//! the linear id to each kernel's original `threadIdx` coordinates, so both
//! kernels see their native geometry.

use cuda_frontend::ast::{Axis, Block, BuiltinVar, Expr, Function, Param, Stmt, Ty};
use cuda_frontend::transform::{preprocess_kernel, replace_builtins, NameGen};
use cuda_frontend::FrontendError;

use crate::remap::{decl_i32, ThreadRemap};

/// A vertically fused kernel.
#[derive(Debug, Clone)]
pub struct VerticalFused {
    /// The fused `__global__` function.
    pub function: Function,
    /// Number of parameters belonging to the first kernel.
    pub params_split: usize,
    /// Threads per block the fused kernel must be launched with (linear).
    pub block_threads: u32,
}

/// Vertically fuses `k1` and `k2`, which must run with identical 1-D block
/// and grid dimensions. Built-ins are left untouched.
///
/// # Errors
///
/// Returns [`FrontendError`] if preprocessing fails or if both kernels use
/// `extern __shared__` memory.
pub fn vertical_fuse(k1: &Function, k2: &Function) -> Result<VerticalFused, FrontendError> {
    fuse_impl(k1, None, k2, None, 0)
}

/// Vertically fuses two kernels with explicit (possibly different) block
/// shapes of equal total thread count. The fused kernel is launched with a
/// `(total, 1, 1)` block; prologue variables remap each kernel's
/// `threadIdx` / `blockDim`.
///
/// # Errors
///
/// Returns [`FrontendError`] on mismatched totals or preprocessing failure.
pub fn vertical_fuse_shaped(
    k1: &Function,
    dims1: (u32, u32, u32),
    k2: &Function,
    dims2: (u32, u32, u32),
) -> Result<VerticalFused, FrontendError> {
    let t1 = dims1.0 * dims1.1 * dims1.2;
    let t2 = dims2.0 * dims2.1 * dims2.2;
    if t1 != t2 {
        return Err(FrontendError::new(format!(
            "vertical fusion requires equal thread counts ({t1} vs {t2})"
        )));
    }
    fuse_impl(k1, Some(dims1), k2, Some(dims2), t1)
}

fn fuse_impl(
    k1: &Function,
    dims1: Option<(u32, u32, u32)>,
    k2: &Function,
    dims2: Option<(u32, u32, u32)>,
    total: u32,
) -> Result<VerticalFused, FrontendError> {
    let mut names = NameGen::new();
    let mut f1 = k1.clone();
    let mut f2 = k2.clone();
    preprocess_kernel(&mut f1, &[], &mut names)?;
    preprocess_kernel(&mut f2, &[], &mut names)?;

    if uses_dynamic_shared(&f1) && uses_dynamic_shared(&f2) {
        return Err(FrontendError::new(
            "both kernels use extern __shared__ memory; the fused kernel would alias it",
        ));
    }

    let mut body: Vec<Stmt> = Vec::new();
    // Declarations of both kernels first (they were lifted to the top), then
    // the two statement streams in order.
    let (d1, mut s1) = split_decls(f1.body);
    let (d2, mut s2) = split_decls(f2.body);
    body.extend(d1.into_iter().map(Stmt::Decl));
    body.extend(d2.into_iter().map(Stmt::Decl));

    if let (Some(dims1), Some(dims2)) = (dims1, dims2) {
        let gtid = "__vf_gtid";
        body.push(decl_i32(
            gtid,
            Some(Expr::Builtin(BuiltinVar::ThreadIdx(Axis::X))),
        ));
        let remap1 = ThreadRemap::new("__vf_k1", dims1, Expr::ident(gtid));
        let remap2 = ThreadRemap::new("__vf_k2", dims2, Expr::ident(gtid));
        body.extend(remap1.decls());
        body.extend(remap2.decls());
        let mut b1 = Block::new(std::mem::take(&mut s1));
        replace_builtins(&mut b1, &remap1.subst());
        s1 = b1.stmts;
        let mut b2 = Block::new(std::mem::take(&mut s2));
        replace_builtins(&mut b2, &remap2.subst());
        s2 = b2.stmts;
    }

    body.extend(s1);
    body.extend(s2);

    let params: Vec<Param> = f1.params.iter().chain(f2.params.iter()).cloned().collect();
    let params_split = f1.params.len();
    Ok(VerticalFused {
        function: Function {
            name: format!("{}_{}_vfused", k1.name, k2.name),
            params,
            ret: Ty::Void,
            is_kernel: true,
            body: Block::new(body),
        },
        params_split,
        block_threads: total,
    })
}

fn split_decls(body: Block) -> (Vec<cuda_frontend::ast::VarDecl>, Vec<Stmt>) {
    let mut decls = Vec::new();
    let mut rest = Vec::new();
    let mut in_prefix = true;
    for s in body.stmts {
        match s {
            Stmt::Decl(d) if in_prefix => decls.push(d),
            other => {
                in_prefix = false;
                rest.push(other);
            }
        }
    }
    (decls, rest)
}

fn uses_dynamic_shared(f: &Function) -> bool {
    let mut found = false;
    let mut clone = f.body.clone();
    cuda_frontend::transform::visit::walk_stmts(&mut clone, &mut |s| {
        if matches!(s, Stmt::Decl(d) if d.quals.extern_shared) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;
    use cuda_frontend::printer::print_function;

    fn k(src: &str) -> Function {
        parse_kernel(src).expect("parse")
    }

    #[test]
    fn concatenates_bodies_and_params() {
        let a = k("__global__ void a(float* x) { x[threadIdx.x] = 1.0f; }");
        let b = k("__global__ void b(float* y) { y[threadIdx.x] = 2.0f; }");
        let v = vertical_fuse(&a, &b).expect("vfuse");
        assert_eq!(v.function.params.len(), 2);
        assert_eq!(v.params_split, 1);
        let src = print_function(&v.function);
        // Both stores present; builtins unchanged.
        assert_eq!(src.matches("threadIdx.x").count(), 2, "{src}");
        assert!(!src.contains("goto"), "{src}");
    }

    #[test]
    fn preserves_barriers_of_both_kernels() {
        let a = k("__global__ void a(float* x) { __shared__ float s[32]; s[threadIdx.x] = 1.0f; __syncthreads(); x[threadIdx.x] = s[0]; }");
        let b = k("__global__ void b(float* y) { __shared__ float t[32]; t[threadIdx.x] = 2.0f; __syncthreads(); y[threadIdx.x] = t[0]; }");
        let v = vertical_fuse(&a, &b).expect("vfuse");
        let src = print_function(&v.function);
        assert_eq!(src.matches("__syncthreads();").count(), 2, "{src}");
    }

    #[test]
    fn fused_source_reparses() {
        let a = k("__global__ void a(float* x, int n) { for (int i = threadIdx.x; i < n; i += blockDim.x) { x[i] = i; } }");
        let b = k("__global__ void b(float* y, int m) { if (threadIdx.x < m) { y[threadIdx.x] = 0.0f; } }");
        let v = vertical_fuse(&a, &b).expect("vfuse");
        let src = print_function(&v.function);
        parse_kernel(&src).expect("reparse vfused source");
    }

    #[test]
    fn double_dynamic_shared_rejected() {
        let a = k("__global__ void a(float* x) { extern __shared__ float s[]; s[0] = 0.0f; x[0] = s[0]; }");
        let b = k("__global__ void b(float* y) { extern __shared__ float t[]; t[0] = 1.0f; y[0] = t[0]; }");
        assert!(vertical_fuse(&a, &b).is_err());
    }

    #[test]
    fn name_collisions_resolved() {
        let a = k("__global__ void a(float* data) { float v = data[0]; data[1] = v; }");
        let b = k("__global__ void b(float* data) { float v = data[2]; data[3] = v; }");
        let v = vertical_fuse(&a, &b).expect("vfuse");
        let names: Vec<&str> = v.function.params.iter().map(|p| p.name.as_str()).collect();
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn shaped_fusion_remaps_builtins() {
        let a =
            k("__global__ void a(float* x) { x[threadIdx.x + threadIdx.y * blockDim.x] = 1.0f; }");
        let b = k("__global__ void b(float* y) { y[threadIdx.x] = 2.0f; }");
        let v = vertical_fuse_shaped(&a, (32, 16, 1), &b, (512, 1, 1)).expect("vfuse");
        assert_eq!(v.block_threads, 512);
        let src = print_function(&v.function);
        // Only the prologue reads the real threadIdx.x.
        assert_eq!(src.matches("threadIdx.x").count(), 1, "{src}");
        assert!(src.contains("__vf_k1_tid_y"), "{src}");
    }

    #[test]
    fn shaped_fusion_rejects_unequal_totals() {
        let a = k("__global__ void a(float* x) { x[0] = 1.0f; }");
        let b = k("__global__ void b(float* y) { y[0] = 2.0f; }");
        assert!(vertical_fuse_shaped(&a, (64, 1, 1), &b, (128, 1, 1)).is_err());
    }
}
