//! The unified error type for the fusion pipeline.
//!
//! Every public fallible entry point of `hfuse-core` — fusing, lowering,
//! profiling, the configuration search, and the [`Session`](crate::db::Session)
//! queries — returns [`HfuseError`]. Layer-specific errors
//! ([`FrontendError`], [`SimError`], [`AsmError`]) convert in via `From`, so
//! callers can use `?` across layers and match on one enum at the top.

use std::fmt;

use cuda_frontend::FrontendError;
use gpu_sim::SimError;
use thread_ir::AsmError;

/// Errors from fusing or profiling.
#[derive(Debug, Clone, PartialEq)]
pub enum HfuseError {
    /// Frontend/lowering failure.
    Frontend(FrontendError),
    /// Simulator failure.
    Sim(SimError),
    /// Textual IR listing failure (`parse_kernel_ir`).
    Asm(AsmError),
    /// Invalid search input (mismatched grids, no viable partition, ...).
    Config(String),
}

impl fmt::Display for HfuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HfuseError::Frontend(e) => write!(f, "frontend: {e}"),
            HfuseError::Sim(e) => write!(f, "{e}"),
            HfuseError::Asm(e) => write!(f, "{e}"),
            HfuseError::Config(m) => write!(f, "configuration: {m}"),
        }
    }
}

impl std::error::Error for HfuseError {}

impl From<FrontendError> for HfuseError {
    fn from(e: FrontendError) -> Self {
        HfuseError::Frontend(e)
    }
}

impl From<SimError> for HfuseError {
    fn from(e: SimError) -> Self {
        HfuseError::Sim(e)
    }
}

impl From<AsmError> for HfuseError {
    fn from(e: AsmError) -> Self {
        HfuseError::Asm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_with_layer_prefixes() {
        let e = HfuseError::Config("no viable partition".to_owned());
        assert_eq!(e.to_string(), "configuration: no viable partition");
        let e: HfuseError = FrontendError::new("bad token").into();
        assert!(e.to_string().starts_with("frontend: "));
        let e: HfuseError = AsmError::new("empty listing").into();
        assert!(e.to_string().contains("empty listing"));
    }
}
