//! The incremental query-based pipeline: [`Session`].
//!
//! The compile pipeline used to be an ad-hoc chain of free functions —
//! `parse_kernel` → `lower_kernel` → `horizontal_fuse` →
//! `search_fusion_config` — with every caller re-running every stage from
//! scratch. A [`Session`] replaces that chain with a small salsa-style
//! query database: *inputs* (kernel source texts, the device, the search
//! options, per-kernel workloads) and memoized *derived queries* over them:
//!
//! | query | derived from | fingerprint |
//! |---|---|---|
//! | [`ast(k)`](Session::ast) | source text | FNV-1a of the source |
//! | [`ir(k)`](Session::ir) | `ast(k)` | hash of the *printed* AST |
//! | [`lints(k)`](Session::lints) | `ast(k)` + `block_threads` + extents | printed-AST hash × extents fingerprint |
//! | [`ranges(k)`](Session::ranges) | `ast(k)` + `block_threads` | printed-AST hash |
//! | [`fused(a,b)`](Session::fused) | both ASTs + the partition | both printed-AST hashes |
//! | [`single(k)`](Session::single) | AST + workload + device | AST, workload, config hashes |
//! | [`native(a,b)`](Session::native) | ASTs + workloads + device | ditto |
//! | [`search_winner(a,b)`](Session::search_winner) | everything above + options | ditto + options hash |
//!
//! Each memo stores the fingerprint of its inputs next to its value. A
//! lookup whose fingerprint matches is a **hit** and returns the cached
//! value (an `Arc`, so hits are allocation-free); a mismatch is a
//! **recompute**; a first-ever computation is a **miss**. There is no
//! eager invalidation: editing an input just changes what the fingerprints
//! hash to, and the next demand of each downstream query notices. This
//! gives early cutoff for free — a whitespace-only source edit recomputes
//! `ast(k)`, but the reprinted AST hashes identically, so `ir(k)`,
//! `fused(..)`, and `search_winner(..)` all still hit.
//!
//! [`Session::stats`] exposes per-query hit/miss/recompute counters, which
//! is how the invalidation tests (and a future daemon's cache telemetry)
//! observe exactly which stages re-ran.
//!
//! Two caveats the fingerprints are honest about:
//!
//! * Device **memory contents** are not hashed — only the [`GpuConfig`].
//!   Workload arguments (buffer ids, scalars) are hashed, so the common
//!   edit — reallocating inputs — is caught, but mutating a buffer's bytes
//!   in place between queries is not. Measurement queries are pure given
//!   the same initial memory image (the simulator clones the device per
//!   run), so this only matters if the caller rewrites inputs in place.
//! * [`KernelId`]s belong to the session that minted them. Indexing with a
//!   foreign id panics or returns another kernel's state.
//!
//! # Example
//!
//! ```
//! use gpu_sim::GpuConfig;
//! use hfuse_core::db::Session;
//!
//! let mut s = Session::new(GpuConfig::test_tiny());
//! let k = s.add_kernel("__global__ void a(float* x) { x[threadIdx.x] = 1.0f; }");
//! let ir1 = s.ir(k)?;
//! let ir2 = s.ir(k)?; // memoized: same Arc, no re-parse, no re-lower
//! assert!(std::sync::Arc::ptr_eq(&ir1, &ir2));
//! assert_eq!(s.stats().ir.hits, 1);
//! # Ok::<(), hfuse_core::HfuseError>(())
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cuda_frontend::ast::Function;
use cuda_frontend::diag::{Diagnostic, SpanTable};
use cuda_frontend::hash::{fnv1a_64, Fnv64};
use cuda_frontend::parse_kernel_with_spans;
use cuda_frontend::printer::print_function;
use gpu_sim::{Gpu, GpuConfig, ParamValue, RunResult};
use thread_ir::ir::KernelIr;
use thread_ir::lower_kernel;

use crate::error::HfuseError;
use crate::fuse::{horizontal_fuse, FusedKernel};
use crate::search::{
    measure_native_impl, measure_single_impl, search_fusion_config_impl, BlockShape, FusionInput,
    SearchOptions, SearchReport,
};

/// Handle to a kernel registered in a [`Session`].
///
/// Ids are dense indices minted by [`Session::add_kernel`] /
/// [`Session::add_fusion_input`]; they are only meaningful within the
/// session that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(usize);

impl KernelId {
    /// The dense index of this kernel within its session.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The launch-time half of a fusion experiment: everything in a
/// [`FusionInput`] except the kernel itself (which the session derives from
/// the kernel's source text via the `ast` query).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Arguments (buffers already allocated in the session device's memory).
    pub args: Vec<ParamValue>,
    /// Grid dimension the kernel runs with.
    pub grid_dim: u32,
    /// Dynamic shared memory bytes.
    pub dynamic_shared: u32,
    /// Block threads used when the kernel runs natively.
    pub default_threads: u32,
    /// Whether the block dimension is tunable.
    pub tunable: bool,
    /// Thread-shape rule.
    pub shape: BlockShape,
}

impl Workload {
    /// Extracts the workload half of a [`FusionInput`].
    #[must_use]
    pub fn from_fusion_input(inp: &FusionInput) -> Self {
        Workload {
            args: inp.args.clone(),
            grid_dim: inp.grid_dim,
            dynamic_shared: inp.dynamic_shared,
            default_threads: inp.default_threads,
            tunable: inp.tunable,
            shape: inp.shape,
        }
    }

    /// Recombines this workload with a kernel into a [`FusionInput`].
    fn to_fusion_input(&self, kernel: Function) -> FusionInput {
        FusionInput {
            kernel,
            args: self.args.clone(),
            grid_dim: self.grid_dim,
            dynamic_shared: self.dynamic_shared,
            default_threads: self.default_threads,
            tunable: self.tunable,
            shape: self.shape,
        }
    }

    /// Content hash over the `Debug` rendering — every field is plain data
    /// with a deterministic `Debug` form, so this is stable within a build.
    fn content_hash(&self) -> u64 {
        fnv1a_64(format!("{self:?}").as_bytes())
    }
}

/// Hit/miss/recompute counters for one query kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Lookups whose fingerprint matched the memo: no work done.
    pub hits: u64,
    /// First-ever computations for a key.
    pub misses: u64,
    /// Re-computations because the fingerprint changed under an existing
    /// memo (an input the query depends on was edited).
    pub recomputes: u64,
}

impl QueryStats {
    /// Total times the query function actually ran.
    #[must_use]
    pub fn computes(&self) -> u64 {
        self.misses + self.recomputes
    }

    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.recomputes
    }
}

/// Per-query [`QueryStats`] for a whole [`Session`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// `ast(k)`: parse a kernel's source text.
    pub ast: QueryStats,
    /// `ir(k)`: lower a kernel to thread IR.
    pub ir: QueryStats,
    /// `lints(k)`: static fusion-safety analysis.
    pub lints: QueryStats,
    /// `ranges(k)`: value-range summary (disjointness facts for the gate).
    pub ranges: QueryStats,
    /// `fused(a, b, ...)`: horizontal fusion of a pair at a partition.
    pub fused: QueryStats,
    /// `search_winner(a, b)`: the Fig. 6 configuration search.
    pub search: QueryStats,
    /// `single(k)`: native single-kernel measurement.
    pub single: QueryStats,
    /// `native(a, b)`: native co-execution measurement.
    pub native: QueryStats,
    /// Snapshot of the process-wide `hfuse-analysis` cache counters at the
    /// time [`Session::stats`] was called (lint and range-summary tables).
    /// These are process-global, shared with the CLI and the fuse gate —
    /// assert on deltas, not absolutes.
    pub analysis_cache: hfuse_analysis::AnalysisCacheStats,
}

impl SessionStats {
    /// Total query-function executions across all query kinds — the
    /// "how much real work happened" number.
    #[must_use]
    pub fn total_computes(&self) -> u64 {
        self.ast.computes()
            + self.ir.computes()
            + self.lints.computes()
            + self.ranges.computes()
            + self.fused.computes()
            + self.search.computes()
            + self.single.computes()
            + self.native.computes()
    }
}

/// A memoized value plus the fingerprint of the inputs it was computed from.
struct Memo<T> {
    fingerprint: u64,
    value: T,
}

/// The `ast` query's value: the parsed kernel, its statement span table
/// (absent for kernels seeded from an already-parsed [`FusionInput`]), and
/// the hash of its printed form — the fingerprint every downstream query
/// keys on, which is what makes whitespace-only edits cut off early.
#[derive(Clone)]
struct AstValue {
    func: Arc<Function>,
    spans: Option<Arc<SpanTable>>,
    ast_hash: u64,
}

type AstResult = Result<AstValue, HfuseError>;

/// A memo table: query key → fingerprinted shared result.
type MemoMap<K, V> = HashMap<K, Memo<Result<Arc<V>, HfuseError>>>;

/// The `fused` query's key: both kernel indices plus the explicit block
/// shapes the pair was fused at.
type FusedKey = (usize, usize, (u32, u32, u32), (u32, u32, u32));

/// Generic memo lookup: hit on fingerprint match, recompute on mismatch,
/// miss on absence. `compute` must not touch the memo map it is filling
/// (dependencies are resolved by the caller *before* this call).
fn lookup<K, V, F>(
    map: &mut HashMap<K, Memo<V>>,
    stats: &mut QueryStats,
    key: K,
    fingerprint: u64,
    compute: F,
) -> V
where
    K: std::hash::Hash + Eq,
    V: Clone,
    F: FnOnce() -> V,
{
    if let Some(memo) = map.get(&key) {
        if memo.fingerprint == fingerprint {
            stats.hits += 1;
            return memo.value.clone();
        }
        stats.recomputes += 1;
    } else {
        stats.misses += 1;
    }
    let value = compute();
    map.insert(
        key,
        Memo {
            fingerprint,
            value: value.clone(),
        },
    );
    value
}

/// The incremental compile pipeline: tracked inputs plus memoized queries.
///
/// See the [module docs](self) for the query graph and fingerprint scheme.
pub struct Session {
    gpu: Gpu,
    opts: SearchOptions,
    global_extents: Option<Arc<BTreeMap<String, i64>>>,
    sources: Vec<String>,
    workloads: Vec<Option<Workload>>,
    ast_memo: Vec<Option<Memo<AstResult>>>,
    ir_memo: MemoMap<usize, KernelIr>,
    lints_memo: MemoMap<(usize, Option<u32>), Vec<Diagnostic>>,
    ranges_memo: MemoMap<(usize, Option<u32>), hfuse_analysis::KernelRangeSummary>,
    fused_memo: MemoMap<FusedKey, FusedKernel>,
    search_memo: MemoMap<(usize, usize), SearchReport>,
    single_memo: MemoMap<usize, RunResult>,
    native_memo: MemoMap<(usize, usize), RunResult>,
    stats: SessionStats,
}

impl Session {
    /// A session over a fresh device with the given hardware configuration.
    #[must_use]
    pub fn new(config: GpuConfig) -> Self {
        Self::with_gpu(Gpu::new(config))
    }

    /// A session over an existing device (keeping its allocated memory, so
    /// workload buffer arguments stay valid).
    #[must_use]
    pub fn with_gpu(gpu: Gpu) -> Self {
        Session {
            gpu,
            opts: SearchOptions::default(),
            global_extents: None,
            sources: Vec::new(),
            workloads: Vec::new(),
            ast_memo: Vec::new(),
            ir_memo: HashMap::new(),
            lints_memo: HashMap::new(),
            ranges_memo: HashMap::new(),
            fused_memo: HashMap::new(),
            search_memo: HashMap::new(),
            single_memo: HashMap::new(),
            native_memo: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    // ---- inputs -----------------------------------------------------------

    /// The session's device.
    #[must_use]
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Mutable device access, e.g. for allocating workload buffers.
    ///
    /// Config changes made through this handle are picked up by the next
    /// measurement-query lookup (their fingerprints hash the config);
    /// mutating buffer *contents* in place is invisible to fingerprints.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// Replaces the device. Measurement queries re-run on next demand if
    /// the new device's configuration differs; parses and lowers are
    /// untouched.
    pub fn set_gpu(&mut self, gpu: Gpu) {
        self.gpu = gpu;
    }

    /// The options `search_winner` runs with.
    #[must_use]
    pub fn search_options(&self) -> SearchOptions {
        self.opts
    }

    /// Sets the options `search_winner` runs with. Changing them
    /// invalidates searches (on next demand) but nothing upstream.
    pub fn set_search_options(&mut self, opts: SearchOptions) {
        self.opts = opts;
    }

    /// The global buffer extents (in elements) the `lints` query feeds to
    /// the out-of-bounds lint.
    #[must_use]
    pub fn global_extents(&self) -> Option<&Arc<BTreeMap<String, i64>>> {
        self.global_extents.as_ref()
    }

    /// Sets the global buffer extents (in elements, by pointer-parameter
    /// name) for the out-of-bounds lint. Changing them invalidates `lints`
    /// memos on next demand; `None` disables the global-buffer half of the
    /// lint.
    pub fn set_global_extents(&mut self, extents: Option<BTreeMap<String, i64>>) {
        self.global_extents = extents.map(Arc::new);
    }

    /// Registers a kernel by source text.
    pub fn add_kernel(&mut self, source: impl Into<String>) -> KernelId {
        self.sources.push(source.into());
        self.workloads.push(None);
        self.ast_memo.push(None);
        KernelId(self.sources.len() - 1)
    }

    /// Registers a kernel by source text together with its workload.
    pub fn add_input(&mut self, source: impl Into<String>, workload: Workload) -> KernelId {
        let k = self.add_kernel(source);
        self.workloads[k.0] = Some(workload);
        k
    }

    /// Registers an already-parsed [`FusionInput`]: the kernel's printed
    /// form becomes the tracked source, the `ast` memo is pre-seeded with
    /// the exact [`Function`] (no re-parse ever happens, so results are
    /// structurally identical to calling the free functions on `inp.kernel`
    /// directly), and the workload half is recorded. Seeding touches no
    /// stats counters; the first `ast(k)` lookup afterwards counts as a
    /// hit.
    pub fn add_fusion_input(&mut self, inp: &FusionInput) -> KernelId {
        let source = print_function(&inp.kernel);
        let src_hash = fnv1a_64(source.as_bytes());
        let k = self.add_kernel(source);
        // The tracked source *is* the printed form, so the printed-AST hash
        // equals the source hash.
        self.ast_memo[k.0] = Some(Memo {
            fingerprint: src_hash,
            value: Ok(AstValue {
                func: Arc::new(inp.kernel.clone()),
                spans: None,
                ast_hash: src_hash,
            }),
        });
        self.workloads[k.0] = Some(Workload::from_fusion_input(inp));
        k
    }

    /// The current source text of a kernel.
    #[must_use]
    pub fn kernel_source(&self, k: KernelId) -> &str {
        &self.sources[k.0]
    }

    /// Edits a kernel's source text. Downstream queries notice on next
    /// demand; a change that prints to the same AST (whitespace, comments)
    /// re-runs only the parse.
    pub fn set_kernel_source(&mut self, k: KernelId, source: impl Into<String>) {
        self.sources[k.0] = source.into();
    }

    /// Sets or replaces a kernel's workload (required before measurement
    /// queries involving `k`).
    pub fn set_workload(&mut self, k: KernelId, workload: Workload) {
        self.workloads[k.0] = Some(workload);
    }

    /// Query counters since construction (or the last
    /// [`reset_stats`](Session::reset_stats)), with a live snapshot of the
    /// process-wide analysis-cache counters attached.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats;
        stats.analysis_cache = hfuse_analysis::analysis_cache_stats();
        stats
    }

    /// Zeroes the query counters (memoized values are kept).
    pub fn reset_stats(&mut self) {
        self.stats = SessionStats::default();
    }

    // ---- derived queries --------------------------------------------------

    /// The parsed kernel. Memoized on the source text.
    ///
    /// # Errors
    ///
    /// Propagates the parse error (also memoized, so re-demanding a broken
    /// kernel doesn't re-parse it).
    pub fn ast(&mut self, k: KernelId) -> Result<Arc<Function>, HfuseError> {
        self.ast_value(k).map(|v| v.func)
    }

    /// The hash of the kernel's *printed* AST — the fingerprint downstream
    /// queries key on.
    ///
    /// # Errors
    ///
    /// Propagates the parse error.
    pub fn ast_hash(&mut self, k: KernelId) -> Result<u64, HfuseError> {
        self.ast_value(k).map(|v| v.ast_hash)
    }

    fn ast_value(&mut self, k: KernelId) -> AstResult {
        let src_hash = fnv1a_64(self.sources[k.0].as_bytes());
        let slot = &mut self.ast_memo[k.0];
        if let Some(memo) = slot {
            if memo.fingerprint == src_hash {
                self.stats.ast.hits += 1;
                return memo.value.clone();
            }
            self.stats.ast.recomputes += 1;
        } else {
            self.stats.ast.misses += 1;
        }
        let value: AstResult = match parse_kernel_with_spans(&self.sources[k.0]) {
            Ok((func, spans)) => {
                let ast_hash = fnv1a_64(print_function(&func).as_bytes());
                Ok(AstValue {
                    func: Arc::new(func),
                    spans: Some(Arc::new(spans)),
                    ast_hash,
                })
            }
            Err(e) => Err(e.into()),
        };
        self.ast_memo[k.0] = Some(Memo {
            fingerprint: src_hash,
            value: value.clone(),
        });
        value
    }

    /// The kernel lowered to thread IR. Memoized on the printed AST, so
    /// source edits that don't change the AST are cut off here.
    ///
    /// # Errors
    ///
    /// Propagates parse and lowering errors.
    pub fn ir(&mut self, k: KernelId) -> Result<Arc<KernelIr>, HfuseError> {
        let ast = self.ast_value(k);
        let fingerprint = match &ast {
            Ok(v) => v.ast_hash,
            // Keep a broken kernel's IR memo keyed to the source hash so it
            // recomputes (and re-reports) only when the source changes.
            Err(_) => fnv1a_64(self.sources[k.0].as_bytes()),
        };
        lookup(
            &mut self.ir_memo,
            &mut self.stats.ir,
            k.0,
            fingerprint,
            || {
                let v = ast?;
                Ok(Arc::new(lower_kernel(&v.func)?))
            },
        )
    }

    /// Static fusion-safety diagnostics for the kernel, under an optional
    /// known `blockDim.x`. Memoized on the printed AST (per
    /// `block_threads`), and backed by the process-wide analysis cache that
    /// the fuse-time safety gate also uses — so linting a kernel here and
    /// fusing it later analyzes it exactly once.
    ///
    /// # Errors
    ///
    /// Propagates the parse error.
    pub fn lints(
        &mut self,
        k: KernelId,
        block_threads: Option<u32>,
    ) -> Result<Arc<Vec<Diagnostic>>, HfuseError> {
        let ast = self.ast_value(k);
        let mut fp = Fnv64::new();
        fp.write_u64(self.dep_hash(k, &ast));
        fp.write_u64(hfuse_analysis::ranges::extents_fingerprint(
            self.global_extents.as_deref(),
        ));
        let extents = self.global_extents.clone();
        lookup(
            &mut self.lints_memo,
            &mut self.stats.lints,
            (k.0, block_threads),
            fp.finish(),
            || {
                let v = ast?;
                let opts = hfuse_analysis::AnalysisOptions {
                    block_threads,
                    global_extents: extents,
                };
                Ok(hfuse_analysis::analyze_kernel_memoized(
                    &v.func,
                    v.spans.as_deref(),
                    &opts,
                ))
            },
        )
    }

    /// The kernel's value-range summary — per-array access facts,
    /// race-freedom and bounds certificates, and the
    /// [`fast_gate_clean`](hfuse_analysis::KernelRangeSummary::fast_gate_clean)
    /// bit the fuse gate's fast path keys on. Memoized on the printed AST
    /// (per `block_threads`), and backed by the same process-wide summary
    /// cache the gate uses — summarizing here and fusing later analyzes the
    /// kernel exactly once.
    ///
    /// # Errors
    ///
    /// Propagates the parse error.
    pub fn ranges(
        &mut self,
        k: KernelId,
        block_threads: Option<u32>,
    ) -> Result<Arc<hfuse_analysis::KernelRangeSummary>, HfuseError> {
        let ast = self.ast_value(k);
        let fingerprint = self.dep_hash(k, &ast);
        lookup(
            &mut self.ranges_memo,
            &mut self.stats.ranges,
            (k.0, block_threads),
            fingerprint,
            || {
                let v = ast?;
                Ok(hfuse_analysis::summarize_ranges_memoized(
                    &v.func,
                    block_threads,
                ))
            },
        )
    }

    /// The horizontal fusion of `a` and `b` at the given block shapes
    /// (including the static safety gate). Memoized on both printed ASTs.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and fusion rejections.
    pub fn fused(
        &mut self,
        a: KernelId,
        b: KernelId,
        dims1: (u32, u32, u32),
        dims2: (u32, u32, u32),
    ) -> Result<Arc<FusedKernel>, HfuseError> {
        let ast_a = self.ast_value(a);
        let ast_b = self.ast_value(b);
        let mut fp = Fnv64::new();
        fp.write_u64(self.dep_hash(a, &ast_a));
        fp.write_u64(self.dep_hash(b, &ast_b));
        lookup(
            &mut self.fused_memo,
            &mut self.stats.fused,
            (a.0, b.0, dims1, dims2),
            fp.finish(),
            || {
                let (va, vb) = (ast_a?, ast_b?);
                Ok(Arc::new(horizontal_fuse(&va.func, dims1, &vb.func, dims2)?))
            },
        )
    }

    /// The Fig. 6 configuration search for the pair, under the session's
    /// [`SearchOptions`]. Memoized on both ASTs, both workloads, the device
    /// configuration, and the options — so repeating the query on an
    /// unchanged pair performs **zero** new simulations, while editing
    /// either kernel, either workload, the config, or the options re-runs
    /// exactly the search.
    ///
    /// # Errors
    ///
    /// Propagates parse errors, missing workloads
    /// ([`HfuseError::Config`]), and search failures.
    pub fn search_winner(
        &mut self,
        a: KernelId,
        b: KernelId,
    ) -> Result<Arc<SearchReport>, HfuseError> {
        let ast_a = self.ast_value(a);
        let ast_b = self.ast_value(b);
        let mut fp = Fnv64::new();
        fp.write_u64(self.dep_hash(a, &ast_a));
        fp.write_u64(self.dep_hash(b, &ast_b));
        fp.write_u64(self.workload_hash(a));
        fp.write_u64(self.workload_hash(b));
        fp.write_u64(self.config_hash());
        fp.write_str(&format!("{:?}", self.opts));
        let inputs = self.pair_inputs(a, b, &ast_a, &ast_b);
        let (gpu, opts) = (&self.gpu, self.opts);
        lookup(
            &mut self.search_memo,
            &mut self.stats.search,
            (a.0, b.0),
            fp.finish(),
            || {
                let (in1, in2) = inputs?;
                Ok(Arc::new(search_fusion_config_impl(gpu, &in1, &in2, opts)?))
            },
        )
    }

    /// Native single-kernel measurement (the kernel alone at its default
    /// block size). Memoized on the AST, the workload, and the device
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates parse errors, a missing workload, and simulation faults.
    pub fn single(&mut self, k: KernelId) -> Result<Arc<RunResult>, HfuseError> {
        let ast = self.ast_value(k);
        let mut fp = Fnv64::new();
        fp.write_u64(self.dep_hash(k, &ast));
        fp.write_u64(self.workload_hash(k));
        fp.write_u64(self.config_hash());
        let input = self.one_input(k, &ast);
        let gpu = &self.gpu;
        lookup(
            &mut self.single_memo,
            &mut self.stats.single,
            k.0,
            fp.finish(),
            || Ok(Arc::new(measure_single_impl(gpu, &input?)?)),
        )
    }

    /// Native co-execution measurement of the pair (two launches on
    /// parallel streams). Memoized like [`single`](Session::single).
    ///
    /// # Errors
    ///
    /// Propagates parse errors, missing workloads, and simulation faults.
    pub fn native(&mut self, a: KernelId, b: KernelId) -> Result<Arc<RunResult>, HfuseError> {
        let ast_a = self.ast_value(a);
        let ast_b = self.ast_value(b);
        let mut fp = Fnv64::new();
        fp.write_u64(self.dep_hash(a, &ast_a));
        fp.write_u64(self.dep_hash(b, &ast_b));
        fp.write_u64(self.workload_hash(a));
        fp.write_u64(self.workload_hash(b));
        fp.write_u64(self.config_hash());
        let inputs = self.pair_inputs(a, b, &ast_a, &ast_b);
        let gpu = &self.gpu;
        lookup(
            &mut self.native_memo,
            &mut self.stats.native,
            (a.0, b.0),
            fp.finish(),
            || {
                let (in1, in2) = inputs?;
                Ok(Arc::new(measure_native_impl(gpu, &in1, &in2)?))
            },
        )
    }

    // ---- fingerprint helpers ---------------------------------------------

    /// The dependency fingerprint contributed by kernel `k`'s AST: its
    /// printed-form hash, or (for a kernel that doesn't parse) its source
    /// hash, so downstream memos re-run exactly when the broken source
    /// changes.
    fn dep_hash(&self, k: KernelId, ast: &AstResult) -> u64 {
        match ast {
            Ok(v) => v.ast_hash,
            Err(_) => fnv1a_64(self.sources[k.0].as_bytes()),
        }
    }

    /// The workload fingerprint for `k` (a fixed sentinel when no workload
    /// is set, so *setting* one later changes the fingerprint).
    fn workload_hash(&self, k: KernelId) -> u64 {
        self.workloads[k.0]
            .as_ref()
            .map_or(0, Workload::content_hash)
    }

    /// The device-configuration fingerprint, over the `Debug` rendering of
    /// [`GpuConfig`] (plain scalar fields; deterministic within a build).
    fn config_hash(&self) -> u64 {
        fnv1a_64(format!("{:?}", self.gpu.config()).as_bytes())
    }

    /// Builds the pair of [`FusionInput`]s for a measurement query, or the
    /// error to memoize.
    fn pair_inputs(
        &self,
        a: KernelId,
        b: KernelId,
        ast_a: &AstResult,
        ast_b: &AstResult,
    ) -> Result<(FusionInput, FusionInput), HfuseError> {
        Ok((self.one_input(a, ast_a)?, self.one_input(b, ast_b)?))
    }

    fn one_input(&self, k: KernelId, ast: &AstResult) -> Result<FusionInput, HfuseError> {
        let v = ast.clone()?;
        let workload = self.workloads[k.0]
            .as_ref()
            .ok_or_else(|| HfuseError::Config(format!("kernel #{} has no workload set", k.0)))?;
        Ok(workload.to_fusion_input((*v.func).clone()))
    }
}
