//! N-way horizontal fusion — the natural generalization of the paper's
//! two-kernel `Generate` algorithm.
//!
//! PTX provides 16 named barrier resources; fusion reserves id 0 (unused)
//! and assigns ids 1..=15 to member kernels, so up to fifteen kernels with
//! barriers can share one block. Every member gets its own contiguous
//! thread interval, thread-id remap prologue, and goto guard, exactly as in
//! the pairwise algorithm.

use cuda_frontend::ast::{Axis, BinOp, Block, BuiltinVar, Expr, Function, Param, Stmt, Ty, UnOp};
use cuda_frontend::printer::print_function;
use cuda_frontend::transform::{preprocess_kernel, replace_builtins, NameGen};
use cuda_frontend::FrontendError;

use crate::remap::{decl_i32, ThreadRemap};

/// Maximum member kernels: PTX has 16 barrier ids and fusion assigns one
/// per member starting at 1.
pub const MAX_FUSED_KERNELS: usize = 15;

/// One member of an N-way fusion: the kernel and its block shape.
#[derive(Debug, Clone)]
pub struct FusionPart {
    /// The kernel to fuse.
    pub kernel: Function,
    /// Its original block shape.
    pub dims: (u32, u32, u32),
}

impl FusionPart {
    /// Creates a part.
    pub fn new(kernel: Function, dims: (u32, u32, u32)) -> Self {
        Self { kernel, dims }
    }

    fn threads(&self) -> u32 {
        self.dims.0 * self.dims.1 * self.dims.2
    }
}

/// An N-way horizontally fused kernel.
#[derive(Debug, Clone)]
pub struct MultiFusedKernel {
    /// The fused `__global__` function.
    pub function: Function,
    /// Thread interval sizes, in member order.
    pub partitions: Vec<u32>,
    /// Number of parameters contributed by each member (the fused parameter
    /// list concatenates the members' parameters in order).
    pub param_counts: Vec<usize>,
}

impl MultiFusedKernel {
    /// Total threads per fused block.
    pub fn block_threads(&self) -> u32 {
        self.partitions.iter().sum()
    }

    /// Pretty-prints the fused kernel as CUDA source.
    pub fn to_source(&self) -> String {
        print_function(&self.function)
    }
}

/// Horizontally fuses any number of kernels (2..=15).
///
/// # Errors
///
/// Returns [`FrontendError`] when fewer than two parts are given, when more
/// than [`MAX_FUSED_KERNELS`] are given, when any partition boundary is not
/// warp-aligned, when more than one member needs `extern __shared__`
/// memory, or when a member already contains raw `bar.sync` barriers.
pub fn horizontal_fuse_many(parts: &[FusionPart]) -> Result<MultiFusedKernel, FrontendError> {
    if parts.len() < 2 {
        return Err(FrontendError::new("fusion needs at least two kernels"));
    }
    if parts.len() > MAX_FUSED_KERNELS {
        return Err(FrontendError::new(format!(
            "cannot fuse {} kernels: PTX provides only {MAX_FUSED_KERNELS} usable barrier ids",
            parts.len()
        )));
    }
    // Every boundary except the final end must be warp-aligned so partial
    // barriers synchronize whole warps.
    let mut offset = 0u32;
    for (i, p) in parts.iter().enumerate() {
        let t = p.threads();
        if t == 0 {
            return Err(FrontendError::new(format!(
                "member {i} has an empty block shape"
            )));
        }
        if i + 1 < parts.len() && !(offset + t).is_multiple_of(32) {
            return Err(FrontendError::new(format!(
                "partition boundary after member {i} ({}) must be a multiple of the warp size",
                offset + t
            )));
        }
        offset += t;
    }

    let mut names = NameGen::new();
    let mut prepped: Vec<Function> = Vec::with_capacity(parts.len());
    for (i, p) in parts.iter().enumerate() {
        let mut f = p.kernel.clone();
        preprocess_kernel(&mut f, &[], &mut names)?;
        if contains_bar_sync(&f.body) {
            return Err(FrontendError::new(format!(
                "member {i} already contains bar.sync barriers; cannot assign fresh ids"
            )));
        }
        prepped.push(f);
    }
    let dyn_users = prepped.iter().filter(|f| uses_dynamic_shared(f)).count();
    if dyn_users > 1 {
        return Err(FrontendError::new(format!(
            "{dyn_users} members use extern __shared__ memory; the fused kernel has one dynamic region"
        )));
    }

    let gtid = "__hf_gtid";
    let mut decls: Vec<Stmt> = Vec::new();
    let mut prologue: Vec<Stmt> = Vec::new();
    prologue.push(decl_i32(
        gtid,
        Some(Expr::Builtin(BuiltinVar::ThreadIdx(Axis::X))),
    ));
    let mut guarded: Vec<Stmt> = Vec::new();
    let mut params: Vec<Param> = Vec::new();
    let mut param_counts = Vec::with_capacity(parts.len());
    let mut partitions = Vec::with_capacity(parts.len());

    let mut offset = 0u32;
    for (i, (part, f)) in parts.iter().zip(prepped).enumerate() {
        let d = part.threads();
        let barrier_id = (i + 1) as u32;
        let (part_decls, mut stmts) = split_decls(f.body);
        decls.extend(part_decls.into_iter().map(Stmt::Decl));

        // Remap builtins through this member's prologue variables.
        let ltid = if offset == 0 {
            Expr::ident(gtid)
        } else {
            Expr::bin(BinOp::Sub, Expr::ident(gtid), Expr::int(i64::from(offset)))
        };
        let remap = ThreadRemap::new(&format!("__hf_k{}", i + 1), part.dims, ltid);
        prologue.extend(remap.decls());
        let mut b = Block::new(stmts);
        replace_builtins(&mut b, &remap.subst());
        stmts = b.stmts;
        replace_barriers(&mut stmts, barrier_id, d);

        // Guard: skip unless offset <= gtid < offset + d.
        let in_range = Expr::bin(
            BinOp::LogAnd,
            Expr::bin(BinOp::Ge, Expr::ident(gtid), Expr::int(i64::from(offset))),
            Expr::bin(
                BinOp::Lt,
                Expr::ident(gtid),
                Expr::int(i64::from(offset + d)),
            ),
        );
        let end_label = format!("__hf_k{}_end", i + 1);
        guarded.push(Stmt::If(
            Expr::Unary(UnOp::Not, Box::new(in_range)),
            Block::new(vec![Stmt::Goto(end_label.clone())]),
            None,
        ));
        guarded.extend(stmts);
        guarded.push(Stmt::Label(end_label));

        param_counts.push(f.params.len());
        params.extend(f.params);
        partitions.push(d);
        offset += d;
    }

    let mut body = decls;
    body.extend(prologue);
    body.extend(guarded);
    let name = parts
        .iter()
        .map(|p| p.kernel.name.as_str())
        .collect::<Vec<_>>()
        .join("_");
    Ok(MultiFusedKernel {
        function: Function {
            name: format!("{name}_fused"),
            params,
            ret: Ty::Void,
            is_kernel: true,
            body: Block::new(body),
        },
        partitions,
        param_counts,
    })
}

fn split_decls(body: Block) -> (Vec<cuda_frontend::ast::VarDecl>, Vec<Stmt>) {
    let mut decls = Vec::new();
    let mut rest = Vec::new();
    let mut in_prefix = true;
    for s in body.stmts {
        match s {
            Stmt::Decl(d) if in_prefix => decls.push(d),
            other => {
                in_prefix = false;
                rest.push(other);
            }
        }
    }
    (decls, rest)
}

fn replace_barriers(stmts: &mut [Stmt], id: u32, count: u32) {
    for s in stmts {
        match s {
            Stmt::SyncThreads => *s = Stmt::BarSync { id, count },
            Stmt::If(_, t, e) => {
                replace_barriers(&mut t.stmts, id, count);
                if let Some(e) = e {
                    replace_barriers(&mut e.stmts, id, count);
                }
            }
            Stmt::For { body, .. } | Stmt::While(_, body) | Stmt::DoWhile(body, _) => {
                replace_barriers(&mut body.stmts, id, count)
            }
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    replace_barriers(&mut case.body, id, count);
                }
            }
            Stmt::Block(b) => replace_barriers(&mut b.stmts, id, count),
            _ => {}
        }
    }
}

fn contains_bar_sync(b: &Block) -> bool {
    let mut found = false;
    let mut clone = b.clone();
    cuda_frontend::transform::visit::walk_stmts(&mut clone, &mut |s| {
        if matches!(s, Stmt::BarSync { .. }) {
            found = true;
        }
    });
    found
}

fn uses_dynamic_shared(f: &Function) -> bool {
    let mut found = false;
    let mut clone = f.body.clone();
    cuda_frontend::transform::visit::walk_stmts(&mut clone, &mut |s| {
        if matches!(s, Stmt::Decl(d) if d.quals.extern_shared) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;

    fn writer(name: &str, value: f32) -> Function {
        parse_kernel(&format!(
            "__global__ void {name}(float* out) {{\
               out[blockIdx.x * blockDim.x + threadIdx.x] = {value:?}f;\
             }}"
        ))
        .expect("parse")
    }

    fn barrier_kernel(name: &str) -> Function {
        parse_kernel(&format!(
            "__global__ void {name}(float* out) {{\
               __shared__ float s[64];\
               s[threadIdx.x % 64] = threadIdx.x;\
               __syncthreads();\
               out[blockIdx.x * blockDim.x + threadIdx.x] = s[0];\
             }}"
        ))
        .expect("parse")
    }

    #[test]
    fn fuses_three_kernels() {
        let parts = vec![
            FusionPart::new(writer("a", 1.0), (128, 1, 1)),
            FusionPart::new(writer("b", 2.0), (64, 1, 1)),
            FusionPart::new(writer("c", 3.0), (32, 1, 1)),
        ];
        let fused = horizontal_fuse_many(&parts).expect("fuse");
        assert_eq!(fused.block_threads(), 224);
        assert_eq!(fused.partitions, vec![128, 64, 32]);
        assert_eq!(fused.param_counts, vec![1, 1, 1]);
        let src = fused.to_source();
        for label in ["__hf_k1_end", "__hf_k2_end", "__hf_k3_end"] {
            assert!(src.contains(label), "{src}");
        }
        // The emitted source reparses.
        parse_kernel(&src).expect("reparse");
    }

    #[test]
    fn assigns_distinct_barrier_ids() {
        let parts = vec![
            FusionPart::new(barrier_kernel("a"), (64, 1, 1)),
            FusionPart::new(barrier_kernel("b"), (64, 1, 1)),
            FusionPart::new(barrier_kernel("c"), (64, 1, 1)),
        ];
        let fused = horizontal_fuse_many(&parts).expect("fuse");
        let src = fused.to_source();
        assert!(src.contains("bar.sync 1, 64;"), "{src}");
        assert!(src.contains("bar.sync 2, 64;"), "{src}");
        assert!(src.contains("bar.sync 3, 64;"), "{src}");
    }

    #[test]
    fn rejects_too_few_or_too_many() {
        let one = vec![FusionPart::new(writer("a", 1.0), (32, 1, 1))];
        assert!(horizontal_fuse_many(&one).is_err());
        let many: Vec<FusionPart> = (0..16)
            .map(|i| FusionPart::new(writer(&format!("k{i}"), 1.0), (32, 1, 1)))
            .collect();
        assert!(horizontal_fuse_many(&many).is_err());
    }

    #[test]
    fn rejects_unaligned_interior_boundary() {
        let parts = vec![
            FusionPart::new(writer("a", 1.0), (48, 1, 1)),
            FusionPart::new(writer("b", 2.0), (80, 1, 1)),
        ];
        assert!(horizontal_fuse_many(&parts).is_err());
    }

    #[test]
    fn pairwise_fusion_agrees_with_generic() {
        // The dedicated two-kernel path and the N-way path must produce
        // equivalent partitions and parameter layouts.
        let a = writer("a", 1.0);
        let b = writer("b", 2.0);
        let two = crate::fuse::horizontal_fuse(&a, (128, 1, 1), &b, (128, 1, 1)).expect("pair");
        let many = horizontal_fuse_many(&[
            FusionPart::new(a, (128, 1, 1)),
            FusionPart::new(b, (128, 1, 1)),
        ])
        .expect("many");
        assert_eq!(two.block_threads(), many.block_threads());
        assert_eq!(two.function.params.len(), many.function.params.len());
    }
}
