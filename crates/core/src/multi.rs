//! N-way horizontal fusion — the natural generalization of the paper's
//! two-kernel `Generate` algorithm.
//!
//! PTX provides 16 named barrier resources; fusion reserves id 0 (unused)
//! and assigns ids 1..=15 to member kernels, so up to fifteen kernels with
//! barriers can share one block. Every member gets its own contiguous
//! thread interval, thread-id remap prologue, and goto guard, exactly as in
//! the pairwise algorithm.

use std::sync::Arc;

use cuda_frontend::ast::{Axis, BinOp, Block, BuiltinVar, Expr, Function, Param, Stmt, Ty, UnOp};
use cuda_frontend::printer::print_function;
use cuda_frontend::transform::{preprocess_kernel, replace_builtins, NameGen};
use cuda_frontend::FrontendError;
use gpu_sim::{Gpu, GpuConfig, ParamValue};
use thread_ir::ir::KernelIr;
use thread_ir::lower_kernel;
use thread_ir::spill::apply_register_bound;

use crate::remap::{decl_i32, ThreadRemap};
use crate::search::{legacy_scores, no_model_by_env, no_prune_by_env, profile_jobs, ProfileJob};
use crate::search::{FusionInput, HfuseError, SearchOptions};

/// Maximum member kernels: PTX has 16 barrier ids and fusion assigns one
/// per member starting at 1.
pub const MAX_FUSED_KERNELS: usize = 15;

/// One member of an N-way fusion: the kernel and its block shape.
#[derive(Debug, Clone)]
pub struct FusionPart {
    /// The kernel to fuse.
    pub kernel: Function,
    /// Its original block shape.
    pub dims: (u32, u32, u32),
}

impl FusionPart {
    /// Creates a part.
    pub fn new(kernel: Function, dims: (u32, u32, u32)) -> Self {
        Self { kernel, dims }
    }

    fn threads(&self) -> u32 {
        self.dims.0 * self.dims.1 * self.dims.2
    }
}

/// An N-way horizontally fused kernel.
#[derive(Debug, Clone)]
pub struct MultiFusedKernel {
    /// The fused `__global__` function.
    pub function: Function,
    /// Thread interval sizes, in member order.
    pub partitions: Vec<u32>,
    /// Number of parameters contributed by each member (the fused parameter
    /// list concatenates the members' parameters in order).
    pub param_counts: Vec<usize>,
}

impl MultiFusedKernel {
    /// Total threads per fused block.
    pub fn block_threads(&self) -> u32 {
        self.partitions.iter().sum()
    }

    /// Pretty-prints the fused kernel as CUDA source.
    pub fn to_source(&self) -> String {
        print_function(&self.function)
    }
}

/// Horizontally fuses any number of kernels (2..=15).
///
/// # Errors
///
/// Returns [`FrontendError`] when fewer than two parts are given, when more
/// than [`MAX_FUSED_KERNELS`] are given, when any partition boundary is not
/// warp-aligned, when more than one member needs `extern __shared__`
/// memory, or when a member already contains raw `bar.sync` barriers.
pub fn horizontal_fuse_many(parts: &[FusionPart]) -> Result<MultiFusedKernel, FrontendError> {
    if parts.len() < 2 {
        return Err(FrontendError::new("fusion needs at least two kernels"));
    }
    if parts.len() > MAX_FUSED_KERNELS {
        return Err(FrontendError::new(format!(
            "cannot fuse {} kernels: PTX provides only {MAX_FUSED_KERNELS} usable barrier ids",
            parts.len()
        )));
    }
    // Every boundary except the final end must be warp-aligned so partial
    // barriers synchronize whole warps.
    let mut offset = 0u32;
    for (i, p) in parts.iter().enumerate() {
        let t = p.threads();
        if t == 0 {
            return Err(FrontendError::new(format!(
                "member {i} has an empty block shape"
            )));
        }
        if i + 1 < parts.len() && !(offset + t).is_multiple_of(32) {
            return Err(FrontendError::new(format!(
                "partition boundary after member {i} ({}) must be a multiple of the warp size",
                offset + t
            )));
        }
        offset += t;
    }

    let mut names = NameGen::new();
    let mut prepped: Vec<Function> = Vec::with_capacity(parts.len());
    for (i, p) in parts.iter().enumerate() {
        let mut f = p.kernel.clone();
        preprocess_kernel(&mut f, &[], &mut names)?;
        if contains_bar_sync(&f.body) {
            return Err(FrontendError::new(format!(
                "member {i} already contains bar.sync barriers; cannot assign fresh ids"
            )));
        }
        prepped.push(f);
    }
    let dyn_users = prepped.iter().filter(|f| uses_dynamic_shared(f)).count();
    if dyn_users > 1 {
        return Err(FrontendError::new(format!(
            "{dyn_users} members use extern __shared__ memory; the fused kernel has one dynamic region"
        )));
    }

    let gtid = "__hf_gtid";
    let mut decls: Vec<Stmt> = Vec::new();
    let mut prologue: Vec<Stmt> = Vec::new();
    prologue.push(decl_i32(
        gtid,
        Some(Expr::Builtin(BuiltinVar::ThreadIdx(Axis::X))),
    ));
    let mut guarded: Vec<Stmt> = Vec::new();
    let mut params: Vec<Param> = Vec::new();
    let mut param_counts = Vec::with_capacity(parts.len());
    let mut partitions = Vec::with_capacity(parts.len());

    let mut offset = 0u32;
    for (i, (part, f)) in parts.iter().zip(prepped).enumerate() {
        let d = part.threads();
        let barrier_id = (i + 1) as u32;
        let (part_decls, mut stmts) = split_decls(f.body);
        decls.extend(part_decls.into_iter().map(Stmt::Decl));

        // Remap builtins through this member's prologue variables.
        let ltid = if offset == 0 {
            Expr::ident(gtid)
        } else {
            Expr::bin(BinOp::Sub, Expr::ident(gtid), Expr::int(i64::from(offset)))
        };
        let remap = ThreadRemap::new(&format!("__hf_k{}", i + 1), part.dims, ltid);
        prologue.extend(remap.decls());
        let mut b = Block::new(stmts);
        replace_builtins(&mut b, &remap.subst());
        stmts = b.stmts;
        replace_barriers(&mut stmts, barrier_id, d);

        // Guard: skip unless offset <= gtid < offset + d.
        let in_range = Expr::bin(
            BinOp::LogAnd,
            Expr::bin(BinOp::Ge, Expr::ident(gtid), Expr::int(i64::from(offset))),
            Expr::bin(
                BinOp::Lt,
                Expr::ident(gtid),
                Expr::int(i64::from(offset + d)),
            ),
        );
        let end_label = format!("__hf_k{}_end", i + 1);
        guarded.push(Stmt::If(
            Expr::Unary(UnOp::Not, Box::new(in_range)),
            Block::new(vec![Stmt::Goto(end_label.clone())]),
            None,
        ));
        guarded.extend(stmts);
        guarded.push(Stmt::Label(end_label));

        param_counts.push(f.params.len());
        params.extend(f.params);
        partitions.push(d);
        offset += d;
    }

    let mut body = decls;
    body.extend(prologue);
    body.extend(guarded);
    let name = parts
        .iter()
        .map(|p| p.kernel.name.as_str())
        .collect::<Vec<_>>()
        .join("_");
    Ok(MultiFusedKernel {
        function: Function {
            name: format!("{name}_fused"),
            params,
            ret: Ty::Void,
            is_kernel: true,
            body: Block::new(body),
        },
        partitions,
        param_counts,
    })
}

fn split_decls(body: Block) -> (Vec<cuda_frontend::ast::VarDecl>, Vec<Stmt>) {
    let mut decls = Vec::new();
    let mut rest = Vec::new();
    let mut in_prefix = true;
    for s in body.stmts {
        match s {
            Stmt::Decl(d) if in_prefix => decls.push(d),
            other => {
                in_prefix = false;
                rest.push(other);
            }
        }
    }
    (decls, rest)
}

fn replace_barriers(stmts: &mut [Stmt], id: u32, count: u32) {
    for s in stmts {
        match s {
            Stmt::SyncThreads => *s = Stmt::BarSync { id, count },
            Stmt::If(_, t, e) => {
                replace_barriers(&mut t.stmts, id, count);
                if let Some(e) = e {
                    replace_barriers(&mut e.stmts, id, count);
                }
            }
            Stmt::For { body, .. } | Stmt::While(_, body) | Stmt::DoWhile(body, _) => {
                replace_barriers(&mut body.stmts, id, count)
            }
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    replace_barriers(&mut case.body, id, count);
                }
            }
            Stmt::Block(b) => replace_barriers(&mut b.stmts, id, count),
            _ => {}
        }
    }
}

fn contains_bar_sync(b: &Block) -> bool {
    let mut found = false;
    let mut clone = b.clone();
    cuda_frontend::transform::visit::walk_stmts(&mut clone, &mut |s| {
        if matches!(s, Stmt::BarSync { .. }) {
            found = true;
        }
    });
    found
}

/// The Fig. 6 register bound generalized to N members: `members` holds each
/// member's `(threads, reg_pressure)`, `shmem_fused` the fused kernel's
/// total shared bytes per block, and `d0` the fused block threads.
pub fn register_bound_many(
    cfg: &GpuConfig,
    members: &[(u32, u32)],
    shmem_fused: u32,
    d0: u32,
) -> u32 {
    let mut b0 = u32::MAX;
    for &(d, nregs) in members {
        b0 = b0.min(cfg.regs_per_sm / (d * nregs).max(1));
    }
    let b_sh = cfg
        .shared_per_sm
        .checked_div(shmem_fused)
        .unwrap_or(u32::MAX);
    let b_th = cfg.max_threads_per_sm / d0.max(1);
    let b0 = b0.min(b_sh).min(b_th).max(1);
    (cfg.regs_per_sm / (b0 * d0).max(1)).max(1)
}

/// One profiled N-way fusion configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSearchCandidate {
    /// Threads assigned to each member, in input order.
    pub partition: Vec<u32>,
    /// Register bound applied (`None` = unbounded compile).
    pub reg_bound: Option<u32>,
    /// Profiled execution cycles (for a pruned candidate, the abort clock).
    pub cycles: u64,
    /// Issue-slot utilization (%). Zero for pruned candidates.
    pub issue_util: f64,
    /// Achieved occupancy (%). Zero for pruned candidates.
    pub occupancy: f64,
    /// `Some(clock)` when the profile run was budget-aborted.
    pub pruned_at: Option<u64>,
}

/// The N-way search result.
#[derive(Debug, Clone)]
pub struct MultiSearchReport {
    /// All profiled configurations, in search order.
    pub candidates: Vec<MultiSearchCandidate>,
    /// Index of the fastest candidate.
    pub best_idx: usize,
    /// The fused function of the best candidate.
    pub best_function: Function,
    /// The compiled best kernel (with the winning register bound applied).
    pub best_kernel: KernelIr,
    /// Fused block dimension of the best candidate.
    pub d0: u32,
}

impl MultiSearchReport {
    /// The winning configuration.
    pub fn best(&self) -> &MultiSearchCandidate {
        &self.candidates[self.best_idx]
    }

    /// How many candidates were budget-aborted by branch-and-bound pruning.
    pub fn pruned_count(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| c.pruned_at.is_some())
            .count()
    }
}

/// Enumerates compositions of `units` into `slots` positive parts, in
/// lexicographic order, stopping at `cap` results.
fn compositions(units: u32, slots: usize, cap: usize) -> Vec<Vec<u32>> {
    fn rec(remaining: u32, slots: usize, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>, cap: usize) {
        if out.len() >= cap {
            return;
        }
        if slots == 1 {
            if remaining >= 1 {
                let mut v = cur.clone();
                v.push(remaining);
                out.push(v);
            }
            return;
        }
        let max_take = remaining.saturating_sub(slots as u32 - 1);
        for take in 1..=max_take {
            cur.push(take);
            rec(remaining - take, slots - 1, cur, out, cap);
            cur.pop();
            if out.len() >= cap {
                return;
            }
        }
    }
    let mut out = Vec::new();
    rec(units, slots, &mut Vec::with_capacity(slots), &mut out, cap);
    out
}

/// Candidate-count guard for the N-way sweep: the composition space grows
/// combinatorially, so the sweep takes the first `MAX_MULTI_PARTITIONS`
/// partitions in lexicographic order and profiles those.
pub const MAX_MULTI_PARTITIONS: usize = 64;

/// Runs the Fig. 6 configuration search generalized to N kernels: sweep
/// thread-space partitions of `opts.d0` (every composition in steps of
/// `opts.granularity` when all members are tunable, the native block sizes
/// otherwise), profile each candidate with and without the generalized
/// register bound, and return the fastest. Profiling reuses the pairwise
/// search's branch-and-bound machinery (best-first order under a shared
/// cycle budget) and its `HFUSE_SEARCH_NO_PRUNE` escape hatch.
///
/// # Errors
///
/// Returns [`HfuseError`] on mismatched grids, when no partition is
/// feasible, or when a profile run fails for a non-scheduling reason.
pub fn search_multi_fusion_config(
    base: &Gpu,
    inputs: &[FusionInput],
    opts: SearchOptions,
) -> Result<MultiSearchReport, HfuseError> {
    if inputs.len() < 2 {
        return Err(HfuseError::Config(
            "multi-kernel search needs at least two inputs".to_owned(),
        ));
    }
    let grid = inputs[0].grid_dim;
    if inputs.iter().any(|i| i.grid_dim != grid) {
        return Err(HfuseError::Config(
            "grid dimensions must match for fusion".to_owned(),
        ));
    }
    let cfg = base.config().clone();
    let prune = opts.prune && !no_prune_by_env();
    let model_filter = opts.model_filter && !no_model_by_env();
    let mut nregs = Vec::with_capacity(inputs.len());
    for inp in inputs {
        nregs.push(lower_kernel(&inp.kernel)?.reg_pressure());
    }

    let partitions: Vec<Vec<u32>> = if inputs.iter().all(|i| i.tunable) {
        let units = opts.d0 / opts.granularity.max(1);
        if (units as usize) < inputs.len() {
            return Err(HfuseError::Config(format!(
                "d0 {} at granularity {} cannot cover {} kernels",
                opts.d0,
                opts.granularity,
                inputs.len()
            )));
        }
        let leftover = opts.d0 - units * opts.granularity;
        compositions(units, inputs.len(), MAX_MULTI_PARTITIONS)
            .into_iter()
            .map(|c| {
                let mut parts: Vec<u32> = c.into_iter().map(|u| u * opts.granularity).collect();
                // Non-divisible d0: the last member absorbs the remainder so
                // partitions always sum to exactly d0.
                *parts.last_mut().expect("non-empty composition") += leftover;
                parts
            })
            .collect()
    } else {
        vec![inputs.iter().map(|i| i.default_threads).collect()]
    };

    struct Candidate {
        partition: Vec<u32>,
        bound: Option<u32>,
        fused: MultiFusedKernel,
        ir: Arc<KernelIr>,
    }
    let total_dyn_shared: u32 = inputs.iter().map(|i| i.dynamic_shared).sum();
    let mut compiled: Vec<Candidate> = Vec::new();
    for partition in partitions {
        let mut parts = Vec::with_capacity(inputs.len());
        let mut ok = true;
        for (inp, &d) in inputs.iter().zip(&partition) {
            match inp.shape.dims(d) {
                Some(dims) => parts.push(FusionPart::new(inp.kernel.clone(), dims)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let Ok(fused) = horizontal_fuse_many(&parts) else {
            continue;
        };
        let d0: u32 = partition.iter().sum();
        let ir = Arc::new(lower_kernel(&fused.function)?);
        let shmem_fused = ir.shared_bytes(total_dyn_shared);
        let members: Vec<(u32, u32)> = partition
            .iter()
            .copied()
            .zip(nregs.iter().copied())
            .collect();
        let r0 = register_bound_many(&cfg, &members, shmem_fused, d0);
        let mut ir_capped = (*ir).clone();
        apply_register_bound(&mut ir_capped, r0);
        compiled.push(Candidate {
            partition: partition.clone(),
            bound: None,
            fused: fused.clone(),
            ir,
        });
        compiled.push(Candidate {
            partition,
            bound: Some(r0),
            fused,
            ir: Arc::new(ir_capped),
        });
    }

    let fused_args: Vec<ParamValue> = inputs.iter().flat_map(|i| i.args.iter().copied()).collect();
    let jobs: Vec<ProfileJob> = compiled
        .iter()
        .map(|c| ProfileJob {
            ir: Arc::clone(&c.ir),
            d0: c.partition.iter().sum(),
        })
        .collect();
    // Model ranking: one native measurement per member kernel, then each
    // candidate is scored over its `Σ_i I_i[c] / d_i` dynamic mix (the
    // N-kernel generalization of the pairwise model).
    let scores = if model_filter {
        let mut issues = Vec::with_capacity(inputs.len());
        for inp in inputs {
            issues.push(
                crate::search::measure_single_impl(base, inp)?
                    .metrics
                    .class_issues,
            );
        }
        compiled
            .iter()
            .map(|c| {
                let s = gpu_sim::static_class_mix(&c.ir);
                let members: Vec<_> = issues
                    .iter()
                    .copied()
                    .zip(c.partition.iter().copied())
                    .collect();
                let mix = gpu_sim::fused_dyn_mix(&cfg, &members, s.spills, s.total());
                let d0: u32 = c.partition.iter().sum();
                gpu_sim::model_estimate(
                    &cfg,
                    c.ir.reg_pressure(),
                    d0,
                    c.ir.shared_bytes(total_dyn_shared),
                    grid,
                    &mix,
                )
            })
            .collect()
    } else {
        legacy_scores(&cfg, &jobs, grid, total_dyn_shared)
    };
    let results = profile_jobs(
        base,
        &jobs,
        &fused_args,
        grid,
        total_dyn_shared,
        prune,
        model_filter,
        &scores,
    );

    let mut candidates = Vec::new();
    let mut best: Option<(u64, usize, Function, Arc<KernelIr>)> = None;
    for (cand, result) in compiled.into_iter().zip(results) {
        match result {
            Ok(c) => {
                let idx = candidates.len();
                if c.pruned_at.is_none() && best.as_ref().is_none_or(|(cyc, ..)| c.cycles < *cyc) {
                    best = Some((c.cycles, idx, cand.fused.function, cand.ir));
                }
                candidates.push(MultiSearchCandidate {
                    partition: cand.partition,
                    reg_bound: cand.bound,
                    cycles: c.cycles,
                    issue_util: c.issue_util,
                    occupancy: c.occupancy,
                    pruned_at: c.pruned_at,
                });
            }
            Err(HfuseError::Sim(_)) => continue,
            Err(e) => return Err(e),
        }
    }

    let (_, best_idx, best_function, best_kernel) = best
        .ok_or_else(|| HfuseError::Config("no feasible fusion configuration found".to_owned()))?;
    let best_kernel = Arc::try_unwrap(best_kernel).unwrap_or_else(|shared| (*shared).clone());
    let d0 = candidates[best_idx].partition.iter().sum();
    Ok(MultiSearchReport {
        candidates,
        best_idx,
        best_function,
        best_kernel,
        d0,
    })
}

fn uses_dynamic_shared(f: &Function) -> bool {
    let mut found = false;
    let mut clone = f.body.clone();
    cuda_frontend::transform::visit::walk_stmts(&mut clone, &mut |s| {
        if matches!(s, Stmt::Decl(d) if d.quals.extern_shared) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;

    fn writer(name: &str, value: f32) -> Function {
        parse_kernel(&format!(
            "__global__ void {name}(float* out) {{\
               out[blockIdx.x * blockDim.x + threadIdx.x] = {value:?}f;\
             }}"
        ))
        .expect("parse")
    }

    fn barrier_kernel(name: &str) -> Function {
        parse_kernel(&format!(
            "__global__ void {name}(float* out) {{\
               __shared__ float s[64];\
               s[threadIdx.x % 64] = threadIdx.x;\
               __syncthreads();\
               out[blockIdx.x * blockDim.x + threadIdx.x] = s[0];\
             }}"
        ))
        .expect("parse")
    }

    #[test]
    fn fuses_three_kernels() {
        let parts = vec![
            FusionPart::new(writer("a", 1.0), (128, 1, 1)),
            FusionPart::new(writer("b", 2.0), (64, 1, 1)),
            FusionPart::new(writer("c", 3.0), (32, 1, 1)),
        ];
        let fused = horizontal_fuse_many(&parts).expect("fuse");
        assert_eq!(fused.block_threads(), 224);
        assert_eq!(fused.partitions, vec![128, 64, 32]);
        assert_eq!(fused.param_counts, vec![1, 1, 1]);
        let src = fused.to_source();
        for label in ["__hf_k1_end", "__hf_k2_end", "__hf_k3_end"] {
            assert!(src.contains(label), "{src}");
        }
        // The emitted source reparses.
        parse_kernel(&src).expect("reparse");
    }

    #[test]
    fn assigns_distinct_barrier_ids() {
        let parts = vec![
            FusionPart::new(barrier_kernel("a"), (64, 1, 1)),
            FusionPart::new(barrier_kernel("b"), (64, 1, 1)),
            FusionPart::new(barrier_kernel("c"), (64, 1, 1)),
        ];
        let fused = horizontal_fuse_many(&parts).expect("fuse");
        let src = fused.to_source();
        assert!(src.contains("bar.sync 1, 64;"), "{src}");
        assert!(src.contains("bar.sync 2, 64;"), "{src}");
        assert!(src.contains("bar.sync 3, 64;"), "{src}");
    }

    #[test]
    fn rejects_too_few_or_too_many() {
        let one = vec![FusionPart::new(writer("a", 1.0), (32, 1, 1))];
        assert!(horizontal_fuse_many(&one).is_err());
        let many: Vec<FusionPart> = (0..16)
            .map(|i| FusionPart::new(writer(&format!("k{i}"), 1.0), (32, 1, 1)))
            .collect();
        assert!(horizontal_fuse_many(&many).is_err());
    }

    #[test]
    fn rejects_unaligned_interior_boundary() {
        let parts = vec![
            FusionPart::new(writer("a", 1.0), (48, 1, 1)),
            FusionPart::new(writer("b", 2.0), (80, 1, 1)),
        ];
        assert!(horizontal_fuse_many(&parts).is_err());
    }

    #[test]
    fn compositions_enumerate_and_cap() {
        assert_eq!(
            compositions(4, 3, 64),
            vec![vec![1, 1, 2], vec![1, 2, 1], vec![2, 1, 1]]
        );
        assert_eq!(compositions(6, 2, 2).len(), 2); // capped
        assert!(compositions(2, 3, 64).is_empty()); // infeasible
    }

    #[test]
    fn register_bound_many_matches_pairwise_on_two_members() {
        let cfg = GpuConfig::pascal_like();
        let pairwise = crate::search::register_bound(&cfg, 896, 32, 128, 16, 24 * 1024, 1024);
        let many = register_bound_many(&cfg, &[(896, 32), (128, 16)], 24 * 1024, 1024);
        assert_eq!(pairwise, many);
    }

    fn mk_search_inputs() -> (Gpu, Vec<FusionInput>) {
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let grid = 4u32;
        let d0 = 256u32;
        let mut inputs = Vec::new();
        for (i, v) in [1.0f32, 2.0, 3.0].into_iter().enumerate() {
            let buf = gpu.memory_mut().alloc_f32((grid * d0) as usize);
            inputs.push(FusionInput {
                kernel: writer(&format!("k{i}"), v),
                args: vec![ParamValue::Ptr(buf)],
                grid_dim: grid,
                dynamic_shared: 0,
                default_threads: 64,
                tunable: true,
                shape: crate::search::BlockShape::Linear,
            });
        }
        (gpu, inputs)
    }

    #[test]
    fn multi_search_finds_best_three_way_partition() {
        let (gpu, inputs) = mk_search_inputs();
        let opts = SearchOptions {
            d0: 256,
            granularity: 64,
            ..SearchOptions::default()
        };
        let report = search_multi_fusion_config(&gpu, &inputs, opts).expect("search");
        // 3 compositions of 4 units into 3 parts × 2 register variants.
        assert_eq!(report.candidates.len(), 6);
        let best = report.best();
        assert_eq!(best.partition.iter().sum::<u32>(), 256);
        assert_eq!(report.d0, 256);
        assert!(report.candidates.iter().all(|c| c.cycles >= best.cycles));
        assert!(report.best_kernel.insts.len() > 10);
    }

    #[test]
    fn multi_search_pruned_matches_exhaustive_best() {
        let (gpu, inputs) = mk_search_inputs();
        let opts = SearchOptions {
            d0: 256,
            granularity: 64,
            ..SearchOptions::default()
        };
        let pruned = search_multi_fusion_config(&gpu, &inputs, opts).expect("pruned");
        let exhaustive = search_multi_fusion_config(
            &gpu,
            &inputs,
            SearchOptions {
                prune: false,
                ..opts
            },
        )
        .expect("exhaustive");
        assert_eq!(exhaustive.pruned_count(), 0);
        assert_eq!(pruned.best_idx, exhaustive.best_idx);
        assert_eq!(pruned.best().cycles, exhaustive.best().cycles);
        assert_eq!(pruned.best_kernel, exhaustive.best_kernel);
        for (p, e) in pruned.candidates.iter().zip(&exhaustive.candidates) {
            assert_eq!((&p.partition, p.reg_bound), (&e.partition, e.reg_bound));
            if p.pruned_at.is_none() {
                assert_eq!(p.cycles, e.cycles);
            }
        }
    }

    #[test]
    fn multi_search_rejects_infeasible_geometry() {
        let (gpu, inputs) = mk_search_inputs();
        assert!(matches!(
            search_multi_fusion_config(&gpu, &inputs[..1], SearchOptions::default()),
            Err(HfuseError::Config(_))
        ));
        let opts = SearchOptions {
            d0: 64,
            granularity: 64,
            ..SearchOptions::default()
        };
        assert!(matches!(
            search_multi_fusion_config(&gpu, &inputs, opts),
            Err(HfuseError::Config(_))
        ));
    }

    #[test]
    fn pairwise_fusion_agrees_with_generic() {
        // The dedicated two-kernel path and the N-way path must produce
        // equivalent partitions and parameter layouts.
        let a = writer("a", 1.0);
        let b = writer("b", 2.0);
        let two = crate::fuse::horizontal_fuse(&a, (128, 1, 1), &b, (128, 1, 1)).expect("pair");
        let many = horizontal_fuse_many(&[
            FusionPart::new(a, (128, 1, 1)),
            FusionPart::new(b, (128, 1, 1)),
        ])
        .expect("many");
        assert_eq!(two.block_threads(), many.block_threads());
        assert_eq!(two.function.params.len(), many.function.params.len());
    }
}
