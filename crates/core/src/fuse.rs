//! The `Generate` algorithm (Fig. 5 of the paper): horizontal fusion of two
//! kernels.
//!
//! Given kernels `K1`, `K2` and their block shapes, the fused kernel:
//!
//! 1. merges the (freshly renamed) parameters and lifted local declarations
//!    of both kernels,
//! 2. defines prologue variables mapping the fused linear thread id back to
//!    each kernel's `threadIdx.{x,y,z}` / `blockDim.{x,y,z}`,
//! 3. rewrites `__syncthreads()` to partial barriers
//!    (`bar.sync 1, d1` / `bar.sync 2, d2`),
//! 4. appends both statement lists behind thread-range guards implemented
//!    with `goto` (threads outside a kernel's interval skip its body).

use cuda_frontend::ast::{BinOp, Block, Expr, Function, Param, Stmt, Ty, UnOp, VarDecl};

use crate::remap::{decl_i32, ThreadRemap};
use cuda_frontend::printer::print_function;
use cuda_frontend::transform::{preprocess_kernel, replace_builtins, NameGen};
use cuda_frontend::FrontendError;

/// A horizontally fused kernel plus the partition metadata needed to launch
/// and profile it.
#[derive(Debug, Clone)]
pub struct FusedKernel {
    /// The fused `__global__` function.
    pub function: Function,
    /// Threads assigned to the first kernel (`d1`).
    pub d1: u32,
    /// Threads assigned to the second kernel (`d2`).
    pub d2: u32,
    /// Original block shape of the first kernel.
    pub dims1: (u32, u32, u32),
    /// Original block shape of the second kernel.
    pub dims2: (u32, u32, u32),
    /// Number of parameters taken by the first kernel (the fused parameter
    /// list is `K1`'s parameters followed by `K2`'s).
    pub params_split: usize,
    /// `__syncthreads()` statements the value-range analysis proved
    /// redundant and removed from the inputs before interleaving
    /// (`HFUSE_NO_BARRIER_ELIM=1` forces 0).
    pub barriers_eliminated: u32,
    /// True when the safety gate accepted this fusion from the two input
    /// kernels' range summaries alone, without analyzing the fused function.
    pub gate_fast_path: bool,
}

impl FusedKernel {
    /// Total threads per fused block (`d1 + d2`).
    pub fn block_threads(&self) -> u32 {
        self.d1 + self.d2
    }

    /// Pretty-prints the fused kernel as CUDA source (goto-guard style, as
    /// in Fig. 4 of the paper).
    pub fn to_source(&self) -> String {
        print_function(&self.function)
    }
}

fn dims_threads(d: (u32, u32, u32)) -> u32 {
    d.0 * d.1 * d.2
}

/// Horizontally fuses `k1` and `k2` with the given block shapes.
///
/// The inputs are preprocessed internally (device-call inlining is the
/// caller's job; renaming and declaration lifting happen here), so plain
/// parsed kernels can be passed directly.
///
/// # Errors
///
/// Returns [`FrontendError`] when a kernel is malformed, when both kernels
/// need `extern __shared__` memory (the fused kernel would alias the single
/// dynamic region), or when an input already contains raw `bar.sync`
/// barriers (their ids would collide with the ones fusion assigns).
pub fn horizontal_fuse(
    k1: &Function,
    dims1: (u32, u32, u32),
    k2: &Function,
    dims2: (u32, u32, u32),
) -> Result<FusedKernel, FrontendError> {
    horizontal_fuse_with(k1, dims1, k2, dims2, FuseOptions::default())
}

/// Options for [`horizontal_fuse_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseOptions {
    /// Keep `__syncthreads()` as full-block barriers instead of rewriting
    /// them to partial `bar.sync` barriers. This reproduces the naive
    /// fusion the paper's related work attempted: it couples the two
    /// kernels' phases when their barrier counts match and *deadlocks*
    /// when they do not — the motivation for HFuse's partial barriers.
    pub full_barriers: bool,
}

/// [`horizontal_fuse`] with explicit [`FuseOptions`].
///
/// # Errors
///
/// Same as [`horizontal_fuse`].
pub fn horizontal_fuse_with(
    k1: &Function,
    dims1: (u32, u32, u32),
    k2: &Function,
    dims2: (u32, u32, u32),
    options: FuseOptions,
) -> Result<FusedKernel, FrontendError> {
    let d1 = dims_threads(dims1);
    let d2 = dims_threads(dims2);
    if d1 == 0 || d2 == 0 {
        return Err(FrontendError::new("block shapes must be non-empty"));
    }
    if !d1.is_multiple_of(32) {
        return Err(FrontendError::new(format!(
            "first kernel's thread count {d1} must be a multiple of the warp size \
             (partial barriers synchronize whole warps)"
        )));
    }

    let mut names = NameGen::new();
    let mut f1 = k1.clone();
    let mut f2 = k2.clone();
    preprocess_kernel(&mut f1, &[], &mut names)?;
    preprocess_kernel(&mut f2, &[], &mut names)?;

    for (f, which) in [(&f1, "first"), (&f2, "second")] {
        if contains_bar_sync(&f.body) {
            return Err(FrontendError::new(format!(
                "{which} kernel already contains bar.sync barriers; cannot assign fresh ids"
            )));
        }
    }
    let dyn1 = uses_dynamic_shared(&f1);
    let dyn2 = uses_dynamic_shared(&f2);
    if dyn1 && dyn2 {
        return Err(FrontendError::new(
            "both kernels use extern __shared__ memory; the fused kernel would alias it",
        ));
    }

    // Drop barriers the value-range analysis proves redundant *before*
    // interleaving: every barrier removed here is one fewer partial barrier
    // in the fused kernel. Skipped for the full-barrier ablation (it wants
    // the naive coupling) and under the HFUSE_NO_BARRIER_ELIM hatch.
    let mut barriers_eliminated = 0;
    if !options.full_barriers && !gpu_sim::env::no_barrier_elim() {
        barriers_eliminated += hfuse_analysis::eliminate_redundant_barriers(&mut f1, Some(d1));
        barriers_eliminated += hfuse_analysis::eliminate_redundant_barriers(&mut f2, Some(d2));
    }

    // Range summaries of the (preprocessed, barrier-elided) inputs: when both
    // prove safe on their own, the gate can skip analyzing the fused function.
    let gate_fast_path = !hfuse_analysis::static_check_disabled_by_env()
        && hfuse_analysis::summarize_ranges_memoized(&f1, Some(d1)).fast_gate_clean()
        && hfuse_analysis::summarize_ranges_memoized(&f2, Some(d2)).fast_gate_clean();

    // Split lifted declarations from statements.
    let (decls1, mut stmts1) = split_decls(f1.body);
    let (decls2, mut stmts2) = split_decls(f2.body);

    // Prologue: fused linear thread id and per-kernel remapped indices.
    let gtid = "__hf_gtid";
    let mut prologue: Vec<Stmt> = Vec::new();
    prologue.push(decl_i32(
        gtid,
        Some(Expr::Builtin(cuda_frontend::ast::BuiltinVar::ThreadIdx(
            cuda_frontend::ast::Axis::X,
        ))),
    ));
    let remap1 = ThreadRemap::new("__hf_k1", dims1, Expr::ident(gtid));
    let remap2 = ThreadRemap::new(
        "__hf_k2",
        dims2,
        Expr::bin(BinOp::Sub, Expr::ident(gtid), Expr::int(i64::from(d1))),
    );
    prologue.extend(remap1.decls());
    prologue.extend(remap2.decls());

    // Retarget built-ins inside each kernel's statements.
    let mut b1 = Block::new(stmts1);
    replace_builtins(&mut b1, &remap1.subst());
    stmts1 = b1.stmts;
    let mut b2 = Block::new(stmts2);
    replace_builtins(&mut b2, &remap2.subst());
    stmts2 = b2.stmts;

    // Rewrite barriers to partial barriers with per-kernel ids (unless the
    // ablation asked for the naive full-block barriers).
    if !options.full_barriers {
        replace_barriers(&mut stmts1, 1, d1);
        replace_barriers(&mut stmts2, 2, d2);
    }

    // Assemble: decls, prologue, guarded S1, guarded S2 (goto style, Fig. 4).
    let mut body: Vec<Stmt> = Vec::new();
    body.extend(decls1.into_iter().map(Stmt::Decl));
    body.extend(decls2.into_iter().map(Stmt::Decl));
    body.extend(prologue);

    let k1_end = "__hf_k1_end".to_owned();
    let k2_end = "__hf_k2_end".to_owned();
    // if (!(gtid < d1)) goto k1_end;
    body.push(Stmt::If(
        Expr::Unary(
            UnOp::Not,
            Box::new(Expr::bin(
                BinOp::Lt,
                Expr::ident(gtid),
                Expr::int(i64::from(d1)),
            )),
        ),
        Block::new(vec![Stmt::Goto(k1_end.clone())]),
        None,
    ));
    body.extend(stmts1);
    body.push(Stmt::Label(k1_end));
    // if (gtid < d1) goto k2_end;
    body.push(Stmt::If(
        Expr::bin(BinOp::Lt, Expr::ident(gtid), Expr::int(i64::from(d1))),
        Block::new(vec![Stmt::Goto(k2_end.clone())]),
        None,
    ));
    body.extend(stmts2);
    body.push(Stmt::Label(k2_end));

    let params: Vec<Param> = f1.params.iter().chain(f2.params.iter()).cloned().collect();
    let params_split = f1.params.len();
    let function = Function {
        name: format!("{}_{}_fused", k1.name, k2.name),
        params,
        ret: Ty::Void,
        is_kernel: true,
        body: Block::new(body),
    };
    let fused = FusedKernel {
        function,
        d1,
        d2,
        dims1,
        dims2,
        params_split,
        barriers_eliminated,
        gate_fast_path,
    };
    static_safety_check(&fused)?;
    Ok(fused)
}

/// Rejects fused kernels the static analyzer can prove unsafe: barriers
/// under unresolvable divergent control, malformed partial-barrier
/// structure, definite shared-memory races, or definite out-of-bounds
/// shared accesses. `HFUSE_NO_STATIC_CHECK=1` disables the gate (restoring
/// pre-analyzer behavior exactly, since the check runs after the fused
/// kernel is fully built).
///
/// When both input kernels' range summaries already certify them
/// barrier-free, race-free, and in-bounds ([`FusedKernel::gate_fast_path`]),
/// the interleaved function cannot introduce a new violation — the two
/// halves run under disjoint `__hf_gtid` guards and the lints are per-block
/// — so the gate skips analyzing the (larger) fused function entirely.
///
/// Goes through the process-wide memoized analysis cache, so re-fusing the
/// same pair at the same partition (the search sweeps each partition twice:
/// unbounded and register-bounded) analyzes the fused function once, and a
/// kernel already linted by `hfuse lint` is never re-analyzed by the gate.
fn static_safety_check(fused: &FusedKernel) -> Result<(), FrontendError> {
    if hfuse_analysis::static_check_disabled_by_env() {
        return Ok(());
    }
    if fused.gate_fast_path {
        return Ok(());
    }
    let opts = hfuse_analysis::AnalysisOptions {
        block_threads: Some(fused.block_threads()),
        ..hfuse_analysis::AnalysisOptions::default()
    };
    let diags = hfuse_analysis::analyze_kernel_memoized(&fused.function, None, &opts);
    if diags.is_empty() {
        return Ok(());
    }
    let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    Err(FrontendError::new(format!(
        "fused kernel fails static safety checks:\n{}",
        msgs.join("\n")
    )))
}

/// Splits a lifted kernel body into its leading declarations and the rest.
fn split_decls(body: Block) -> (Vec<VarDecl>, Vec<Stmt>) {
    let mut decls = Vec::new();
    let mut rest = Vec::new();
    let mut in_prefix = true;
    for s in body.stmts {
        match s {
            Stmt::Decl(d) if in_prefix => decls.push(d),
            other => {
                in_prefix = false;
                rest.push(other);
            }
        }
    }
    (decls, rest)
}

/// Replaces `__syncthreads()` with `bar.sync id, count` recursively.
fn replace_barriers(stmts: &mut [Stmt], id: u32, count: u32) {
    for s in stmts {
        match s {
            Stmt::SyncThreads => *s = Stmt::BarSync { id, count },
            Stmt::If(_, t, e) => {
                replace_barriers(&mut t.stmts, id, count);
                if let Some(e) = e {
                    replace_barriers(&mut e.stmts, id, count);
                }
            }
            Stmt::For { body, .. } | Stmt::While(_, body) | Stmt::DoWhile(body, _) => {
                replace_barriers(&mut body.stmts, id, count)
            }
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    replace_barriers(&mut case.body, id, count);
                }
            }
            Stmt::Block(b) => replace_barriers(&mut b.stmts, id, count),
            _ => {}
        }
    }
}

fn contains_bar_sync(b: &Block) -> bool {
    let mut found = false;
    let mut clone = b.clone();
    cuda_frontend::transform::visit::walk_stmts(&mut clone, &mut |s| {
        if matches!(s, Stmt::BarSync { .. }) {
            found = true;
        }
    });
    found
}

fn uses_dynamic_shared(f: &Function) -> bool {
    let mut found = false;
    let mut clone = f.body.clone();
    cuda_frontend::transform::visit::walk_stmts(&mut clone, &mut |s| {
        if matches!(s, Stmt::Decl(d) if d.quals.extern_shared) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda_frontend::parse_kernel;

    fn k(src: &str) -> Function {
        parse_kernel(src).expect("parse")
    }

    fn simple_pair() -> (Function, Function) {
        (
            k("__global__ void a(float* x, int n) {\
                 int i = blockIdx.x * blockDim.x + threadIdx.x;\
                 if (i < n) { x[i] = 1.0f; }\
               }"),
            k("__global__ void b(float* y, int m) {\
                 int j = blockIdx.x * blockDim.x + threadIdx.x;\
                 if (j < m) { y[j] = 2.0f; }\
               }"),
        )
    }

    #[test]
    fn fused_kernel_shape() {
        let (a, b) = simple_pair();
        let fused = horizontal_fuse(&a, (128, 1, 1), &b, (64, 1, 1)).expect("fuse");
        assert_eq!(fused.d1, 128);
        assert_eq!(fused.d2, 64);
        assert_eq!(fused.block_threads(), 192);
        assert_eq!(fused.function.params.len(), 4);
        assert_eq!(fused.params_split, 2);
        assert!(fused.function.is_kernel);
    }

    #[test]
    fn fused_source_has_goto_guards_and_reparses() {
        let (a, b) = simple_pair();
        let fused = horizontal_fuse(&a, (128, 1, 1), &b, (128, 1, 1)).expect("fuse");
        let src = fused.to_source();
        assert!(src.contains("goto __hf_k1_end;"), "{src}");
        assert!(src.contains("goto __hf_k2_end;"), "{src}");
        // The emitted CUDA source parses back.
        let reparsed = parse_kernel(&src).expect("reparse fused source");
        assert_eq!(reparsed.name, fused.function.name);
    }

    #[test]
    fn barriers_become_partial_with_distinct_ids() {
        let a = k("__global__ void a(float* x) {\
                     __shared__ float s[64];\
                     s[threadIdx.x % 64] = 0.0f;\
                     __syncthreads();\
                     x[threadIdx.x] = s[0];\
                   }");
        let b = k("__global__ void b(float* y) {\
                     __shared__ float t[32];\
                     t[threadIdx.x % 32] = 1.0f;\
                     __syncthreads();\
                     y[threadIdx.x] = t[0];\
                   }");
        let fused = horizontal_fuse(&a, (96, 1, 1), &b, (160, 1, 1)).expect("fuse");
        let src = fused.to_source();
        assert!(src.contains("bar.sync 1, 96;"), "{src}");
        assert!(src.contains("bar.sync 2, 160;"), "{src}");
        assert!(!src.contains("__syncthreads"), "{src}");
    }

    #[test]
    fn builtins_remapped_to_prologue_vars() {
        let (a, b) = simple_pair();
        let fused = horizontal_fuse(&a, (128, 1, 1), &b, (128, 1, 1)).expect("fuse");
        let src = fused.to_source();
        // The kernels' threadIdx.x references are gone; only the prologue
        // reads the real threadIdx.x.
        assert_eq!(src.matches("threadIdx.x").count(), 1, "{src}");
        assert!(src.contains("__hf_k1_tid_x"), "{src}");
        assert!(src.contains("__hf_k2_tid_x"), "{src}");
        // blockIdx is untouched.
        assert!(src.contains("blockIdx.x"), "{src}");
    }

    #[test]
    fn two_dimensional_block_remap() {
        let a = k("__global__ void a(float* x) {\
                     int t = threadIdx.x + threadIdx.y * blockDim.x;\
                     x[t] = 1.0f;\
                   }");
        let b = k("__global__ void b(float* y) { y[threadIdx.x] = 2.0f; }");
        let fused = horizontal_fuse(&a, (56, 16, 1), &b, (128, 1, 1)).expect("fuse");
        assert_eq!(fused.d1, 896);
        assert_eq!(fused.block_threads(), 1024);
        let src = fused.to_source();
        // y index maps through (ltid / dx) % dy
        assert!(src.contains("% 56"), "{src}");
        assert!(src.contains("/ 56"), "{src}");
    }

    #[test]
    fn non_warp_aligned_partition_rejected() {
        let (a, b) = simple_pair();
        assert!(horizontal_fuse(&a, (100, 1, 1), &b, (28, 1, 1)).is_err());
    }

    #[test]
    fn double_dynamic_shared_rejected() {
        let a = k("__global__ void a(float* x) { extern __shared__ float s[]; s[0] = 0.0f; x[0] = s[0]; }");
        let b = k("__global__ void b(float* y) { extern __shared__ float t[]; t[0] = 1.0f; y[0] = t[0]; }");
        let err = horizontal_fuse(&a, (32, 1, 1), &b, (32, 1, 1)).unwrap_err();
        assert!(err.message().contains("extern __shared__"), "{err}");
    }

    #[test]
    fn preexisting_bar_sync_rejected() {
        let a = k("__global__ void a(float* x) { asm(\"bar.sync 3, 32;\"); x[0] = 1.0f; }");
        let b = k("__global__ void b(float* y) { y[0] = 2.0f; }");
        assert!(horizontal_fuse(&a, (32, 1, 1), &b, (32, 1, 1)).is_err());
    }

    #[test]
    fn parameters_renamed_apart() {
        // Both kernels use the same parameter name `data`.
        let a = k("__global__ void a(float* data) { data[threadIdx.x] = 1.0f; }");
        let b = k("__global__ void b(float* data) { data[threadIdx.x] = 2.0f; }");
        let fused = horizontal_fuse(&a, (32, 1, 1), &b, (32, 1, 1)).expect("fuse");
        let names: Vec<&str> = fused
            .function
            .params
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }
}
