#![warn(missing_docs)]

//! HFUSE: automatic horizontal fusion for GPU kernels.
//!
//! This crate implements the contribution of *"Automatic Horizontal Fusion
//! for GPU Kernels"* (CGO 2022):
//!
//! * [`fuse`] — the `Generate` algorithm (Fig. 5): merge two kernels into
//!   one whose thread space is partitioned by thread id, with built-in
//!   variables retargeted through a prologue and `__syncthreads()` rewritten
//!   to partial `bar.sync` barriers.
//! * [`vertical`] — the standard vertical-fusion baseline the paper
//!   compares against.
//! * [`search`] — the profiling-driven configuration search (Fig. 6): sweep
//!   thread-space partitions at a granularity of 128 and, for each, also try
//!   a register bound computed from the occupancy model.
//! * [`db`] — the incremental query layer: a [`Session`] tracks kernel
//!   sources, the device, and the search options as inputs, and memoizes
//!   every derived stage (parse, lower, lint, fuse, measure, search) behind
//!   content-hash fingerprints. The free functions above remain as thin
//!   wrappers over a throwaway session.
//!
//! # Example
//!
//! ```
//! use cuda_frontend::parse_kernel;
//! use hfuse_core::fuse::horizontal_fuse;
//!
//! let k1 = parse_kernel(
//!     "__global__ void a(float* x) { x[threadIdx.x] = 1.0f; }",
//! )?;
//! let k2 = parse_kernel(
//!     "__global__ void b(float* y) { y[threadIdx.x] = 2.0f; }",
//! )?;
//! let fused = horizontal_fuse(&k1, (128, 1, 1), &k2, (128, 1, 1))?;
//! assert_eq!(fused.block_threads(), 256);
//! let src = fused.to_source();
//! assert!(src.contains("goto"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod db;
pub mod error;
pub mod fuse;
pub mod multi;
pub mod remap;
pub mod search;
pub mod vertical;

pub use db::{KernelId, QueryStats, Session, SessionStats, Workload};
pub use error::HfuseError;
pub use fuse::{horizontal_fuse, horizontal_fuse_with, FuseOptions, FusedKernel};
pub use multi::{
    horizontal_fuse_many, register_bound_many, search_multi_fusion_config, FusionPart,
    MultiFusedKernel, MultiSearchCandidate, MultiSearchReport, MAX_FUSED_KERNELS,
    MAX_MULTI_PARTITIONS,
};
pub use search::{
    calibration_rows, measure_naive_horizontal, measure_native, measure_single, measure_vertical,
    search_fusion_config, BlockShape, FusionInput, SearchCandidate, SearchOptions, SearchReport,
    MODEL_MARGIN, MODEL_TOP_K,
};
pub use vertical::vertical_fuse;
