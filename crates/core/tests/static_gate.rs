//! The fusion-time static safety gate and its `HFUSE_NO_STATIC_CHECK`
//! escape hatch. Kept in a dedicated test binary: the hatch is a
//! process-global environment variable, so these tests must not share a
//! process with tests that rely on the gate being armed.

use cuda_frontend::parse_kernel;
use hfuse_core::fuse::horizontal_fuse;

/// A kernel with a barrier under a data-dependent guard: statically unsafe
/// (unknown arrival set) and rejected by the gate.
const DIVERGENT: &str = "\
__global__ void divb(int* out, int* in) {
    int t = threadIdx.x;
    if (in[t] > 0) {
        __syncthreads();
    }
    out[t] = t;
}
";

const CLEAN: &str = "\
__global__ void ok(int* out) {
    int t = threadIdx.x;
    out[t] = t * 2;
}
";

#[test]
fn env_hatch_disables_the_gate() {
    let bad = parse_kernel(DIVERGENT).unwrap();
    let ok = parse_kernel(CLEAN).unwrap();

    let gated = horizontal_fuse(&bad, (64, 1, 1), &ok, (64, 1, 1));
    let err = gated.expect_err("gate must reject the divergent barrier");
    assert!(err.to_string().contains("static safety"), "{err}");

    std::env::set_var("HFUSE_NO_STATIC_CHECK", "1");
    let ungated = horizontal_fuse(&bad, (64, 1, 1), &ok, (64, 1, 1));
    std::env::remove_var("HFUSE_NO_STATIC_CHECK");
    let fused = ungated.expect("hatch must restore pre-gate behavior");

    // The hatch only skips the check — the fused output is the same kernel
    // fusion would have produced, barriers replaced and all.
    assert!(fused.to_source().contains("bar.sync"));

    // `HFUSE_NO_STATIC_CHECK=0` means "armed".
    std::env::set_var("HFUSE_NO_STATIC_CHECK", "0");
    let still_gated = horizontal_fuse(&bad, (64, 1, 1), &ok, (64, 1, 1));
    std::env::remove_var("HFUSE_NO_STATIC_CHECK");
    assert!(still_gated.is_err());
}
