//! Golden tests pinning the analyzer's diagnostics — codes, messages, and
//! exact source positions — on small fixture kernels, plus negative fixtures
//! proving each lint actually fires.

use cuda_frontend::parse_kernel_with_spans;
use hfuse_analysis::{
    analyze_kernel, AnalysisOptions, CODE_BARRIER_DIVERGENCE, CODE_PARTIAL_BARRIER,
    CODE_SHARED_RACE,
};

fn diags_of(src: &str, threads: Option<u32>) -> Vec<cuda_frontend::Diagnostic> {
    let (f, spans) = parse_kernel_with_spans(src).expect("fixture must parse");
    analyze_kernel(
        &f,
        Some(&spans),
        &AnalysisOptions {
            block_threads: threads,
            ..AnalysisOptions::default()
        },
    )
}

#[test]
fn divergent_barrier_is_flagged_with_span() {
    let src = "\
__global__ void k(float* out) {
    int t = threadIdx.x;
    if (t % 2 == 0) {
        __syncthreads();
    }
    out[t] = 1.0f;
}
";
    // The mod-2 arrival set is solved exactly (the even threads), so with a
    // known block size half the block provably skips the barrier.
    let diags = diags_of(src, Some(128));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, CODE_BARRIER_DIVERGENCE);
    let span = d.span.expect("must carry a span");
    assert_eq!(
        (span.line, span.col),
        (4, 9),
        "span must point at the barrier"
    );
    assert!(d.message.contains("64 of 128"), "{}", d.message);
    // The rendered form quotes the offending source line.
    assert!(
        d.render(src).contains("__syncthreads();"),
        "{}",
        d.render(src)
    );
}

#[test]
fn data_dependent_barrier_guard_is_flagged_without_block_size() {
    // `in[t] > 0` cannot be resolved to a thread set at all, so the barrier
    // is flagged even when the block size is unknown.
    let src = "\
__global__ void k(float* out, int* in) {
    int t = threadIdx.x;
    if (in[t] > 0) {
        __syncthreads();
    }
    out[t] = 1.0f;
}
";
    for threads in [None, Some(128)] {
        let diags = diags_of(src, threads);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, CODE_BARRIER_DIVERGENCE);
        assert!(
            diags[0].message.contains("non-uniform"),
            "{}",
            diags[0].message
        );
    }
}

#[test]
fn partial_thread_set_barrier_is_flagged_when_block_known() {
    let src = "\
__global__ void k(float* out) {
    int t = threadIdx.x;
    if (t < 64) {
        __syncthreads();
    }
    out[t] = 1.0f;
}
";
    // Block size known: only 64 of 128 threads reach the barrier.
    let diags = diags_of(src, Some(128));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_BARRIER_DIVERGENCE);
    assert!(
        diags[0].message.contains("64 of 128"),
        "{}",
        diags[0].message
    );
    // Block size unknown: the set is exact but the block size is not; the
    // standalone lint stays quiet rather than guess.
    assert!(diags_of(src, None).is_empty());
}

#[test]
fn uniform_guard_around_barrier_is_clean() {
    let src = "\
__global__ void k(float* out, int n) {
    for (int i = 0; i < n; i += 1) {
        __syncthreads();
        out[i] = 1.0f;
    }
}
";
    assert!(diags_of(src, Some(128)).is_empty());
}

#[test]
fn definite_shared_race_is_flagged_with_span() {
    let src = "\
__global__ void k(float* out) {
    __shared__ float s[160];
    int t = threadIdx.x;
    s[t] = 1.0f;
    out[t] = s[t + 32];
}
";
    let diags = diags_of(src, Some(128));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, CODE_SHARED_RACE);
    let span = d.span.expect("must carry a span");
    assert_eq!(span.line, 4, "span must point at the write");
    assert!(d.message.contains("`s`"), "{}", d.message);
    assert!(d.message.contains("read and a write"), "{}", d.message);
}

#[test]
fn single_location_broadcast_write_is_a_race() {
    let src = "\
__global__ void k(float* out) {
    __shared__ float s[32];
    int t = threadIdx.x;
    s[0] = t;
    __syncthreads();
    out[t] = s[0];
}
";
    // All 64 threads (two warps) write s[0] unsynchronised: definite WW race.
    let diags = diags_of(src, Some(64));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_SHARED_RACE);
    assert!(
        diags[0].message.contains("two writes"),
        "{}",
        diags[0].message
    );
    // With a single warp there is no cross-warp pair: clean.
    assert!(diags_of(src, Some(32)).is_empty());
}

#[test]
fn barrier_separated_exchange_is_clean() {
    let src = "\
__global__ void k(float* out) {
    __shared__ float s[160];
    int t = threadIdx.x;
    s[t] = 1.0f;
    __syncthreads();
    out[t] = s[t + 32];
}
";
    assert!(diags_of(src, Some(128)).is_empty());
}

#[test]
fn guarded_single_writer_is_clean() {
    let src = "\
__global__ void k(float* out) {
    __shared__ float s[32];
    int t = threadIdx.x;
    if (t == 0) {
        s[0] = 1.0f;
    }
    __syncthreads();
    out[t] = s[0];
}
";
    assert!(diags_of(src, Some(128)).is_empty());
}

#[test]
fn atomic_updates_are_exempt() {
    let src = "\
__global__ void k(int* out) {
    __shared__ int s[32];
    int t = threadIdx.x;
    atomicAdd(&s[0], t);
    __syncthreads();
    out[t] = s[t % 32];
}
";
    assert!(diags_of(src, Some(128)).is_empty());
}

#[test]
fn loop_carried_write_read_race_is_flagged() {
    // The barrier inside the loop orders the write with *this* iteration's
    // read, but the read and the *next* iteration's write share a phase
    // through the back edge.
    let src = "\
__global__ void k(float* out, int n) {
    __shared__ float s[128];
    int t = threadIdx.x;
    for (int i = 0; i < n; i += 1) {
        s[t] = 1.0f;
        __syncthreads();
        out[i] = s[t + 32];
    }
}
";
    let diags = diags_of(src, Some(128));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_SHARED_RACE);
}

#[test]
fn non_warp_multiple_bar_sync_is_flagged() {
    let src = "\
__global__ void k(float* out) {
    asm(\"bar.sync 1, 48;\");
    out[0] = 1.0f;
}
";
    let diags = diags_of(src, None);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_PARTIAL_BARRIER);
    assert!(diags[0].message.contains("48"), "{}", diags[0].message);
    assert!(
        diags[0].message.contains("warp size"),
        "{}",
        diags[0].message
    );
}

#[test]
fn mismatched_bar_sync_counts_are_flagged() {
    let src = "\
__global__ void k(float* out) {
    asm(\"bar.sync 1, 64;\");
    out[0] = 1.0f;
    asm(\"bar.sync 1, 96;\");
    out[1] = 2.0f;
}
";
    let diags = diags_of(src, None);
    assert!(
        diags
            .iter()
            .any(|d| d.code == CODE_PARTIAL_BARRIER && d.message.contains("mismatched")),
        "{diags:?}"
    );
}

#[test]
fn bar_sync_arrival_count_mismatch_is_flagged() {
    // 64 threads are guarded into the barrier but it declares 96.
    let src = "\
__global__ void k(float* out) {
    int t = threadIdx.x;
    if (t < 64) {
        asm(\"bar.sync 1, 96;\");
    }
    out[t] = 1.0f;
}
";
    let diags = diags_of(src, Some(128));
    assert!(
        diags.iter().any(|d| d.code == CODE_PARTIAL_BARRIER
            && d.message.contains("96")
            && d.message.contains("64")),
        "{diags:?}"
    );
}

#[test]
fn fused_style_guarded_partial_barriers_are_clean() {
    // The exact shape `horizontal_fuse` emits: goto guards carving the block
    // into [0,64) and [64,128), each with a matching partial barrier.
    let src = "\
__global__ void k(float* x, float* y) {
    __shared__ float a[64];
    __shared__ float b[64];
    int gtid = threadIdx.x;
    int t1 = gtid % 64;
    int t2 = gtid - 64;
    if (!(gtid < 64)) goto k1_end;
    a[t1] = 1.0f;
    asm(\"bar.sync 1, 64;\");
    x[t1] = a[0];
    k1_end:
    if (gtid < 64) goto k2_end;
    b[t2] = 2.0f;
    asm(\"bar.sync 2, 64;\");
    y[t2] = b[0];
    k2_end:
    return;
}
";
    assert!(
        diags_of(src, Some(128)).is_empty(),
        "{:?}",
        diags_of(src, Some(128))
    );
}

#[test]
fn cross_partition_race_in_fused_kernel_is_flagged() {
    // Both partitions touch the SAME shared array with overlapping indices
    // and no common barrier: a real fusion hazard.
    let src = "\
__global__ void k(float* x, float* y) {
    __shared__ float a[64];
    int gtid = threadIdx.x;
    int t1 = gtid % 64;
    int t2 = gtid - 64;
    if (!(gtid < 64)) goto k1_end;
    a[t1] = 1.0f;
    k1_end:
    if (gtid < 64) goto k2_end;
    y[t2] = a[t2];
    k2_end:
    return;
}
";
    let diags = diags_of(src, Some(128));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, CODE_SHARED_RACE);
}

#[test]
fn unresolvable_guards_and_indices_stay_silent() {
    // The `t % 3` guard is solved pointwise but both its writes hit `s[t]`
    // or an unresolvable index — same-thread or unknown, so no provable
    // cross-warp pair; the must-race lint must not guess.
    let src = "\
__global__ void k(float* out, int n) {
    __shared__ float s[128];
    int t = threadIdx.x;
    if (t % 3 == 0) {
        s[t] = 1.0f;
    }
    s[(t + n) % 128] = 2.0f;
    out[t] = s[t];
}
";
    assert!(diags_of(src, Some(128)).is_empty());
}

#[test]
fn multidim_thread_kernels_skip_the_race_lint() {
    // τ alone cannot identify warps in a 2-D block; the lint must stay
    // silent rather than claim cross-warp pairs it cannot prove.
    let src = "\
__global__ void k(float* out) {
    __shared__ float s[64];
    int t = threadIdx.x + threadIdx.y * 8;
    s[threadIdx.x] = t;
    out[t] = s[threadIdx.x];
}
";
    assert!(diags_of(src, Some(64)).is_empty());
}

#[test]
fn address_taken_arrays_are_exempt() {
    let src = "\
__global__ void k(float* out) {
    __shared__ float s[64];
    float* p = (float*)&s[0];
    int t = threadIdx.x;
    p[0] = t;
    out[t] = s[0];
}
";
    assert!(diags_of(src, Some(128)).is_empty());
}

#[test]
fn diagnostics_are_ordered_by_position() {
    let src = "\
__global__ void k(float* out) {
    __shared__ float s[160];
    int t = threadIdx.x;
    s[t] = 1.0f;
    out[t] = s[t + 32];
    if (t % 2 == 0) {
        __syncthreads();
    }
}
";
    let diags = diags_of(src, Some(128));
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(diags[0].code, CODE_SHARED_RACE);
    assert_eq!(diags[1].code, CODE_BARRIER_DIVERGENCE);
    let l0 = diags[0].span.unwrap().line;
    let l1 = diags[1].span.unwrap().line;
    assert!(l0 < l1);
}
