//! Zero-false-positive guarantee over the paper's benchmark set.
//!
//! The race lint claims *definite* races and the barrier lints only fire on
//! provable structure violations, so every paper kernel — all of which are
//! correct programs — must analyze clean, standalone and after fusion with
//! every same-domain partner.

use cuda_frontend::parse_kernel_with_spans;
use hfuse_analysis::{analyze_kernel, AnalysisOptions};
use hfuse_core::fuse::horizontal_fuse;
use hfuse_kernels::{crypto_benchmarks, dl_benchmarks, family_benchmarks, Benchmark};

fn assert_clean(name: &str, src: &str, threads: Option<u32>) {
    let (f, spans) =
        parse_kernel_with_spans(src).unwrap_or_else(|e| panic!("{name} must parse: {e}"));
    let diags = analyze_kernel(
        &f,
        Some(&spans),
        &AnalysisOptions {
            block_threads: threads,
            ..AnalysisOptions::default()
        },
    );
    assert!(
        diags.is_empty(),
        "{name} must produce no diagnostics, got:\n{}",
        diags
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    let mut v = dl_benchmarks();
    v.extend(crypto_benchmarks());
    v.extend(family_benchmarks());
    v
}

#[test]
fn paper_kernels_analyze_clean_standalone() {
    for b in all_benchmarks() {
        assert_clean(b.name(), &b.source(), None);
        assert_clean(b.name(), &b.source(), Some(b.default_threads()));
    }
}

#[test]
fn fused_dl_pairs_analyze_clean() {
    let benches = dl_benchmarks();
    for (i, b1) in benches.iter().enumerate() {
        for b2 in &benches[i + 1..] {
            check_fused_pair(b1.as_ref(), b2.as_ref());
        }
    }
}

#[test]
fn fused_crypto_pairs_analyze_clean() {
    let benches = crypto_benchmarks();
    for (i, b1) in benches.iter().enumerate() {
        for b2 in &benches[i + 1..] {
            check_fused_pair(b1.as_ref(), b2.as_ref());
        }
    }
}

#[test]
fn fused_family_pairs_analyze_clean() {
    // Every intra-family pair, plus each family kernel against itself (the
    // families are small enough that the full triangle is cheap).
    let benches = family_benchmarks();
    for (i, b1) in benches.iter().enumerate() {
        for b2 in &benches[i..] {
            if b1.dynamic_shared() > 0 && b2.dynamic_shared() > 0 {
                // Two extern __shared__ users would alias one dynamic
                // allocation; horizontal_fuse rejects this by design.
                continue;
            }
            check_fused_pair(b1.as_ref(), b2.as_ref());
        }
    }
}

fn check_fused_pair(b1: &dyn Benchmark, b2: &dyn Benchmark) {
    let k1 = b1.kernel();
    let k2 = b2.kernel();
    let d1 = b1
        .shape()
        .dims(b1.default_threads())
        .expect("valid default shape");
    let d2 = b2
        .shape()
        .dims(b2.default_threads())
        .expect("valid default shape");
    // `horizontal_fuse` itself now runs the analyzer as a gate, so a clean
    // fuse already proves "no diagnostics"; analyze explicitly anyway so a
    // future change to the gate cannot silently weaken this test.
    let fused = horizontal_fuse(&k1, d1, &k2, d2)
        .unwrap_or_else(|e| panic!("{} + {} must fuse: {e}", b1.name(), b2.name()));
    let diags = analyze_kernel(
        &fused.function,
        None,
        &AnalysisOptions {
            block_threads: Some(fused.block_threads()),
            ..AnalysisOptions::default()
        },
    );
    assert!(
        diags.is_empty(),
        "{} + {} fused must analyze clean, got:\n{}",
        b1.name(),
        b2.name(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
