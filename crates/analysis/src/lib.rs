#![warn(missing_docs)]

//! Static fusion-safety analysis for HFuse.
//!
//! Horizontally fused kernels interleave two kernels' barrier structures and
//! shared-memory footprints inside one thread block; the dynamic sanitizer in
//! `gpu-sim` catches the resulting bugs at simulation time, but only on the
//! inputs it happens to run. This crate proves (or refutes) the same
//! properties statically, per kernel, before any profiling happens:
//!
//! * [`mod@cfg`] lowers a kernel AST to a per-kernel control-flow graph with
//!   barrier-isolated blocks, post-dominators, and control dependences;
//! * [`uniformity`] runs a forward dataflow classifying every value as
//!   block-uniform, warp-uniform, or divergent, and — where possible — pins
//!   it down as an exact affine function of `threadIdx.x`;
//! * [`lints`] builds three lints on top: **barrier divergence**
//!   (`__syncthreads()` / `bar.sync` control-dependent on non-uniform
//!   conditions), **partial-barrier structure** (non-warp-multiple or
//!   mismatched `bar.sync` counts, arrival sets that disagree with declared
//!   participant counts), and **definite shared-memory races** (two provable
//!   thread ids in different warps hitting the same element in one
//!   barrier-delimited phase);
//! * [`ir_uniform`] re-derives per-instruction warp-uniformity facts on the
//!   flat `thread-ir` form so the simulator's uniform fast path can skip its
//!   runtime operand comparisons where uniformity is proven.
//!
//! The race lint is deliberately a *must* analysis — silence on anything it
//! cannot model exactly — so `hfuse-core` can reject statically-unsafe fusion
//! candidates without ever rejecting a safe one.

pub mod cache;
pub mod cfg;
pub mod ir_uniform;
pub mod lints;
pub mod ranges;
pub mod uniformity;

use std::collections::BTreeMap;
use std::sync::Arc;

use cuda_frontend::ast::Function;
use cuda_frontend::diag::{Diagnostic, SpanTable};

pub use cache::{
    analysis_cache_stats, analyze_kernel_memoized, summarize_ranges_memoized, AnalysisCacheStats,
};
pub use lints::{CODE_BARRIER_DIVERGENCE, CODE_PARTIAL_BARRIER, CODE_SHARED_RACE};
pub use ranges::{
    eliminate_redundant_barriers, summarize_ranges, KernelRangeSummary, CODE_GLOBAL_OOB,
    CODE_SHARED_OOB,
};

/// Options for [`analyze_kernel`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// `blockDim.x` when the launch configuration is known. Fuse-time checks
    /// always pass the fused block width; the standalone `hfuse lint` CLI
    /// passes it only when the user supplies `--threads`.
    pub block_threads: Option<u32>,
    /// Global buffer extents *in elements*, by pointer-parameter name.
    /// Feeds the out-of-bounds lint; absent entries leave the corresponding
    /// accesses unchecked. The CLI populates it from `--extent name=len`.
    pub global_extents: Option<Arc<BTreeMap<String, i64>>>,
}

/// Runs all static fusion-safety lints over one kernel.
///
/// `spans` (from [`cuda_frontend::parse_kernel_with_spans`]) lets diagnostics
/// carry source positions; without it they render without a location.
/// Diagnostics are returned ordered by source position.
pub fn analyze_kernel(
    f: &Function,
    spans: Option<&SpanTable>,
    opts: &AnalysisOptions,
) -> Vec<Diagnostic> {
    let graph = cfg::Cfg::build(f);
    let ua = uniformity::UniformityAnalysis::run(&graph, f, opts.block_threads);
    let ctx = lints::LintCtx {
        block_threads: opts.block_threads,
    };
    let mut diags = lints::barrier_lints(&graph, &ua, spans, &ctx);
    diags.extend(lints::race_lints(&graph, &ua, f, spans, &ctx));
    diags.extend(ranges::oob_lints(
        &graph,
        &ua,
        f,
        spans,
        &ctx,
        opts.global_extents.as_deref(),
    ));
    diags.sort_by_key(|d| d.span.map(|s| (s.line, s.col)));
    diags
}

/// True when `HFUSE_NO_STATIC_CHECK` is set (to anything but `0`), disabling
/// the fuse-time static safety gate.
pub fn static_check_disabled_by_env() -> bool {
    std::env::var_os("HFUSE_NO_STATIC_CHECK").is_some_and(|v| v != "0")
}
